// E3 / Figure 5: the real-world mammalian DNA dataset r125_19839 — 125
// taxa, 19,839 distinct patterns, 34 partitions of variable length (148 to
// 2,705 patterns). The paper shows the same improvement pattern as on the
// simulated data, demonstrating that the load-balance fix transfers to
// realistic gene-length distributions.
//
// Substitution: the original alignment is not redistributable; we simulate
// a dataset with the published shape (taxon count, partition count,
// log-spread gene lengths, gappy taxon coverage).
#include "common.hpp"

int main() {
  using namespace plk;
  using namespace plk::bench;

  const double scale = scale_from_env(0.25);
  Dataset data = make_paper_r125_19839(scale, 3);
  print_dataset_info(data, scale);

  std::vector<RunResult> rows;
  rows.push_back(run_config(data, "Sequential", Strategy::kNewPar, 1, true,
                            RunKind::kSearch, /*spr_radius=*/2));
  const double seq = rows[0].seconds;
  for (int t : threads_from_env()) {
    rows.push_back(run_config(data, "Old " + std::to_string(t),
                              Strategy::kOldPar, t, true, RunKind::kSearch,
                              2));
    rows.push_back(run_config(data, "New " + std::to_string(t),
                              Strategy::kNewPar, t, true, RunKind::kSearch,
                              2));
  }
  print_table(
      "Figure 5: full ML search on the r125_19839 analogue (34 variable "
      "partitions)",
      rows, seq);
  for (std::size_t i = 1; i + 1 < rows.size(); i += 2)
    std::printf("improvement at %s: %.2fx\n", rows[i].label.c_str() + 4,
                rows[i].seconds / rows[i + 1].seconds);
  return 0;
}
