// E5 / Section V text: "the run time differences between the old
// per-partition parallelization approach (oldPAR) and the new simultaneous
// parallelization approach (newPAR) were insignificant for analyses using a
// joint branch length estimate over all partitions. The average execution
// time improvement amounts to approximately 5%."
//
// With linked branch lengths the Newton-Raphson schedule is identical under
// both strategies (derivatives are summed across partitions in one command);
// only the model-parameter Brent phases differ. This bench measures both
// strategies on full searches with a *joint* estimate and reports the
// percentage difference — expected: small, single-digit.
#include "common.hpp"

int main() {
  using namespace plk;
  using namespace plk::bench;

  const double scale = scale_from_env(0.3);
  Dataset data = make_paper_d50_50000(scale, 5);
  print_dataset_info(data, scale);

  std::vector<RunResult> rows;
  rows.push_back(run_config(data, "Sequential", Strategy::kNewPar, 1,
                            /*per_partition_bl=*/false, RunKind::kSearch));
  const double seq = rows[0].seconds;
  for (int t : threads_from_env()) {
    rows.push_back(run_config(data, "Old " + std::to_string(t),
                              Strategy::kOldPar, t, false, RunKind::kSearch));
    rows.push_back(run_config(data, "New " + std::to_string(t),
                              Strategy::kNewPar, t, false, RunKind::kSearch));
  }
  print_table("E5: full ML search, JOINT branch length estimate", rows, seq);

  for (std::size_t i = 1; i + 1 < rows.size(); i += 2) {
    const double pct =
        100.0 * (rows[i].seconds - rows[i + 1].seconds) / rows[i].seconds;
    std::printf("improvement at %s threads: %.1f%% (paper: ~5%%)\n",
                rows[i].label.c_str() + 4, pct);
  }
  return 0;
}
