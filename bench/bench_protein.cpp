// E7 / Section V text: "the speedups were smaller (around 5-10%) on the two
// protein datasets ... the computation of the likelihood score for protein
// sequences that is based on a 20x20 instead of a 4x4 nucleotide
// substitution matrix requires a significantly higher amount (roughly by a
// factor of 20x20/4x4 = 25) of floating point operations per column. Hence,
// the load balance problem is less prevalent for protein data."
//
// This bench runs the viral-protein analogue (r26_21451: 26 taxa, 26
// partitions) and a DNA control with identical dimensions; the newPAR gain
// must be much smaller for the protein data.
#include "common.hpp"

int main() {
  using namespace plk;
  using namespace plk::bench;

  const double scale = scale_from_env(0.35);
  Dataset prot = make_paper_r26_21451(scale, 7);
  // DNA control with the same taxon/partition dimensions and gene-length
  // spread, so the only difference is the per-column kernel cost.
  std::size_t mn = static_cast<std::size_t>(-1), mx = 0;
  for (const auto& p : prot.scheme) {
    mn = std::min(mn, p.site_count());
    mx = std::max(mx, p.site_count());
  }
  Dataset dna = make_realworld_like(
      static_cast<int>(prot.alignment.taxon_count()),
      static_cast<int>(prot.scheme.size()), mn, mx, 0.1, false, 7);
  print_dataset_info(prot, scale);

  for (const Dataset* data : {&prot, &dna}) {
    std::vector<RunResult> rows;
    rows.push_back(run_config(*data, "Sequential", Strategy::kNewPar, 1, true,
                              RunKind::kSearch, /*spr_radius=*/2));
    const double seq = rows[0].seconds;
    for (int t : threads_from_env()) {
      rows.push_back(run_config(*data, "Old " + std::to_string(t),
                                Strategy::kOldPar, t, true, RunKind::kSearch,
                                2));
      rows.push_back(run_config(*data, "New " + std::to_string(t),
                                Strategy::kNewPar, t, true, RunKind::kSearch,
                                2));
    }
    print_table(std::string("E7: full ML search on ") + data->name +
                    (data == &prot ? " (protein, 20 states)"
                                   : " (DNA control, 4 states)"),
                rows, seq);
    for (std::size_t i = 1; i + 1 < rows.size(); i += 2)
      std::printf("improvement at %s threads: %.2fx\n",
                  rows[i].label.c_str() + 4,
                  rows[i].seconds / rows[i + 1].seconds);
  }
  std::printf(
      "\n(expected: the protein improvement factors are much closer to 1x "
      "than the DNA ones)\n");
  return 0;
}
