// E11: NUMA-aware sub-core sharding — scaling and reduction-determinism.
//
// Measures the shard layer (core/core_shard.hpp) on the mixed multi-gene
// scenario: the same fixed workload (full-traversal evaluations plus fused
// Newton-Raphson derivative passes) runs at shards = 1, 2, 4 with the
// GLOBAL thread count held fixed, so the only variable is how the engine
// splits partitions and virtual tids across sub-core teams.
//
//   strong scaling  fixed dataset, shards 1/2/4 — the paper-machine case
//                   where each shard's team lands on its own NUMA node;
//   weak scaling    gene count grows with the shard count (base x N), so
//                   per-shard work stays constant;
//   determinism     lnL and NR derivatives at every shard count must equal
//                   the shards=1 run BIT FOR BIT (the two-level reduction
//                   tree is shard-layout invariant) — recorded as the
//                   bit_identical hard gate;
//   sync accounting shard_team_syncs / commands = average teams engaged
//                   per flush (1.0 = every flush stayed on one sub-core).
//
// On hosts with fewer cores than shard teams the scaling numbers only show
// oversubscription overhead; host_cores and numa_nodes are recorded so the
// gate (tools/bench_check.py) can judge the ratios in context.
#include <cmath>
#include <cstring>

#include "common.hpp"

namespace {

using namespace plk;

struct ShardRun {
  int shards = 0;
  int shards_effective = 0;
  double seconds = 0.0;
  double lnl = 0.0;
  double d1_sum = 0.0;  ///< order-independent fingerprint of the NR pass
  bool bit_identical = true;
  std::uint64_t commands = 0;
  std::uint64_t shard_fanouts = 0;
  double teams_per_flush = 0.0;
};

Dataset make_scenario(int taxa, int genes, std::uint64_t seed) {
  // Mixed DNA + protein genes: partition costs vary ~25x, so the plan
  // exercises both whole-partition LPT packing and huge-partition vt
  // splitting.
  return make_mixed_multigene(taxa, (genes * 2) / 3, genes - (genes * 2) / 3,
                              40, 160, seed);
}

ShardRun measure(const Dataset& data, int shards, int threads, int reps,
                 int nr_reps) {
  const CompressedAlignment comp =
      CompressedAlignment::build(data.alignment, data.scheme, false);
  std::vector<PartitionModel> models;
  Rng rng(11);
  for (const auto& part : comp.partitions) {
    SubstModel m = part.type == DataType::kDna
                       ? make_model("GTR", empirical_frequencies(part))
                       : make_model("WAG");
    models.emplace_back(std::move(m), rng.uniform(0.5, 1.2), 4);
  }
  EngineOptions eo;
  eo.threads = threads;
  eo.shards = shards;
  eo.unlinked_branch_lengths = true;
  Engine eng(comp, data.true_tree, std::move(models), eo);

  std::vector<int> all(static_cast<std::size_t>(eng.partition_count()));
  for (int p = 0; p < eng.partition_count(); ++p)
    all[static_cast<std::size_t>(p)] = p;
  std::vector<double> lens(all.size()), d1(all.size()), d2(all.size());

  eng.loglikelihood(0);  // warm CLVs, tip tables, first-touched pages
  eng.reset_stats();

  ShardRun res;
  res.shards = shards;
  res.shards_effective = eng.shard_count();
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    eng.invalidate_all();
    res.lnl = eng.loglikelihood(0);
  }
  for (int r = 0; r < nr_reps; ++r) {
    for (std::size_t k = 0; k < all.size(); ++k)
      lens[k] =
          0.05 + 0.01 * static_cast<double>((r + static_cast<int>(k)) % 7);
    eng.nr_derivatives_at(0, all, lens, d1, d2);
    for (std::size_t k = 0; k < all.size(); ++k) res.d1_sum += d1[k];
  }
  res.seconds = timer.seconds();

  const EngineStats& es = eng.stats();
  res.commands = es.commands;
  res.shard_fanouts = es.shard_fanouts;
  res.teams_per_flush =
      es.commands > 0 ? static_cast<double>(es.shard_team_syncs) /
                            static_cast<double>(es.commands)
                      : 0.0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plk;
  using namespace plk::bench;

  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  const double scale = scale_from_env(1.0);
  const int threads = [] {
    if (const char* s = std::getenv("PLK_SHARD_THREADS")) return std::atoi(s);
    return 4;
  }();
  const int reps = std::max(1, static_cast<int>(30 * scale));
  const int nr_reps = std::max(1, static_cast<int>(40 * scale));
  const int shard_counts[] = {1, 2, 4};

  const HostTopology topo = HostTopology::detect();
  std::printf("host: %d logical cpus, %zu numa node(s); threads %d, "
              "%d eval reps + %d NR reps per config\n",
              topo.logical_cpus, topo.nodes.size(), threads, reps, nr_reps);

  // --- strong scaling: fixed dataset ---------------------------------------
  const int base_genes = std::max(4, static_cast<int>(12 * scale));
  Dataset data = make_scenario(12, base_genes, 20260807);
  print_dataset_info(data, scale);

  std::vector<ShardRun> strong;
  for (int n : shard_counts)
    strong.push_back(measure(data, n, threads, reps, nr_reps));

  bool bit_identical = true;
  std::printf("\nstrong scaling (fixed dataset, T=%d)\n", threads);
  std::printf("%-8s %10s %9s %12s %14s %12s\n", "shards", "runtime[s]",
              "speedup", "fanouts", "teams/flush", "lnL");
  for (auto& r : strong) {
    r.bit_identical = r.lnl == strong.front().lnl &&
                      r.d1_sum == strong.front().d1_sum;
    bit_identical = bit_identical && r.bit_identical;
    std::printf("%-8d %10.3f %9.2f %12llu %14.2f %12.1f%s\n", r.shards,
                r.seconds, strong.front().seconds / r.seconds,
                static_cast<unsigned long long>(r.shard_fanouts),
                r.teams_per_flush, r.lnl,
                r.bit_identical ? "" : "  [lnL MISMATCH]");
  }

  // --- weak scaling: genes grow with the shard count -----------------------
  std::printf("\nweak scaling (genes = %d x shards, T=%d)\n", base_genes,
              threads);
  std::printf("%-8s %10s %11s %12s %14s\n", "shards", "runtime[s]",
              "efficiency", "fanouts", "teams/flush");
  std::vector<ShardRun> weak;
  for (int n : shard_counts) {
    Dataset wd = make_scenario(12, base_genes * n, 20260807 + n);
    weak.push_back(measure(wd, n, threads, reps, nr_reps));
    const ShardRun& r = weak.back();
    std::printf("%-8d %10.3f %11.2f %12llu %14.2f\n", r.shards, r.seconds,
                weak.front().seconds / r.seconds,
                static_cast<unsigned long long>(r.shard_fanouts),
                r.teams_per_flush);
  }

  std::printf("\nbit-identity across shard counts: %s\n",
              bit_identical ? "OK" : "FAILED");
  if (!bit_identical) return 1;

  if (!json_path.empty()) {
    JsonObject doc;
    doc.add("bench", "shard");
    doc.add("dataset", data.name);
    doc.add("taxa", static_cast<long long>(data.alignment.taxon_count()));
    doc.add("partitions", static_cast<long long>(data.scheme.size()));
    doc.add("threads", threads);
    doc.add("host_cores", topo.logical_cpus);
    doc.add("numa_nodes", static_cast<long long>(topo.nodes.size()));
    doc.add("eval_reps", reps);
    doc.add("nr_reps", nr_reps);
    doc.add("bit_identical", bit_identical ? "true" : "false");
    JsonArray sarr;
    for (const auto& r : strong) {
      JsonObject o;
      o.add("shards", r.shards);
      o.add("seconds", r.seconds);
      o.add("speedup", strong.front().seconds / r.seconds);
      o.add("lnl", r.lnl);
      o.add("shard_fanouts", static_cast<long long>(r.shard_fanouts));
      o.add("teams_per_flush", r.teams_per_flush);
      sarr.add_raw(o.render(4));
    }
    doc.add_raw("strong", sarr.render(2));
    JsonArray warr;
    for (const auto& r : weak) {
      JsonObject o;
      o.add("shards", r.shards);
      o.add("seconds", r.seconds);
      o.add("efficiency", weak.front().seconds / r.seconds);
      o.add("shard_fanouts", static_cast<long long>(r.shard_fanouts));
      o.add("teams_per_flush", r.teams_per_flush);
      warr.add_raw(o.render(4));
    }
    doc.add_raw("weak", warr.render(2));
    write_json(json_path, doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
