// E6 / Section V text: "the optimization of ML model parameters on a fixed
// tree (i.e., no tree search is performed), even with a per-partition branch
// length estimate, exhibits more computations per synchronization event ...
// Therefore, the average execution time improvements range between 5% and
// 10% for model parameter optimization on a fixed tree."
//
// Every Brent iteration on alpha or an exchangeability requires a full tree
// traversal of the affected partition, so even oldPAR's per-partition
// commands carry substantial work — the sync-to-compute ratio is benign and
// the newPAR gain is small. This bench runs model-parameter optimization
// (no search) on a fixed input tree, both branch-length modes.
#include "common.hpp"

int main() {
  using namespace plk;
  using namespace plk::bench;

  const double scale = scale_from_env(0.3);
  Dataset data = make_paper_d50_50000(scale, 6);
  print_dataset_info(data, scale);

  for (bool per_part_bl : {true, false}) {
    std::vector<RunResult> rows;
    rows.push_back(run_config(data, "Sequential", Strategy::kNewPar, 1,
                              per_part_bl, RunKind::kModelOpt));
    const double seq = rows[0].seconds;
    for (int t : threads_from_env()) {
      rows.push_back(run_config(data, "Old " + std::to_string(t),
                                Strategy::kOldPar, t, per_part_bl,
                                RunKind::kModelOpt));
      rows.push_back(run_config(data, "New " + std::to_string(t),
                                Strategy::kNewPar, t, per_part_bl,
                                RunKind::kModelOpt));
    }
    print_table(std::string("E6: model-parameter optimization on a fixed "
                            "tree, ") +
                    (per_part_bl ? "PER-PARTITION" : "JOINT") +
                    " branch lengths",
                rows, seq);
    for (std::size_t i = 1; i + 1 < rows.size(); i += 2) {
      const double pct =
          100.0 * (rows[i].seconds - rows[i + 1].seconds) / rows[i].seconds;
      std::printf("improvement at %s threads: %.1f%% (paper: 5-10%%)\n",
                  rows[i].label.c_str() + 4, pct);
    }
  }
  return 0;
}
