// E9 (ablation): the mechanism behind Figures 3-6, made visible.
//
// The paper's explanation of the load-balance problem has two ingredients:
//   1. oldPAR issues ~P times more synchronization events (one per-partition
//      Newton-Raphson/Brent iteration each), and
//   2. each of those events gives every thread only len(p)/T patterns of
//      work, so the fixed barrier cost and the per-thread imbalance dominate.
// This bench runs the same branch-length optimization workload under both
// strategies and prints the raw counters: commands (syncs), NR iterations,
// critical-path seconds and imbalance seconds — the quantities that the
// runtime differences in E1-E4 are made of. It also sweeps the partition
// count at fixed total width to show the gap growing with P (the paper:
// "the more and the shorter the partitions are, the better the performance
// of newPAR versus oldPAR will become").
#include <chrono>
#include <thread>

#include "common.hpp"

namespace {

using namespace plk;

struct Counters {
  double seconds;
  std::uint64_t commands;
  std::uint64_t nr_iters;
  double critical_path;
  double imbalance;
};

Counters measure(const Dataset& data, Strategy strategy, int threads) {
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, false);
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(make_model("GTR", empirical_frequencies(part)), 0.8,
                        4);
  EngineOptions eo;
  eo.threads = threads;
  eo.unlinked_branch_lengths = true;
  Engine eng(comp, data.true_tree, std::move(models), eo);
  eng.loglikelihood(0);
  eng.reset_stats();

  Timer timer;
  optimize_branch_lengths(eng, strategy);
  return Counters{timer.seconds(), eng.stats().commands,
                  eng.stats().nr_iterations,
                  eng.team_stats().critical_path_seconds,
                  eng.team_stats().imbalance_seconds};
}

}  // namespace

int main() {
  using namespace plk;
  using namespace plk::bench;

  const double scale = scale_from_env(0.3);
  const int threads = 8;
  const auto sites = static_cast<std::size_t>(15000 * scale / 0.3);
  const int taxa = 20;

  std::printf(
      "E9 ablation: branch-length optimization, %d taxa, %zu sites, %d "
      "threads\n",
      taxa, sites, threads);
  std::printf("%10s %8s %12s %12s %12s %12s %10s\n", "partitions", "strat",
              "runtime[s]", "syncs", "NR iters", "critpath[s]",
              "imbal[s]");

  for (std::size_t plen : {sites, sites / 5, sites / 20, sites / 50}) {
    Dataset data = make_simulated_dna(taxa, sites, plen, 11);
    const auto nparts = data.scheme.size();
    Counters old_c = measure(data, Strategy::kOldPar, threads);
    Counters new_c = measure(data, Strategy::kNewPar, threads);
    std::printf("%10zu %8s %12.3f %12llu %12llu %12.3f %10.3f\n", nparts,
                "old", old_c.seconds,
                static_cast<unsigned long long>(old_c.commands),
                static_cast<unsigned long long>(old_c.nr_iters),
                old_c.critical_path, old_c.imbalance);
    std::printf("%10zu %8s %12.3f %12llu %12llu %12.3f %10.3f\n", nparts,
                "new", new_c.seconds,
                static_cast<unsigned long long>(new_c.commands),
                static_cast<unsigned long long>(new_c.nr_iters),
                new_c.critical_path, new_c.imbalance);
    std::printf("%10zu %8s %12.2fx %11.1fx\n", nparts, "gap",
                old_c.seconds / new_c.seconds,
                static_cast<double>(old_c.commands) /
                    static_cast<double>(new_c.commands));
  }
  std::printf(
      "\n(expected: the old/new runtime and sync-count gaps grow with the "
      "partition count)\n");

  // Wake-latency micro: the per-command broadcast overhead with hot
  // (spinning) workers, and after a long serial gap in which the workers
  // exhausted their spin budget and parked on the condition variable. The
  // parked path pays one futex wake; it must stay within the same order of
  // magnitude, and the hot path must not regress at all.
  {
    ThreadTeam team(threads, false);
    const int hot_cmds = 2000;
    team.run([](void*, int) {}, nullptr);  // spin-up
    Timer t_hot;
    for (int i = 0; i < hot_cmds; ++i) team.run([](void*, int) {}, nullptr);
    const double hot_us = t_hot.seconds() / hot_cmds * 1e6;

    const int gaps = 20;
    double parked_us = 0.0;
    for (int i = 0; i < gaps; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      Timer t;
      team.run([](void*, int) {}, nullptr);
      parked_us += t.seconds() * 1e6;
    }
    parked_us /= gaps;
    std::printf(
        "\nwake latency (%d threads): hot %.1f us/command, after 30 ms serial "
        "gap (parked) %.1f us/command\n",
        threads, hot_us, parked_us);
  }
  return 0;
}
