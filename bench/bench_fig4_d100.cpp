// E2 / Figure 4: as Figure 3 but for dataset d100_50000 (100 taxa, 50,000
// columns, 50 partitions of 1,000). More taxa mean more branches to
// optimize per search round, so the per-branch synchronization overhead of
// oldPAR weighs even heavier — the paper's plot shows the same ordering as
// Figure 3 at roughly doubled absolute runtimes.
#include "common.hpp"

int main() {
  using namespace plk;
  using namespace plk::bench;

  const double scale = scale_from_env(0.22);
  Dataset data = make_paper_d100_50000(scale, 2);
  print_dataset_info(data, scale);

  std::vector<RunResult> rows;
  rows.push_back(run_config(data, "Sequential", Strategy::kNewPar, 1, true,
                            RunKind::kSearch));
  const double seq = rows[0].seconds;
  for (int t : threads_from_env()) {
    rows.push_back(run_config(data, "Old " + std::to_string(t),
                              Strategy::kOldPar, t, true, RunKind::kSearch));
    rows.push_back(run_config(data, "New " + std::to_string(t),
                              Strategy::kNewPar, t, true, RunKind::kSearch));
  }
  print_table(
      "Figure 4: full ML search, per-partition branch lengths (d100_50000 "
      "p1000)",
      rows, seq);
  for (std::size_t i = 1; i + 1 < rows.size(); i += 2)
    std::printf("improvement at %s: %.2fx\n", rows[i].label.c_str() + 4,
                rows[i].seconds / rows[i + 1].seconds);
  return 0;
}
