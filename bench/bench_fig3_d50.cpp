// E1 / Figure 3: sequential and parallel execution times for dataset
// d50_50000 with 50 partitions of 1,000 columns each, full ML tree search
// with a per-partition branch-length estimate.
//
// Paper shape to reproduce: oldPAR barely speeds up (and *slows down* going
// from 8 to 16 threads on the 16-core machines); newPAR is several times
// faster in parallel — up to 8x better parallel efficiency.
//
// Our substitution: one multi-core Linux host instead of the paper's four
// platforms (Nehalem/Clovertown/Barcelona/x4600); the thread axis
// (sequential, old/new x 8/16) is reproduced as published.
#include "common.hpp"

int main() {
  using namespace plk;
  using namespace plk::bench;

  const double scale = scale_from_env(0.3);
  Dataset data = make_paper_d50_50000(scale, 1);
  print_dataset_info(data, scale);

  std::vector<RunResult> rows;
  rows.push_back(run_config(data, "Sequential", Strategy::kNewPar, 1, true,
                            RunKind::kSearch));
  const double seq = rows[0].seconds;
  for (int t : threads_from_env()) {
    rows.push_back(run_config(data, "Old " + std::to_string(t),
                              Strategy::kOldPar, t, true, RunKind::kSearch));
    rows.push_back(run_config(data, "New " + std::to_string(t),
                              Strategy::kNewPar, t, true, RunKind::kSearch));
  }
  print_table(
      "Figure 3: full ML search, per-partition branch lengths (d50_50000 "
      "p1000)",
      rows, seq);

  // Headline number: newPAR's parallel-efficiency gain over oldPAR.
  for (std::size_t i = 1; i + 1 < rows.size(); i += 2)
    std::printf("improvement at %s: %.2fx (old %.2fs -> new %.2fs)\n",
                rows[i].label.c_str() + 4, rows[i].seconds / rows[i + 1].seconds,
                rows[i].seconds, rows[i + 1].seconds);
  return 0;
}
