// E8: kernel micro-benchmarks (google-benchmark).
//
// Measures the building blocks whose ratio drives the paper's load-balance
// effect: newview / evaluate / NR-derivative cost per pattern for 4-state
// (DNA) vs 20-state (protein) kernels, and the fixed cost of one thread-team
// synchronization. The paper's protein observation (E7) is the direct
// consequence of the ~25x flops gap visible here.
#include <benchmark/benchmark.h>

#include "plk.hpp"

namespace {

using namespace plk;

/// A tiny ready-made engine over one partition.
struct Fixture {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  Fixture(bool protein, std::size_t sites, int threads)
      : data(protein ? make_realworld_like(16, 1, sites, sites + 1, 0.0, true,
                                           7)
                     : make_simulated_dna(16, sites, sites, 7)) {
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, false));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions)
      models.emplace_back(part.type == DataType::kDna
                              ? make_model("GTR", empirical_frequencies(part))
                              : make_model("WAG"),
                          0.8, 4);
    EngineOptions eo;
    eo.threads = threads;
    engine = std::make_unique<Engine>(*comp, data.true_tree,
                                      std::move(models), eo);
  }
};

void BM_Evaluate(benchmark::State& state, bool protein) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  Fixture fx(protein, sites, 1);
  fx.engine->loglikelihood(0);
  for (auto _ : state) {
    fx.engine->invalidate_all();
    benchmark::DoNotOptimize(fx.engine->loglikelihood(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sites));
}

void BM_EvaluateDna(benchmark::State& s) { BM_Evaluate(s, false); }
void BM_EvaluateProtein(benchmark::State& s) { BM_Evaluate(s, true); }
BENCHMARK(BM_EvaluateDna)->Arg(1000)->Arg(4000);
BENCHMARK(BM_EvaluateProtein)->Arg(1000)->Arg(4000);

void BM_NrDerivatives(benchmark::State& state, bool protein) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  Fixture fx(protein, sites, 1);
  fx.engine->loglikelihood(0);
  fx.engine->prepare_root(0);
  fx.engine->compute_sumtable({0});
  double len = 0.1, d1 = 0, d2 = 0;
  for (auto _ : state) {
    fx.engine->nr_derivatives({0}, {&len, 1}, {&d1, 1}, {&d2, 1});
    benchmark::DoNotOptimize(d1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sites));
}

void BM_NrDna(benchmark::State& s) { BM_NrDerivatives(s, false); }
void BM_NrProtein(benchmark::State& s) { BM_NrDerivatives(s, true); }
BENCHMARK(BM_NrDna)->Arg(1000)->Arg(4000);
BENCHMARK(BM_NrProtein)->Arg(1000)->Arg(4000);

/// Fixed cost of one thread-team synchronization (empty command) — the
/// overhead every oldPAR per-partition iteration pays.
void BM_TeamSync(benchmark::State& state) {
  ThreadTeam team(static_cast<int>(state.range(0)), false);
  for (auto _ : state)
    team.run([](int) {});
  state.SetLabel(std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_TeamSync)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
