// E8: kernel micro-benchmarks.
//
// Two modes:
//
//   bench_kernel                 google-benchmark micro benches: engine-level
//                                evaluate / NR cost per pattern for DNA vs
//                                protein, and the thread-team sync cost.
//   bench_kernel --json <path>   generic-vs-specialized raw-kernel comparison
//                                (the perf-trajectory record committed as
//                                BENCH_kernel.json): times every kernel in
//                                both flavors on identical buffers and
//                                reports ns/pattern + speedups.
//
// The comparison cases mirror the real traversal mix: in an n-taxon tree,
// roughly half of all newview child slots are tips, so the tip/inner case is
// the headline DNA number, with tip/tip and inner/inner alongside.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "common.hpp"
#include "core/kernels.hpp"
#include "core/kernels/dispatch.hpp"
#include "core/kernels/rig.hpp"
#include "model/subst_model.hpp"
#include "util/simd.hpp"

namespace {

using namespace plk;

// ---------------------------------------------------------------------------
// Mode 1: generic vs specialized raw-kernel comparison (--json).
// ---------------------------------------------------------------------------

/// Best-of-9 ns/pattern for `fn`, with iteration count calibrated so each
/// timed rep runs >= 20 ms. Many short reps with a min, rather than a few
/// long ones: on shared/contended runners the minimum of short slices is
/// the best estimator of uncontended cost, and a 20 ms slice still spans
/// thousands of kernel calls at these problem sizes.
template <class Fn>
double ns_per_pattern(std::size_t patterns, Fn&& fn) {
  fn();  // warm caches and page in buffers
  long iters = 1;
  for (;;) {
    Timer t;
    for (long i = 0; i < iters; ++i) fn();
    if (t.seconds() >= 0.02) break;
    iters *= 4;
  }
  double best = 1e300;
  for (int rep = 0; rep < 9; ++rep) {
    Timer t;
    for (long i = 0; i < iters; ++i) fn();
    const double ns = t.seconds() * 1e9 /
                      (static_cast<double>(iters) * static_cast<double>(patterns));
    best = best < ns ? best : ns;
  }
  return best;
}

struct CaseResult {
  std::string name;
  double generic_ns = 0.0;
  double spec_ns = 0.0;
  double speedup() const { return generic_ns / spec_ns; }
};

template <int S>
CaseResult compare_newview(kernel::KernelRig<S>& r, const std::string& name,
                           const kernel::ChildView& c1,
                           const kernel::ChildView& c2) {
  const kernel::KernelTable& kt = kernel::active_kernels();
  CaseResult res{name};
  res.generic_ns = ns_per_pattern(r.patterns, [&] {
    kernel::newview_slice<S>(0, r.patterns, 1, r.cats, c1, c2, r.p1.data(),
                             r.p2.data(), r.out.data(), r.out_scale.data());
    benchmark::DoNotOptimize(r.out.data());
  });
  res.spec_ns = ns_per_pattern(r.patterns, [&] {
    kt.newview<S>()(0, r.patterns, 1, r.cats, c1, c2, r.p1.data(),
                    r.p2.data(), r.p1t.data(), r.p2t.data(), r.out.data(),
                    r.out_scale.data());
    benchmark::DoNotOptimize(r.out.data());
  });
  return res;
}

template <int S>
CaseResult compare_evaluate(kernel::KernelRig<S>& r, const std::string& name,
                            const kernel::ChildView& cu,
                            const kernel::ChildView& cv,
                            const kernel::RateView& rv = {}) {
  CaseResult res{name};
  res.generic_ns = ns_per_pattern(r.patterns, [&] {
    benchmark::DoNotOptimize(kernel::evaluate_slice<S>(
        0, r.patterns, 1, r.cats, cu, cv, r.p2.data(), r.freqs.data(),
        r.weights.data(), rv));
  });
  res.spec_ns = ns_per_pattern(r.patterns, [&] {
    benchmark::DoNotOptimize(kernel::active_kernels().evaluate<S>()(
        0, r.patterns, 1, r.cats, cu, cv, r.p2.data(), r.p2t.data(),
        r.freqs.data(), r.weights.data(), rv));
  });
  return res;
}

template <int S>
CaseResult compare_sumtable(kernel::KernelRig<S>& r, const std::string& name,
                            const kernel::ChildView& cu,
                            const kernel::ChildView& cv) {
  CaseResult res{name};
  res.generic_ns = ns_per_pattern(r.patterns, [&] {
    kernel::sumtable_slice<S>(0, r.patterns, 1, r.cats, cu, cv, r.sym.data(),
                              r.sumtab.data());
    benchmark::DoNotOptimize(r.sumtab.data());
  });
  res.spec_ns = ns_per_pattern(r.patterns, [&] {
    kernel::active_kernels().sumtable<S>()(0, r.patterns, 1, r.cats, cu, cv,
                                           r.sym.data(), r.symt.data(),
                                           r.sumtab.data());
    benchmark::DoNotOptimize(r.sumtab.data());
  });
  return res;
}

template <int S>
CaseResult compare_nr(kernel::KernelRig<S>& r, const std::string& name,
                      bool weighted = false) {
  // Earlier sumtable cases reuse r.sumtab as their output buffer; rebuild it
  // so the NR timings run on defined inputs regardless of case order.
  kernel::sumtable_slice<S>(0, r.patterns, 1, r.cats, r.inner1(), r.inner2(),
                            r.sym.data(), r.sumtab.data());
  // Weighted = the engine's +R/+I contract: category weights folded into the
  // exp table, the view carrying the invariant term and root scale counts.
  const double* ex = weighted ? r.exp_lam_w.data() : r.exp_lam.data();
  const kernel::RateView rv =
      weighted ? r.nr_rate_view() : kernel::RateView{};
  CaseResult res{name};
  double d1 = 0.0, d2 = 0.0;
  res.generic_ns = ns_per_pattern(r.patterns, [&] {
    kernel::nr_slice<S>(0, r.patterns, 1, r.cats, r.sumtab.data(), ex,
                        r.lam.data(), r.weights.data(), &d1, &d2, rv);
    benchmark::DoNotOptimize(d1);
  });
  res.spec_ns = ns_per_pattern(r.patterns, [&] {
    kernel::active_kernels().nr<S>()(0, r.patterns, 1, r.cats,
                                     r.sumtab.data(), ex, r.lam.data(),
                                     r.weights.data(), &d1, &d2, rv);
    benchmark::DoNotOptimize(d1);
  });
  return res;
}

/// P-matrix build cost: the vectorized SubstModel::transition_matrix against
/// a naive scalar i-j-k reference over the same eigendecomposition factors.
/// Reported per TASK (one call = one (branch, category) matrix), the unit
/// the engine's parallel pmat pre-stage schedules.
CaseResult compare_pmat_build(const SubstModel& model, const std::string& name,
                              double* ns_per_task_out) {
  const std::size_t s = static_cast<std::size_t>(model.states());
  const Matrix& left = model.eigen_left();
  const Matrix& right = model.eigen_right();
  const std::vector<double>& lam = model.eigenvalues();
  // A spread of branch x category effective lengths so exp() inputs vary.
  const double lens[] = {0.013, 0.09, 0.31, 1.7};
  Matrix out(s);
  CaseResult res{name};
  res.generic_ns = ns_per_pattern(1, [&] {
    for (double t : lens) {
      double expl[32];
      for (std::size_t k = 0; k < s; ++k) expl[k] = std::exp(lam[k] * t);
      for (std::size_t i = 0; i < s; ++i)
        for (std::size_t j = 0; j < s; ++j) {
          double p = 0.0;
          for (std::size_t k = 0; k < s; ++k)
            p += left(i, k) * expl[k] * right(k, j);
          out(i, j) = p > 0.0 ? p : 0.0;
        }
    }
    benchmark::DoNotOptimize(out.data());
  });
  res.spec_ns = ns_per_pattern(1, [&] {
    for (double t : lens) model.transition_matrix(t, out);
    benchmark::DoNotOptimize(out.data());
  });
  // ns_per_pattern timed the 4-length loop as one "pattern": per task = /4.
  const double per_task = res.spec_ns / 4.0;
  res.generic_ns /= 4.0;
  res.spec_ns = per_task;
  if (ns_per_task_out != nullptr) *ns_per_task_out = per_task;
  return res;
}

int run_json_mode(const std::string& path) {
  // Pattern counts are sized so the three CLV streams of one newview call
  // (two children + output) stay cache-resident: this bench compares KERNEL
  // arithmetic against the generic reference, and past ~8k DNA patterns the
  // measurement turns into a DRAM-bandwidth test where every kernel clamps
  // to the same ~2.3x ceiling on this class of host (the end-to-end paper
  // benches cover the streaming regime). 2000 DNA patterns x 4 cats x 4
  // states x 8 B = 256 KB per CLV x 3 buffers is L2-resident — large enough
  // for an honest per-pattern average, small enough to measure the kernel
  // rather than the memory bus.
  constexpr std::size_t kDnaPatterns = 2000;
  constexpr std::size_t kProtPatterns = 4000;
  constexpr int kCats = 4;
  kernel::KernelRig<4> dna(kDnaPatterns, kCats);
  kernel::KernelRig<20> prot(kProtPatterns, kCats);

  std::vector<CaseResult> cases;
  cases.push_back(compare_newview<4>(dna, "newview_dna_tip_tip", dna.tip1(),
                                     dna.tip2()));
  cases.push_back(compare_newview<4>(dna, "newview_dna_tip_inner", dna.tip1(),
                                     dna.inner2()));
  cases.push_back(compare_newview<4>(dna, "newview_dna_inner_inner",
                                     dna.inner1(), dna.inner2()));
  cases.push_back(compare_newview<20>(prot, "newview_protein_tip_inner",
                                      prot.tip1(), prot.inner2()));
  cases.push_back(compare_newview<20>(prot, "newview_protein_inner_inner",
                                      prot.inner1(), prot.inner2()));
  cases.push_back(compare_evaluate<4>(dna, "evaluate_dna_inner_tip",
                                      dna.inner1(), dna.tip2()));
  cases.push_back(compare_evaluate<4>(dna, "evaluate_dna_inner_inner",
                                      dna.inner1(), dna.inner2()));
  cases.push_back(compare_evaluate<20>(prot, "evaluate_protein_inner_inner",
                                       prot.inner1(), prot.inner2()));
  cases.push_back(compare_evaluate<4>(dna, "evaluate_dna_freerates_pinv",
                                      dna.inner1(), dna.inner2(),
                                      dna.rate_view()));
  cases.push_back(compare_evaluate<20>(prot, "evaluate_protein_freerates_pinv",
                                       prot.inner1(), prot.inner2(),
                                       prot.rate_view()));
  cases.push_back(compare_sumtable<4>(dna, "sumtable_dna_tip_inner",
                                      dna.tip_sym(), dna.inner2()));
  cases.push_back(compare_sumtable<4>(dna, "sumtable_dna_inner_inner",
                                      dna.inner1(), dna.inner2()));
  cases.push_back(compare_nr<4>(dna, "nr_dna"));
  cases.push_back(compare_nr<20>(prot, "nr_protein"));
  cases.push_back(compare_nr<4>(dna, "nr_dna_freerates_pinv", true));
  double pmat_dna_ns = 0.0, pmat_prot_ns = 0.0;
  cases.push_back(compare_pmat_build(make_model("GTR"), "pmat_build_dna",
                                     &pmat_dna_ns));
  cases.push_back(compare_pmat_build(make_model("WAG"), "pmat_build_protein",
                                     &pmat_prot_ns));

  std::printf("%-28s %14s %14s %9s\n", "case", "generic[ns/pat]",
              "simd[ns/pat]", "speedup");
  bench::JsonArray arr;
  for (const auto& c : cases) {
    std::printf("%-28s %14.2f %14.2f %8.2fx\n", c.name.c_str(), c.generic_ns,
                c.spec_ns, c.speedup());
    bench::JsonObject o;
    o.add("name", c.name);
    o.add("generic_ns_per_pattern", c.generic_ns);
    o.add("specialized_ns_per_pattern", c.spec_ns);
    o.add("speedup", c.speedup());
    arr.add_raw(o.render(2));
  }

  const auto by_name = [&](const char* n) -> const CaseResult& {
    for (const auto& c : cases)
      if (c.name == n) return c;
    throw std::logic_error("missing case");
  };
  bench::JsonObject headline;
  // Headline DNA numbers use the tip/inner case: in an n-taxon tree roughly
  // half of newview child slots are tips, and evaluate gets a tip table
  // whenever the root edge touches a tip.
  headline.add("newview_dna", by_name("newview_dna_tip_inner").speedup());
  headline.add("evaluate_dna", by_name("evaluate_dna_inner_tip").speedup());
  headline.add("newview_protein",
               by_name("newview_protein_tip_inner").speedup());
  headline.add("evaluate_protein",
               by_name("evaluate_protein_inner_inner").speedup());

  // The specialized side runs through the runtime dispatch table, so the
  // recorded backend is the dispatched one (PLK_FORCE_SIMD selects it), not
  // the compile-time ambient backend.
  const kernel::KernelTable& kt = kernel::active_kernels();
  bench::JsonObject pmat;
  pmat.add("dna_ns_per_task", pmat_dna_ns);
  pmat.add("protein_ns_per_task", pmat_prot_ns);

  bench::JsonObject doc;
  doc.add("bench", "kernel");
  doc.add("schema", 2);
  doc.add("simd_backend", kt.name);
  doc.add("simd_lanes", kt.lanes);
  doc.add("ambient_backend", simd::kBackend);
  doc.add("cats", kCats);
  doc.add("patterns_dna", (long long)kDnaPatterns);
  doc.add("patterns_protein", (long long)kProtPatterns);
  doc.add_raw("cases", arr.render(2));
  doc.add_raw("pmat_build", pmat.render(2));
  doc.add_raw("headline_speedups", headline.render(2));
  bench::write_json(path, doc);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Mode 2: google-benchmark engine-level micro benches.
// ---------------------------------------------------------------------------

/// A tiny ready-made engine over one partition.
struct Fixture {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  Fixture(bool protein, std::size_t sites, int threads, bool generic = false)
      : data(protein ? make_realworld_like(16, 1, sites, sites + 1, 0.0, true,
                                           7)
                     : make_simulated_dna(16, sites, sites, 7)) {
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, false));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions)
      models.emplace_back(part.type == DataType::kDna
                              ? make_model("GTR", empirical_frequencies(part))
                              : make_model("WAG"),
                          0.8, 4);
    EngineOptions eo;
    eo.threads = threads;
    eo.use_generic_kernels = generic;
    engine = std::make_unique<Engine>(*comp, data.true_tree,
                                      std::move(models), eo);
  }
};

void BM_Evaluate(benchmark::State& state, bool protein, bool generic) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  Fixture fx(protein, sites, 1, generic);
  fx.engine->loglikelihood(0);
  for (auto _ : state) {
    fx.engine->invalidate_all();
    benchmark::DoNotOptimize(fx.engine->loglikelihood(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sites));
}

void BM_EvaluateDna(benchmark::State& s) { BM_Evaluate(s, false, false); }
void BM_EvaluateDnaGeneric(benchmark::State& s) { BM_Evaluate(s, false, true); }
void BM_EvaluateProtein(benchmark::State& s) { BM_Evaluate(s, true, false); }
void BM_EvaluateProteinGeneric(benchmark::State& s) {
  BM_Evaluate(s, true, true);
}
BENCHMARK(BM_EvaluateDna)->Arg(1000)->Arg(4000);
BENCHMARK(BM_EvaluateDnaGeneric)->Arg(1000)->Arg(4000);
BENCHMARK(BM_EvaluateProtein)->Arg(1000)->Arg(4000);
BENCHMARK(BM_EvaluateProteinGeneric)->Arg(1000)->Arg(4000);

void BM_NrDerivatives(benchmark::State& state, bool protein) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  Fixture fx(protein, sites, 1);
  fx.engine->loglikelihood(0);
  fx.engine->prepare_root(0);
  fx.engine->compute_sumtable({0});
  double len = 0.1, d1 = 0, d2 = 0;
  for (auto _ : state) {
    fx.engine->nr_derivatives({0}, {&len, 1}, {&d1, 1}, {&d2, 1});
    benchmark::DoNotOptimize(d1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sites));
}

void BM_NrDna(benchmark::State& s) { BM_NrDerivatives(s, false); }
void BM_NrProtein(benchmark::State& s) { BM_NrDerivatives(s, true); }
BENCHMARK(BM_NrDna)->Arg(1000)->Arg(4000);
BENCHMARK(BM_NrProtein)->Arg(1000)->Arg(4000);

/// Fixed cost of one thread-team synchronization (empty command) — the
/// overhead every oldPAR per-partition iteration pays.
void BM_TeamSync(benchmark::State& state) {
  ThreadTeam team(static_cast<int>(state.range(0)), false);
  for (auto _ : state)
    team.run([](int) {});
  state.SetLabel(std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_TeamSync)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      try {
        return run_json_mode(argv[i + 1]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_kernel --json: %s\n", e.what());
        return 1;
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
