// E11: batched multi-tree evaluation — bootstrap replicate throughput.
//
// The paper's Pthreads design ties one thread team to one tree; replicate-
// heavy workflows (bootstrap support, multi-start searches) therefore pay a
// full engine rebuild per replicate — tip re-encoding, thread spawn,
// schedule construction — and every per-replicate command is its own
// synchronization event. The EngineCore / EvalContext split removes the
// rebuild, and the batched submit()/wait() API packs the per-replicate
// commands of one optimization step into a single parallel region.
//
// This bench runs the SAME workload both ways and reports the throughput
// ratio:
//
//   sequential — the pre-split architecture: one Engine per replicate over
//                a per-replicate alignment copy, branch lengths optimized
//                replicate by replicate;
//   batched    — one EngineCore, one EvalContext per replicate holding only
//                resampled pattern weights, branch lengths optimized for
//                all replicates in lockstep (optimize_branch_lengths_batch).
//
// Per-replicate arithmetic is identical (same schedules, same thread count,
// same reduction order), so the final log-likelihoods must agree to 1e-10;
// the bench fails loudly if they do not. Output: a table plus
// BENCH_batch.json (replicate throughput, speedup, sync counts).
//
// Env: PLK_BENCH_REPLICATES (default 16), PLK_BENCH_THREADS (first entry,
// default 8), PLK_BENCH_SCALE (dataset size, default 1).
#include <cmath>
#include <cstring>

#include "common.hpp"

namespace {

using namespace plk;

std::vector<PartitionModel> make_models(const CompressedAlignment& comp) {
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0,
                        4);
  return models;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_batch.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  const double scale = bench::scale_from_env(1.0);
  int replicates = 16;
  if (const char* s = std::getenv("PLK_BENCH_REPLICATES"))
    replicates = std::atoi(s);
  const auto threads_list = bench::threads_from_env();
  const int threads = threads_list.empty() ? 8 : threads_list[0];

  const int taxa = std::max(6, static_cast<int>(12 * scale));
  const std::size_t sites =
      std::max<std::size_t>(300, static_cast<std::size_t>(1200 * scale));
  Dataset data = make_simulated_dna(taxa, sites, sites / 4, /*seed=*/777);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  bench::print_dataset_info(data, scale);
  std::printf("%d replicates, %d threads\n", replicates, threads);

  // One weight set per replicate, shared by both paths so the workloads are
  // identical draw for draw.
  Rng rng(2024);
  std::vector<std::vector<std::vector<double>>> weights;  // [rep][part][pat]
  weights.reserve(static_cast<std::size_t>(replicates));
  for (int r = 0; r < replicates; ++r)
    weights.push_back(bootstrap_weights(comp, rng));

  EngineOptions eo;
  eo.threads = threads;
  eo.unlinked_branch_lengths = true;  // the paper's hard case: newPAR NR
  const BranchOptOptions bo;

  // --- sequential: one engine per replicate --------------------------------
  std::vector<double> lnl_seq(static_cast<std::size_t>(replicates));
  Timer seq_timer;
  for (int r = 0; r < replicates; ++r) {
    CompressedAlignment rep = comp;  // the per-replicate copy the old
                                     // architecture forces
    for (std::size_t p = 0; p < rep.partitions.size(); ++p)
      rep.partitions[p].weights = weights[static_cast<std::size_t>(r)][p];
    Engine eng(rep, data.true_tree, make_models(comp), eo);
    lnl_seq[static_cast<std::size_t>(r)] =
        optimize_branch_lengths(eng, Strategy::kNewPar, bo);
  }
  const double seq_seconds = seq_timer.seconds();

  // --- batched: one core, one context per replicate ------------------------
  Timer batch_timer;
  EngineCore core(comp, make_models(comp), eo);
  std::vector<std::unique_ptr<EvalContext>> owned;
  std::vector<EvalContext*> ctxs;
  for (int r = 0; r < replicates; ++r) {
    auto ctx = std::make_unique<EvalContext>(core, data.true_tree);
    for (int p = 0; p < core.partition_count(); ++p)
      ctx->set_pattern_weights(
          p, weights[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)]);
    ctxs.push_back(ctx.get());
    owned.push_back(std::move(ctx));
  }
  const std::vector<double> lnl_batch =
      optimize_branch_lengths_batch(core, ctxs, bo);
  const double batch_seconds = batch_timer.seconds();

  // --- verify + report -----------------------------------------------------
  double max_diff = 0.0;
  for (int r = 0; r < replicates; ++r)
    max_diff = std::max(max_diff,
                        std::abs(lnl_seq[static_cast<std::size_t>(r)] -
                                 lnl_batch[static_cast<std::size_t>(r)]));
  const double speedup = seq_seconds / batch_seconds;
  const double seq_tput = replicates / seq_seconds;
  const double batch_tput = replicates / batch_seconds;

  std::printf("\n%-12s %12s %16s %14s\n", "path", "seconds",
              "replicates/sec", "syncs");
  std::printf("%-12s %12.3f %16.2f %14s\n", "sequential", seq_seconds,
              seq_tput, "(per-engine)");
  std::printf("%-12s %12.3f %16.2f %14llu\n", "batched", batch_seconds,
              batch_tput,
              static_cast<unsigned long long>(core.team_stats().sync_count));
  std::printf("speedup: %.2fx   max |lnL_seq - lnL_batch| = %.3g\n", speedup,
              max_diff);
  if (max_diff > 1e-10) {
    std::fprintf(stderr,
                 "FAIL: batched and sequential likelihoods diverge (%.3g)\n",
                 max_diff);
    return 1;
  }

  bench::JsonObject doc;
  doc.add("bench", "batch");
  doc.add("dataset", data.name);
  doc.add("scale", scale);
  doc.add("replicates", replicates);
  doc.add("threads", threads);
  doc.add("seq_seconds", seq_seconds);
  doc.add("batch_seconds", batch_seconds);
  doc.add("seq_replicates_per_sec", seq_tput);
  doc.add("batch_replicates_per_sec", batch_tput);
  doc.add("speedup", speedup);
  doc.add("batch_syncs",
          static_cast<long long>(core.team_stats().sync_count));
  doc.add("batch_requests", static_cast<long long>(core.stats().requests));
  doc.add("batch_commands", static_cast<long long>(core.stats().commands));
  doc.add("max_abs_lnl_diff", max_diff);
  bench::write_json(json_path, doc);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
