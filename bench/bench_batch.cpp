// E11: batched multi-tree evaluation — bootstrap replicate throughput.
//
// The paper's Pthreads design ties one thread team to one tree; replicate-
// heavy workflows (bootstrap support, multi-start searches) therefore pay a
// full engine rebuild per replicate — tip re-encoding, thread spawn,
// schedule construction — and every per-replicate command is its own
// synchronization event. The EngineCore / EvalContext split removes the
// rebuild, and the batched submit()/wait() API packs the per-replicate
// commands of one optimization step into a single parallel region.
//
// This bench runs the SAME workload both ways and reports the throughput
// ratio:
//
//   sequential — the pre-split architecture: one Engine per replicate over
//                a per-replicate alignment copy, branch lengths optimized
//                replicate by replicate;
//   batched    — one EngineCore, one EvalContext per replicate holding only
//                resampled pattern weights, branch lengths optimized for
//                all replicates in lockstep (optimize_branch_lengths_batch).
//
// Per-replicate arithmetic is identical (same schedules, same thread count,
// same reduction order), so the final log-likelihoods must agree to 1e-10;
// the bench fails loudly if they do not. Output: a table plus
// BENCH_batch.json (replicate throughput, speedup, sync counts).
//
// Env: PLK_BENCH_REPLICATES (default 16), PLK_BENCH_THREADS (first entry,
// default 8), PLK_BENCH_SCALE (dataset size, default 1).
#include <cmath>
#include <cstring>

#include "common.hpp"

namespace {

using namespace plk;

std::vector<PartitionModel> make_models(const CompressedAlignment& comp) {
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0,
                        4);
  return models;
}

/// GTR+R4+I with deliberately unequal weights: exercises the weighted
/// per-category kernel path plus the invariant-site term end to end.
std::vector<PartitionModel> make_freerate_models(
    const CompressedAlignment& comp) {
  const ModelSpec spec = parse_model_spec("GTR+R4+I");
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions) {
    RateModel rm = make_rate_model(spec);
    rm.set_free({0.25, 0.7, 1.6, 4.0}, {0.4, 0.3, 0.2, 0.1});
    rm.set_p_inv(0.15);
    models.emplace_back(make_subst_model(spec, empirical_frequencies(part)),
                        std::move(rm));
  }
  return models;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_batch.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  const double scale = bench::scale_from_env(1.0);
  int replicates = 16;
  if (const char* s = std::getenv("PLK_BENCH_REPLICATES"))
    replicates = std::atoi(s);
  const auto threads_list = bench::threads_from_env();
  const int threads = threads_list.empty() ? 8 : threads_list[0];

  const int taxa = std::max(6, static_cast<int>(12 * scale));
  const std::size_t sites =
      std::max<std::size_t>(300, static_cast<std::size_t>(1200 * scale));
  Dataset data = make_simulated_dna(taxa, sites, sites / 4, /*seed=*/777);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  bench::print_dataset_info(data, scale);
  std::printf("%d replicates, %d threads\n", replicates, threads);

  // One weight set per replicate, shared by both paths so the workloads are
  // identical draw for draw.
  Rng rng(2024);
  std::vector<std::vector<std::vector<double>>> weights;  // [rep][part][pat]
  weights.reserve(static_cast<std::size_t>(replicates));
  for (int r = 0; r < replicates; ++r)
    weights.push_back(bootstrap_weights(comp, rng));

  EngineOptions eo;
  eo.threads = threads;
  eo.unlinked_branch_lengths = true;  // the paper's hard case: newPAR NR
  const BranchOptOptions bo;

  struct RunResult {
    double seq_seconds = 0, batch_seconds = 0, max_diff = 0;
    long long syncs = 0, requests = 0, commands = 0;
  };
  // Run the identical workload both ways under one model family; returns
  // timings plus the sequential/batched likelihood disagreement (a hard
  // gate: per-replicate arithmetic is the same, so it must be ~0).
  const auto run_family =
      [&](const std::vector<PartitionModel>& proto) -> RunResult {
    RunResult res;

    // sequential: one engine per replicate, over the per-replicate
    // alignment copy the old architecture forces.
    std::vector<double> lnl_seq(static_cast<std::size_t>(replicates));
    Timer seq_timer;
    for (int r = 0; r < replicates; ++r) {
      CompressedAlignment rep = comp;
      for (std::size_t p = 0; p < rep.partitions.size(); ++p)
        rep.partitions[p].weights = weights[static_cast<std::size_t>(r)][p];
      Engine eng(rep, data.true_tree, proto, eo);
      lnl_seq[static_cast<std::size_t>(r)] =
          optimize_branch_lengths(eng, Strategy::kNewPar, bo);
    }
    res.seq_seconds = seq_timer.seconds();

    // batched: one core, one context per replicate.
    Timer batch_timer;
    EngineCore core(comp, proto, eo);
    std::vector<std::unique_ptr<EvalContext>> owned;
    std::vector<EvalContext*> ctxs;
    for (int r = 0; r < replicates; ++r) {
      auto ctx = std::make_unique<EvalContext>(core, data.true_tree);
      for (int p = 0; p < core.partition_count(); ++p)
        ctx->set_pattern_weights(
            p,
            weights[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)]);
      ctxs.push_back(ctx.get());
      owned.push_back(std::move(ctx));
    }
    const std::vector<double> lnl_batch =
        optimize_branch_lengths_batch(core, ctxs, bo);
    res.batch_seconds = batch_timer.seconds();

    for (int r = 0; r < replicates; ++r)
      res.max_diff = std::max(res.max_diff,
                              std::abs(lnl_seq[static_cast<std::size_t>(r)] -
                                       lnl_batch[static_cast<std::size_t>(r)]));
    res.syncs = static_cast<long long>(core.team_stats().sync_count);
    res.requests = static_cast<long long>(core.stats().requests);
    res.commands = static_cast<long long>(core.stats().commands);
    return res;
  };

  const RunResult gamma = run_family(make_models(comp));
  // Same workload under GTR+R4+I: the weighted per-category kernels plus the
  // invariant-site term. The batch/gamma ratio is the CI gate on the cost of
  // the generalized rate path.
  const RunResult fr = run_family(make_freerate_models(comp));

  const double speedup = gamma.seq_seconds / gamma.batch_seconds;
  const double fr_speedup = fr.seq_seconds / fr.batch_seconds;
  const double fr_over_gamma = fr.batch_seconds / gamma.batch_seconds;
  const double seq_tput = replicates / gamma.seq_seconds;
  const double batch_tput = replicates / gamma.batch_seconds;

  std::printf("\n%-22s %12s %16s %14s\n", "path", "seconds",
              "replicates/sec", "syncs");
  std::printf("%-22s %12.3f %16.2f %14s\n", "sequential", gamma.seq_seconds,
              seq_tput, "(per-engine)");
  std::printf("%-22s %12.3f %16.2f %14lld\n", "batched", gamma.batch_seconds,
              batch_tput, gamma.syncs);
  std::printf("%-22s %12.3f %16.2f %14s\n", "sequential +R4+I",
              fr.seq_seconds, replicates / fr.seq_seconds, "(per-engine)");
  std::printf("%-22s %12.3f %16.2f %14lld\n", "batched +R4+I",
              fr.batch_seconds, replicates / fr.batch_seconds, fr.syncs);
  std::printf(
      "speedup: %.2fx (+R4+I %.2fx)   +R4+I/gamma batched cost: %.2fx\n"
      "max |lnL_seq - lnL_batch| = %.3g (gamma), %.3g (+R4+I)\n",
      speedup, fr_speedup, fr_over_gamma, gamma.max_diff, fr.max_diff);
  if (gamma.max_diff > 1e-10 || fr.max_diff > 1e-10) {
    std::fprintf(stderr,
                 "FAIL: batched and sequential likelihoods diverge "
                 "(gamma %.3g, +R4+I %.3g)\n",
                 gamma.max_diff, fr.max_diff);
    return 1;
  }

  bench::JsonObject doc;
  doc.add("bench", "batch");
  doc.add("dataset", data.name);
  doc.add("scale", scale);
  doc.add("replicates", replicates);
  doc.add("threads", threads);
  doc.add("seq_seconds", gamma.seq_seconds);
  doc.add("batch_seconds", gamma.batch_seconds);
  doc.add("seq_replicates_per_sec", seq_tput);
  doc.add("batch_replicates_per_sec", batch_tput);
  doc.add("speedup", speedup);
  doc.add("batch_syncs", gamma.syncs);
  doc.add("batch_requests", gamma.requests);
  doc.add("batch_commands", gamma.commands);
  doc.add("max_abs_lnl_diff", gamma.max_diff);
  doc.add("freerates_seq_seconds", fr.seq_seconds);
  doc.add("freerates_batch_seconds", fr.batch_seconds);
  doc.add("freerates_speedup", fr_speedup);
  doc.add("free_rates_over_gamma", fr_over_gamma);
  doc.add("freerates_max_abs_lnl_diff", fr.max_diff);
  bench::write_json(json_path, doc);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
