// E12: batched + speculative SPR candidate scoring — search throughput.
//
// PR 3's batched submit()/wait() front door amortized synchronization across
// bootstrap replicates; PR 4 applied it INSIDE the search by scoring each
// prune edge's candidate set in lockstep waves; this revision batches
// ACROSS prune-edge groups: the search speculatively enumerates a window of
// groups against the frozen parent and merges their candidates into shared
// waves, so the sync cost of a wave is amortized over several groups — and
// the window adapts (1 after a commit, doubling while commit-free) so
// speculation never wastes much scoring where moves still land.
//
// The same search runs three ways on the skewed mixed DNA+protein multigene
// scenario (the work-scheduling benches' hard case) at each thread count:
//
//   sequential — one candidate at a time (~15-20 parallel regions each)
//   batched    — PR 4's per-group lockstep waves (speculate_groups = 1)
//   spec       — cross-group speculative waves (speculate_groups = 8)
//
// and all three must produce the IDENTICAL accepted-move sequence and final
// lnL (<= 1e-10; the bench fails loudly otherwise). Reported: end-to-end
// search wall time, candidates scored per second, sync counts, the batched/
// sequential ratio (PR 4's metric) and the spec/batched ratio (this
// revision's gate).
//
// --replicated N adds the lockstep multi-search scenario: N bootstrap
// replicate searches through one shared core, run one-after-another vs
// merged through search_ml_replicated (all replicates' waves in shared
// parallel regions, round smoothing batched) — identical per-replicate
// results, one throughput ratio.
//
// The JSON records `host_cores`: on hosts with fewer cores than the thread
// count the ratios quantify how much synchronization (barrier spin under
// oversubscription) the batching removes, not parallel scaling — read
// entries with threads > host_cores accordingly.
//
// Env: PLK_BENCH_THREADS (default "1,4,8"), PLK_BENCH_SCALE (default 1),
// PLK_BENCH_RADIUS (default 3), PLK_BENCH_ROUNDS (default 2 — round 1 is
// commit-dense, round 2 approximates the commit-free steady state, so the
// scenario exercises both speculation regimes),
// PLK_BENCH_REPSEARCH (default 0 = off; or pass --replicated N).
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>

#include "common.hpp"
#include "core/bootstrap.hpp"
#include "search/candidate_batch.hpp"

namespace {

using namespace plk;

struct SearchRun {
  double seconds = 0.0;
  double lnl = 0.0;
  std::uint64_t candidates = 0;
  double candidates_per_sec = 0.0;
  std::uint64_t syncs = 0;
  std::uint64_t commands = 0;
  std::uint64_t requests = 0;
  std::uint64_t coarse = 0;
  int accepted = 0;
  std::string tree;
  CandidateBatchStats batch;
};

std::vector<PartitionModel> make_models(const CompressedAlignment& comp) {
  std::vector<PartitionModel> models;
  Rng rng(7);
  for (const auto& part : comp.partitions) {
    SubstModel m = part.type == DataType::kDna
                       ? make_model("GTR", empirical_frequencies(part))
                       : make_model("WAG");
    models.emplace_back(std::move(m), rng.uniform(0.5, 1.2), 4);
  }
  return models;
}

enum class Scorer { kSequential, kBatched, kSpeculative };

SearchOptions make_search_opts(Scorer scorer, int radius, int rounds) {
  SearchOptions so;
  so.spr_radius = radius;
  so.max_rounds = rounds;
  so.optimize_model = false;  // isolate the candidate-scoring hot path
  so.batched_candidates = scorer != Scorer::kSequential;
  so.candidate_batch.speculate_groups =
      scorer == Scorer::kSpeculative ? 8 : 1;
  return so;
}

SearchRun run_search(const CompressedAlignment& comp, const Tree& start,
                     int threads, Scorer scorer, int radius, int rounds) {
  EngineOptions eo;
  eo.threads = threads;
  eo.unlinked_branch_lengths = true;
  Engine eng(comp, start, make_models(comp), eo);

  const SearchOptions so = make_search_opts(scorer, radius, rounds);

  SearchRun out;
  Timer timer;
  const SearchResult res = search_ml(eng, so);
  out.seconds = timer.seconds();
  out.lnl = res.final_lnl;
  out.candidates = res.candidates_scored;
  out.candidates_per_sec =
      out.seconds > 0 ? static_cast<double>(res.candidates_scored) / out.seconds
                      : 0.0;
  out.syncs = eng.team_stats().sync_count;
  out.commands = eng.stats().commands;
  out.requests = eng.stats().requests;
  out.coarse = eng.stats().coarse_commands;
  out.accepted = res.accepted_moves;
  out.batch = res.batch;
  eng.sync_tree_lengths();
  out.tree = write_newick(eng.tree());
  return out;
}

/// The lockstep multi-search scenario: R bootstrap replicate searches over
/// one shared core, either one after another or merged through
/// search_ml_replicated. Returns per-replicate lnLs + trees for the
/// equality gate and the aggregate throughput.
struct RepRun {
  double seconds = 0.0;
  double candidates_per_sec = 0.0;
  std::uint64_t syncs = 0;
  std::vector<double> lnls;
  std::vector<std::string> trees;
};

RepRun run_replicated(const CompressedAlignment& comp, const Tree& start,
                      int threads, int replicates, int radius, int rounds,
                      bool lockstep) {
  EngineOptions eo;
  eo.threads = threads;
  eo.unlinked_branch_lengths = true;
  EngineCore core(comp, make_models(comp), eo);
  Rng rng(0xb00);
  std::vector<std::unique_ptr<EvalContext>> owned;
  std::vector<EvalContext*> ctxs;
  for (int r = 0; r < replicates; ++r) {
    owned.push_back(std::make_unique<EvalContext>(core, start));
    const auto weights = bootstrap_weights(core.alignment(), rng);
    for (int p = 0; p < core.partition_count(); ++p)
      owned.back()->set_pattern_weights(p,
                                        weights[static_cast<std::size_t>(p)]);
    ctxs.push_back(owned.back().get());
  }

  const SearchOptions so = make_search_opts(Scorer::kSpeculative, radius,
                                            rounds);
  RepRun out;
  Timer timer;
  std::vector<SearchResult> results;
  if (lockstep) {
    results = search_ml_replicated(core, ctxs, so);
  } else {
    for (EvalContext* ctx : ctxs) {
      Engine view(core, *ctx);
      results.push_back(search_ml(view, so));
    }
  }
  out.seconds = timer.seconds();
  std::uint64_t candidates = 0;
  for (const SearchResult& r : results) {
    candidates += r.candidates_scored;
    out.lnls.push_back(r.final_lnl);
  }
  for (EvalContext* ctx : ctxs) out.trees.push_back(write_newick(ctx->tree()));
  out.candidates_per_sec =
      out.seconds > 0 ? static_cast<double>(candidates) / out.seconds : 0.0;
  out.syncs = core.team_stats().sync_count;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_search.json";
  int rep_searches = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--replicated") == 0 && i + 1 < argc)
      rep_searches = std::atoi(argv[i + 1]);
  }
  if (const char* s = std::getenv("PLK_BENCH_REPSEARCH"))
    rep_searches = std::atoi(s);

  const double scale = bench::scale_from_env(1.0);
  int radius = 3, rounds = 2;
  if (const char* s = std::getenv("PLK_BENCH_RADIUS")) radius = std::atoi(s);
  if (const char* s = std::getenv("PLK_BENCH_ROUNDS")) rounds = std::atoi(s);
  std::vector<int> threads_list = {1, 4, 8};
  if (std::getenv("PLK_BENCH_THREADS")) threads_list = bench::threads_from_env();

  // The skewed mixed multigene scenario (cf. bench_balance): short DNA and
  // protein genes whose per-pattern cost varies ~25x across partitions.
  const int taxa = std::max(8, static_cast<int>(12 * scale));
  const int dna = std::max(2, static_cast<int>(6 * scale));
  const int prot = std::max(1, static_cast<int>(2 * scale));
  Dataset data = make_mixed_multigene(taxa, dna, prot, 30, 120, 20260730);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  bench::print_dataset_info(data, scale);
  std::printf("SPR radius %d, %d round(s), threads:", radius, rounds);
  for (int t : threads_list) std::printf(" %d", t);
  std::printf("\n\n");

  Rng rng(99);
  const Tree start = random_tree(default_labels(taxa), rng);

  bench::JsonArray rows;
  double batched_speedup_max_t = 0.0, spec_speedup_max_t = 0.0;
  int max_t = 0;
  bool ok = true;

  std::printf("%-3s %-11s %10s %16s %10s %9s\n", "T", "scorer", "seconds",
              "candidates/sec", "syncs", "accepted");
  for (int t : threads_list) {
    const SearchRun seq =
        run_search(comp, start, t, Scorer::kSequential, radius, rounds);
    const SearchRun batched =
        run_search(comp, start, t, Scorer::kBatched, radius, rounds);
    const SearchRun spec =
        run_search(comp, start, t, Scorer::kSpeculative, radius, rounds);

    for (const SearchRun* run : {&batched, &spec}) {
      const double lnl_diff = std::abs(run->lnl - seq.lnl);
      const bool same_moves = run->tree == seq.tree &&
                              run->accepted == seq.accepted &&
                              run->candidates == seq.candidates;
      if (lnl_diff > 1e-10 * std::abs(seq.lnl) || !same_moves) {
        std::fprintf(stderr,
                     "FAIL at T=%d: %s and sequential searches diverge "
                     "(|dlnL| = %.3g, same_moves = %d)\n",
                     t, run == &batched ? "batched" : "speculative", lnl_diff,
                     same_moves ? 1 : 0);
        ok = false;
      }
    }

    const double batched_speedup =
        seq.candidates_per_sec > 0
            ? batched.candidates_per_sec / seq.candidates_per_sec
            : 0.0;
    const double spec_speedup =
        batched.candidates_per_sec > 0
            ? spec.candidates_per_sec / batched.candidates_per_sec
            : 0.0;
    if (t >= max_t) {
      max_t = t;
      batched_speedup_max_t = batched_speedup;
      spec_speedup_max_t = spec_speedup;
    }

    std::printf("%-3d %-11s %10.3f %16.1f %10llu %9d\n", t, "sequential",
                seq.seconds, seq.candidates_per_sec,
                (unsigned long long)seq.syncs, seq.accepted);
    std::printf("%-3d %-11s %10.3f %16.1f %10llu %9d   (%.2fx seq, %llu "
                "waves)\n",
                t, "batched", batched.seconds, batched.candidates_per_sec,
                (unsigned long long)batched.syncs, batched.accepted,
                batched_speedup, (unsigned long long)batched.batch.waves);
    std::printf("%-3d %-11s %10.3f %16.1f %10llu %9d   (%.2fx batched, %llu "
                "waves, %llu cross-group, %llu rescored, peak %zu slots)\n",
                t, "speculative", spec.seconds, spec.candidates_per_sec,
                (unsigned long long)spec.syncs, spec.accepted, spec_speedup,
                (unsigned long long)spec.batch.waves,
                (unsigned long long)spec.batch.cross_group_waves,
                (unsigned long long)spec.batch.rescored_candidates,
                spec.batch.pool_slots_peak);

    bench::JsonObject row;
    row.add("threads", t);
    row.add("seq_seconds", seq.seconds);
    row.add("batch_seconds", batched.seconds);
    row.add("spec_seconds", spec.seconds);
    row.add("candidates", static_cast<long long>(seq.candidates));
    row.add("seq_candidates_per_sec", seq.candidates_per_sec);
    row.add("batch_candidates_per_sec", batched.candidates_per_sec);
    row.add("spec_candidates_per_sec", spec.candidates_per_sec);
    row.add("speedup", batched_speedup);
    row.add("spec_speedup_vs_batched", spec_speedup);
    row.add("seq_syncs", static_cast<long long>(seq.syncs));
    row.add("batch_syncs", static_cast<long long>(batched.syncs));
    row.add("spec_syncs", static_cast<long long>(spec.syncs));
    row.add("batch_requests", static_cast<long long>(batched.requests));
    row.add("batch_commands", static_cast<long long>(batched.commands));
    row.add("batch_waves", static_cast<long long>(batched.batch.waves));
    row.add("batch_groups", static_cast<long long>(batched.batch.groups));
    row.add("spec_waves", static_cast<long long>(spec.batch.waves));
    row.add("spec_cross_group_waves",
            static_cast<long long>(spec.batch.cross_group_waves));
    row.add("spec_rescored",
            static_cast<long long>(spec.batch.rescored_candidates));
    row.add("spec_conflict_groups",
            static_cast<long long>(spec.batch.conflict_groups));
    row.add("spec_coarse_commands", static_cast<long long>(spec.coarse));
    row.add("pool_slots_peak",
            static_cast<long long>(spec.batch.pool_slots_peak));
    row.add("accepted_moves", seq.accepted);
    row.add("max_abs_lnl_diff",
            std::max(std::abs(batched.lnl - seq.lnl),
                     std::abs(spec.lnl - seq.lnl)));
    row.add("identical_moves",
            (batched.tree == seq.tree && spec.tree == seq.tree) ? 1 : 0);
    rows.add_raw(row.render(2));
  }

  const int host_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  bench::JsonObject doc;
  doc.add("bench", "search");
  doc.add("dataset", data.name);
  doc.add("scale", scale);
  doc.add("spr_radius", radius);
  doc.add("rounds", rounds);
  doc.add("host_cores", host_cores);
  doc.add_raw("runs", rows.render(0));
  doc.add("speedup_at_max_threads", batched_speedup_max_t);
  doc.add("spec_speedup_vs_batched_at_max_threads", spec_speedup_max_t);

  // --- replicated lockstep searches ----------------------------------------
  if (rep_searches > 0) {
    const int t = threads_list.back();
    std::printf("\nreplicated searches: %d bootstrap replicates at %d "
                "threads\n",
                rep_searches, t);
    const RepRun serial = run_replicated(comp, start, t, rep_searches, radius,
                                         rounds, /*lockstep=*/false);
    const RepRun lockstep = run_replicated(comp, start, t, rep_searches,
                                           radius, rounds, /*lockstep=*/true);
    bool rep_same = serial.lnls.size() == lockstep.lnls.size();
    double rep_lnl_diff = 0.0;
    for (std::size_t r = 0; rep_same && r < serial.lnls.size(); ++r) {
      rep_lnl_diff = std::max(
          rep_lnl_diff, std::abs(serial.lnls[r] - lockstep.lnls[r]));
      rep_same = serial.trees[r] == lockstep.trees[r];
    }
    if (!rep_same || rep_lnl_diff > 0.0) {
      std::fprintf(stderr,
                   "FAIL: lockstep replicate searches diverge from serial "
                   "(|dlnL| = %.3g, same_trees = %d)\n",
                   rep_lnl_diff, rep_same ? 1 : 0);
      ok = false;
    }
    const double rep_speedup = serial.candidates_per_sec > 0
                                   ? lockstep.candidates_per_sec /
                                         serial.candidates_per_sec
                                   : 0.0;
    std::printf("  serial   %10.3fs %16.1f cand/s %10llu syncs\n",
                serial.seconds, serial.candidates_per_sec,
                (unsigned long long)serial.syncs);
    std::printf("  lockstep %10.3fs %16.1f cand/s %10llu syncs  (%.2fx)\n",
                lockstep.seconds, lockstep.candidates_per_sec,
                (unsigned long long)lockstep.syncs, rep_speedup);

    bench::JsonObject rep;
    rep.add("replicates", rep_searches);
    rep.add("threads", t);
    rep.add("serial_seconds", serial.seconds);
    rep.add("lockstep_seconds", lockstep.seconds);
    rep.add("serial_candidates_per_sec", serial.candidates_per_sec);
    rep.add("lockstep_candidates_per_sec", lockstep.candidates_per_sec);
    rep.add("serial_syncs", static_cast<long long>(serial.syncs));
    rep.add("lockstep_syncs", static_cast<long long>(lockstep.syncs));
    rep.add("speedup", rep_speedup);
    rep.add("max_abs_lnl_diff", rep_lnl_diff);
    rep.add("identical_trees", rep_same ? 1 : 0);
    doc.add_raw("replicated", rep.render(0));
  }

  bench::write_json(json_path, doc);
  std::printf("\nbatched vs sequential at %d threads: %.2fx; speculative vs "
              "batched: %.2fx%s\nwrote %s\n",
              max_t, batched_speedup_max_t, spec_speedup_max_t,
              max_t > host_cores
                  ? "  [threads > host cores: ratios reflect synchronization "
                    "cost removed, not parallel scaling]"
                  : "",
              json_path.c_str());
  return ok ? 0 : 1;
}
