// E12: batched lockstep SPR candidate scoring — search throughput.
//
// PR 3's batched submit()/wait() front door amortized synchronization across
// bootstrap replicates; this bench measures the same idea applied INSIDE the
// search, where the real time goes: the lazy-SPR hill climb's candidate
// scoring. The sequential scorer pays ~15-20 synchronized parallel regions
// per candidate (root relocation, per-edge sumtables, Newton-Raphson rounds,
// the evaluation), each with only a few edges' work; the batched
// CandidateScorer (search/candidate_batch.hpp) scores a prune edge's whole
// candidate set in lockstep waves, so a wave of K candidates costs roughly
// the synchronization of one.
//
// The same search runs both ways on the skewed mixed DNA+protein multigene
// scenario (the work-scheduling benches' hard case) at each thread count,
// and must produce the IDENTICAL accepted-move sequence and final lnL
// (<= 1e-10; the bench fails loudly otherwise). Reported: end-to-end search
// wall time, candidates scored per second, sync counts, and the batched/
// sequential throughput ratio.
//
// The JSON records `host_cores`: on hosts with fewer cores than the thread
// count the ratio quantifies how much synchronization (barrier spin under
// oversubscription) the batching removes, not parallel scaling — read
// entries with threads > host_cores accordingly.
//
// Env: PLK_BENCH_THREADS (default "1,4,8"), PLK_BENCH_SCALE (default 1),
// PLK_BENCH_RADIUS (default 3), PLK_BENCH_ROUNDS (default 1).
#include <cmath>
#include <cstring>
#include <thread>

#include "common.hpp"
#include "search/candidate_batch.hpp"

namespace {

using namespace plk;

struct SearchRun {
  double seconds = 0.0;
  double lnl = 0.0;
  std::uint64_t candidates = 0;
  double candidates_per_sec = 0.0;
  std::uint64_t syncs = 0;
  std::uint64_t commands = 0;
  std::uint64_t requests = 0;
  int accepted = 0;
  std::string tree;
  CandidateBatchStats batch;
};

std::vector<PartitionModel> make_models(const CompressedAlignment& comp) {
  std::vector<PartitionModel> models;
  Rng rng(7);
  for (const auto& part : comp.partitions) {
    SubstModel m = part.type == DataType::kDna
                       ? make_model("GTR", empirical_frequencies(part))
                       : make_model("WAG");
    models.emplace_back(std::move(m), rng.uniform(0.5, 1.2), 4);
  }
  return models;
}

SearchRun run_search(const CompressedAlignment& comp, const Tree& start,
                     int threads, bool batched, int radius, int rounds) {
  EngineOptions eo;
  eo.threads = threads;
  eo.unlinked_branch_lengths = true;
  Engine eng(comp, start, make_models(comp), eo);

  SearchOptions so;
  so.spr_radius = radius;
  so.max_rounds = rounds;
  so.optimize_model = false;  // isolate the candidate-scoring hot path
  so.batched_candidates = batched;

  SearchRun out;
  Timer timer;
  const SearchResult res = search_ml(eng, so);
  out.seconds = timer.seconds();
  out.lnl = res.final_lnl;
  out.candidates = res.candidates_scored;
  out.candidates_per_sec =
      out.seconds > 0 ? static_cast<double>(res.candidates_scored) / out.seconds
                      : 0.0;
  out.syncs = eng.team_stats().sync_count;
  out.commands = eng.stats().commands;
  out.requests = eng.stats().requests;
  out.accepted = res.accepted_moves;
  out.batch = res.batch;
  eng.sync_tree_lengths();
  out.tree = write_newick(eng.tree());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_search.json";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  const double scale = bench::scale_from_env(1.0);
  int radius = 3, rounds = 1;
  if (const char* s = std::getenv("PLK_BENCH_RADIUS")) radius = std::atoi(s);
  if (const char* s = std::getenv("PLK_BENCH_ROUNDS")) rounds = std::atoi(s);
  std::vector<int> threads_list = {1, 4, 8};
  if (std::getenv("PLK_BENCH_THREADS")) threads_list = bench::threads_from_env();

  // The skewed mixed multigene scenario (cf. bench_balance): short DNA and
  // protein genes whose per-pattern cost varies ~25x across partitions.
  const int taxa = std::max(8, static_cast<int>(12 * scale));
  const int dna = std::max(2, static_cast<int>(6 * scale));
  const int prot = std::max(1, static_cast<int>(2 * scale));
  Dataset data = make_mixed_multigene(taxa, dna, prot, 30, 120, 20260730);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  bench::print_dataset_info(data, scale);
  std::printf("SPR radius %d, %d round(s), threads:", radius, rounds);
  for (int t : threads_list) std::printf(" %d", t);
  std::printf("\n\n");

  Rng rng(99);
  const Tree start = random_tree(default_labels(taxa), rng);

  bench::JsonArray rows;
  double speedup_max_t = 0.0;
  int max_t = 0;
  bool ok = true;

  std::printf("%-3s %-11s %10s %16s %10s %9s\n", "T", "scorer", "seconds",
              "candidates/sec", "syncs", "accepted");
  for (int t : threads_list) {
    const SearchRun batched =
        run_search(comp, start, t, /*batched=*/true, radius, rounds);
    const SearchRun seq =
        run_search(comp, start, t, /*batched=*/false, radius, rounds);

    const double lnl_diff = std::abs(batched.lnl - seq.lnl);
    const bool same_moves = batched.tree == seq.tree &&
                            batched.accepted == seq.accepted &&
                            batched.candidates == seq.candidates;
    if (lnl_diff > 1e-10 * std::abs(seq.lnl) || !same_moves) {
      std::fprintf(stderr,
                   "FAIL at T=%d: batched and sequential searches diverge "
                   "(|dlnL| = %.3g, same_moves = %d)\n",
                   t, lnl_diff, same_moves ? 1 : 0);
      ok = false;
    }

    const double speedup =
        seq.candidates_per_sec > 0
            ? batched.candidates_per_sec / seq.candidates_per_sec
            : 0.0;
    if (t >= max_t) {
      max_t = t;
      speedup_max_t = speedup;
    }

    std::printf("%-3d %-11s %10.3f %16.1f %10llu %9d\n", t, "sequential",
                seq.seconds, seq.candidates_per_sec,
                (unsigned long long)seq.syncs, seq.accepted);
    std::printf("%-3d %-11s %10.3f %16.1f %10llu %9d   (%.2fx, %llu waves, "
                "peak %zu pool slots)\n",
                t, "batched", batched.seconds, batched.candidates_per_sec,
                (unsigned long long)batched.syncs, batched.accepted, speedup,
                (unsigned long long)batched.batch.waves,
                batched.batch.pool_slots_peak);

    bench::JsonObject row;
    row.add("threads", t);
    row.add("seq_seconds", seq.seconds);
    row.add("batch_seconds", batched.seconds);
    row.add("candidates", static_cast<long long>(seq.candidates));
    row.add("seq_candidates_per_sec", seq.candidates_per_sec);
    row.add("batch_candidates_per_sec", batched.candidates_per_sec);
    row.add("speedup", speedup);
    row.add("seq_syncs", static_cast<long long>(seq.syncs));
    row.add("batch_syncs", static_cast<long long>(batched.syncs));
    row.add("batch_requests", static_cast<long long>(batched.requests));
    row.add("batch_commands", static_cast<long long>(batched.commands));
    row.add("batch_waves", static_cast<long long>(batched.batch.waves));
    row.add("batch_groups", static_cast<long long>(batched.batch.groups));
    row.add("pool_slots_peak",
            static_cast<long long>(batched.batch.pool_slots_peak));
    row.add("accepted_moves", seq.accepted);
    row.add("max_abs_lnl_diff", lnl_diff);
    row.add("identical_moves", same_moves ? 1 : 0);
    rows.add_raw(row.render(2));
  }

  const int host_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  bench::JsonObject doc;
  doc.add("bench", "search");
  doc.add("dataset", data.name);
  doc.add("scale", scale);
  doc.add("spr_radius", radius);
  doc.add("rounds", rounds);
  doc.add("host_cores", host_cores);
  doc.add_raw("runs", rows.render(0));
  doc.add("speedup_at_max_threads", speedup_max_t);
  bench::write_json(json_path, doc);
  std::printf("\nspeedup at %d threads: %.2fx (candidates/sec, batched vs "
              "sequential)%s\nwrote %s\n",
              max_t, speedup_max_t,
              max_t > host_cores
                  ? "  [threads > host cores: ratio reflects synchronization "
                    "cost removed, not parallel scaling]"
                  : "",
              json_path.c_str());
  return ok ? 0 : 1;
}
