// Shared harness for the paper-figure benchmarks (E1-E7, E9).
//
// Each bench binary reproduces one table/figure of Stamatakis & Ott 2009:
// it builds the corresponding dataset (scaled by PLK_BENCH_SCALE, default a
// laptop-budget fraction of the paper's dimensions; set PLK_BENCH_SCALE=1
// for the published size), runs the paper's analysis configurations
// (sequential / oldPAR / newPAR at the thread counts in PLK_BENCH_THREADS,
// default "8,16" as in the paper), and prints the same rows the figure
// plots, plus the synchronization/imbalance accounting that explains them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "plk.hpp"

namespace plk::bench {

// --- JSON emission (perf-trajectory records: BENCH_*.json) -------------------

/// Minimal ordered JSON builder — enough for flat benchmark records with
/// nested arrays/objects, no external dependency. Values are pre-rendered
/// JSON fragments; use the typed add() overloads for leaves.
class JsonObject {
 public:
  void add(const std::string& key, double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    add_raw(key, buf);
  }
  void add(const std::string& key, long long v) {
    add_raw(key, std::to_string(v));
  }
  void add(const std::string& key, int v) { add(key, (long long)v); }
  void add(const std::string& key, const std::string& v) {
    add_raw(key, quote(v));
  }
  void add(const std::string& key, const char* v) { add(key, std::string(v)); }
  /// `rendered` must already be valid JSON (nested object/array).
  void add_raw(const std::string& key, const std::string& rendered) {
    fields_.emplace_back(key, rendered);
  }

  std::string render(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += i ? ",\n" : "\n";
      out += pad + quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += "\n" + std::string(static_cast<std::size_t>(indent), ' ') + "}";
    return out;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Array of pre-rendered JSON fragments.
class JsonArray {
 public:
  void add_raw(const std::string& rendered) { items_.push_back(rendered); }
  std::string render(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::string out = "[";
    for (std::size_t i = 0; i < items_.size(); ++i) {
      out += i ? ",\n" : "\n";
      out += pad + items_[i];
    }
    out += "\n" + std::string(static_cast<std::size_t>(indent), ' ') + "]";
    return out;
  }

 private:
  std::vector<std::string> items_;
};

/// Write a rendered JSON document to `path` (with trailing newline).
inline void write_json(const std::string& path, const JsonObject& doc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << doc.render() << "\n";
}

/// Scale factor for dataset dimensions (1.0 == the paper's size).
inline double scale_from_env(double fallback) {
  if (const char* s = std::getenv("PLK_BENCH_SCALE")) return std::atof(s);
  return fallback;
}

/// Thread counts to benchmark (the paper uses 8 and 16 plus sequential).
inline std::vector<int> threads_from_env() {
  std::vector<int> out;
  std::string spec = "8,16";
  if (const char* s = std::getenv("PLK_BENCH_THREADS")) spec = s;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    out.push_back(std::atoi(spec.substr(pos, comma - pos).c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// One benchmark run's outcome.
struct RunResult {
  std::string label;
  double seconds = 0.0;
  double lnl = 0.0;
  std::uint64_t syncs = 0;
  double imbalance_seconds = 0.0;
  double critical_path_seconds = 0.0;
};

/// What kind of analysis a configuration runs.
enum class RunKind { kModelOpt, kSearch };

/// Run one configuration over a dataset and collect timing + counters.
inline RunResult run_config(const Dataset& data, const std::string& label,
                            Strategy strategy, int threads,
                            bool per_partition_bl, RunKind kind,
                            int spr_radius = 3, int rounds = 1) {
  AnalysisOptions opts;
  opts.threads = threads;
  opts.strategy = strategy;
  opts.per_partition_branch_lengths = per_partition_bl;
  // The paper's simulated alignments consist entirely of unique columns
  // (m == m'); skip compression to preserve that property.
  opts.compress_patterns = false;
  opts.search.spr_radius = spr_radius;
  opts.search.max_rounds = rounds;
  opts.search.epsilon = 1e9;  // fixed round count for comparable runs
  Analysis analysis(data.alignment, data.scheme, opts, data.true_tree);

  RunResult res;
  AnalysisResult ar = kind == RunKind::kModelOpt
                          ? analysis.optimize_parameters()
                          : analysis.run_search();
  res.label = label;
  res.seconds = ar.seconds;
  res.lnl = ar.lnl;
  res.syncs = ar.team_stats.sync_count;
  res.imbalance_seconds = ar.team_stats.imbalance_seconds;
  res.critical_path_seconds = ar.team_stats.critical_path_seconds;
  return res;
}

/// Print the standard result table (mirrors the figures' bar groups).
inline void print_table(const std::string& title,
                        const std::vector<RunResult>& rows,
                        double sequential_seconds) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-14s %10s %9s %12s %12s %12s\n", "config", "runtime[s]",
              "speedup", "syncs", "imbalance[s]", "lnL");
  for (const auto& r : rows) {
    std::printf("%-14s %10.3f %9.2f %12llu %12.3f %12.1f\n", r.label.c_str(),
                r.seconds, sequential_seconds / r.seconds,
                static_cast<unsigned long long>(r.syncs),
                r.imbalance_seconds, r.lnl);
  }
}

/// Banner with dataset shape, so results are interpretable standalone.
inline void print_dataset_info(const Dataset& d, double scale) {
  std::size_t mn = static_cast<std::size_t>(-1), mx = 0;
  for (const auto& p : d.scheme) {
    mn = std::min(mn, p.site_count());
    mx = std::max(mx, p.site_count());
  }
  std::printf(
      "dataset %s (scale %.2f): %zu taxa, %zu sites, %zu partitions "
      "(len %zu-%zu)\n",
      d.name.c_str(), scale, d.alignment.taxon_count(),
      d.alignment.site_count(), d.scheme.size(), mn, mx);
}

}  // namespace plk::bench
