// E12: streaming placement throughput — the likelihood-as-a-service bench.
//
// Measures the PlacementEngine (server/placement.hpp) on a simulated
// placement workload: a reference tree plus a stream of noisy-copy queries
// with known true insertion edges.
//
//   sequential   one query at a time, ONE candidate per wave — the
//                reference scoring path every placement must reproduce;
//   batched      all queries submitted up front, lanes merging their
//                candidate scoring into shared lockstep waves (the
//                server's steady-state shape); per-query latency is
//                submit-to-result under that full load.
//
// The hard gate: every batched placement's (edge, lnL, pendant) must equal
// the sequential scoring of the same query BIT FOR BIT — wave composition
// must not leak into results. Recorded as bit_identical in
// BENCH_place.json and enforced by tools/bench_check.py.
//
// Like the other benches, absolute seconds depend on the host;
// host_cores is recorded so the gate can warn when a baseline from a
// different machine class is being compared against.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>

#include "common.hpp"

namespace {

using namespace plk;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  const std::size_t k = std::min(
      v.size() - 1,
      static_cast<std::size_t>(p / 100.0 * static_cast<double>(v.size() - 1) +
                               0.5));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plk::bench;

  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  const double scale = scale_from_env(1.0);
  const int threads = [] {
    if (const char* s = std::getenv("PLK_PLACE_THREADS")) return std::atoi(s);
    return 2;
  }();
  const int taxa = std::max(8, static_cast<int>(16 * scale));
  const std::size_t sites =
      std::max<std::size_t>(400, static_cast<std::size_t>(2000 * scale));
  const int queries = std::max(16, static_cast<int>(96 * scale));
  const int lanes = 8;

  const HostTopology topo = HostTopology::detect();
  std::printf("host: %d logical cpus; threads %d, lanes %d\n",
              topo.logical_cpus, threads, lanes);

  const PlacementScenario sc =
      make_placement_scenario(taxa, sites, queries, 20260807);
  std::printf("reference %s, %d queries\n", sc.reference.name.c_str(),
              queries);

  PlacementOptions po;
  po.lanes = lanes;
  po.max_candidates = 8;
  EngineOptions eo;
  eo.threads = threads;
  eo.unlinked_branch_lengths = true;
  PlacementEngine eng(sc.reference.alignment, sc.reference.scheme,
                      Tree(sc.reference.true_tree), po, eo);
  const double ref_lnl = eng.optimize_reference();
  eng.start_service();
  std::printf("reference lnL %.4f\n", ref_lnl);

  // --- sequential reference pass -------------------------------------------
  std::vector<PlacementResult> seq(static_cast<std::size_t>(queries));
  // Warm-up (slot tip tables, parent CLVs) outside the timed window.
  eng.place_sequential(sc.queries[0].data);
  Timer seq_timer;
  for (int i = 0; i < queries; ++i)
    seq[static_cast<std::size_t>(i)] =
        eng.place_sequential(sc.queries[static_cast<std::size_t>(i)].data);
  const double seq_seconds = seq_timer.seconds();

  // --- batched streaming pass ----------------------------------------------
  std::map<std::uint64_t, std::size_t> by_ticket;
  std::vector<std::chrono::steady_clock::time_point> submit_at(
      static_cast<std::size_t>(queries));
  std::vector<double> latency_ms(static_cast<std::size_t>(queries), 0.0);
  std::vector<PlacementResult> bat(static_cast<std::size_t>(queries));

  Timer bat_timer;
  for (int i = 0; i < queries; ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    by_ticket[eng.submit(sc.queries[k].data)] = k;
    submit_at[k] = std::chrono::steady_clock::now();
  }
  std::size_t collected = 0;
  while (collected < static_cast<std::size_t>(queries)) {
    eng.pump();
    const auto now = std::chrono::steady_clock::now();
    for (auto& [ticket, result] : eng.drain_ready()) {
      const std::size_t k = by_ticket.at(ticket);
      bat[k] = std::move(result);
      latency_ms[k] =
          std::chrono::duration<double, std::milli>(now - submit_at[k])
              .count();
      ++collected;
    }
  }
  const double bat_seconds = bat_timer.seconds();

  // --- bit-identity hard gate ----------------------------------------------
  bool bit_identical = true;
  for (int i = 0; i < queries; ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (!bat[k].ok || !seq[k].ok || bat[k].edge != seq[k].edge ||
        bat[k].lnl != seq[k].lnl ||
        bat[k].pendant_length != seq[k].pendant_length) {
      bit_identical = false;
      std::printf("MISMATCH query %d: batched (edge %lld, lnl %.17g) vs "
                  "sequential (edge %lld, lnl %.17g)\n",
                  i, static_cast<long long>(bat[k].edge), bat[k].lnl,
                  static_cast<long long>(seq[k].edge), seq[k].lnl);
    }
  }
  std::size_t true_hits = 0;
  for (int i = 0; i < queries; ++i)
    if (bat[static_cast<std::size_t>(i)].edge ==
        sc.true_edges[static_cast<std::size_t>(i)])
      ++true_hits;

  const PlacementStats& ps = eng.stats();
  const double seq_per_sec = static_cast<double>(queries) / seq_seconds;
  const double bat_per_sec = static_cast<double>(queries) / bat_seconds;
  const double occupancy =
      ps.waves == 0 ? 0.0
                    : static_cast<double>(ps.wave_lanes) /
                          (static_cast<double>(ps.waves) * lanes);
  const double p50 = percentile(latency_ms, 50);
  const double p99 = percentile(latency_ms, 99);

  std::printf("\n%-12s %12s %14s\n", "mode", "runtime[s]", "placements/s");
  std::printf("%-12s %12.3f %14.1f\n", "sequential", seq_seconds,
              seq_per_sec);
  std::printf("%-12s %12.3f %14.1f   (speedup %.2f)\n", "batched",
              bat_seconds, bat_per_sec, bat_per_sec / seq_per_sec);
  std::printf("latency under full load: p50 %.2f ms, p99 %.2f ms\n", p50,
              p99);
  std::printf("waves: %llu (%llu items, occupancy %.2f), true-edge recovery "
              "%zu/%d\n",
              static_cast<unsigned long long>(ps.waves),
              static_cast<unsigned long long>(ps.wave_items), occupancy,
              true_hits, queries);
  std::printf("bit-identity batched vs sequential: %s\n",
              bit_identical ? "OK" : "FAILED");

  if (!json_path.empty()) {
    JsonObject doc;
    doc.add("bench", "place");
    doc.add("dataset", sc.reference.name);
    doc.add("taxa", taxa);
    doc.add("sites", static_cast<long long>(sites));
    doc.add("queries", queries);
    doc.add("threads", threads);
    doc.add("lanes", lanes);
    doc.add("candidates", po.max_candidates);
    doc.add("host_cores", topo.logical_cpus);
    doc.add("bit_identical", bit_identical ? "true" : "false");
    doc.add("true_edge_recovery",
            static_cast<double>(true_hits) / static_cast<double>(queries));
    JsonObject s;
    s.add("seconds", seq_seconds);
    s.add("placements_per_sec", seq_per_sec);
    doc.add_raw("sequential", s.render(2));
    JsonObject b;
    b.add("seconds", bat_seconds);
    b.add("placements_per_sec", bat_per_sec);
    b.add("speedup", bat_per_sec / seq_per_sec);
    b.add("latency_p50_ms", p50);
    b.add("latency_p99_ms", p99);
    b.add("waves", static_cast<long long>(ps.waves));
    b.add("wave_items", static_cast<long long>(ps.wave_items));
    b.add("wave_occupancy", occupancy);
    doc.add_raw("batched", b.render(2));
    write_json(json_path, doc);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return bit_identical ? 0 : 1;
}
