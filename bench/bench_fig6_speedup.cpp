// E4 / Figure 6: speedup curves on d50_50000 p1000 (the paper's Intel
// Nehalem plot) at 2, 4 and 8 threads for three configurations:
//   * Unpartitioned  - one partition spanning the whole alignment
//   * New            - newPAR, 50 partitions, per-partition branch lengths
//   * Old            - oldPAR, same
// Paper shape: the unpartitioned analysis scales best; newPAR on the
// partitioned analysis comes close to it despite the load imbalance; oldPAR
// trails far behind (speedup ~1-2 at 8 threads).
#include "common.hpp"

int main() {
  using namespace plk;
  using namespace plk::bench;

  const double scale = scale_from_env(0.3);
  Dataset part = make_paper_d50_50000(scale, 4);
  Dataset unpart = make_unpartitioned_dna(
      static_cast<int>(part.alignment.taxon_count()),
      part.alignment.site_count(), 4);
  print_dataset_info(part, scale);

  // Per-configuration sequential baselines (speedup is relative to each
  // configuration's own 1-thread run, as in the paper's plot).
  const RunResult seq_unpart = run_config(unpart, "unpart seq",
                                          Strategy::kNewPar, 1, true,
                                          RunKind::kSearch);
  const RunResult seq_part = run_config(part, "part seq", Strategy::kNewPar,
                                        1, true, RunKind::kSearch);

  std::printf("\nFigure 6: speedup vs threads (d50_50000 p1000)\n");
  std::printf("%8s %14s %10s %10s\n", "threads", "Unpartitioned", "New",
              "Old");
  std::vector<int> threads{2, 4, 8};
  if (const char* s = std::getenv("PLK_BENCH_THREADS")) {
    threads.clear();
    std::string spec = s;
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      threads.push_back(std::atoi(spec.substr(pos, comma - pos).c_str()));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  for (int t : threads) {
    const RunResult u = run_config(unpart, "u", Strategy::kNewPar, t, true,
                                   RunKind::kSearch);
    const RunResult n = run_config(part, "n", Strategy::kNewPar, t, true,
                                   RunKind::kSearch);
    const RunResult o = run_config(part, "o", Strategy::kOldPar, t, true,
                                   RunKind::kSearch);
    std::printf("%8d %14.2f %10.2f %10.2f\n", t,
                seq_unpart.seconds / u.seconds, seq_part.seconds / n.seconds,
                seq_part.seconds / o.seconds);
  }
  std::printf(
      "\n(expected shape: Unpartitioned >= New >> Old, Old ~flat with "
      "threads)\n");
  return 0;
}
