// E10: cost-weighted work scheduling — load balance across strategies.
//
// The paper's imbalance analysis stops at counting synchronization events;
// this bench measures what the explicit scheduling layer
// (parallel/schedule.hpp) does about the *within-command* imbalance on a
// deliberately skewed scenario: many short partitions, mixed DNA (4-state)
// and protein (20-state), varying gamma-category counts. Under the
// historical cyclic split every partition hands its remainder patterns to
// the low thread ids, and a 20-state remainder pattern costs ~25x a DNA one,
// so thread 0 systematically runs long.
//
// For each strategy the same fixed workload runs (full-traversal
// evaluations plus Newton-Raphson derivative passes), with per-thread CPU
//-time instrumentation so the imbalance accounting stays meaningful even on
// an oversubscribed machine. Output: a table plus BENCH_balance.json with
// TeamStats::imbalance_seconds, parallel efficiency and the cost model's
// predicted imbalance per strategy. lnL must agree to 1e-12 across all
// strategies (the assignment must never change the mathematics).
#include <cmath>
#include <cstring>

#include "common.hpp"

namespace {

using namespace plk;

struct BalanceResult {
  std::string strategy;
  double seconds = 0.0;
  double lnl = 0.0;
  double imbalance_seconds = 0.0;
  double critical_path_seconds = 0.0;
  double total_work_seconds = 0.0;
  double parallel_efficiency = 0.0;
  double modeled_imbalance = 0.0;
  std::uint64_t syncs = 0;
};

BalanceResult measure(const Dataset& data, const CompressedAlignment& comp,
                      SchedulingStrategy strategy, int threads, int reps,
                      int nr_reps) {
  std::vector<PartitionModel> models;
  Rng rng(7);
  for (const auto& part : comp.partitions) {
    SubstModel m = part.type == DataType::kDna
                       ? make_model("GTR", empirical_frequencies(part))
                       : make_model("WAG");
    // Deterministic per-partition category counts 1-4: cost skew beyond the
    // state count alone.
    models.emplace_back(std::move(m), rng.uniform(0.5, 1.2),
                        1 + static_cast<int>(models.size()) % 4);
  }
  EngineOptions eo;
  eo.threads = threads;
  eo.unlinked_branch_lengths = true;
  eo.schedule = strategy;
  eo.instrument = true;
  eo.instrument_cpu_time = true;  // scheduling-independent imbalance numbers
  Engine eng(comp, data.true_tree, std::move(models), eo);

  if (strategy == SchedulingStrategy::kMeasured) eng.calibrate_schedule(0);

  std::vector<int> all(static_cast<std::size_t>(eng.partition_count()));
  for (int p = 0; p < eng.partition_count(); ++p)
    all[static_cast<std::size_t>(p)] = p;

  eng.loglikelihood(0);  // warm CLVs, tip tables, page cache
  eng.reset_stats();

  BalanceResult res;
  res.strategy = std::string(to_string(strategy));
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    eng.invalidate_all();  // force a full traversal command
    res.lnl = eng.loglikelihood(0);
  }
  eng.prepare_root(0);
  eng.compute_sumtable(all);
  std::vector<double> lens(all.size()), d1(all.size()), d2(all.size());
  for (int r = 0; r < nr_reps; ++r) {
    for (std::size_t k = 0; k < all.size(); ++k)
      lens[k] = 0.05 + 0.01 * static_cast<double>((r + static_cast<int>(k)) % 7);
    eng.nr_derivatives(all, lens, d1, d2);
  }
  res.seconds = timer.seconds();

  const TeamStats& ts = eng.team_stats();
  res.imbalance_seconds = ts.imbalance_seconds;
  res.critical_path_seconds = ts.critical_path_seconds;
  res.total_work_seconds = ts.total_work_seconds;
  res.parallel_efficiency =
      ts.critical_path_seconds > 0.0
          ? ts.total_work_seconds /
                (static_cast<double>(threads) * ts.critical_path_seconds)
          : 1.0;
  res.syncs = ts.sync_count;
  res.modeled_imbalance = eng.schedule().modeled_imbalance();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plk;
  using namespace plk::bench;

  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  const double scale = scale_from_env(1.0);
  const int threads = [] {
    if (const char* s = std::getenv("PLK_BALANCE_THREADS")) return std::atoi(s);
    return 8;
  }();
  const int reps = std::max(1, static_cast<int>(40 * scale));
  const int nr_reps = std::max(1, static_cast<int>(60 * scale));

  // The skewed scenario: 28 short mixed partitions on 12 taxa. Pattern
  // counts (20-90) are small against T=8, so cyclic remainder skew is a
  // significant fraction of each command.
  Dataset data = make_mixed_multigene(12, 16, 12, 20, 90, 20260730);
  const CompressedAlignment comp =
      CompressedAlignment::build(data.alignment, data.scheme, false);
  print_dataset_info(data, scale);
  std::printf("threads %d, %d evaluation reps + %d NR reps per strategy\n\n",
              threads, reps, nr_reps);

  const SchedulingStrategy strategies[] = {
      SchedulingStrategy::kCyclic, SchedulingStrategy::kBlock,
      SchedulingStrategy::kWeighted, SchedulingStrategy::kLpt,
      SchedulingStrategy::kMeasured};

  std::vector<BalanceResult> rows;
  for (SchedulingStrategy s : strategies)
    rows.push_back(measure(data, comp, s, threads, reps, nr_reps));

  const BalanceResult& cyc = rows.front();
  std::printf("%-10s %10s %12s %12s %12s %10s %10s\n", "strategy",
              "runtime[s]", "imbal[s]", "critpath[s]", "totwork[s]", "par.eff",
              "model.imb");
  bool lnl_ok = true;
  for (const auto& r : rows) {
    std::printf("%-10s %10.3f %12.4f %12.4f %12.4f %10.3f %10.4f\n",
                r.strategy.c_str(), r.seconds, r.imbalance_seconds,
                r.critical_path_seconds, r.total_work_seconds,
                r.parallel_efficiency, r.modeled_imbalance);
    if (std::abs(r.lnl - cyc.lnl) > 1e-12 * std::abs(cyc.lnl)) lnl_ok = false;
  }
  std::printf("\nlnL agreement across strategies (1e-12 relative): %s\n",
              lnl_ok ? "OK" : "FAILED");
  if (!lnl_ok) return 1;

  if (!json_path.empty()) {
    JsonObject doc;
    doc.add("bench", "balance");
    doc.add("dataset", data.name);
    doc.add("taxa", static_cast<long long>(data.alignment.taxon_count()));
    doc.add("partitions", static_cast<long long>(comp.partition_count()));
    doc.add("patterns", static_cast<long long>(comp.total_patterns()));
    doc.add("threads", threads);
    doc.add("eval_reps", reps);
    doc.add("nr_reps", nr_reps);
    doc.add("instrument", "thread_cpu_time");
    doc.add("lnl_agreement_1e12", lnl_ok ? "true" : "false");
    JsonArray arr;
    for (const auto& r : rows) {
      JsonObject o;
      o.add("strategy", r.strategy);
      o.add("seconds", r.seconds);
      o.add("lnl", r.lnl);
      o.add("delta_lnl_vs_cyclic", r.lnl - cyc.lnl);
      o.add("imbalance_seconds", r.imbalance_seconds);
      o.add("critical_path_seconds", r.critical_path_seconds);
      o.add("total_work_seconds", r.total_work_seconds);
      o.add("parallel_efficiency", r.parallel_efficiency);
      o.add("modeled_imbalance", r.modeled_imbalance);
      o.add("syncs", static_cast<long long>(r.syncs));
      arr.add_raw(o.render(4));
    }
    doc.add_raw("strategies", arr.render(2));
    write_json(json_path, doc);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
