// Tests for util/: RNG determinism and distributions, aligned allocation,
// descriptive statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace plk {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double s = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  double s = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.exponential(4.0);
  EXPECT_NEAR(s / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double s = 0, s2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng rng(17);
  for (double shape : {0.5, 1.0, 2.5, 10.0}) {
    double s = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) s += rng.gamma(shape);
    EXPECT_NEAR(s / n, shape, 0.12 * shape) << "shape " << shape;
  }
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(19);
  const double w[] = {1.0, 3.0, 0.0, 6.0};
  int counts[4] = {0, 0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsZeroTotal) {
  Rng rng(1);
  const double w[] = {0.0, 0.0};
  EXPECT_THROW(rng.discrete(w), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Aligned, VectorIsAligned) {
  AlignedDoubleVec v(1000, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kVectorAlign, 0u);
}

TEST(Aligned, PaddedDoubleFillsCacheLine) {
  EXPECT_EQ(sizeof(PaddedDouble), kCacheLine);
  EXPECT_EQ(alignof(PaddedDouble), kCacheLine);
}

TEST(Stats, MeanMedianStddev) {
  const double xs[] = {1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(mean(xs), 22.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_NEAR(stddev(xs), 43.6177, 0.001);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 100.0);
}

TEST(Stats, EmptyRangesThrow) {
  std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(median(empty), std::invalid_argument);
}

TEST(Stats, MedianEvenCount) {
  const double xs[] = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

}  // namespace
}  // namespace plk
