// Locale-robustness and scale tests for the Newick reader/writer.
//
// Branch-length parsing must be locale-independent (the grammar is always
// C-locale: '.' decimal point, optional exponent) and must not copy the
// remaining input per number — std::stod via substr did both wrong:
// comma-decimal locales truncated "1.5e-3" at the '.', and each parsed
// number copied the whole tail of the string, making large-tree parsing
// O(n^2).
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <locale>
#include <string>

#include "tree/newick.hpp"
#include "tree/tree_gen.hpp"
#include "util/rng.hpp"

namespace plk {
namespace {

/// Install a comma-decimal global locale (C and, where possible, C++) and
/// restore the previous state on destruction. `ok()` reports whether one was
/// actually available on this system.
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() {
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8",
          "fr_FR", "es_ES.UTF-8", "nl_NL.UTF-8", "pt_BR.UTF-8"}) {
      if (std::setlocale(LC_ALL, name) == nullptr) continue;
      const auto* lc = std::localeconv();
      if (lc->decimal_point != nullptr && lc->decimal_point[0] == ',') {
        ok_ = true;
        try {
          std::locale::global(std::locale(name));  // streams too
        } catch (const std::runtime_error&) {
        }
        return;
      }
    }
    std::setlocale(LC_ALL, "C");
  }
  ~CommaLocaleGuard() {
    std::locale::global(std::locale::classic());
    std::setlocale(LC_ALL, "C");
  }
  bool ok() const { return ok_; }

 private:
  bool ok_ = false;
};

const char* kScientific = "((a:1.5e-3,b:2.25e+1):3.125e-2,c:0.5,d:1e-5);";

void expect_scientific_lengths(const Tree& t) {
  ASSERT_EQ(t.tip_count(), 4);
  double min_len = 1e9, max_len = 0.0, sum = 0.0;
  for (EdgeId e = 0; e < t.edge_count(); ++e) {
    min_len = std::min(min_len, t.length(e));
    max_len = std::max(max_len, t.length(e));
    sum += t.length(e);
  }
  EXPECT_DOUBLE_EQ(min_len, 1e-5);
  EXPECT_DOUBLE_EQ(max_len, 2.25e+1);
  EXPECT_DOUBLE_EQ(sum, 1.5e-3 + 2.25e+1 + 3.125e-2 + 0.5 + 1e-5);
}

TEST(NewickLocale, ScientificNotationParsesInCLocale) {
  expect_scientific_lengths(parse_newick(kScientific));
}

TEST(NewickLocale, ScientificNotationRoundTripsUnderCommaDecimalLocale) {
  CommaLocaleGuard guard;
  if (!guard.ok())
    GTEST_SKIP() << "no comma-decimal locale installed on this system";

  // Parse with ',' as the locale decimal point: every length must still
  // read the full C-locale number.
  const Tree t = parse_newick(kScientific);
  expect_scientific_lengths(t);

  // Serialize under the same locale: the writer must emit '.'-decimal
  // Newick (not "1,5e-3"), and re-parsing must reproduce the lengths.
  const std::string out = write_newick(t, 17);
  // Structural commas here always precede a letter label or '('; a decimal
  // comma would sit between two digits.
  for (std::size_t i = 1; i + 1 < out.size(); ++i)
    EXPECT_FALSE(out[i] == ',' &&
                 std::isdigit(static_cast<unsigned char>(out[i - 1])) &&
                 std::isdigit(static_cast<unsigned char>(out[i + 1])))
        << "decimal comma in: " << out;
  const Tree back = parse_newick(out);
  expect_scientific_lengths(back);
}

/// A ','-decimal numpunct facet — lets the writer-side locale test run even
/// on systems with no comma-decimal locale installed (the facet only
/// affects C++ streams, which is exactly what the writer uses).
struct CommaNumpunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
};

TEST(NewickLocale, WriterEmitsDotDecimalUnderCommaGlobalCppLocale) {
  const Tree t = parse_newick(kScientific);
  std::locale::global(std::locale(std::locale::classic(), new CommaNumpunct));
  const std::string out = write_newick(t, 17);
  std::locale::global(std::locale::classic());
  // Without the classic-locale imbue the stream would render "0,0015".
  for (std::size_t i = 1; i + 1 < out.size(); ++i)
    ASSERT_FALSE(out[i] == ',' &&
                 std::isdigit(static_cast<unsigned char>(out[i - 1])) &&
                 std::isdigit(static_cast<unsigned char>(out[i + 1])))
        << "decimal comma in: " << out;
  expect_scientific_lengths(parse_newick(out));
}

TEST(NewickLocale, MalformedLengthStillRejected) {
  EXPECT_THROW(parse_newick("(a:abc,b:0.1);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:,b:0.1);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:+-1.5,b:0.1);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:+,b:0.1);"), std::runtime_error);
}

TEST(NewickLocale, PlusSignAndNegativeExponentAccepted) {
  const Tree t = parse_newick("(a:+0.25,b:2e-2,c:1.0);");
  double sum = 0.0;
  for (EdgeId e = 0; e < t.edge_count(); ++e) sum += t.length(e);
  EXPECT_DOUBLE_EQ(sum, 0.25 + 0.02 + 1.0);
}

TEST(NewickScale, TenThousandTaxaRoundTrip) {
  // Smoke test at production scale: 10k taxa parse + serialize + reparse.
  // With the old substr-copy parsing this alone took O(n^2) character
  // copies (~gigabytes); with from_chars it is linear.
  Rng rng(2026);
  const int n = 10000;
  const Tree t = random_tree(n, rng);
  const std::string text = write_newick(t, 10);
  const Tree back = parse_newick(text);
  ASSERT_EQ(back.tip_count(), n);
  ASSERT_EQ(back.edge_count(), t.edge_count());
  // Branch lengths survive the round trip (tip ids may be permuted, so
  // compare the totals).
  double sum_a = 0.0, sum_b = 0.0;
  for (EdgeId e = 0; e < t.edge_count(); ++e) {
    sum_a += t.length(e);
    sum_b += back.length(e);
  }
  EXPECT_NEAR(sum_a, sum_b, 1e-6 * std::max(1.0, sum_a));
}

}  // namespace
}  // namespace plk
