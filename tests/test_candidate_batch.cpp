// Tests for the batched lockstep SPR candidate scorer
// (search/candidate_batch.hpp): per-candidate scores, the accepted-move
// sequence, and the final likelihood must be IDENTICAL to the sequential
// one-candidate-at-a-time scorer — bit-for-bit under the default cyclic
// schedule — across thread counts, linked/unlinked branch lengths, and
// both parallelization strategies; plus CLV-slot-pool behaviour under tight
// wave limits and a mid-search checkpoint round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <string>

#include "core/analysis.hpp"
#include "core/bootstrap.hpp"
#include "core/checkpoint.hpp"
#include "search/candidate_batch.hpp"
#include "search/search.hpp"
#include "search/spr.hpp"
#include "sim/datasets.hpp"
#include "tree/newick.hpp"
#include "tree/tree_gen.hpp"

namespace plk {
namespace {

std::vector<PartitionModel> make_models(const CompressedAlignment& comp) {
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0,
                        4);
  return models;
}

struct Rig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  Rig(int taxa, std::size_t sites, std::size_t plen, int threads,
      bool unlinked, std::uint64_t seed,
      std::optional<Tree> start = std::nullopt) {
    data = make_simulated_dna(taxa, sites, plen, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    EngineOptions eo;
    eo.threads = threads;
    eo.unlinked_branch_lengths = unlinked;
    engine = std::make_unique<Engine>(
        *comp, start ? std::move(*start) : data.true_tree, make_models(*comp),
        eo);
  }
};

SearchOptions quick_search(bool batched, int radius = 3, int rounds = 1) {
  SearchOptions so;
  so.batched_candidates = batched;
  so.spr_radius = radius;
  so.max_rounds = rounds;
  so.optimize_model = false;  // model phases are shared code; keep tests fast
  return so;
}

std::string tree_text(Engine& e) {
  e.sync_tree_lengths();
  return write_newick(e.tree());
}

/// Run the same search batched and sequentially from identical starts and
/// require an identical outcome: final lnL (bit-equal under the default
/// cyclic schedule), accepted-move count, candidate count, and final tree.
void expect_equivalent(int taxa, std::size_t sites, std::size_t plen,
                       int threads, bool unlinked, Strategy strategy,
                       std::uint64_t seed, int radius = 3) {
  Rng r1(seed), r2(seed);
  Rig a(taxa, sites, plen, threads, unlinked, seed + 1,
        random_tree(default_labels(taxa), r1));
  Rig b(taxa, sites, plen, threads, unlinked, seed + 1,
        random_tree(default_labels(taxa), r2));
  SearchOptions so = quick_search(true, radius);
  so.strategy = strategy;
  const SearchResult batched = search_ml(*a.engine, so);
  so.batched_candidates = false;
  const SearchResult seq = search_ml(*b.engine, so);

  EXPECT_EQ(batched.final_lnl, seq.final_lnl)
      << "lnL diverged by " << std::abs(batched.final_lnl - seq.final_lnl);
  ASSERT_LE(std::abs(batched.final_lnl - seq.final_lnl),
            1e-10 * std::abs(seq.final_lnl));
  EXPECT_EQ(batched.accepted_moves, seq.accepted_moves);
  EXPECT_EQ(batched.candidates_scored, seq.candidates_scored);
  EXPECT_EQ(batched.rounds, seq.rounds);
  EXPECT_EQ(tree_text(*a.engine), tree_text(*b.engine))
      << "accepted-move sequences diverged";
  // Speculation may re-score a window's tail after a commit, so the scorer
  // can spend MORE candidates than the search reports scoring — never less.
  EXPECT_GE(batched.batch.candidates, batched.candidates_scored);
  EXPECT_GT(batched.batch.waves, 0u);
  EXPECT_EQ(seq.batch.candidates, 0u);
}

// --- batched == sequential across the configuration matrix -------------------

TEST(CandidateBatch, MatchesSequentialSingleThread) {
  expect_equivalent(9, 300, 100, 1, true, Strategy::kNewPar, 101);
}

TEST(CandidateBatch, MatchesSequentialTwoThreads) {
  expect_equivalent(9, 300, 100, 2, true, Strategy::kNewPar, 103);
}

TEST(CandidateBatch, MatchesSequentialFourThreads) {
  expect_equivalent(8, 240, 80, 4, true, Strategy::kNewPar, 105);
}

TEST(CandidateBatch, MatchesSequentialEightThreads) {
  expect_equivalent(8, 160, 80, 8, true, Strategy::kNewPar, 107, /*radius=*/2);
}

TEST(CandidateBatch, MatchesSequentialLinkedBranchLengths) {
  expect_equivalent(9, 300, 100, 2, false, Strategy::kNewPar, 109);
}

TEST(CandidateBatch, MatchesSequentialOldPar) {
  expect_equivalent(8, 240, 80, 2, true, Strategy::kOldPar, 111);
}

// --- per-candidate scores ----------------------------------------------------

/// The scorer's per-candidate lnLs must equal scoring each move manually
/// with the classic sequential primitives (apply, 3-edge optimize_edge,
/// evaluate, undo) — bit for bit under the cyclic schedule.
TEST(CandidateBatch, PerCandidateScoresMatchSequentialPrimitives) {
  Rig rig(10, 300, 100, 2, true, 201);
  Engine& eng = *rig.engine;
  const SearchOptions so = quick_search(true);
  optimize_branch_lengths(eng, so.strategy, so.full_branch_opts);

  // Find a prune group with a healthy number of candidates.
  std::vector<SprMove> moves;
  for (EdgeId pe = 0; pe < eng.tree().edge_count() && moves.size() < 6; ++pe) {
    for (int side = 0; side < 2 && moves.empty(); ++side) {
      const NodeId s = side == 0 ? eng.tree().edge(pe).a : eng.tree().edge(pe).b;
      if (eng.tree().is_tip(eng.tree().other_end(pe, s))) continue;
      for (EdgeId t : spr_targets(eng.tree(), pe, s, 4))
        moves.push_back(SprMove{pe, s, t});
    }
  }
  ASSERT_GE(moves.size(), 3u);

  CandidateScorer scorer(eng.core(), eng.context(), so.strategy,
                         so.local_branch_opts);
  const std::vector<double> batched = scorer.score(moves);

  for (std::size_t i = 0; i < moves.size(); ++i) {
    const SprMove& move = moves[i];
    BranchLengths& bl = eng.branch_lengths();
    eng.prepare_root(move.prune_edge);
    // Save the lengths the surgery and optimization will touch.
    const NodeId joint = eng.tree().other_end(move.prune_edge, move.pruned_side);
    std::vector<EdgeId> touched;
    for (EdgeId e : eng.tree().edges_of(joint))
      if (e != move.prune_edge) touched.push_back(e);
    touched.push_back(move.target_edge);
    touched.push_back(move.prune_edge);
    std::vector<std::vector<double>> saved;
    for (EdgeId e : touched) {
      std::vector<double> row;
      for (int p = 0; p < eng.partition_count(); ++p) row.push_back(bl.get(e, p));
      saved.push_back(std::move(row));
    }

    SprUndo u = apply_spr(eng.tree(), move);
    apply_spr_lengths(bl, u);
    invalidate_after_spr(eng, u);
    optimize_edge(eng, u.carried, so.strategy, so.local_branch_opts);
    optimize_edge(eng, u.target, so.strategy, so.local_branch_opts);
    optimize_edge(eng, move.prune_edge, so.strategy, so.local_branch_opts);
    const double sequential = eng.loglikelihood(move.prune_edge);

    eng.prepare_root(move.prune_edge);
    undo_spr(eng.tree(), u);
    invalidate_after_spr(eng, u);
    for (std::size_t k = 0; k < touched.size(); ++k)
      for (int p = 0; p < eng.partition_count(); ++p)
        bl.set(touched[k], p, saved[k][static_cast<std::size_t>(p)]);

    EXPECT_EQ(batched[i], sequential) << "candidate " << i;
  }
}

// --- CLV slot pool -----------------------------------------------------------

/// Tight waves must split the group without changing any result, and the
/// pool's footprint must stay bounded by the wave width (per-context
/// eviction at each rebind), far below one-full-context-per-candidate.
TEST(CandidateBatch, WaveSplittingIsEquivalentAndBoundsPool) {
  Rng r1(301), r2(301);
  Rig a(10, 240, 80, 2, true, 302, random_tree(default_labels(10), r1));
  Rig b(10, 240, 80, 2, true, 302, random_tree(default_labels(10), r2));

  SearchOptions wide = quick_search(true);
  wide.candidate_batch.max_batch = 64;
  SearchOptions tight = quick_search(true);
  tight.candidate_batch.max_batch = 2;
  tight.candidate_batch.pool_soft_cap = 4;

  const SearchResult rw = search_ml(*a.engine, wide);
  const SearchResult rt = search_ml(*b.engine, tight);

  EXPECT_EQ(rw.final_lnl, rt.final_lnl);
  EXPECT_EQ(rw.accepted_moves, rt.accepted_moves);
  EXPECT_EQ(rw.candidates_scored, rt.candidates_scored);
  EXPECT_EQ(tree_text(*a.engine), tree_text(*b.engine));

  EXPECT_GT(rt.batch.waves, rt.batch.groups);  // groups actually split
  EXPECT_GT(rt.batch.pool_slots_peak, 0u);
  // A wave of 2 candidates touches a few nodes each; the peak must stay a
  // small multiple of the wave width times the partition count — nowhere
  // near candidates x inner-nodes (the memory the pool exists to avoid).
  const std::size_t parts =
      static_cast<std::size_t>(a.engine->partition_count());
  EXPECT_LE(rt.batch.pool_slots_peak,
            2 * parts * static_cast<std::size_t>(
                            a.engine->tree().node_count()));
  EXPECT_LT(rt.batch.pool_slots_peak, rw.batch.pool_slots_peak * 2 + parts * 64);
}

// --- checkpointing -----------------------------------------------------------

/// A checkpoint taken mid-search restores into a fresh context such that
/// the restored likelihood matches exactly and the CONTINUED search is
/// identical between the batched and sequential scorers. (The continuation
/// of the original in-memory engine may legitimately differ in the last
/// decimals: the checkpoint's edge list rebuilds adjacency in canonical
/// order, while the live tree carries the rotations of its commits.)
TEST(CandidateBatch, CheckpointRoundTripMidSearch) {
  Rng rng(401);
  const Tree start = random_tree(default_labels(9), rng);
  Rig a(9, 240, 80, 2, true, 402, start);

  // Round 1 (batched), then snapshot.
  const SearchResult mid = search_ml(*a.engine, quick_search(true, 3, 1));
  const std::string snapshot = serialize_checkpoint(*a.engine);

  // Restore into two fresh engines over the same alignment; the restored
  // state must evaluate to the checkpointed likelihood bit for bit.
  Rig b(9, 240, 80, 2, true, 402, start);
  Rig c(9, 240, 80, 2, true, 402, start);
  apply_checkpoint(*b.engine, snapshot);
  apply_checkpoint(*c.engine, snapshot);
  EXPECT_EQ(b.engine->loglikelihood(0), c.engine->loglikelihood(0));

  // Continue the search from the restored state, batched vs sequential:
  // identical moves, identical final state.
  const SearchResult rb = search_ml(*b.engine, quick_search(true, 3, 1));
  const SearchResult rc = search_ml(*c.engine, quick_search(false, 3, 1));
  EXPECT_EQ(rb.final_lnl, rc.final_lnl);
  EXPECT_EQ(rb.accepted_moves, rc.accepted_moves);
  EXPECT_EQ(rb.candidates_scored, rc.candidates_scored);
  EXPECT_EQ(tree_text(*b.engine), tree_text(*c.engine));

  // And the original engine's own continuation lands on the same optimum.
  const SearchResult ra = search_ml(*a.engine, quick_search(true, 3, 1));
  EXPECT_GE(ra.final_lnl, mid.final_lnl - 1e-9);
  EXPECT_NEAR(ra.final_lnl, rb.final_lnl, 1e-6 * std::abs(rb.final_lnl));
}

// --- speculative cross-group waves -------------------------------------------

/// Cross-group speculation (groups enumerated against a frozen parent,
/// merged waves, conflict-driven invalidation after commits) must produce
/// the IDENTICAL accepted-move sequence and final state as strict per-group
/// scoring — bit-identical under the default cyclic schedule — at every
/// thread count.
void expect_speculation_equivalent(int taxa, std::size_t sites,
                                   std::size_t plen, int threads,
                                   std::uint64_t seed, int radius = 3) {
  Rng r1(seed), r2(seed);
  Rig a(taxa, sites, plen, threads, true, seed + 1,
        random_tree(default_labels(taxa), r1));
  Rig b(taxa, sites, plen, threads, true, seed + 1,
        random_tree(default_labels(taxa), r2));
  SearchOptions spec = quick_search(true, radius, 2);
  spec.candidate_batch.speculate_groups = 8;
  SearchOptions pergroup = quick_search(true, radius, 2);
  pergroup.candidate_batch.speculate_groups = 1;

  const SearchResult rs = search_ml(*a.engine, spec);
  const SearchResult rp = search_ml(*b.engine, pergroup);

  EXPECT_EQ(rs.final_lnl, rp.final_lnl);
  EXPECT_EQ(rs.accepted_moves, rp.accepted_moves);
  EXPECT_EQ(rs.candidates_scored, rp.candidates_scored);
  EXPECT_EQ(rs.rounds, rp.rounds);
  EXPECT_EQ(tree_text(*a.engine), tree_text(*b.engine))
      << "accepted-move sequences diverged";
  // The per-group run never merges groups; the speculative run should have
  // (the windows double through the commit-free tail of each round).
  EXPECT_EQ(rp.batch.cross_group_waves, 0u);
  EXPECT_GT(rs.batch.cross_group_waves, 0u);
  EXPECT_LT(rs.batch.waves, rp.batch.waves);
}

TEST(CandidateBatch, SpeculationMatchesPerGroupSingleThread) {
  expect_speculation_equivalent(9, 300, 100, 1, 701);
}

TEST(CandidateBatch, SpeculationMatchesPerGroupTwoThreads) {
  expect_speculation_equivalent(9, 300, 100, 2, 703);
}

TEST(CandidateBatch, SpeculationMatchesPerGroupFourThreads) {
  expect_speculation_equivalent(8, 240, 80, 4, 705);
}

TEST(CandidateBatch, SpeculationMatchesPerGroupEightThreads) {
  expect_speculation_equivalent(8, 160, 80, 8, 707, /*radius=*/2);
}

/// The conflict predicate must be conservative: whenever it clears a group
/// after a commit, re-enumerating that group on the committed tree must
/// reproduce the pre-commit move list exactly (set AND order — the window
/// reuses the stored list verbatim).
TEST(CandidateBatch, ConflictPredicateGuaranteesStableEnumeration) {
  Rng rng(801);
  const int radius = 3;
  int survivors_checked = 0, conflicts_seen = 0;
  for (int rep = 0; rep < 4; ++rep) {
    Tree tree = random_tree(default_labels(12), rng);

    struct Group {
      EdgeId pe;
      int side;
      NodeId s;
      std::vector<EdgeId> targets;
    };
    const auto snapshot = [&] {
      std::vector<Group> gs;
      for (EdgeId pe = 0; pe < tree.edge_count(); ++pe)
        for (int side = 0; side < 2; ++side) {
          const NodeId s = side == 0 ? tree.edge(pe).a : tree.edge(pe).b;
          gs.push_back({pe, side, s, spr_targets(tree, pe, s, radius)});
        }
      return gs;
    };

    // Commit a handful of distinct moves; after each, check every
    // non-conflicting group's enumeration survived unchanged.
    int committed = 0;
    for (EdgeId pe = 0; pe < tree.edge_count() && committed < 5; ++pe) {
      const NodeId s = tree.edge(pe).a;
      const auto targets = spr_targets(tree, pe, s, radius);
      if (targets.empty()) continue;
      const auto before = snapshot();
      const SprMove mv{pe, s, targets[targets.size() / 2]};
      const SprUndo undo = apply_spr(tree, mv);
      ++committed;
      for (const Group& g : before) {
        if (spr_group_conflicts(tree, g.pe, g.s, radius, undo)) {
          ++conflicts_seen;
          continue;
        }
        ++survivors_checked;
        const NodeId s2 = g.side == 0 ? tree.edge(g.pe).a : tree.edge(g.pe).b;
        ASSERT_EQ(s2, g.s) << "survivor's pruned side moved";
        EXPECT_EQ(spr_targets(tree, g.pe, s2, radius), g.targets)
            << "survivor enumeration changed (pe " << g.pe << ", side "
            << g.side << ")";
      }
      undo_spr(tree, undo);
    }
  }
  EXPECT_GT(survivors_checked, 0);
  EXPECT_GT(conflicts_seen, 0);
}

/// Coarse flush execution must not perturb the search: identical final
/// state and move counts with the executor forced to either mode.
TEST(CandidateBatch, SearchIsBitIdenticalUnderCoarseExecution) {
  Rng r1(901), r2(901);
  Rig a(9, 240, 80, 4, true, 902, random_tree(default_labels(9), r1));
  Rig b(9, 240, 80, 4, true, 902, random_tree(default_labels(9), r2));
  a.engine->core().set_batch_execution(BatchExecMode::kFine);
  b.engine->core().set_batch_execution(BatchExecMode::kCoarse);
  const SearchResult rf = search_ml(*a.engine, quick_search(true));
  const SearchResult rc = search_ml(*b.engine, quick_search(true));
  EXPECT_EQ(rf.final_lnl, rc.final_lnl);
  EXPECT_EQ(rf.accepted_moves, rc.accepted_moves);
  EXPECT_EQ(tree_text(*a.engine), tree_text(*b.engine));
  EXPECT_EQ(a.engine->stats().coarse_commands, 0u);
  EXPECT_GT(b.engine->stats().coarse_commands, 0u);
}

// --- replicated lockstep searches --------------------------------------------

/// search_ml_replicated advances every replicate's search through shared
/// waves and batched round smoothing; per replicate the outcome must be
/// IDENTICAL to running search_ml on that context alone.
TEST(CandidateBatch, ReplicatedSearchMatchesIndividualSearches) {
  Dataset data = make_simulated_dna(8, 240, 80, 1001);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  EngineOptions eo;
  eo.threads = 2;
  eo.unlinked_branch_lengths = true;

  const auto make_ctxs = [&](EngineCore& core,
                             std::vector<std::unique_ptr<EvalContext>>& owned) {
    Rng rng(1002);
    std::vector<EvalContext*> ctxs;
    for (int r = 0; r < 3; ++r) {
      owned.push_back(std::make_unique<EvalContext>(
          core, random_tree(default_labels(8), rng)));
      // Distinct bootstrap weights per replicate, reproducible across runs.
      const auto weights = bootstrap_weights(core.alignment(), rng);
      for (int p = 0; p < core.partition_count(); ++p)
        owned.back()->set_pattern_weights(p,
                                          weights[static_cast<std::size_t>(p)]);
      ctxs.push_back(owned.back().get());
    }
    return ctxs;
  };
  const SearchOptions so = quick_search(true, 3, 2);

  EngineCore core_a(comp, make_models(comp), eo);
  std::vector<std::unique_ptr<EvalContext>> owned_a;
  auto ctxs_a = make_ctxs(core_a, owned_a);
  const auto replicated = search_ml_replicated(core_a, ctxs_a, so);

  EngineCore core_b(comp, make_models(comp), eo);
  std::vector<std::unique_ptr<EvalContext>> owned_b;
  auto ctxs_b = make_ctxs(core_b, owned_b);
  std::vector<SearchResult> individual;
  for (EvalContext* ctx : ctxs_b) {
    Engine view(core_b, *ctx);
    individual.push_back(search_ml(view, so));
  }

  ASSERT_EQ(replicated.size(), individual.size());
  for (std::size_t r = 0; r < replicated.size(); ++r) {
    EXPECT_EQ(replicated[r].final_lnl, individual[r].final_lnl)
        << "replicate " << r;
    EXPECT_EQ(replicated[r].accepted_moves, individual[r].accepted_moves);
    EXPECT_EQ(replicated[r].candidates_scored,
              individual[r].candidates_scored);
    EXPECT_EQ(write_newick(ctxs_a[r]->tree()), write_newick(ctxs_b[r]->tree()))
        << "replicate " << r << " accepted different moves";
  }
}

// --- tier-1 smoke ------------------------------------------------------------

/// Small-search smoke: the batched path must run end to end on every push —
/// improving the likelihood, keeping the tree valid, and reporting
/// consistent batch statistics.
TEST(CandidateBatch, SmallSearchSmoke) {
  Rng rng(501);
  Rig rig(8, 200, 100, 2, true, 502, random_tree(default_labels(8), rng));
  const double start_lnl = rig.engine->loglikelihood(0);
  SearchOptions so = quick_search(true, /*radius=*/2, /*rounds=*/2);
  const SearchResult res = search_ml(*rig.engine, so);
  rig.engine->tree().validate();
  EXPECT_GT(res.final_lnl, start_lnl);
  EXPECT_GT(res.candidates_scored, 0u);
  EXPECT_GE(res.batch.candidates, res.candidates_scored);
  EXPECT_GT(res.batch.groups, 0u);
  EXPECT_GT(res.batch.pool_slots_peak, 0u);
}

/// Multi-start searches ride on the batched scorer through shared-core
/// contexts; batched and sequential scoring must pick the same winner with
/// the same likelihood.
TEST(CandidateBatch, MultiStartEquivalence) {
  Dataset data = make_simulated_dna(8, 200, 100, 601);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  EngineOptions eo;
  eo.threads = 2;
  eo.unlinked_branch_lengths = true;

  const auto run = [&](bool batched) {
    EngineCore core(comp, make_models(comp), eo);
    Rng rng(602);
    std::vector<std::unique_ptr<EvalContext>> owned;
    std::vector<EvalContext*> ctxs;
    for (int s = 0; s < 2; ++s) {
      owned.push_back(std::make_unique<EvalContext>(
          core, random_tree(default_labels(8), rng)));
      ctxs.push_back(owned.back().get());
    }
    SearchOptions so = quick_search(batched, 3, 1);
    MultiStartResult ms = search_ml_multistart(core, ctxs, so);
    EXPECT_EQ(ms.results.size(), 2u);
    return ms.results[static_cast<std::size_t>(ms.best)].final_lnl;
  };

  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace plk
