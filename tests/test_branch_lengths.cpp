// Tests for core/branch_lengths: linked vs unlinked storage semantics and
// interaction with tree defaults.
#include <gtest/gtest.h>

#include <cmath>

#include "core/branch_lengths.hpp"
#include "tree/tree_gen.hpp"
#include "util/rng.hpp"

namespace plk {
namespace {

TEST(BranchLengths, LinkedSharesOneValue) {
  BranchLengths bl(5, 3, /*linked=*/true, 0.2);
  EXPECT_TRUE(bl.linked());
  bl.set(2, 0, 0.7);
  for (int p = 0; p < 3; ++p) EXPECT_DOUBLE_EQ(bl.get(2, p), 0.7);
  EXPECT_DOUBLE_EQ(bl.mean(2), 0.7);
}

TEST(BranchLengths, UnlinkedKeepsPartitionsIndependent) {
  BranchLengths bl(4, 3, /*linked=*/false, 0.1);
  bl.set(1, 0, 0.5);
  bl.set(1, 2, 0.9);
  EXPECT_DOUBLE_EQ(bl.get(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(bl.get(1, 1), 0.1);
  EXPECT_DOUBLE_EQ(bl.get(1, 2), 0.9);
  EXPECT_NEAR(bl.mean(1), 0.5, 1e-12);  // (0.5 + 0.1 + 0.9) / 3
}

TEST(BranchLengths, SetAllBroadcasts) {
  BranchLengths bl(3, 4, false, 0.1);
  bl.set_all(0, 0.33);
  for (int p = 0; p < 4; ++p) EXPECT_DOUBLE_EQ(bl.get(0, p), 0.33);
}

TEST(BranchLengths, FromTreeUsesDefaults) {
  Rng rng(1);
  Tree t = random_tree(8, rng);
  auto bl = BranchLengths::from_tree(t, 5, false);
  for (EdgeId e = 0; e < t.edge_count(); ++e)
    for (int p = 0; p < 5; ++p)
      EXPECT_DOUBLE_EQ(bl.get(e, p), t.length(e));
}

TEST(BranchLengths, RejectsNegativeAndNan) {
  BranchLengths bl(2, 2, false, 0.1);
  EXPECT_THROW(bl.set(0, 0, -0.1), std::invalid_argument);
  EXPECT_THROW(bl.set_all(0, std::nan("")), std::invalid_argument);
}

TEST(BranchLengths, BoundsChecked) {
  BranchLengths bl(2, 2, false, 0.1);
  EXPECT_THROW(bl.get(5, 0), std::out_of_range);
  EXPECT_THROW(bl.get(0, 5), std::out_of_range);
  EXPECT_THROW(bl.get(-1, 0), std::out_of_range);
}

TEST(BranchLengths, LinkedIgnoresPartitionIndexOnRead) {
  BranchLengths bl(2, 8, true, 0.4);
  // In linked mode any partition index reads the shared value.
  EXPECT_DOUBLE_EQ(bl.get(1, 7), 0.4);
}

TEST(BranchLengths, CountsExposed) {
  BranchLengths bl(7, 3, false, 0.1);
  EXPECT_EQ(bl.edge_count(), 7);
  EXPECT_EQ(bl.partition_count(), 3);
}

}  // namespace
}  // namespace plk
