// Tests for optimize/: the resumable Brent minimizer and the safeguarded
// Newton-Raphson branch maximizer, on analytic functions with known optima.
#include <gtest/gtest.h>

#include <cmath>

#include "optimize/brent.hpp"
#include "optimize/newton.hpp"

namespace plk {
namespace {

TEST(Brent, QuadraticMinimum) {
  double fmin;
  const double x = brent_minimize(
      [](double v) { return (v - 3.7) * (v - 3.7) + 2.0; }, 0.0, 10.0, 1e-9,
      200, &fmin);
  EXPECT_NEAR(x, 3.7, 1e-6);
  EXPECT_NEAR(fmin, 2.0, 1e-10);
}

TEST(Brent, AsymmetricFunction) {
  // f(x) = x - log(x): minimum at x = 1.
  const double x = brent_minimize([](double v) { return v - std::log(v); },
                                  1e-3, 50.0, 1e-10);
  EXPECT_NEAR(x, 1.0, 1e-5);
}

TEST(Brent, CosineMinimum) {
  const double x =
      brent_minimize([](double v) { return std::cos(v); }, 0.0, 6.0, 1e-10);
  EXPECT_NEAR(x, M_PI, 1e-6);
}

TEST(Brent, MinimumAtBoundary) {
  // Monotone increasing: minimum at the lower bound.
  const double x =
      brent_minimize([](double v) { return v; }, 2.0, 9.0, 1e-9);
  EXPECT_NEAR(x, 2.0, 1e-3);
}

TEST(Brent, WarmStartConverges) {
  double fmin;
  const double x = brent_minimize(
      [](double v) { return (v - 0.123) * (v - 0.123); }, 0.0, 100.0, 1e-10,
      200, &fmin, /*first_guess=*/0.12);
  EXPECT_NEAR(x, 0.123, 1e-5);
}

TEST(Brent, WarmStartSpeedsConvergence) {
  auto f = [](double v) { return (v - 5.0) * (v - 5.0); };
  BrentMinimizer cold(0.0, 1000.0, 1e-8, 1e-10, 200);
  BrentMinimizer warm(0.0, 1000.0, 1e-8, 1e-10, 200, 5.01);
  while (!cold.done()) cold.feed(f(cold.proposal()));
  while (!warm.done()) warm.feed(f(warm.proposal()));
  EXPECT_LE(warm.iterations(), cold.iterations());
  EXPECT_NEAR(warm.best(), 5.0, 1e-4);
}

TEST(Brent, ResumableMatchesWrapper) {
  auto f = [](double v) { return std::pow(v - 2.0, 4) + 0.5 * v; };
  BrentMinimizer bm(0.0, 10.0, 1e-8, 1e-10, 200);
  while (!bm.done()) bm.feed(f(bm.proposal()));
  double fmin;
  const double x = brent_minimize(f, 0.0, 10.0, 1e-8, 200, &fmin);
  EXPECT_DOUBLE_EQ(bm.best(), x);
  EXPECT_DOUBLE_EQ(bm.best_f(), fmin);
}

TEST(Brent, RespectsMaxIterations) {
  BrentMinimizer bm(0.0, 1.0, 1e-15, 1e-18, 5);
  int n = 0;
  while (!bm.done()) {
    bm.feed(std::sin(bm.proposal() * 12.3));
    ++n;
  }
  EXPECT_LE(n, 5);
}

TEST(Brent, ManyInstancesInLockStep) {
  // The newPAR pattern: advance N independent minimizers together with a
  // convergence mask; all must find their own minima.
  const int n = 20;
  std::vector<BrentMinimizer> bms;
  std::vector<double> targets;
  for (int i = 0; i < n; ++i) {
    targets.push_back(0.5 + 0.37 * i);
    bms.emplace_back(0.0, 20.0, 1e-9, 1e-12, 200);
  }
  std::vector<int> active(n);
  for (int i = 0; i < n; ++i) active[static_cast<std::size_t>(i)] = i;
  while (!active.empty()) {
    std::vector<int> still;
    for (int i : active) {
      auto& bm = bms[static_cast<std::size_t>(i)];
      const double x = bm.proposal();
      const double t = targets[static_cast<std::size_t>(i)];
      bm.feed((x - t) * (x - t));
      if (!bm.done()) still.push_back(i);
    }
    active = std::move(still);
  }
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(bms[static_cast<std::size_t>(i)].best(),
                targets[static_cast<std::size_t>(i)], 1e-5);
}

TEST(Brent, InvalidIntervalThrows) {
  EXPECT_THROW(BrentMinimizer(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BrentMinimizer(2.0, 1.0), std::invalid_argument);
}

TEST(Brent, UseAfterDoneThrows) {
  BrentMinimizer bm(0.0, 1.0, 1e-3, 1e-3, 3);
  while (!bm.done()) bm.feed(bm.proposal() * bm.proposal());
  EXPECT_THROW(bm.proposal(), std::logic_error);
  EXPECT_THROW(bm.feed(0.0), std::logic_error);
}

// --- Newton -----------------------------------------------------------------

/// Drive NewtonBranch on an analytic concave lnL with known maximum.
double run_newton(double b0, double target, double lo = 1e-7,
                  double hi = 100.0) {
  NewtonBranch nb(b0, lo, hi, 1e-10, 100);
  while (!nb.done()) {
    const double b = nb.current();
    // lnL(b) = -(b - target)^2 => d1 = -2 (b - target), d2 = -2.
    nb.feed(-2.0 * (b - target), -2.0);
  }
  return nb.current();
}

TEST(Newton, ConvergesFromAbove) { EXPECT_NEAR(run_newton(5.0, 0.3), 0.3, 1e-8); }
TEST(Newton, ConvergesFromBelow) {
  EXPECT_NEAR(run_newton(1e-6, 0.3), 0.3, 1e-8);
}

TEST(Newton, QuadraticConvergesInOneStep) {
  NewtonBranch nb(1.0, 1e-7, 100.0, 1e-10, 100);
  nb.feed(-2.0 * (1.0 - 0.42), -2.0);
  EXPECT_NEAR(nb.current(), 0.42, 1e-12);
}

TEST(Newton, LogLikelihoodShape) {
  // A realistic shape: lnL(b) = w1 log(b) - w2 b, maximum at w1/w2.
  const double w1 = 30, w2 = 100;
  NewtonBranch nb(0.5, 1e-7, 100.0, 1e-12, 100);
  while (!nb.done()) {
    const double b = nb.current();
    nb.feed(w1 / b - w2, -w1 / (b * b));
  }
  EXPECT_NEAR(nb.current(), w1 / w2, 1e-8);
}

TEST(Newton, ClampsToBounds) {
  // Maximum far above hi: must converge to (essentially) hi and stop.
  NewtonBranch nb(1.0, 1e-7, 2.0, 1e-8, 100);
  while (!nb.done()) nb.feed(5.0, -0.01);  // always uphill
  EXPECT_NEAR(nb.current(), 2.0, 1e-6);
  EXPECT_LT(nb.iterations(), 100);
}

TEST(Newton, PinsToLowerBound) {
  NewtonBranch nb(0.5, 1e-7, 2.0, 1e-8, 100);
  while (!nb.done()) nb.feed(-5.0, -0.01);  // always downhill
  EXPECT_NEAR(nb.current(), 1e-7, 1e-6);
}

TEST(Newton, NonConcaveRegionUsesGeometricSteps) {
  // d2 > 0 at the start: must still walk uphill and converge.
  NewtonBranch nb(0.01, 1e-7, 100.0, 1e-10, 100);
  int iters = 0;
  while (!nb.done() && ++iters < 100) {
    const double b = nb.current();
    const double d1 = -2.0 * (b - 3.0);
    const double d2 = b < 1.0 ? +1.0 : -2.0;  // fake convexity below 1
    nb.feed(d1, d2);
  }
  EXPECT_NEAR(nb.current(), 3.0, 1e-6);
}

TEST(Newton, RespectsMaxIterations) {
  NewtonBranch nb(1.0, 1e-7, 100.0, 0.0, 7);
  int n = 0;
  while (!nb.done()) {
    nb.feed(std::sin(static_cast<double>(n)), -1.0);
    ++n;
  }
  EXPECT_LE(n, 7);
}

TEST(Newton, StartClampedIntoBounds) {
  NewtonBranch nb(500.0, 1e-7, 10.0);
  EXPECT_DOUBLE_EQ(nb.current(), 10.0);
}

TEST(Newton, InvalidBoundsThrow) {
  EXPECT_THROW(NewtonBranch(1.0, 5.0, 2.0), std::invalid_argument);
}

TEST(Newton, FeedAfterDoneThrows) {
  NewtonBranch nb(1.0, 1e-7, 100.0, 1e-1, 1);
  nb.feed(0.0, -1.0);
  EXPECT_TRUE(nb.done());
  EXPECT_THROW(nb.feed(0.0, -1.0), std::logic_error);
}

}  // namespace
}  // namespace plk
