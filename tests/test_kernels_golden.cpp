// Golden-value tests: every specialized/SIMD kernel path against the generic
// scalar reference template (core/kernels/generic.hpp).
//
// Matrix covered: S=4 (DNA) and S=20 (protein); 1-4 rate categories; all
// tip/inner child combinations (tip/tip, tip/inner, inner/tip, inner/inner);
// healthy values and patterns that force numerical scaling. Contract:
//   * scale counts must match the reference EXACTLY (bit-compatible) on
//     this matrix — a product landing within an ulp of the 2^-256 scaling
//     threshold could in principle round to a different side under FMA,
//     but each kernel flavor stays self-consistent; and
//   * log-likelihoods / CLV entries / derivatives must agree to 1e-12
//     relative error (FMA and lane-reduction reorderings only).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/kernels/dispatch.hpp"
#include "core/kernels/rig.hpp"
#include "plk.hpp"
#include "util/simd.hpp"

namespace plk {
namespace {

constexpr std::size_t N = 41;  // patterns (odd: exercises slice tails)

/// Relative-error comparator: |a-b| <= tol * max(|b|, scale). `scale` anchors
/// the tolerance for values near zero — pass the buffer's max magnitude for
/// array entries (so comparisons stay meaningful for pre-rescale tiny CLVs),
/// or 1.0 for O(1)-or-larger scalars like log-likelihoods.
void expect_rel(double a, double b, double tol, double scale,
                const char* what) {
  EXPECT_LE(std::abs(a - b), tol * std::max(std::abs(b), scale))
      << what << ": got " << a << " want " << b;
}

/// Max |x| over a buffer (tolerance anchor for array comparisons).
double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

/// The shared raw-buffer fixture, sized for the golden matrix.
template <int S>
kernel::KernelRig<S> golden_rig(int cats, bool tiny = false) {
  return kernel::KernelRig<S>(N, cats, tiny);
}

template <int S>
void check_newview(int cats, char k1, char k2, bool tiny, int T) {
  auto r = golden_rig<S>(cats, tiny);
  const kernel::ChildView c1 = r.child(1, k1);
  const kernel::ChildView c2 = r.child(2, k2);

  std::vector<double> want(N * r.stride, -1.0), got(N * r.stride, -2.0);
  std::vector<std::int32_t> want_sc(N, -1), got_sc(N, -2);
  kernel::newview_slice<S>(0, N, 1, cats, c1, c2, r.p1.data(), r.p2.data(),
                           want.data(), want_sc.data());
  for (int tid = 0; tid < T; ++tid)
    kernel::newview_spec<S>(tid, N, T, cats, c1, c2, r.p1.data(), r.p2.data(),
                            r.p1t.data(), r.p2t.data(), got.data(),
                            got_sc.data());

  EXPECT_EQ(got_sc, want_sc) << "scale counts must be bit-compatible";
  const double scale = max_abs(want);
  for (std::size_t k = 0; k < want.size(); ++k)
    expect_rel(got[k], want[k], 1e-12, scale, "newview CLV entry");
}

template <int S>
void check_evaluate(int cats, char ku, char kv, bool tiny, int T) {
  auto r = golden_rig<S>(cats, tiny);
  const kernel::ChildView cu = r.child(1, ku);
  const kernel::ChildView cv = r.child(2, kv);

  const double want =
      kernel::evaluate_slice<S>(0, N, 1, cats, cu, cv, r.p2.data(),
                                r.freqs.data(), r.weights.data());
  double got = 0.0;
  for (int tid = 0; tid < T; ++tid)
    got += kernel::evaluate_spec<S>(tid, N, T, cats, cu, cv, r.p2.data(),
                                    r.p2t.data(), r.freqs.data(),
                                    r.weights.data());
  expect_rel(got, want, 1e-12, 1.0, "evaluate lnL");

  std::vector<double> want_sites(N, -1.0), got_sites(N, -2.0);
  kernel::evaluate_sites_slice<S>(0, N, 1, cats, cu, cv, r.p2.data(),
                                  r.freqs.data(), want_sites.data());
  for (int tid = 0; tid < T; ++tid)
    kernel::evaluate_sites_spec<S>(tid, N, T, cats, cu, cv, r.p2.data(),
                                   r.p2t.data(), r.freqs.data(),
                                   got_sites.data());
  for (std::size_t i = 0; i < N; ++i)
    expect_rel(got_sites[i], want_sites[i], 1e-12, 1.0, "per-site lnL");
}

template <int S>
void check_sumtable_nr(int cats, char ku, char kv, int T) {
  auto r = golden_rig<S>(cats);
  // sumtable_spec expects sym tip tables on tip children.
  const kernel::ChildView cu = ku == 't' ? r.tip_sym() : r.inner1();
  const kernel::ChildView cv = kv == 't' ? r.tip_sym() : r.inner2();

  std::vector<double> want(N * r.stride, -1.0), got(N * r.stride, -2.0);
  kernel::sumtable_slice<S>(0, N, 1, cats, cu, cv, r.sym.data(), want.data());
  for (int tid = 0; tid < T; ++tid)
    kernel::sumtable_spec<S>(tid, N, T, cats, cu, cv, r.sym.data(),
                             r.symt.data(), got.data());
  const double scale = max_abs(want);
  for (std::size_t k = 0; k < want.size(); ++k)
    expect_rel(got[k], want[k], 1e-12, scale, "sumtable entry");

  double want_d1 = 0.0, want_d2 = 0.0;
  kernel::nr_slice<S>(0, N, 1, cats, want.data(), r.exp_lam.data(),
                      r.lam.data(), r.weights.data(), &want_d1, &want_d2);
  double got_d1 = 0.0, got_d2 = 0.0;
  for (int tid = 0; tid < T; ++tid) {
    double d1 = 0.0, d2 = 0.0;
    kernel::nr_spec<S>(tid, N, T, cats, got.data(), r.exp_lam.data(),
                       r.lam.data(), r.weights.data(), &d1, &d2);
    got_d1 += d1;
    got_d2 += d2;
  }
  expect_rel(got_d1, want_d1, 1e-12, 1.0, "NR d1");
  expect_rel(got_d2, want_d2, 1e-12, 1.0, "NR d2");
}

struct Case {
  char k1, k2;
};
constexpr Case kChildCases[] = {{'t', 't'}, {'t', 'i'}, {'i', 't'}, {'i', 'i'}};

TEST(GoldenKernels, NewviewDnaAllCases) {
  for (int cats = 1; cats <= 4; ++cats)
    for (const Case& c : kChildCases)
      for (int T : {1, 3}) check_newview<4>(cats, c.k1, c.k2, false, T);
}

TEST(GoldenKernels, NewviewProteinAllCases) {
  for (int cats = 1; cats <= 4; ++cats)
    for (const Case& c : kChildCases) check_newview<20>(cats, c.k1, c.k2, false, 1);
}

TEST(GoldenKernels, NewviewScalingForcedDna) {
  // Tiny CLV values force a scaling event on every inner/inner and
  // tip/inner pattern; counts must match the reference exactly.
  for (int cats : {1, 4})
    for (const Case& c : kChildCases) check_newview<4>(cats, c.k1, c.k2, true, 2);
}

TEST(GoldenKernels, NewviewScalingForcedProtein) {
  for (const Case& c : kChildCases) check_newview<20>(4, c.k1, c.k2, true, 1);
}

TEST(GoldenKernels, EvaluateDnaAllCases) {
  for (int cats = 1; cats <= 4; ++cats)
    for (const Case& c : kChildCases)
      for (int T : {1, 4}) check_evaluate<4>(cats, c.k1, c.k2, false, T);
}

TEST(GoldenKernels, EvaluateProteinAllCases) {
  for (int cats = 1; cats <= 4; ++cats)
    for (const Case& c : kChildCases) check_evaluate<20>(cats, c.k1, c.k2, false, 1);
}

TEST(GoldenKernels, EvaluateWithScaledChildren) {
  for (const Case& c : kChildCases) {
    check_evaluate<4>(2, c.k1, c.k2, true, 1);
    check_evaluate<20>(2, c.k1, c.k2, true, 1);
  }
}

TEST(GoldenKernels, SumtableAndNrDna) {
  for (int cats = 1; cats <= 4; ++cats)
    for (const Case& c : kChildCases)
      for (int T : {1, 2}) check_sumtable_nr<4>(cats, c.k1, c.k2, T);
}

TEST(GoldenKernels, SumtableAndNrProtein) {
  for (int cats = 1; cats <= 4; ++cats)
    for (const Case& c : kChildCases) check_sumtable_nr<20>(cats, c.k1, c.k2, 1);
}

TEST(GoldenKernels, TipTableMatchesExplicitProduct) {
  // table[code][cat][a] == sum_j P_c[a][j] * ind[code][j], computed here
  // with plain loops against build_tip_table's output.
  auto r = golden_rig<4>(3);
  for (std::size_t code = 0; code < r.n_codes; ++code)
    for (int c = 0; c < 3; ++c)
      for (int a = 0; a < 4; ++a) {
        double want = 0.0;
        for (int j = 0; j < 4; ++j)
          want += r.p1[static_cast<std::size_t>(c) * 16 + a * 4 + j] *
                  r.indicators[code * 4 + static_cast<std::size_t>(j)];
        const double got = r.tip_tab1[(code * 3 + c) * 4 + a];
        EXPECT_DOUBLE_EQ(got, want);
      }
}

TEST(GoldenKernels, DispatcherFallsBackWithoutTipTable) {
  // A tip child without a lookup table must still produce reference results
  // (the dispatcher routes to the generic kernel).
  auto r = golden_rig<4>(2);
  kernel::ChildView bare_tip = r.tip(r.tip_tab1);
  bare_tip.tip_table = nullptr;

  std::vector<double> want(N * r.stride), got(N * r.stride);
  std::vector<std::int32_t> want_sc(N), got_sc(N);
  kernel::newview_slice<4>(0, N, 1, 2, bare_tip, r.inner2(), r.p1.data(),
                           r.p2.data(), want.data(), want_sc.data());
  kernel::newview_spec<4>(0, N, 1, 2, bare_tip, r.inner2(), r.p1.data(),
                          r.p2.data(), r.p1t.data(), r.p2t.data(), got.data(),
                          got_sc.data());
  EXPECT_EQ(got, want);
  EXPECT_EQ(got_sc, want_sc);
}

/// Build an engine over `data` with the given kernel flavor and thread count.
/// PLK_TEST_SCHEDULE selects the work-scheduling strategy (ctest registers
/// the engine A/B comparisons again under "weighted" and "lpt").
std::unique_ptr<Engine> make_engine(const Dataset& data,
                                    const CompressedAlignment& comp,
                                    bool generic, int threads) {
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(part.type == DataType::kDna ? make_model("GTR")
                                                    : make_model("WAG"),
                        0.7, 4);
  EngineOptions eo;
  eo.threads = threads;
  eo.use_generic_kernels = generic;
  if (const char* s = std::getenv("PLK_TEST_SCHEDULE")) {
    const auto parsed = scheduling_strategy_from_string(s);
    if (!parsed) throw std::invalid_argument("bad PLK_TEST_SCHEDULE");
    eo.schedule = *parsed;
  }
  return std::make_unique<Engine>(comp, data.true_tree, std::move(models), eo);
}

void check_engine_ab(const Dataset& data) {
  const CompressedAlignment comp =
      CompressedAlignment::build(data.alignment, data.scheme, true);
  auto ref = make_engine(data, comp, true, 1);
  auto spec = make_engine(data, comp, false, 2);

  for (EdgeId e : {EdgeId{0}, EdgeId{3}, EdgeId{1}}) {
    const double want = ref->loglikelihood(e);
    const double got = spec->loglikelihood(e);
    expect_rel(got, want, 1e-12, 1.0, "engine lnL");
  }

  std::vector<int> all(comp.partition_count());
  for (std::size_t p = 0; p < all.size(); ++p) all[p] = static_cast<int>(p);
  ref->prepare_root(0);
  spec->prepare_root(0);
  ref->compute_sumtable(all);
  spec->compute_sumtable(all);
  std::vector<double> lens(all.size(), 0.17), d1a(all.size()), d2a(all.size()),
      d1b(all.size()), d2b(all.size());
  ref->nr_derivatives(all, lens, d1a, d2a);
  spec->nr_derivatives(all, lens, d1b, d2b);
  for (std::size_t k = 0; k < all.size(); ++k) {
    expect_rel(d1b[k], d1a[k], 1e-10, 1.0, "engine NR d1");
    expect_rel(d2b[k], d2a[k], 1e-10, 1.0, "engine NR d2");
  }

  const auto sites_a = ref->site_loglikelihoods(0, 0);
  const auto sites_b = spec->site_loglikelihoods(0, 0);
  ASSERT_EQ(sites_a.size(), sites_b.size());
  for (std::size_t i = 0; i < sites_a.size(); ++i)
    expect_rel(sites_b[i], sites_a[i], 1e-12, 1.0, "engine per-site lnL");
}

TEST(GoldenKernels, EngineGenericVsSpecializedDna) {
  check_engine_ab(make_simulated_dna(10, 300, 150, 11));
}

TEST(GoldenKernels, EngineGenericVsSpecializedProteinMixed) {
  check_engine_ab(make_realworld_like(8, 2, 80, 120, 0.1, true, 13));
}

// --- runtime-dispatched backends --------------------------------------------
//
// Every backend table the build carries AND the host CPU supports, through
// the same generic-reference contract as the ambient-backend tests above —
// with pattern counts chosen so no backend's vector width divides them
// cleanly: counts below the widest lane count (8), odd counts, and counts
// where patterns % (2*lanes) != 0 for the two-pattern DNA paths. The
// dispatcher skips AVX-512 on hosts without it, so this compiles everywhere
// and runs what the CPU can.

/// One full kernel pass (newview + evaluate + sites + sumtable + nr) through
/// a backend table at `n` patterns, against the generic reference slices.
template <int S>
void check_backend_table(const kernel::KernelTable& kt, std::size_t n,
                         int cats, char k1, char k2, bool tiny, int T) {
  kernel::KernelRig<S> r(n, cats, tiny);
  const kernel::ChildView c1 = r.child(1, k1);
  const kernel::ChildView c2 = r.child(2, k2);

  std::vector<double> want(n * r.stride, -1.0), got(n * r.stride, -2.0);
  std::vector<std::int32_t> want_sc(n, -1), got_sc(n, -2);
  kernel::newview_slice<S>(0, n, 1, cats, c1, c2, r.p1.data(), r.p2.data(),
                           want.data(), want_sc.data());
  for (int tid = 0; tid < T; ++tid)
    kt.newview<S>()(tid, n, T, cats, c1, c2, r.p1.data(), r.p2.data(),
                    r.p1t.data(), r.p2t.data(), got.data(), got_sc.data());
  EXPECT_EQ(got_sc, want_sc) << "scale counts must be bit-compatible";
  const double nv_scale = max_abs(want);
  for (std::size_t k = 0; k < want.size(); ++k)
    expect_rel(got[k], want[k], 1e-12, nv_scale, "newview CLV entry");

  const double want_lnl =
      kernel::evaluate_slice<S>(0, n, 1, cats, c1, c2, r.p2.data(),
                                r.freqs.data(), r.weights.data());
  double got_lnl = 0.0;
  for (int tid = 0; tid < T; ++tid)
    got_lnl += kt.evaluate<S>()(tid, n, T, cats, c1, c2, r.p2.data(),
                                r.p2t.data(), r.freqs.data(),
                                r.weights.data(), kernel::RateView{});
  expect_rel(got_lnl, want_lnl, 1e-12, 1.0, "evaluate lnL");

  std::vector<double> want_sites(n, -1.0), got_sites(n, -2.0);
  kernel::evaluate_sites_slice<S>(0, n, 1, cats, c1, c2, r.p2.data(),
                                  r.freqs.data(), want_sites.data());
  for (int tid = 0; tid < T; ++tid)
    kt.evaluate_sites<S>()(tid, n, T, cats, c1, c2, r.p2.data(), r.p2t.data(),
                           r.freqs.data(), got_sites.data(),
                           kernel::RateView{});
  for (std::size_t i = 0; i < n; ++i)
    expect_rel(got_sites[i], want_sites[i], 1e-12, 1.0, "per-site lnL");

  // Sumtable + NR want sym tip tables on tip children.
  const kernel::ChildView su = k1 == 't' ? r.tip_sym() : r.inner1();
  const kernel::ChildView sv = k2 == 't' ? r.tip_sym() : r.inner2();
  std::vector<double> want_st(n * r.stride, -1.0), got_st(n * r.stride, -2.0);
  kernel::sumtable_slice<S>(0, n, 1, cats, su, sv, r.sym.data(),
                            want_st.data());
  for (int tid = 0; tid < T; ++tid)
    kt.sumtable<S>()(tid, n, T, cats, su, sv, r.sym.data(), r.symt.data(),
                     got_st.data());
  const double st_scale = max_abs(want_st);
  for (std::size_t k = 0; k < want_st.size(); ++k)
    expect_rel(got_st[k], want_st[k], 1e-12, st_scale, "sumtable entry");

  double want_d1 = 0.0, want_d2 = 0.0;
  kernel::nr_slice<S>(0, n, 1, cats, want_st.data(), r.exp_lam.data(),
                      r.lam.data(), r.weights.data(), &want_d1, &want_d2);
  double got_d1 = 0.0, got_d2 = 0.0;
  for (int tid = 0; tid < T; ++tid) {
    double d1 = 0.0, d2 = 0.0;
    kt.nr<S>()(tid, n, T, cats, got_st.data(), r.exp_lam.data(), r.lam.data(),
               r.weights.data(), &d1, &d2, kernel::RateView{});
    got_d1 += d1;
    got_d2 += d2;
  }
  expect_rel(got_d1, want_d1, 1e-12, 1.0, "NR d1");
  expect_rel(got_d2, want_d2, 1e-12, 1.0, "NR d2");
}

// Remainder counts: 1 and 2 are below every vector path's width; 3, 5, 7
// leave tails for both 4- and 8-lane kernels; 9 and 13 are odd with at least
// one full 2-pattern (and one 8-lane) block; 41 matches the ambient suite.
constexpr std::size_t kRemainderCounts[] = {1, 2, 3, 5, 7, 9, 13, 41};

TEST(GoldenKernels, AllBackendsDnaRemainderCounts) {
  for (const kernel::KernelTable* kt : kernel::available_backends()) {
    SCOPED_TRACE(kt->name);
    for (std::size_t n : kRemainderCounts)
      for (const Case& c : kChildCases)
        for (int T : {1, 3})
          check_backend_table<4>(*kt, n, 2, c.k1, c.k2, false, T);
  }
}

TEST(GoldenKernels, AllBackendsProteinRemainderCounts) {
  for (const kernel::KernelTable* kt : kernel::available_backends()) {
    SCOPED_TRACE(kt->name);
    for (std::size_t n : kRemainderCounts)
      for (const Case& c : kChildCases)
        check_backend_table<20>(*kt, n, 2, c.k1, c.k2, false, 1);
  }
}

TEST(GoldenKernels, AllBackendsScalingForced) {
  for (const kernel::KernelTable* kt : kernel::available_backends()) {
    SCOPED_TRACE(kt->name);
    for (std::size_t n : {std::size_t{5}, std::size_t{13}}) {
      for (const Case& c : kChildCases) {
        check_backend_table<4>(*kt, n, 4, c.k1, c.k2, true, 2);
        check_backend_table<20>(*kt, n, 4, c.k1, c.k2, true, 1);
      }
    }
  }
}

TEST(GoldenKernels, BackendsAgreeOnLnlAcrossLaneCounts) {
  // Cross-backend contract: the same evaluate over the same buffers must
  // agree across every available backend to 1e-12 relative (they differ
  // only in FMA/reduction association).
  const auto backends = kernel::available_backends();
  ASSERT_FALSE(backends.empty());
  for (std::size_t n : kRemainderCounts) {
    kernel::KernelRig<4> r4(n, 3);
    kernel::KernelRig<20> r20(n, 3);
    double base4 = 0.0, base20 = 0.0;
    for (std::size_t b = 0; b < backends.size(); ++b) {
      SCOPED_TRACE(backends[b]->name);
      const double lnl4 = backends[b]->evaluate4(
          0, n, 1, 3, r4.inner1(), r4.inner2(), r4.p2.data(), r4.p2t.data(),
          r4.freqs.data(), r4.weights.data(), kernel::RateView{});
      const double lnl20 = backends[b]->evaluate20(
          0, n, 1, 3, r20.inner1(), r20.inner2(), r20.p2.data(),
          r20.p2t.data(), r20.freqs.data(), r20.weights.data(),
          kernel::RateView{});
      if (b == 0) {
        base4 = lnl4;
        base20 = lnl20;
      } else {
        expect_rel(lnl4, base4, 1e-12, 1.0, "cross-backend DNA lnL");
        expect_rel(lnl20, base20, 1e-12, 1.0, "cross-backend protein lnL");
      }
    }
  }
}

// --- weighted-category (+R) and invariant-sites (+I) paths ------------------

/// Backend evaluate / evaluate_sites / nr against the generic reference
/// slices under a weighted-category + invariant-sites RateView — the +R/+I
/// path every backend must agree on to 1e-12 relative.
template <int S>
void check_backend_table_rates(const kernel::KernelTable& kt, std::size_t n,
                               int cats, int T) {
  kernel::KernelRig<S> r(n, cats);
  const kernel::ChildView cu = r.inner1();
  const kernel::ChildView cv = r.inner2();
  const kernel::RateView rv = r.rate_view();

  const double want_lnl =
      kernel::evaluate_slice<S>(0, n, 1, cats, cu, cv, r.p2.data(),
                                r.freqs.data(), r.weights.data(), rv);
  double got_lnl = 0.0;
  for (int tid = 0; tid < T; ++tid)
    got_lnl += kt.evaluate<S>()(tid, n, T, cats, cu, cv, r.p2.data(),
                                r.p2t.data(), r.freqs.data(),
                                r.weights.data(), rv);
  expect_rel(got_lnl, want_lnl, 1e-12, 1.0, "+R+I evaluate lnL");

  std::vector<double> want_sites(n, -1.0), got_sites(n, -2.0);
  kernel::evaluate_sites_slice<S>(0, n, 1, cats, cu, cv, r.p2.data(),
                                  r.freqs.data(), want_sites.data(), rv);
  for (int tid = 0; tid < T; ++tid)
    kt.evaluate_sites<S>()(tid, n, T, cats, cu, cv, r.p2.data(), r.p2t.data(),
                           r.freqs.data(), got_sites.data(), rv);
  for (std::size_t i = 0; i < n; ++i)
    expect_rel(got_sites[i], want_sites[i], 1e-12, 1.0, "+R+I per-site lnL");

  // NR: category weights ride in the premultiplied exp table (exp_lam_w);
  // the view carries the invariant term and the root scale counts.
  std::vector<double> st(n * r.stride, -1.0);
  kernel::sumtable_slice<S>(0, n, 1, cats, r.inner1(), r.inner2(),
                            r.sym.data(), st.data());
  const kernel::RateView nrv = r.nr_rate_view();
  double want_d1 = 0.0, want_d2 = 0.0;
  kernel::nr_slice<S>(0, n, 1, cats, st.data(), r.exp_lam_w.data(),
                      r.lam.data(), r.weights.data(), &want_d1, &want_d2,
                      nrv);
  double got_d1 = 0.0, got_d2 = 0.0;
  for (int tid = 0; tid < T; ++tid) {
    double d1 = 0.0, d2 = 0.0;
    kt.nr<S>()(tid, n, T, cats, st.data(), r.exp_lam_w.data(), r.lam.data(),
               r.weights.data(), &d1, &d2, nrv);
    got_d1 += d1;
    got_d2 += d2;
  }
  expect_rel(got_d1, want_d1, 1e-12, 1.0, "+R+I NR d1");
  expect_rel(got_d2, want_d2, 1e-12, 1.0, "+R+I NR d2");
}

TEST(GoldenKernels, AllBackendsWeightedRatesDna) {
  for (const kernel::KernelTable* kt : kernel::available_backends()) {
    SCOPED_TRACE(kt->name);
    for (std::size_t n : kRemainderCounts)
      for (int T : {1, 3}) check_backend_table_rates<4>(*kt, n, 4, T);
  }
}

TEST(GoldenKernels, AllBackendsWeightedRatesProtein) {
  for (const kernel::KernelTable* kt : kernel::available_backends()) {
    SCOPED_TRACE(kt->name);
    for (std::size_t n : kRemainderCounts)
      check_backend_table_rates<20>(*kt, n, 2, 1);
  }
}

TEST(GoldenKernels, UniformWeightsMatchLegacyPath) {
  // The weighted branch with exactly-uniform 1/cats weights and no +I term
  // must agree with the historic sum-then-scale expression to round-off
  // (they associate the category average differently, so equality is 1e-12
  // relative, not bitwise — the engine keeps plain Gamma bitwise by passing
  // a null view instead).
  for (std::size_t n : kRemainderCounts) {
    kernel::KernelRig<4> r(n, 4);
    const std::vector<double> uniform(4, 0.25);
    kernel::RateView rv;
    rv.cat_w = uniform.data();
    const double legacy =
        kernel::evaluate_slice<4>(0, n, 1, 4, r.inner1(), r.inner2(),
                                  r.p2.data(), r.freqs.data(),
                                  r.weights.data());
    const double weighted =
        kernel::evaluate_slice<4>(0, n, 1, 4, r.inner1(), r.inner2(),
                                  r.p2.data(), r.freqs.data(),
                                  r.weights.data(), rv);
    expect_rel(weighted, legacy, 1e-12, 1.0, "uniform-weight lnL");
  }
}

TEST(GoldenKernels, SimdBackendReportsLanes) {
  // Sanity: the ambient backend's lane count divides both state counts (the
  // 8-lane AVX-512 kernels are dispatch-only, never the ambient templates).
  EXPECT_EQ(4 % simd::kLanes, 0);
  EXPECT_EQ(20 % simd::kLanes, 0);
  // And the runtime dispatcher always lands on a usable table.
  const kernel::KernelTable& kt = kernel::active_kernels();
  EXPECT_GE(kt.lanes, 1);
  EXPECT_NE(kt.newview4, nullptr);
  EXPECT_NE(kt.nr20, nullptr);
  SUCCEED() << "ambient simd backend: " << simd::kBackend
            << "; dispatched: " << kernel::describe_active_backend();
}

}  // namespace
}  // namespace plk
