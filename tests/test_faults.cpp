// Chaos suite for the fault-tolerance layer (util/fault.hpp injection +
// core containment + the search's degradation ladder + checkpoint ring +
// ThreadTeam watchdog).
//
// The central invariant: a search that absorbs an injected fault must
// produce results IDENTICAL to the fault-free run — same final lnL (bit
// equal), same accepted moves, same tree — because every recovery path
// (wave rewind, degraded retry, checkpoint fallback) re-executes the exact
// same deterministic command stream. Set PLK_CHAOS_SEED to sweep the
// injection points across different commands of the same workloads (CI runs
// a nightly sweep); any seed must pass.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <string>

#include "plk.hpp"

namespace plk {
namespace {

std::uint64_t chaos_seed() {
  const char* s = std::getenv("PLK_CHAOS_SEED");
  if (s == nullptr || *s == '\0') return 1;
  return std::strtoull(s, nullptr, 10);
}

std::vector<PartitionModel> make_models(const CompressedAlignment& comp) {
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0,
                        4);
  return models;
}

struct Rig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  Rig(int taxa, std::size_t sites, std::size_t plen, std::uint64_t seed,
      std::optional<Tree> start = std::nullopt, EngineOptions eo = [] {
        EngineOptions o;
        o.threads = 2;
        o.unlinked_branch_lengths = true;
        return o;
      }()) {
    data = make_simulated_dna(taxa, sites, plen, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    engine = std::make_unique<Engine>(
        *comp, start ? std::move(*start) : data.true_tree, make_models(*comp),
        eo);
  }
};

SearchOptions quick_search(int radius = 3, int rounds = 2) {
  SearchOptions so;
  so.batched_candidates = true;
  so.spr_radius = radius;
  so.max_rounds = rounds;
  so.optimize_model = false;  // model phases are shared code; keep tests fast
  return so;
}

std::string tree_text(Engine& e) {
  e.sync_tree_lengths();
  return write_newick(e.tree());
}

struct Outcome {
  double lnl = 0.0;
  int moves = 0;
  int rounds = 0;
  std::uint64_t cands = 0;
  std::string tree;
  std::uint64_t numeric_faults = 0;
  std::uint64_t wave_faults = 0;
  bool interrupted = false;
};

/// One full batched search from a deterministic random start; two calls
/// with the same seed and options run the identical workload.
Outcome run_search(std::uint64_t seed, const SearchOptions& so) {
  Rng r(seed);
  Rig rig(9, 300, 100, seed + 1, random_tree(default_labels(9), r));
  const SearchResult res = search_ml(*rig.engine, so);
  Outcome o;
  o.lnl = res.final_lnl;
  o.moves = res.accepted_moves;
  o.rounds = res.rounds;
  o.cands = res.candidates_scored;
  o.tree = tree_text(*rig.engine);
  o.numeric_faults = rig.engine->stats().numeric_faults;
  o.wave_faults = res.batch.wave_faults;
  o.interrupted = res.interrupted;
  return o;
}

void expect_identical(const Outcome& faulted, const Outcome& clean) {
  EXPECT_EQ(faulted.lnl, clean.lnl)
      << "lnL diverged by " << std::abs(faulted.lnl - clean.lnl);
  EXPECT_EQ(faulted.moves, clean.moves);
  EXPECT_EQ(faulted.rounds, clean.rounds);
  EXPECT_EQ(faulted.cands, clean.cands);
  EXPECT_EQ(faulted.tree, clean.tree);
}

/// Inject `site` once mid-search (shot number seed-driven) and require the
/// outcome to match the fault-free run exactly.
void expect_fault_transparent(fault::Site site, bool expect_numeric) {
  const SearchOptions so = quick_search();
  const Outcome clean = run_search(501, so);
  ASSERT_EQ(clean.numeric_faults, 0u);
  ASSERT_EQ(clean.wave_faults, 0u);

  Outcome faulted;
  std::uint64_t fired = 0;
  {
    fault::ScopedFault f(site,
                         fault::fire_at_for_seed(site, chaos_seed(), 10));
    faulted = run_search(501, so);
    fired = fault::fired(site);
  }
  ASSERT_GE(fired, 1u) << "injected fault never fired";
  expect_identical(faulted, clean);
  EXPECT_GE(faulted.wave_faults, 1u);
  if (expect_numeric) EXPECT_GE(faulted.numeric_faults, 1u);
}

// --- numerical-fault containment + degradation ladder ------------------------

TEST(FaultTolerance, WaveEvaluationNanIsTransparent) {
  expect_fault_transparent(fault::Site::kWaveEvalNan, /*expect_numeric=*/true);
}

TEST(FaultTolerance, WaveDerivativeNanIsTransparent) {
  expect_fault_transparent(fault::Site::kWaveNrNan, /*expect_numeric=*/true);
}

TEST(FaultTolerance, ClvSlotAllocationFailureIsTransparent) {
  expect_fault_transparent(fault::Site::kClvAlloc, /*expect_numeric=*/false);
}

// --- mid-assembly throw: reserved tip tables roll back (regression) ----------

TEST(FaultTolerance, AssemblyThrowRollsBackAndRetrySucceeds) {
  Rig rig(8, 240, 80, 77);
  const double want = rig.engine->loglikelihood(0);
  rig.engine->context().invalidate_all();
  {
    fault::ScopedFault f(fault::Site::kAssemblyThrow, 1);
    EXPECT_THROW(rig.engine->loglikelihood(0), std::bad_alloc);
  }
  // Without the rollback the aborted command's reserved tip-table entries
  // would stay pinned/empty-keyed in the LRU and poison this retry.
  EXPECT_EQ(rig.engine->loglikelihood(0), want);
  EXPECT_GE(rig.engine->stats().assembly_rollbacks, 1u);
}

// --- checkpoint I/O faults ----------------------------------------------------

TEST(FaultTolerance, CheckpointWriteFaultDoesNotPerturbSearch) {
  const std::string base = std::string(::testing::TempDir());
  const auto run_with = [&](const char* name,
                            bool faulted) {
    const std::string path = base + name;
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
    SearchOptions so = quick_search();
    so.checkpoint_path = path;
    if (!faulted) return run_search(601, so);
    // Persistent fault: EVERY checkpoint write of the run fails; the
    // search must shrug all of them off.
    fault::ScopedFault f(fault::Site::kCheckpointIo, 1, /*repeat=*/true);
    Outcome o = run_search(601, so);
    EXPECT_GE(fault::fired(fault::Site::kCheckpointIo), 1u);
    return o;
  };
  const Outcome clean = run_with("plk_faults_ckpt_clean.txt", false);
  const Outcome faulted = run_with("plk_faults_ckpt_fault.txt", true);
  expect_identical(faulted, clean);
}

// --- graceful stop + kill-and-resume -----------------------------------------

TEST(FaultTolerance, StopFlagInterruptsSequentialSearchAtRoundBoundary) {
  Rng r(31);
  Rig rig(9, 300, 100, 32, random_tree(default_labels(9), r));
  SearchOptions so = quick_search(3, 3);
  so.batched_candidates = false;
  so.epsilon = 1e-9;
  std::atomic<bool> stop{true};
  so.stop_flag = &stop;
  const SearchResult res = search_ml(*rig.engine, so);
  EXPECT_TRUE(res.interrupted);
  EXPECT_EQ(res.rounds, 1);
}

TEST(FaultTolerance, KillAndResumeIsBitIdentical) {
  const std::string base = std::string(::testing::TempDir());
  const std::string path_a = base + "plk_faults_resume_a.txt";
  const std::string path_b = base + "plk_faults_resume_b.txt";
  for (const auto& p : {path_a, path_b}) {
    std::remove(p.c_str());
    std::remove((p + ".1").c_str());
  }

  SearchOptions so = quick_search(3, 3);
  so.epsilon = 1e-9;  // run all 3 rounds, deterministically
  so.checkpoint_every = 1;

  const auto make_rig = [] {
    Rng r(71);
    return std::make_unique<Rig>(9, 300, 100, 72,
                                 random_tree(default_labels(9), r));
  };

  // A: the uninterrupted reference run (checkpointing on — the write
  // protocol's canonicalization is part of the trajectory being pinned).
  auto a = make_rig();
  SearchOptions so_a = so;
  so_a.checkpoint_path = path_a;
  const SearchResult ra = search_ml(*a->engine, so_a);
  ASSERT_GT(ra.rounds, 1);

  // B, phase 1: same run killed (cooperatively) at the first round
  // boundary, leaving its checkpoint behind.
  auto b1 = make_rig();
  SearchOptions so_b = so;
  so_b.checkpoint_path = path_b;
  std::atomic<bool> stop{true};
  so_b.stop_flag = &stop;
  const SearchResult rb1 = search_ml(*b1->engine, so_b);
  EXPECT_TRUE(rb1.interrupted);
  ASSERT_LT(rb1.rounds, ra.rounds);

  // B, phase 2: a fresh process (fresh rig) resumes from the checkpoint
  // and must land exactly where A did — same lnL bit for bit, same moves,
  // same tree.
  auto b2 = make_rig();
  SearchOptions so_r = so;
  so_r.checkpoint_path = path_b;
  so_r.resume = true;
  const SearchResult rb2 = search_ml(*b2->engine, so_r);
  EXPECT_FALSE(rb2.interrupted);
  EXPECT_EQ(rb2.final_lnl, ra.final_lnl);
  EXPECT_EQ(rb2.accepted_moves, ra.accepted_moves);
  EXPECT_EQ(rb2.rounds, ra.rounds);
  EXPECT_EQ(rb2.candidates_scored, ra.candidates_scored);
  EXPECT_EQ(tree_text(*b2->engine), tree_text(*a->engine));

  // Resuming A's terminal (converged) checkpoint reports the finished
  // result instead of searching further.
  auto a2 = make_rig();
  SearchOptions so_t = so;
  so_t.checkpoint_path = path_a;
  so_t.resume = true;
  const SearchResult rt = search_ml(*a2->engine, so_t);
  EXPECT_EQ(rt.final_lnl, ra.final_lnl);
  EXPECT_EQ(rt.rounds, ra.rounds);
  EXPECT_EQ(rt.accepted_moves, ra.accepted_moves);
  EXPECT_EQ(tree_text(*a2->engine), tree_text(*a->engine));
}

// --- worker stall + watchdog --------------------------------------------------

TEST(FaultTolerance, WatchdogDumpsOnStalledWorkerAndResultIsUnchanged) {
  EngineOptions eo;
  eo.threads = 2;
  eo.unlinked_branch_lengths = true;
  eo.watchdog_seconds = 0.05;
  Rig rig(8, 240, 80, 91, std::nullopt, eo);
  const double want = rig.engine->loglikelihood(0);
  const std::uint64_t dumps_before = rig.engine->team_stats().watchdog_dumps;

  rig.engine->context().invalidate_all();
  fault::set_stall_seconds(0.3);
  double got = 0.0;
  {
    fault::ScopedFault f(fault::Site::kWorkerStall, 1);
    got = rig.engine->loglikelihood(0);
  }
  fault::set_stall_seconds(0.2);
  EXPECT_EQ(got, want);  // a stall delays, it never corrupts
  EXPECT_GE(rig.engine->team_stats().watchdog_dumps, dumps_before + 1);
}

// --- injection bookkeeping ----------------------------------------------------

TEST(FaultInjection, DisarmedHarnessIsInert) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::arrivals(fault::Site::kWaveEvalNan), 0u);
  EXPECT_EQ(fault::fired(fault::Site::kWaveEvalNan), 0u);
}

TEST(FaultInjection, SeedMapIsDeterministicAndInRange) {
  for (std::uint64_t seed : {1ull, 2ull, 42ull, 1234567ull}) {
    for (int s = 0; s < fault::kSiteCount; ++s) {
      const auto site = static_cast<fault::Site>(s);
      const std::uint64_t a = fault::fire_at_for_seed(site, seed, 10);
      EXPECT_EQ(a, fault::fire_at_for_seed(site, seed, 10));
      EXPECT_GE(a, 1u);
      EXPECT_LE(a, 10u);
    }
  }
}

TEST(FaultInjection, ScopedFaultDisarmsOnExit) {
  {
    fault::ScopedFault f(fault::Site::kWaveEvalNan, 1000);
    EXPECT_TRUE(fault::enabled());
  }
  EXPECT_FALSE(fault::enabled());
}

}  // namespace
}  // namespace plk
