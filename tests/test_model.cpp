// Tests for model/: Jacobi eigendecomposition, discrete Gamma rates,
// substitution models and their transition matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "model/eigen.hpp"
#include "model/gamma.hpp"
#include "model/subst_model.hpp"

namespace plk {
namespace {

// --- eigen ------------------------------------------------------------------

TEST(Eigen, DiagonalMatrix) {
  Matrix a(3);
  a(0, 0) = 2;
  a(1, 1) = -1;
  a(2, 2) = 5;
  auto es = eigen_symmetric(a);
  std::vector<double> vals = es.values;
  std::sort(vals.begin(), vals.end());
  EXPECT_NEAR(vals[0], -1, 1e-12);
  EXPECT_NEAR(vals[1], 2, 1e-12);
  EXPECT_NEAR(vals[2], 5, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a(2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  auto es = eigen_symmetric(a);
  std::vector<double> vals = es.values;
  std::sort(vals.begin(), vals.end());
  EXPECT_NEAR(vals[0], 1.0, 1e-12);
  EXPECT_NEAR(vals[1], 3.0, 1e-12);
}

TEST(Eigen, ReconstructsMatrix) {
  // A = V diag(l) V^T must reproduce the input.
  Matrix a(5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i; j < 5; ++j) {
      const double v = std::sin(static_cast<double>(i * 7 + j * 3 + 1));
      a(i, j) = v;
      a(j, i) = v;
    }
  auto es = eigen_symmetric(a);
  Matrix recon(5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      double s = 0;
      for (std::size_t k = 0; k < 5; ++k)
        s += es.vectors(i, k) * es.values[k] * es.vectors(j, k);
      recon(i, j) = s;
    }
  EXPECT_LT(a.max_abs_diff(recon), 1e-10);
}

TEST(Eigen, VectorsOrthonormal) {
  Matrix a(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = i; j < 4; ++j) {
      a(i, j) = 1.0 / static_cast<double>(i + j + 1);
      a(j, i) = a(i, j);
    }
  auto es = eigen_symmetric(a);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t l = 0; l < 4; ++l) {
      double dot = 0;
      for (std::size_t i = 0; i < 4; ++i)
        dot += es.vectors(i, k) * es.vectors(i, l);
      EXPECT_NEAR(dot, k == l ? 1.0 : 0.0, 1e-10);
    }
}

TEST(Eigen, RejectsAsymmetric) {
  Matrix a(2);
  a(0, 1) = 1.0;
  EXPECT_THROW(eigen_symmetric(a), std::invalid_argument);
}

// --- incomplete gamma / quantiles --------------------------------------------

TEST(Gamma, RegularizedPKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 3.0})
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  // P(a, 0) = 0; P(a, inf) -> 1.
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.5, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(2.5, 100.0), 1.0, 1e-12);
}

TEST(Gamma, CdfQuantileRoundTrip) {
  for (double shape : {0.3, 1.0, 2.0, 8.0})
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      const double x = gamma_quantile(p, shape, shape);
      EXPECT_NEAR(gamma_cdf(x, shape, shape), p, 1e-9)
          << "shape=" << shape << " p=" << p;
    }
}

TEST(Gamma, QuantileMonotone) {
  double prev = 0;
  for (double p = 0.1; p < 1.0; p += 0.1) {
    const double x = gamma_quantile(p, 0.7, 0.7);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(Gamma, QuantileRejectsBadInput) {
  EXPECT_THROW(gamma_quantile(0.0, 1, 1), std::invalid_argument);
  EXPECT_THROW(gamma_quantile(1.0, 1, 1), std::invalid_argument);
  EXPECT_THROW(gamma_quantile(0.5, -1, 1), std::invalid_argument);
}

// --- discrete Gamma categories ------------------------------------------------

TEST(DiscreteGamma, MeanRatesAverageToOne) {
  for (double alpha : {0.1, 0.5, 1.0, 2.0, 10.0, 50.0}) {
    auto r = discrete_gamma_rates(alpha, 4, GammaMode::kMean);
    ASSERT_EQ(r.size(), 4u);
    double mean = 0;
    for (double x : r) mean += x;
    mean /= 4;
    EXPECT_NEAR(mean, 1.0, 1e-8) << "alpha=" << alpha;
  }
}

TEST(DiscreteGamma, MedianRatesAverageToOne) {
  for (double alpha : {0.3, 1.0, 5.0}) {
    auto r = discrete_gamma_rates(alpha, 4, GammaMode::kMedian);
    double mean = 0;
    for (double x : r) mean += x;
    EXPECT_NEAR(mean / 4, 1.0, 1e-10);
  }
}

TEST(DiscreteGamma, RatesIncreaseAcrossCategories) {
  auto r = discrete_gamma_rates(0.5, 4);
  for (std::size_t i = 1; i < r.size(); ++i) EXPECT_GT(r[i], r[i - 1]);
}

TEST(DiscreteGamma, YangReferenceValuesAlphaHalf) {
  // Yang (1994), table of K=4 mean-category rates for alpha = 0.5:
  // approximately 0.0334, 0.2519, 0.8203, 2.8944.
  auto r = discrete_gamma_rates(0.5, 4, GammaMode::kMean);
  EXPECT_NEAR(r[0], 0.0334, 2e-3);
  EXPECT_NEAR(r[1], 0.2519, 2e-3);
  EXPECT_NEAR(r[2], 0.8203, 2e-3);
  EXPECT_NEAR(r[3], 2.8944, 2e-3);
}

TEST(DiscreteGamma, HighAlphaApproachesUniformRates) {
  auto r = discrete_gamma_rates(99.0, 4);
  for (double x : r) EXPECT_NEAR(x, 1.0, 0.2);
}

TEST(DiscreteGamma, SingleCategoryIsOne) {
  auto r = discrete_gamma_rates(0.7, 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(DiscreteGamma, MoreCategoriesRefine) {
  auto r8 = discrete_gamma_rates(0.8, 8);
  ASSERT_EQ(r8.size(), 8u);
  double mean = 0;
  for (double x : r8) mean += x;
  EXPECT_NEAR(mean / 8, 1.0, 1e-8);
}

TEST(DiscreteGamma, RejectsBadArguments) {
  EXPECT_THROW(discrete_gamma_rates(-1.0, 4), std::invalid_argument);
  EXPECT_THROW(discrete_gamma_rates(1.0, 0), std::invalid_argument);
}

// --- substitution models -----------------------------------------------------

void check_model_sanity(const SubstModel& m) {
  const int s = m.states();
  // Rows of Q sum to zero.
  for (int i = 0; i < s; ++i) {
    double row = 0;
    for (int j = 0; j < s; ++j) row += m.rate_matrix()(i, j);
    EXPECT_NEAR(row, 0.0, 1e-10);
  }
  // Normalization: -sum_i pi_i q_ii == 1.
  double rate = 0;
  for (int i = 0; i < s; ++i) rate -= m.freqs()[i] * m.rate_matrix()(i, i);
  EXPECT_NEAR(rate, 1.0, 1e-10);
  // One eigenvalue ~ 0, the rest negative.
  int zeros = 0;
  for (double l : m.eigenvalues()) {
    if (std::abs(l) < 1e-9)
      ++zeros;
    else
      EXPECT_LT(l, 0.0);
  }
  EXPECT_EQ(zeros, 1);
}

TEST(SubstModel, Jc69Sanity) { check_model_sanity(jc69()); }
TEST(SubstModel, K80Sanity) { check_model_sanity(k80(4.0)); }
TEST(SubstModel, HkySanity) {
  check_model_sanity(hky85(2.0, {0.3, 0.2, 0.2, 0.3}));
}
TEST(SubstModel, GtrSanity) {
  check_model_sanity(gtr({1.2, 3.0, 0.8, 1.1, 3.5, 1.0},
                         {0.35, 0.15, 0.2, 0.3}));
}
TEST(SubstModel, ProteinSanity) { check_model_sanity(protein_model("WAG")); }

TEST(SubstModel, TransitionMatrixRowsSumToOne) {
  auto m = gtr({1.2, 3.0, 0.8, 1.1, 3.5, 1.0}, {0.35, 0.15, 0.2, 0.3});
  Matrix p;
  for (double t : {1e-6, 0.01, 0.1, 1.0, 10.0}) {
    m.transition_matrix(t, p);
    for (int i = 0; i < 4; ++i) {
      double row = 0;
      for (int j = 0; j < 4; ++j) {
        EXPECT_GE(p(i, j), 0.0);
        row += p(i, j);
      }
      EXPECT_NEAR(row, 1.0, 1e-9) << "t=" << t;
    }
  }
}

TEST(SubstModel, TransitionMatrixAtZeroIsIdentity) {
  auto m = hky85(2.0, {0.3, 0.2, 0.2, 0.3});
  Matrix p;
  m.transition_matrix(kBranchMin, p);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(p(i, j), i == j ? 1.0 : 0.0, 1e-5);
}

TEST(SubstModel, LongBranchReachesStationarity) {
  auto m = gtr({1.2, 3.0, 0.8, 1.1, 3.5, 1.0}, {0.35, 0.15, 0.2, 0.3});
  Matrix p;
  m.transition_matrix(90.0, p);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(p(i, j), m.freqs()[static_cast<std::size_t>(j)], 1e-6);
}

TEST(SubstModel, DetailedBalance) {
  // Reversibility: pi_i P_ij(t) == pi_j P_ji(t).
  auto m = gtr({0.7, 2.2, 1.3, 0.9, 4.0, 1.0}, {0.4, 0.1, 0.15, 0.35});
  Matrix p;
  m.transition_matrix(0.3, p);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(m.freqs()[static_cast<std::size_t>(i)] * p(i, j),
                  m.freqs()[static_cast<std::size_t>(j)] * p(j, i), 1e-12);
}

TEST(SubstModel, ChapmanKolmogorov) {
  // P(s + t) == P(s) P(t).
  auto m = k80(3.0);
  Matrix ps, pt, pst;
  m.transition_matrix(0.2, ps);
  m.transition_matrix(0.5, pt);
  m.transition_matrix(0.7, pst);
  Matrix prod = ps.multiply(pt);
  EXPECT_LT(pst.max_abs_diff(prod), 1e-10);
}

TEST(SubstModel, Jc69AnalyticTransitions) {
  // JC69: P_ii = 1/4 + 3/4 e^{-4t/3}; P_ij = 1/4 - 1/4 e^{-4t/3}.
  auto m = jc69();
  Matrix p;
  for (double t : {0.05, 0.3, 1.2}) {
    m.transition_matrix(t, p);
    const double same = 0.25 + 0.75 * std::exp(-4.0 * t / 3.0);
    const double diff = 0.25 - 0.25 * std::exp(-4.0 * t / 3.0);
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        EXPECT_NEAR(p(i, j), i == j ? same : diff, 1e-12) << "t=" << t;
  }
}

TEST(SubstModel, ProteinModelsDeterministicAndDistinct) {
  auto w1 = protein_model("WAG");
  auto w2 = protein_model("WAG");
  auto j = protein_model("JTT");
  EXPECT_EQ(w1.exchangeabilities(), w2.exchangeabilities());
  EXPECT_NE(w1.exchangeabilities(), j.exchangeabilities());
  EXPECT_EQ(w1.states(), 20);
}

TEST(SubstModel, ProteinTransitionRowsSumToOne) {
  auto m = protein_model("LG");
  Matrix p;
  m.transition_matrix(0.4, p);
  for (int i = 0; i < 20; ++i) {
    double row = 0;
    for (int j = 0; j < 20; ++j) row += p(i, j);
    EXPECT_NEAR(row, 1.0, 1e-8);
  }
}

TEST(SubstModel, SetExchangeabilityRedecomposes) {
  auto m = gtr({1, 1, 1, 1, 1, 1}, {0.25, 0.25, 0.25, 0.25});
  Matrix before, after;
  m.transition_matrix(0.2, before);
  m.set_exchangeability(1, 5.0);  // boost A<->G
  m.transition_matrix(0.2, after);
  EXPECT_GT(after(0, 2), before(0, 2));
  check_model_sanity(m);
}

TEST(SubstModel, SetFreqsRenormalizes) {
  auto m = jc69();
  m.set_freqs({2.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(m.freqs()[0], 0.4, 1e-12);
  check_model_sanity(m);
}

TEST(SubstModel, ConstructorValidation) {
  EXPECT_THROW(SubstModel(4, {1, 1, 1, 1, 1}, {0.25, 0.25, 0.25, 0.25}),
               std::invalid_argument);
  EXPECT_THROW(SubstModel(4, {1, 1, 1, 1, 1, -1}, {0.25, 0.25, 0.25, 0.25}),
               std::invalid_argument);
  EXPECT_THROW(SubstModel(4, {1, 1, 1, 1, 1, 1}, {0.25, 0.25, 0.25}),
               std::invalid_argument);
  EXPECT_THROW(SubstModel(4, {1, 1, 1, 1, 1, 1}, {0.0, 0.5, 0.25, 0.25}),
               std::invalid_argument);
}

TEST(SubstModel, MakeModelByName) {
  EXPECT_EQ(make_model("GTR").states(), 4);
  EXPECT_EQ(make_model("jc").states(), 4);
  EXPECT_EQ(make_model("HKY").states(), 4);
  EXPECT_EQ(make_model("WAG").states(), 20);
  EXPECT_EQ(make_model("prot").states(), 20);
  EXPECT_THROW(make_model("NOPE"), std::invalid_argument);
}

TEST(SubstModel, SymTransformMatchesDefinition) {
  // Row k of sym_transform must be sqrt(pi_i) V_ik where Q = left e right.
  auto m = gtr({1.5, 2.5, 0.5, 1.0, 3.0, 1.0}, {0.3, 0.25, 0.2, 0.25});
  // Validate via the sumtable identity: sum_ij pi_i a_i P_ij(t) b_j ==
  // sum_k (A a)_k (A b)_k e^{lambda_k t} for arbitrary vectors a, b.
  const double a[4] = {0.2, 0.7, 0.05, 0.6};
  const double b[4] = {0.9, 0.1, 0.33, 0.41};
  const double t = 0.37;
  Matrix p;
  m.transition_matrix(t, p);
  double direct = 0;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      direct += m.freqs()[static_cast<std::size_t>(i)] * a[i] * p(i, j) * b[j];
  double viaeigen = 0;
  const Matrix& sym = m.sym_transform();
  for (int k = 0; k < 4; ++k) {
    double x = 0, y = 0;
    for (int i = 0; i < 4; ++i) {
      x += sym(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) * a[i];
      y += sym(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) * b[i];
    }
    viaeigen +=
        x * y * std::exp(m.eigenvalues()[static_cast<std::size_t>(k)] * t);
  }
  EXPECT_NEAR(direct, viaeigen, 1e-12);
}

}  // namespace
}  // namespace plk
