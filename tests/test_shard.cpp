// Tests for the sharded EngineCore (core/core_shard.hpp,
// parallel/topology.hpp): the NUMA-aware sub-core layer between the engine
// and its thread teams.
//
// Contracts pinned here:
//   * ShardPlan::build covers every (partition, virtual tid) pair exactly
//     once, deterministically, at every (shards x threads) configuration;
//   * likelihoods, NR derivatives, and accepted search moves are
//     BIT-identical across shard counts at every tested thread count — the
//     two-level reduction tree (fixed per-vt rows, fixed-order master fold)
//     is shard-layout invariant. This includes the split-partition path
//     (one huge partition spread over all shards by vt range) and coarse
//     batch execution;
//   * an injected numeric fault in a sharded flush is attributed to the
//     owning sub-core, contained to the faulted overlay, and recoverable;
//   * checkpoints restore bit-identically across differing shard counts;
//   * ClvSlotPool's stable handles let trim() reclaim free slots that are
//     not the highest-numbered ones (the old tail-only contraction kept
//     them allocated forever);
//   * EngineOptions::shards = 0 honors the PLK_SHARDS environment override.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "plk.hpp"

namespace plk {
namespace {

/// Clear PLK_SHARDS for rigs that pin an explicit shard count, so running
/// this suite under the CI's PLK_SHARDS=2 environment cannot skew the
/// shards=1 references. Restores the previous value on scope exit.
struct ShardEnvGuard {
  std::string saved;
  bool had = false;
  ShardEnvGuard() {
    if (const char* v = std::getenv("PLK_SHARDS")) {
      saved = v;
      had = true;
    }
    unsetenv("PLK_SHARDS");
  }
  ~ShardEnvGuard() {
    if (had) setenv("PLK_SHARDS", saved.c_str(), 1);
  }
};

struct ShardRig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<EngineCore> core;

  /// Mixed DNA+protein multi-gene data: partition costs vary ~25x, so the
  /// plan exercises both whole-partition assignment and huge-partition
  /// splitting.
  ShardRig(int shards, int threads, std::uint64_t seed = 271,
           bool single_partition = false) {
    data = single_partition
               ? make_unpartitioned_dna(7, 240, seed)
               : make_mixed_multigene(7, 3, 2, 60, 200, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions) {
      SubstModel m = part.type == DataType::kDna
                         ? make_model("GTR", empirical_frequencies(part))
                         : make_model("WAG");
      models.emplace_back(std::move(m), 0.8, 4);
    }
    EngineOptions eo;
    eo.threads = threads;
    eo.shards = shards;
    eo.unlinked_branch_lengths = true;
    core = std::make_unique<EngineCore>(*comp, std::move(models), eo);
  }
};

// --- ShardPlan ---------------------------------------------------------------

std::vector<PartitionShape> demo_shapes() {
  // One huge partition (index 1) and several small ones.
  return {{120, 4, 4, 1.0}, {900, 20, 4, 1.0}, {80, 4, 4, 1.0},
          {150, 4, 4, 1.0}, {60, 20, 4, 1.0}};
}

TEST(ShardPlan, CoversEveryVtOfEveryPartitionExactlyOnce) {
  const auto shapes = demo_shapes();
  for (int N : {1, 2, 3, 4}) {
    for (int T : {1, 2, 4, 8}) {
      const ShardPlan plan = ShardPlan::build(N, T, shapes, HostTopology{});
      ASSERT_EQ(plan.shard_count(), N);
      // Every (partition, vt) must be owned by exactly one shard, and the
      // owner table must agree with the shards' slice lists.
      for (int p = 0; p < static_cast<int>(shapes.size()); ++p) {
        for (int vt = 0; vt < T; ++vt) {
          const int owner = plan.owner(p, vt);
          ASSERT_GE(owner, 0) << "N=" << N << " T=" << T;
          ASSERT_LT(owner, N);
          int claimed = 0;
          for (int s = 0; s < N; ++s)
            for (const ShardSlice& sl : plan.shard(s).slices)
              if (sl.part == p && vt >= sl.vt_begin && vt < sl.vt_end) {
                ++claimed;
                EXPECT_EQ(s, owner);
              }
          EXPECT_EQ(claimed, 1) << "p=" << p << " vt=" << vt;
        }
      }
      // Shard team sizes split T exactly when N <= T; N > T oversubscribes
      // to one thread per shard rather than dropping shards.
      int total = 0;
      for (int s = 0; s < N; ++s) {
        EXPECT_GE(plan.shard(s).threads, 1);
        total += plan.shard(s).threads;
      }
      EXPECT_EQ(total, std::max(N, T));
    }
  }
}

TEST(ShardPlan, IsDeterministic) {
  const auto shapes = demo_shapes();
  const ShardPlan a = ShardPlan::build(3, 8, shapes, HostTopology{});
  const ShardPlan b = ShardPlan::build(3, 8, shapes, HostTopology{});
  for (int s = 0; s < 3; ++s) {
    const ShardSpec& x = a.shard(s);
    const ShardSpec& y = b.shard(s);
    ASSERT_EQ(x.slices.size(), y.slices.size());
    EXPECT_EQ(x.threads, y.threads);
    for (std::size_t i = 0; i < x.slices.size(); ++i) {
      EXPECT_EQ(x.slices[i].part, y.slices[i].part);
      EXPECT_EQ(x.slices[i].vt_begin, y.slices[i].vt_begin);
      EXPECT_EQ(x.slices[i].vt_end, y.slices[i].vt_end);
    }
  }
}

// --- bit-identity across the (shards x threads) matrix -----------------------

struct RefValues {
  std::vector<double> lnl;        // per probed edge
  std::vector<double> d1, d2;     // NR at edge 0, all partitions
};

RefValues probe(EngineCore& core, const Tree& tree) {
  EvalContext ctx(core, tree);
  RefValues out;
  for (EdgeId e : {0, 3, 7}) out.lnl.push_back(ctx.loglikelihood(e));
  const int P = core.partition_count();
  std::vector<int> parts;
  std::vector<double> lens;
  for (int p = 0; p < P; ++p) {
    parts.push_back(p);
    lens.push_back(ctx.branch_lengths().get(0, p));
  }
  out.d1.assign(parts.size(), 0.0);
  out.d2.assign(parts.size(), 0.0);
  ctx.nr_derivatives_at(0, parts, lens, out.d1, out.d2);
  return out;
}

TEST(ShardBitIdentity, LnlAndDerivativesAcrossShardThreadMatrix) {
  ShardEnvGuard env;
  for (int T : {1, 2, 4, 8}) {
    ShardRig ref(1, T);
    const RefValues want = probe(*ref.core, ref.data.true_tree);
    for (int N : {2, 4}) {
      ShardRig rig(N, T);
      ASSERT_EQ(rig.core->shard_count(), N);
      const RefValues got = probe(*rig.core, rig.data.true_tree);
      for (std::size_t i = 0; i < want.lnl.size(); ++i)
        EXPECT_EQ(got.lnl[i], want.lnl[i])
            << "shards=" << N << " threads=" << T << " probe " << i;
      for (std::size_t k = 0; k < want.d1.size(); ++k) {
        EXPECT_EQ(got.d1[k], want.d1[k])
            << "shards=" << N << " threads=" << T << " partition " << k;
        EXPECT_EQ(got.d2[k], want.d2[k])
            << "shards=" << N << " threads=" << T << " partition " << k;
      }
    }
  }
}

TEST(ShardBitIdentity, SplitPartitionPathMatchesFlat) {
  // A single-partition dataset forces the huge-partition path: the one
  // partition is split by vt range across ALL shards (no whole-partition
  // assignment possible), so this pins the vt-slice replay rather than the
  // partition routing.
  ShardEnvGuard env;
  for (int T : {2, 4}) {
    ShardRig ref(1, T, 99, /*single_partition=*/true);
    const RefValues want = probe(*ref.core, ref.data.true_tree);
    for (int N : {2, 4}) {
      ShardRig rig(N, T, 99, /*single_partition=*/true);
      // One partition, N shards: with N <= T every shard owns a vt slice of
      // it (with N > T the vt boundaries leave some shards empty — allowed).
      if (N <= T)
        for (int s = 0; s < N; ++s)
          EXPECT_TRUE(rig.core->shard(s).owns_part(0))
              << "shard " << s << " owns no slice of the only partition";
      const RefValues got = probe(*rig.core, rig.data.true_tree);
      for (std::size_t i = 0; i < want.lnl.size(); ++i)
        EXPECT_EQ(got.lnl[i], want.lnl[i]) << "shards=" << N << " T=" << T;
      for (std::size_t k = 0; k < want.d1.size(); ++k) {
        EXPECT_EQ(got.d1[k], want.d1[k]);
        EXPECT_EQ(got.d2[k], want.d2[k]);
      }
    }
  }
}

TEST(ShardBitIdentity, CoarseBatchExecutionMatchesFlat) {
  // Batched evaluation across many contexts under kCoarse: per-shard owners
  // replay whole items, which must reproduce the flat engine's values
  // exactly (each vt row is computed by the same schedule spans either way).
  ShardEnvGuard env;
  const int T = 4;
  const auto run = [](ShardRig& rig) {
    rig.core->set_batch_execution(BatchExecMode::kCoarse);
    std::vector<std::unique_ptr<EvalContext>> owned;
    std::vector<EvalContext*> ctxs;
    std::vector<EdgeId> edges;
    for (int c = 0; c < 6; ++c) {
      Rng trng(7000 + static_cast<std::uint64_t>(c));
      owned.push_back(std::make_unique<EvalContext>(
          *rig.core, random_tree(rig.comp->taxon_names, trng)));
      ctxs.push_back(owned.back().get());
      edges.push_back(static_cast<EdgeId>(c));
    }
    return rig.core->evaluate_batch(ctxs, edges);
  };
  ShardRig ref(1, T);
  ShardRig rig(2, T);
  const auto want = run(ref);
  const auto got = run(rig);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t c = 0; c < want.size(); ++c)
    EXPECT_EQ(got[c], want[c]) << "context " << c;
}

TEST(ShardBitIdentity, SearchMovesIdenticalAcrossShards) {
  ShardEnvGuard env;
  SearchOptions so;
  so.spr_radius = 3;
  so.max_rounds = 2;
  const auto run = [&](int shards) {
    Dataset data = make_simulated_dna(8, 240, 80, 4242);
    auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
    std::vector<PartitionModel> models;
    for (const auto& part : comp.partitions)
      models.emplace_back(make_model("GTR", empirical_frequencies(part)), 0.8,
                          4);
    EngineOptions eo;
    eo.threads = 4;
    eo.shards = shards;
    eo.unlinked_branch_lengths = true;
    Rng trng(17);
    Engine engine(comp, random_tree(comp.taxon_names, trng),
                  std::move(models), eo);
    const SearchResult res = search_ml(engine, so);
    engine.sync_tree_lengths();
    return std::pair<SearchResult, std::string>(
        res, write_newick(engine.tree(), 10));
  };
  const auto [res1, tree1] = run(1);
  const auto [res2, tree2] = run(2);
  EXPECT_EQ(res2.final_lnl, res1.final_lnl);
  EXPECT_EQ(res2.accepted_moves, res1.accepted_moves);
  EXPECT_EQ(res2.candidates_scored, res1.candidates_scored);
  EXPECT_EQ(res2.rounds, res1.rounds);
  EXPECT_EQ(tree2, tree1);
}

// --- fault containment -------------------------------------------------------

TEST(ShardFaults, InjectedNanIsAttributedToOwningShardAndContained) {
  ShardEnvGuard env;
  ShardRig rig(2, 4);
  EvalContext parent(*rig.core, rig.data.true_tree);
  const double clean = parent.loglikelihood(0);

  ClvSlotPool pool(*rig.core);
  EvalContext overlay(parent, pool);
  const double overlay_clean = overlay.loglikelihood(0);
  EXPECT_EQ(overlay_clean, clean);

  bool thrown = false;
  {
    fault::ScopedFault f(fault::Site::kWaveEvalNan, 1);
    try {
      overlay.loglikelihood(0);
    } catch (const EngineFault& e) {
      thrown = true;
      ASSERT_FALSE(e.records().empty());
      const FaultRecord& r = e.records().front();
      EXPECT_TRUE(r.overlay);
      // Sharded core: the record names the sub-core owning the poisoned
      // partition.
      EXPECT_GE(r.shard, 0);
      EXPECT_LT(r.shard, rig.core->shard_count());
      EXPECT_EQ(r.shard, rig.core->shard_plan().primary_owner(r.partition));
    }
  }
  ASSERT_TRUE(thrown) << "injected fault did not surface";
  // Containment: the parent (a sibling context on the same core) still
  // evaluates cleanly and bit-identically, and the invalidated overlay
  // recomputes the clean value.
  EXPECT_EQ(parent.loglikelihood(0), clean);
  overlay.rebind(parent);
  EXPECT_EQ(overlay.loglikelihood(0), clean);
}

// --- checkpoints across shard counts -----------------------------------------

TEST(ShardCheckpoint, RoundTripAcrossDifferingShardCounts) {
  ShardEnvGuard env;
  const auto build = [](int shards, int threads) {
    Dataset data = make_simulated_dna(8, 300, 100, 1234);
    auto comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions)
      models.emplace_back(make_model("GTR", empirical_frequencies(part)), 0.7,
                          4);
    EngineOptions eo;
    eo.threads = threads;
    eo.shards = shards;
    eo.unlinked_branch_lengths = true;
    Rng trng(0xbeef);
    auto engine = std::make_unique<Engine>(
        *comp, random_tree(comp->taxon_names, trng), std::move(models), eo);
    return std::pair(std::move(comp), std::move(engine));
  };

  // Fixed global thread count throughout: the sharded engine's bit-identity
  // contract holds across SHARD counts at a given T (T is the reduction-row
  // width; changing it regroups the fold and may shift the last ulp).
  auto [comp1, flat] = build(1, 4);
  const double want = flat->loglikelihood(0);
  const std::string ckpt = serialize_checkpoint(*flat);

  // Restore into a sharded engine: the checkpoint carries only logical
  // state, and the sharded reduction is bit-identical, so the restored
  // likelihood matches exactly.
  auto [comp2, sharded] = build(2, 4);
  apply_checkpoint(*sharded, ckpt);
  EXPECT_EQ(sharded->loglikelihood(0), want);

  // And back: serialize the sharded engine, restore into a flat one.
  const std::string ckpt2 = serialize_checkpoint(*sharded);
  auto [comp3, flat2] = build(1, 4);
  apply_checkpoint(*flat2, ckpt2);
  EXPECT_EQ(flat2->loglikelihood(0), want);

  // A wider shard split restores identically too.
  auto [comp4, wide] = build(4, 4);
  apply_checkpoint(*wide, ckpt2);
  EXPECT_EQ(wide->loglikelihood(0), want);
}

// --- ClvSlotPool stable handles ----------------------------------------------

TEST(ShardPool, TrimReclaimsNonTailFreeSlots) {
  ShardEnvGuard env;
  ShardRig rig(1, 1);
  ClvSlotPool pool(*rig.core, /*soft_cap=*/0);
  const auto a = pool.acquire(0);
  const auto b = pool.acquire(0);
  const auto c = pool.acquire(0);
  EXPECT_EQ(a.slot, 0);
  EXPECT_EQ(b.slot, 1);
  EXPECT_EQ(c.slot, 2);
  ASSERT_EQ(pool.slots_allocated(), 3u);

  // Free the MIDDLE slot: under the old tail-only contraction this slot
  // could never be reclaimed while slot 2 stayed in use; stable handles let
  // trim() erase it wherever it sits.
  pool.release(0, b.slot);
  pool.trim();
  EXPECT_EQ(pool.slots_allocated(), 2u);
  EXPECT_EQ(pool.slots_in_use(), 2u);

  // The surviving leases are untouched and the freed id is NOT resurrected:
  // fresh ids keep growing monotonically, so a stale handle can never alias
  // a new lease.
  const auto d = pool.acquire(0);
  EXPECT_EQ(d.slot, 3);
  pool.release(0, a.slot);
  pool.release(0, c.slot);
  pool.release(0, d.slot);
  pool.trim();
  EXPECT_EQ(pool.slots_allocated(), 0u);
}

// --- environment override + stats -------------------------------------------

TEST(ShardOptions, AutoShardsHonorsEnvironment) {
  ShardEnvGuard env;
  setenv("PLK_SHARDS", "3", 1);
  ShardRig rig(0, 4);  // shards = 0 -> auto
  EXPECT_EQ(rig.core->shard_count(), 3);
  unsetenv("PLK_SHARDS");
  ShardRig flat(0, 4);
  EXPECT_EQ(flat.core->shard_count(), 1);
}

TEST(ShardStats, FanOutAccountingAndLogicalSyncs) {
  ShardEnvGuard env;
  ShardRig rig(2, 4);
  EvalContext ctx(*rig.core, rig.data.true_tree);
  rig.core->reset_stats();
  const auto sync_before = rig.core->team_stats().sync_count;
  ctx.loglikelihood(0);
  // One flush = ONE logical sync event regardless of how many shard teams
  // it engaged (the flat engine's accounting, preserved).
  EXPECT_EQ(rig.core->team_stats().sync_count - sync_before,
            rig.core->stats().commands);
  // Multi-partition full-traversal flush engages both shards.
  EXPECT_GE(rig.core->stats().shard_fanouts, 1u);
  EXPECT_GE(rig.core->stats().shard_team_syncs, rig.core->stats().commands);
}

}  // namespace
}  // namespace plk
