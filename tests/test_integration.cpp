// End-to-end integration tests through the public Analysis API: file I/O ->
// partition parsing -> compression -> engine -> optimization/search, across
// strategies, thread counts and branch-length modes. These are the paths the
// examples and benches run.
#include <gtest/gtest.h>

#include <cmath>

#include "plk.hpp"

namespace plk {
namespace {

TEST(Integration, FullPipelineFromTextFormats) {
  // Simulate, serialize through FASTA + partition file text, parse back,
  // analyze — the workflow of a real user.
  Dataset d = make_simulated_dna(8, 600, 200, 2025);
  const std::string fasta = write_fasta(d.alignment);
  const std::string part_text = d.scheme.to_string();

  Alignment aln = read_fasta(fasta);
  PartitionScheme scheme = PartitionScheme::parse(part_text);
  scheme.validate(aln.site_count());

  AnalysisOptions opts;
  opts.threads = 2;
  Analysis an(aln, scheme, opts, d.true_tree);
  const double before = an.loglikelihood();
  auto res = an.optimize_parameters();
  EXPECT_GT(res.lnl, before);
  EXPECT_GT(res.engine_stats.commands, 0u);
  // Output tree parses back with all taxa.
  Tree out = parse_newick(res.newick, d.true_tree.labels());
  EXPECT_EQ(out.tip_count(), 8);
}

class StrategyThreads
    : public ::testing::TestWithParam<std::tuple<Strategy, int, bool>> {};

TEST_P(StrategyThreads, OptimizeParametersConvergesEverywhere) {
  const auto [strategy, threads, unlinked] = GetParam();
  Dataset d = make_simulated_dna(8, 400, 100, 31415);
  AnalysisOptions opts;
  opts.threads = threads;
  opts.strategy = strategy;
  opts.per_partition_branch_lengths = unlinked;
  opts.model_opts.optimize_rates = false;
  Analysis an(d.alignment, d.scheme, opts, d.true_tree);
  const double before = an.loglikelihood();
  auto res = an.optimize_parameters();
  EXPECT_GT(res.lnl, before);
  EXPECT_TRUE(std::isfinite(res.lnl));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrategyThreads,
    ::testing::Combine(::testing::Values(Strategy::kOldPar,
                                         Strategy::kNewPar),
                       ::testing::Values(1, 4), ::testing::Bool()));

TEST(Integration, StrategiesAgreeOnFinalLikelihood) {
  Dataset d = make_simulated_dna(8, 500, 125, 11);
  double lnl[2];
  for (int i = 0; i < 2; ++i) {
    AnalysisOptions opts;
    opts.threads = 3;
    opts.strategy = i == 0 ? Strategy::kOldPar : Strategy::kNewPar;
    opts.model_opts.optimize_rates = false;
    Analysis an(d.alignment, d.scheme, opts, d.true_tree);
    lnl[i] = an.optimize_parameters().lnl;
  }
  EXPECT_NEAR(lnl[0], lnl[1], 0.1);
}

TEST(Integration, ThreadCountDoesNotChangeResult) {
  Dataset d = make_simulated_dna(10, 600, 150, 13);
  double ref = 0;
  for (int threads : {1, 2, 8}) {
    AnalysisOptions opts;
    opts.threads = threads;
    opts.model_opts.optimize_rates = false;
    Analysis an(d.alignment, d.scheme, opts, d.true_tree);
    const double lnl = an.optimize_parameters().lnl;
    if (threads == 1)
      ref = lnl;
    else
      EXPECT_NEAR(lnl, ref, 1e-4 * std::abs(ref));
  }
}

TEST(Integration, SearchFromRandomStartViaAnalysis) {
  Dataset d = make_simulated_dna(8, 800, 200, 17);
  AnalysisOptions opts;
  opts.threads = 4;
  opts.search.max_rounds = 2;
  opts.search.spr_radius = 4;
  opts.search.model_opts.optimize_rates = false;
  opts.model_opts.optimize_rates = false;
  Analysis an(d.alignment, d.scheme, opts);  // random start tree
  auto res = an.run_search();
  EXPECT_GT(res.search.candidates_scored, 0u);
  // The searched tree should be close to the truth on clean data.
  Tree found = parse_newick(res.newick, d.true_tree.labels());
  EXPECT_LE(rf_normalized(found, d.true_tree), 0.4);
}

TEST(Integration, GappyRealWorldLikeAnalysis) {
  Dataset d = make_realworld_like(14, 8, 80, 400, 0.25, false, 19);
  AnalysisOptions opts;
  opts.threads = 4;
  opts.model_opts.optimize_rates = false;
  Analysis an(d.alignment, d.scheme, opts, d.true_tree);
  auto res = an.optimize_parameters();
  EXPECT_TRUE(std::isfinite(res.lnl));
}

TEST(Integration, ProteinAnalysis) {
  Dataset d = make_realworld_like(6, 3, 60, 150, 0.0, true, 21);
  AnalysisOptions opts;
  opts.threads = 2;
  Analysis an(d.alignment, d.scheme, opts, d.true_tree);
  const double before = an.loglikelihood();
  auto res = an.optimize_parameters();
  EXPECT_GT(res.lnl, before);
}

TEST(Integration, MixedDnaProteinPartitions) {
  // Concatenate DNA and protein genes in one analysis (the case the paper's
  // cyclic pattern distribution was designed for).
  Rng rng(23);
  Tree tree = random_tree(6, rng);
  std::vector<SimPartition> parts;
  parts.push_back(SimPartition{"dna1", jc69(), 300, 1.0, 8, 1.0, {}});
  parts.push_back(
      SimPartition{"prot", protein_model("WAG"), 120, 0.8, 8, 1.0, {}});
  parts.push_back(SimPartition{"dna2", k80(2.5), 200, 1.2, 8, 1.0, {}});
  Alignment aln = simulate(tree, parts, rng);
  PartitionScheme scheme = simulate_scheme(parts);

  AnalysisOptions opts;
  opts.threads = 3;
  opts.model_opts.optimize_rates = false;
  Analysis an(aln, scheme, opts, tree);
  const double before = an.loglikelihood();
  auto res = an.optimize_parameters();
  EXPECT_GT(res.lnl, before);
  EXPECT_EQ(an.engine().partition_count(), 3);
  EXPECT_EQ(an.engine().model(1).model().states(), 20);
}

TEST(Integration, EmpiricalFrequenciesAreSane) {
  Dataset d = make_simulated_dna(8, 2000, 2000, 29);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  auto freqs = empirical_frequencies(comp.partitions[0]);
  ASSERT_EQ(freqs.size(), 4u);
  double sum = 0;
  for (double f : freqs) {
    EXPECT_GT(f, 0.05);
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Integration, InstrumentationExposesImbalanceSignals) {
  Dataset d = make_simulated_dna(8, 800, 100, 37);
  AnalysisOptions opts;
  opts.threads = 4;
  opts.strategy = Strategy::kOldPar;
  opts.model_opts.optimize_rates = false;
  Analysis an(d.alignment, d.scheme, opts, d.true_tree);
  auto res = an.optimize_parameters();
  EXPECT_GT(res.team_stats.sync_count, 0u);
  EXPECT_GT(res.team_stats.critical_path_seconds, 0.0);
  EXPECT_GE(res.team_stats.imbalance_seconds, 0.0);
}

TEST(Integration, SeparateAnalysesAreIndependent) {
  Dataset d = make_simulated_dna(6, 300, 100, 41);
  AnalysisOptions opts;
  Analysis a(d.alignment, d.scheme, opts, d.true_tree);
  Analysis b(d.alignment, d.scheme, opts, d.true_tree);
  EXPECT_DOUBLE_EQ(a.loglikelihood(), b.loglikelihood());
  a.optimize_parameters();
  // b untouched by a's optimization.
  Analysis c(d.alignment, d.scheme, opts, d.true_tree);
  EXPECT_DOUBLE_EQ(b.loglikelihood(), c.loglikelihood());
}

}  // namespace
}  // namespace plk
