// Engine-level tests of the rate-heterogeneity generalization: free-rate
// (+R) and invariant-sites (+I) models driven end-to-end through the
// EngineCore — determinism across the (shards x threads) matrix and batch
// execution modes, equivalence of the RateModel Gamma path with the historic
// constructor, +R/+I checkpoint round trips (including mid-optimization),
// and parameter recovery on data simulated under a known free-rate mixture.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "plk.hpp"

namespace plk {
namespace {

/// Clear PLK_SHARDS so explicit shard counts in rigs are not overridden by
/// the CI environment (same guard as test_shard.cpp).
struct ShardEnvGuard {
  std::string saved;
  bool had = false;
  ShardEnvGuard() {
    if (const char* v = std::getenv("PLK_SHARDS")) {
      saved = v;
      had = true;
    }
    unsetenv("PLK_SHARDS");
  }
  ~ShardEnvGuard() {
    if (had) setenv("PLK_SHARDS", saved.c_str(), 1);
  }
};

/// Per-partition +R4+I models with deterministic, deliberately non-uniform
/// rates and weights, so the weighted-category and invariant-site kernel
/// paths are genuinely exercised (uniform weights would mask mix-ups).
std::vector<PartitionModel> freerate_models(const CompressedAlignment& comp) {
  std::vector<PartitionModel> models;
  int p = 0;
  for (const auto& part : comp.partitions) {
    const std::string family =
        part.type == DataType::kDna ? "GTR" : "WAG";
    const ModelSpec spec = parse_model_spec(family + "+R4+I");
    RateModel rm = make_rate_model(spec);
    rm.set_free({0.2 + 0.05 * p, 0.7, 1.6, 4.0}, {0.4, 0.3, 0.2, 0.1});
    rm.set_p_inv(0.10 + 0.02 * p);
    models.emplace_back(make_subst_model(spec, empirical_frequencies(part)),
                        std::move(rm));
    ++p;
  }
  return models;
}

struct RateRig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<EngineCore> core;

  RateRig(int shards, int threads, std::uint64_t seed = 4711) {
    data = make_mixed_multigene(7, 3, 2, 60, 200, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    EngineOptions eo;
    eo.threads = threads;
    eo.shards = shards;
    eo.unlinked_branch_lengths = true;
    core = std::make_unique<EngineCore>(*comp, freerate_models(*comp), eo);
  }
};

struct Probe {
  std::vector<double> lnl;     // per probed edge
  std::vector<double> d1, d2;  // NR at edge 0, all partitions
};

Probe probe(EngineCore& core, const Tree& tree) {
  EvalContext ctx(core, tree);
  Probe out;
  for (EdgeId e : {0, 3, 7}) out.lnl.push_back(ctx.loglikelihood(e));
  std::vector<int> parts;
  std::vector<double> lens;
  for (int p = 0; p < core.partition_count(); ++p) {
    parts.push_back(p);
    lens.push_back(ctx.branch_lengths().get(0, p));
  }
  out.d1.assign(parts.size(), 0.0);
  out.d2.assign(parts.size(), 0.0);
  ctx.nr_derivatives_at(0, parts, lens, out.d1, out.d2);
  return out;
}

// --- determinism across shards, threads, and execution modes ----------------

TEST(RateEngine, FreeRatesPinvBitIdenticalAcrossShards) {
  ShardEnvGuard env;
  for (int T : {1, 2, 4, 8}) {
    RateRig ref(1, T);
    const Probe want = probe(*ref.core, ref.data.true_tree);
    for (double v : want.lnl) ASSERT_TRUE(std::isfinite(v));
    for (int N : {2}) {
      RateRig rig(N, T);
      const Probe got = probe(*rig.core, rig.data.true_tree);
      for (std::size_t i = 0; i < want.lnl.size(); ++i)
        EXPECT_EQ(got.lnl[i], want.lnl[i])
            << "shards=" << N << " threads=" << T << " probe " << i;
      for (std::size_t k = 0; k < want.d1.size(); ++k) {
        EXPECT_EQ(got.d1[k], want.d1[k]) << "partition " << k;
        EXPECT_EQ(got.d2[k], want.d2[k]) << "partition " << k;
      }
    }
  }
}

TEST(RateEngine, FreeRatesPinvStableAcrossThreadCounts) {
  // Thread counts change the reduction association (same contract as the
  // plain-Gamma engine: 1e-9 relative), never the math.
  ShardEnvGuard env;
  Probe want;
  for (int T : {1, 2, 4, 8}) {
    RateRig rig(1, T);
    const Probe got = probe(*rig.core, rig.data.true_tree);
    if (T == 1) {
      want = got;
      continue;
    }
    for (std::size_t i = 0; i < want.lnl.size(); ++i)
      EXPECT_NEAR(got.lnl[i], want.lnl[i], 1e-9 * std::abs(want.lnl[i]))
          << "threads=" << T;
    for (std::size_t k = 0; k < want.d1.size(); ++k) {
      EXPECT_NEAR(got.d1[k], want.d1[k],
                  1e-8 * std::max(1.0, std::abs(want.d1[k])));
      EXPECT_NEAR(got.d2[k], want.d2[k],
                  1e-8 * std::max(1.0, std::abs(want.d2[k])));
    }
  }
}

TEST(RateEngine, FreeRatesPinvCoarseBatchMatchesFine) {
  ShardEnvGuard env;
  const auto run = [](BatchExecMode mode) {
    RateRig rig(2, 4);
    rig.core->set_batch_execution(mode);
    std::vector<std::unique_ptr<EvalContext>> owned;
    std::vector<EvalContext*> ctxs;
    std::vector<EdgeId> edges;
    for (int c = 0; c < 6; ++c) {
      Rng trng(9000 + static_cast<std::uint64_t>(c));
      owned.push_back(std::make_unique<EvalContext>(
          *rig.core, random_tree(rig.comp->taxon_names, trng)));
      ctxs.push_back(owned.back().get());
      edges.push_back(static_cast<EdgeId>(c));
    }
    return rig.core->evaluate_batch(ctxs, edges);
  };
  const auto fine = run(BatchExecMode::kFine);
  const auto coarse = run(BatchExecMode::kCoarse);
  ASSERT_EQ(coarse.size(), fine.size());
  for (std::size_t c = 0; c < fine.size(); ++c)
    EXPECT_EQ(coarse[c], fine[c]) << "context " << c;
}

// --- the Gamma special case -------------------------------------------------

TEST(RateEngine, RateModelGammaMatchesHistoricConstructorBitwise) {
  // PartitionModel(SubstModel, alpha, cats) and the explicit
  // RateModel::gamma path must drive the engine to bit-identical results —
  // this is the API-level statement of the plain-Gamma compatibility
  // contract.
  ShardEnvGuard env;
  Dataset data = make_simulated_dna(8, 240, 80, 515);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  const auto lnl_of = [&](bool explicit_rate_model) {
    std::vector<PartitionModel> models;
    for (const auto& part : comp.partitions) {
      SubstModel m = make_model("GTR", empirical_frequencies(part));
      if (explicit_rate_model)
        models.emplace_back(std::move(m), RateModel::gamma(0.7, 4));
      else
        models.emplace_back(std::move(m), 0.7, 4);
    }
    EngineOptions eo;
    eo.threads = 2;
    eo.unlinked_branch_lengths = true;
    EngineCore core(comp, std::move(models), eo);
    EvalContext ctx(core, data.true_tree);
    return ctx.loglikelihood(0);
  };
  EXPECT_EQ(lnl_of(true), lnl_of(false));
}

TEST(RateEngine, PinvTermChangesAndImprovesFitOnInvariantRichData) {
  // Data simulated with 25% invariant sites: turning +I on (at a sensible
  // proportion) must improve the fit, and the +I likelihood must differ
  // from the plain-Gamma one (the term is actually live in the kernels).
  ShardEnvGuard env;
  Dataset data = make_freerate_dna(8, 400, 400, 2024);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  const auto lnl_of = [&](double p_inv) {
    std::vector<PartitionModel> models;
    for (const auto& part : comp.partitions) {
      RateModel rm = RateModel::gamma(1.0, 4);
      if (p_inv > 0.0) rm.enable_invariant(p_inv);
      models.emplace_back(make_model("GTR", empirical_frequencies(part)),
                          std::move(rm));
    }
    EngineOptions eo;
    eo.threads = 2;
    eo.unlinked_branch_lengths = true;
    EngineCore core(comp, std::move(models), eo);
    EvalContext ctx(core, data.true_tree);
    return ctx.loglikelihood(0);
  };
  const double without = lnl_of(0.0);
  const double with = lnl_of(0.2);
  EXPECT_NE(with, without);
  EXPECT_GT(with, without);  // the generating process had p_inv in [0.1,0.3]
}

// --- optimization -----------------------------------------------------------

struct OptRig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  /// Engine over invariant-rich free-rate data; `spec_suffix` picks the
  /// fitted model shape (e.g. "+G4" vs "+R4+I").
  explicit OptRig(const std::string& spec_suffix, std::uint64_t seed = 909) {
    data = make_freerate_dna(7, 360, 360, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions) {
      const ModelSpec spec = parse_model_spec("GTR" + spec_suffix);
      models.emplace_back(make_subst_model(spec, empirical_frequencies(part)),
                          make_rate_model(spec));
    }
    EngineOptions eo;
    eo.threads = 2;
    eo.unlinked_branch_lengths = true;
    engine = std::make_unique<Engine>(*comp, data.true_tree,
                                      std::move(models), eo);
  }
};

TEST(RateEngine, OptimizerImprovesFreeRatePinvParameters) {
  OptRig rig("+R4+I");
  optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
  const double before = rig.engine->loglikelihood(0);
  const double after =
      optimize_model_parameters(*rig.engine, Strategy::kNewPar);
  EXPECT_GE(after, before - 1e-9);
  EXPECT_GT(after, before + 0.1);  // must actually move on this data
  // The fitted proportion moved off its kPinvStart initialization.
  bool moved = false;
  for (int p = 0; p < rig.engine->partition_count(); ++p) {
    const RateModel& rm = rig.engine->model(p).rate_model();
    EXPECT_EQ(rm.kind(), RateModel::Kind::kFree);
    if (std::abs(rm.p_inv() - kPinvStart) > 1e-6) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(RateEngine, FreeRatesFitAtLeastAsWellAsGammaOnFreeRateData) {
  // +R nests +G-shaped mixtures, so on data generated under a non-Gamma
  // mixture the optimized +R4+I fit must not lose to +G4 (this is the
  // engine-level counterpart of the bench free_rates_over_gamma gate).
  const auto fit = [](const std::string& suffix) {
    OptRig rig(suffix);
    double lnl = optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
    // Alternate model and branch-length passes until a composite pass stops
    // paying: +R4+I carries ~9 extra parameters per partition and needs
    // several coordinate-descent rounds to unfold from its Gamma start.
    for (int pass = 0; pass < 12; ++pass) {
      const double prev = lnl;
      lnl = optimize_model_parameters(*rig.engine, Strategy::kNewPar);
      lnl = optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
      if (lnl - prev < 1e-3) break;
    }
    return lnl;
  };
  const double gamma = fit("+G4");
  const double free_rates = fit("+R4+I");
  EXPECT_GE(free_rates, gamma - 1e-6);
}

TEST(RateEngine, OldParStrategyAgreesOnFreeRateModels) {
  // The lockstep (newPAR) and broadcast (oldPAR) drivers must land on the
  // same optimum for +R/+I parameters too.
  OptRig a("+R4+I"), b("+R4+I");
  optimize_branch_lengths(*a.engine, Strategy::kNewPar);
  optimize_branch_lengths(*b.engine, Strategy::kOldPar);
  const double la =
      optimize_model_parameters(*a.engine, Strategy::kNewPar);
  const double lb =
      optimize_model_parameters(*b.engine, Strategy::kOldPar);
  EXPECT_NEAR(la, lb, 1e-4 * std::abs(la));
}

// --- checkpoints ------------------------------------------------------------

TEST(RateEngine, CheckpointRoundTripsFreeRatePinvStateMidOptimization) {
  // Interrupt a +R4+I model-parameter optimization midway, checkpoint, and
  // restore into a fresh engine with different starting parameters: the
  // restored likelihood must match bit-for-bit and the rate-model state
  // verbatim, and continuing the optimization must work.
  OptRig source("+R4+I", 313);
  optimize_branch_lengths(*source.engine, Strategy::kNewPar);
  // One coordinate-descent pass = "midway" (the full loop would alternate
  // with branch lengths until converged).
  optimize_model_parameters(*source.engine, Strategy::kNewPar);
  const double want = source.engine->loglikelihood(0);

  const std::string ckpt = serialize_checkpoint(*source.engine);

  OptRig target("+R4+I", 313);
  target.engine->model(0).set_free_rate(0, 2.0);
  target.engine->model(0).set_p_inv(0.4);
  target.engine->invalidate_partition(0);
  ASSERT_NE(target.engine->loglikelihood(0), want);

  apply_checkpoint(*target.engine, ckpt);
  EXPECT_EQ(target.engine->loglikelihood(0), want);
  for (int p = 0; p < source.engine->partition_count(); ++p) {
    const RateModel& s = source.engine->model(p).rate_model();
    const RateModel& t = target.engine->model(p).rate_model();
    EXPECT_EQ(t, s) << "partition " << p;
  }

  // Both sides continue the interrupted optimization identically.
  const double cont_s =
      optimize_model_parameters(*source.engine, Strategy::kNewPar);
  const double cont_t =
      optimize_model_parameters(*target.engine, Strategy::kNewPar);
  EXPECT_EQ(cont_t, cont_s);
}

TEST(RateEngine, CheckpointRoundTripsGammaPinvState) {
  ShardEnvGuard env;
  Dataset data = make_simulated_dna(7, 200, 100, 77);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);
  const auto build = [&](double alpha) {
    std::vector<PartitionModel> models;
    for (const auto& part : comp.partitions) {
      RateModel rm = RateModel::gamma(alpha, 4);
      rm.enable_invariant(0.17);
      models.emplace_back(make_model("GTR", empirical_frequencies(part)),
                          std::move(rm));
    }
    EngineOptions eo;
    eo.unlinked_branch_lengths = true;
    return std::make_unique<Engine>(comp, data.true_tree, std::move(models),
                                    eo);
  };
  auto source = build(0.62);
  const double want = source->loglikelihood(0);
  const std::string ckpt = serialize_checkpoint(*source);
  auto target = build(1.9);
  apply_checkpoint(*target, ckpt);
  EXPECT_EQ(target->loglikelihood(0), want);
  EXPECT_EQ(target->model(0).rate_model(), source->model(0).rate_model());
}

}  // namespace
}  // namespace plk
