// Tests for sim/: the Seq-Gen-equivalent simulator (statistical properties
// of the generated sequences) and the paper-dataset factories.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "bio/patterns.hpp"
#include "sim/datasets.hpp"
#include "sim/seqgen.hpp"
#include "tree/tree_gen.hpp"

namespace plk {
namespace {

TEST(SeqGen, ProducesCorrectDimensions) {
  Rng rng(1);
  Tree t = random_tree(6, rng);
  std::vector<SimPartition> parts;
  parts.push_back(SimPartition{"g1", jc69(), 120, 1.0, 8, 1.0, {}});
  parts.push_back(SimPartition{"g2", k80(3.0), 80, 0.5, 8, 1.0, {}});
  Alignment aln = simulate(t, parts, rng);
  EXPECT_EQ(aln.taxon_count(), 6u);
  EXPECT_EQ(aln.site_count(), 200u);
  const auto scheme = simulate_scheme(parts);
  EXPECT_EQ(scheme.size(), 2u);
  scheme.validate(200);
}

TEST(SeqGen, DeterministicForSeed) {
  Rng r1(9), r2(9);
  Tree t1 = random_tree(5, r1);
  Tree t2 = random_tree(5, r2);
  std::vector<SimPartition> parts{
      SimPartition{"g", jc69(), 100, 1.0, 8, 1.0, {}}};
  Alignment a = simulate(t1, parts, r1);
  Alignment b = simulate(t2, parts, r2);
  for (std::size_t x = 0; x < 5; ++x) EXPECT_EQ(a.row(x), b.row(x));
}

TEST(SeqGen, StationaryFrequenciesMatchModel) {
  // On a star-ish tree with long simulation, observed character frequencies
  // must approach the model's stationary distribution.
  Rng rng(11);
  Tree t = random_tree(8, rng);
  auto model = gtr({1.5, 3.0, 0.7, 1.2, 2.8, 1.0}, {0.4, 0.1, 0.2, 0.3});
  const auto want = model.freqs();
  std::vector<SimPartition> parts{
      SimPartition{"g", std::move(model), 30000, 5.0, 8, 1.0, {}}};
  Alignment aln = simulate(t, parts, rng);

  std::map<char, double> counts;
  double total = 0;
  for (std::size_t x = 0; x < aln.taxon_count(); ++x)
    for (char c : aln.row(x)) {
      counts[c] += 1;
      total += 1;
    }
  EXPECT_NEAR(counts['A'] / total, want[0], 0.01);
  EXPECT_NEAR(counts['C'] / total, want[1], 0.01);
  EXPECT_NEAR(counts['G'] / total, want[2], 0.01);
  EXPECT_NEAR(counts['T'] / total, want[3], 0.01);
}

TEST(SeqGen, ShortBranchesMeanFewDifferences) {
  Rng rng(13);
  TreeGenOptions opts;
  opts.mean_branch_length = 0.001;
  Tree t = random_tree(6, rng, opts);
  std::vector<SimPartition> parts{
      SimPartition{"g", jc69(), 5000, 1.0, 8, 1.0, {}}};
  Alignment aln = simulate(t, parts, rng);
  int diffs = 0;
  for (std::size_t i = 0; i < aln.site_count(); ++i)
    if (aln.at(0, i) != aln.at(1, i)) ++diffs;
  EXPECT_LT(diffs / 5000.0, 0.05);
}

TEST(SeqGen, LongBranchesDecorrelate) {
  Rng rng(15);
  TreeGenOptions opts;
  opts.mean_branch_length = 10.0;
  Tree t = random_tree(6, rng, opts);
  std::vector<SimPartition> parts{
      SimPartition{"g", jc69(), 5000, 5.0, 8, 1.0, {}}};
  Alignment aln = simulate(t, parts, rng);
  int diffs = 0;
  for (std::size_t i = 0; i < aln.site_count(); ++i)
    if (aln.at(0, i) != aln.at(1, i)) ++diffs;
  // Saturated JC: expected 75% differences.
  EXPECT_NEAR(diffs / 5000.0, 0.75, 0.03);
}

TEST(SeqGen, LowAlphaCreatesRateHeterogeneity) {
  // With strong heterogeneity (alpha = 0.2), many sites are frozen and many
  // are saturated: the per-site difference distribution across a pair must
  // be more extreme than under alpha = 50 (near-homogeneous).
  Rng rng(17);
  Tree t = random_tree(10, rng);
  auto count_constant = [&](double alpha) {
    Rng local(99);
    std::vector<SimPartition> parts{
        SimPartition{"g", jc69(), 4000, alpha, 32, 1.0, {}}};
    Alignment aln = simulate(t, parts, local);
    int constant = 0;
    for (std::size_t i = 0; i < aln.site_count(); ++i) {
      bool same = true;
      for (std::size_t x = 1; x < aln.taxon_count(); ++x)
        same &= aln.at(x, i) == aln.at(0, i);
      constant += same;
    }
    return constant;
  };
  EXPECT_GT(count_constant(0.2), count_constant(50.0) + 100);
}

TEST(SeqGen, MissingTaxaGetGaps) {
  Rng rng(19);
  Tree t = random_tree(5, rng);
  std::vector<SimPartition> parts{
      SimPartition{"g1", jc69(), 50, 1.0, 8, 1.0, {1, 3}},
      SimPartition{"g2", jc69(), 50, 1.0, 8, 1.0, {}}};
  Alignment aln = simulate(t, parts, rng);
  EXPECT_EQ(aln.row(1).substr(0, 50), std::string(50, '-'));
  EXPECT_EQ(aln.row(3).substr(0, 50), std::string(50, '-'));
  EXPECT_EQ(aln.row(1).find('-', 50), std::string::npos);
}

TEST(SeqGen, ProteinSimulationUsesAminoAcidAlphabet) {
  Rng rng(21);
  Tree t = random_tree(4, rng);
  std::vector<SimPartition> parts{
      SimPartition{"p", protein_model("WAG"), 200, 1.0, 8, 1.0, {}}};
  Alignment aln = simulate(t, parts, rng);
  const std::string_view aa = Alphabet::protein().symbols();
  for (char c : aln.row(0)) EXPECT_NE(aa.find(c), std::string_view::npos);
}

TEST(SeqGen, RejectsBadInput) {
  Rng rng(23);
  Tree t = random_tree(4, rng);
  EXPECT_THROW(simulate(t, {}, rng), std::invalid_argument);
  std::vector<SimPartition> bad{
      SimPartition{"g", jc69(), 10, 1.0, 8, 1.0, {99}}};
  EXPECT_THROW(simulate(t, bad, rng), std::invalid_argument);
}

// --- dataset factory ------------------------------------------------------------

TEST(Datasets, SimulatedDnaShape) {
  Dataset d = make_simulated_dna(10, 5000, 1000, 7);
  EXPECT_EQ(d.alignment.taxon_count(), 10u);
  EXPECT_EQ(d.alignment.site_count(), 5000u);
  EXPECT_EQ(d.scheme.size(), 5u);
  d.scheme.validate(5000);
  EXPECT_EQ(d.true_tree.tip_count(), 10);
}

TEST(Datasets, RemainderFoldsIntoLastPartition) {
  Dataset d = make_simulated_dna(6, 2500, 1000, 7);
  // 1000 + 1000 + 500 -> the 500 remainder merges into partition 2.
  std::size_t total = 0;
  for (const auto& p : d.scheme) total += p.site_count();
  EXPECT_EQ(total, 2500u);
  EXPECT_LE(d.scheme.size(), 3u);
}

TEST(Datasets, UnpartitionedHasOnePartition) {
  Dataset d = make_unpartitioned_dna(8, 3000, 7);
  EXPECT_EQ(d.scheme.size(), 1u);
  d.scheme.validate(3000);
}

TEST(Datasets, RealWorldLikeShape) {
  Dataset d = make_realworld_like(20, 12, 100, 800, 0.2, false, 7);
  EXPECT_EQ(d.scheme.size(), 12u);
  for (const auto& p : d.scheme) {
    EXPECT_GE(p.site_count(), 100u);
    EXPECT_LE(p.site_count(), 800u);
  }
  // Gappy: some rows must contain gap blocks.
  bool any_gap = false;
  for (std::size_t x = 0; x < d.alignment.taxon_count(); ++x)
    any_gap |= d.alignment.row(x).find('-') != std::string_view::npos;
  EXPECT_TRUE(any_gap);
}

TEST(Datasets, ProteinDatasets) {
  Dataset d = make_realworld_like(8, 4, 80, 200, 0.0, true, 7);
  for (const auto& p : d.scheme) EXPECT_EQ(p.type, DataType::kProtein);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  EXPECT_EQ(comp.partitions[0].states(), 20);
}

TEST(Datasets, DeterministicAcrossCalls) {
  Dataset a = make_simulated_dna(8, 1000, 250, 99);
  Dataset b = make_simulated_dna(8, 1000, 250, 99);
  for (std::size_t x = 0; x < a.alignment.taxon_count(); ++x)
    EXPECT_EQ(a.alignment.row(x), b.alignment.row(x));
}

TEST(Datasets, PaperScalesShrinkDimensions) {
  Dataset full = make_paper_d50_50000(0.2, 3);
  Dataset small = make_paper_d50_50000(0.1, 3);
  EXPECT_GT(full.alignment.taxon_count(), small.alignment.taxon_count());
  EXPECT_GT(full.alignment.site_count(), small.alignment.site_count());
}

TEST(Datasets, PaperRealWorldAnalogueHasVariablePartitions) {
  Dataset d = make_paper_r125_19839(0.15, 3);
  std::size_t mn = 1u << 30, mx = 0;
  for (const auto& p : d.scheme) {
    mn = std::min(mn, p.site_count());
    mx = std::max(mx, p.site_count());
  }
  EXPECT_LT(mn * 2, mx);  // spread of gene lengths, as in the paper
}

}  // namespace
}  // namespace plk
