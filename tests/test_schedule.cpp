// Tests for parallel/schedule.hpp and its engine integration.
//
// Unit level: every strategy must assign each pattern of each partition to
// exactly one thread (disjoint cover), kCyclic must reproduce the historical
// hard-coded split span-for-span, and the cost-balancing strategies must
// actually balance the modeled cost on skewed shapes.
//
// Engine level (the cross-thread-count invariance contract): on a mixed
// DNA+protein multipartition, log-likelihood and first/second Newton-Raphson
// derivatives agree within 1e-9 relative error for T in {1, 2, 4, 8} under
// every scheduling strategy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/analysis.hpp"
#include "core/branch_opt.hpp"
#include "core/engine.hpp"
#include "parallel/schedule.hpp"
#include "sim/datasets.hpp"
#include "util/rng.hpp"

namespace plk {
namespace {

std::vector<PartitionShape> skewed_shapes() {
  // Mixed 4- and 20-state partitions, several with awkward remainders.
  return {
      {.patterns = 37, .states = 4, .cats = 4},
      {.patterns = 11, .states = 20, .cats = 4},
      {.patterns = 64, .states = 4, .cats = 1},
      {.patterns = 5, .states = 20, .cats = 2},
      {.patterns = 23, .states = 4, .cats = 4},
      {.patterns = 9, .states = 20, .cats = 4},
      {.patterns = 41, .states = 4, .cats = 2},
  };
}

/// Every pattern of every partition owned by exactly one thread.
void expect_disjoint_cover(const WorkSchedule& ws,
                           const std::vector<PartitionShape>& shapes) {
  for (int p = 0; p < static_cast<int>(shapes.size()); ++p) {
    std::vector<int> owner(shapes[static_cast<std::size_t>(p)].patterns, -1);
    for (int t = 0; t < ws.threads(); ++t)
      for (const WorkSpan& s : ws.spans(t, p)) {
        EXPECT_EQ(s.part, p);
        EXPECT_GE(s.step, 1u);
        for (std::size_t i = s.begin; i < s.end; i += s.step) {
          ASSERT_LT(i, owner.size());
          EXPECT_EQ(owner[i], -1) << "pattern " << i << " of partition " << p
                                  << " assigned twice";
          owner[i] = t;
        }
      }
    for (std::size_t i = 0; i < owner.size(); ++i)
      EXPECT_NE(owner[i], -1)
          << "pattern " << i << " of partition " << p << " unassigned";
  }
}

constexpr SchedulingStrategy kAllStrategies[] = {
    SchedulingStrategy::kCyclic, SchedulingStrategy::kBlock,
    SchedulingStrategy::kWeighted, SchedulingStrategy::kLpt,
    SchedulingStrategy::kMeasured};

TEST(WorkSchedule, EveryStrategyCoversEveryPatternExactlyOnce) {
  const auto shapes = skewed_shapes();
  for (SchedulingStrategy s : kAllStrategies)
    for (int T : {1, 2, 3, 4, 8, 16}) {
      const WorkSchedule ws = WorkSchedule::build(s, T, shapes);
      SCOPED_TRACE(std::string(to_string(s)) + " T=" + std::to_string(T));
      expect_disjoint_cover(ws, shapes);
    }
}

TEST(WorkSchedule, CyclicReproducesHistoricalSplit) {
  // One strided span per (thread, partition): begin=tid, end=patterns,
  // step=T — the exact iteration the kernels hard-coded before.
  const auto shapes = skewed_shapes();
  const int T = 4;
  const WorkSchedule ws =
      WorkSchedule::build(SchedulingStrategy::kCyclic, T, shapes);
  for (int p = 0; p < static_cast<int>(shapes.size()); ++p)
    for (int t = 0; t < T; ++t) {
      const auto sp = ws.spans(t, p);
      const std::size_t n = shapes[static_cast<std::size_t>(p)].patterns;
      ASSERT_EQ(sp.size(), 1u);
      EXPECT_EQ(sp[0], (WorkSpan{p, static_cast<std::size_t>(t), n,
                                 static_cast<std::size_t>(T)}));
    }
}

TEST(WorkSchedule, BlockSpansAreContiguousAndOrdered) {
  const auto shapes = skewed_shapes();
  const WorkSchedule ws =
      WorkSchedule::build(SchedulingStrategy::kBlock, 3, shapes);
  for (int p = 0; p < static_cast<int>(shapes.size()); ++p) {
    std::size_t expect_begin = 0;
    for (int t = 0; t < 3; ++t)
      for (const WorkSpan& s : ws.spans(t, p)) {
        EXPECT_EQ(s.step, 1u);
        EXPECT_EQ(s.begin, expect_begin);
        expect_begin = s.end;
      }
    EXPECT_EQ(expect_begin, shapes[static_cast<std::size_t>(p)].patterns);
  }
}

TEST(WorkSchedule, WeightedBalancesSkewedCostWhereCyclicCannot) {
  // Many short partitions: cyclic hands every remainder pattern to the low
  // thread ids, weighted splits by cost and stays near-perfectly even.
  std::vector<PartitionShape> shapes;
  for (int g = 0; g < 24; ++g)
    shapes.push_back({.patterns = static_cast<std::size_t>(9 + 2 * g),
                      .states = g % 2 ? 20 : 4,
                      .cats = 1 + g % 4});
  const int T = 8;
  const auto cyc = WorkSchedule::build(SchedulingStrategy::kCyclic, T, shapes);
  const auto wgt =
      WorkSchedule::build(SchedulingStrategy::kWeighted, T, shapes);
  const auto lpt = WorkSchedule::build(SchedulingStrategy::kLpt, T, shapes);
  EXPECT_GT(cyc.modeled_imbalance(), 0.02);
  EXPECT_LT(wgt.modeled_imbalance(), cyc.modeled_imbalance());
  EXPECT_LT(lpt.modeled_imbalance(), cyc.modeled_imbalance());
  EXPECT_LT(wgt.modeled_imbalance(), 0.02);
}

TEST(WorkSchedule, LptMergesAdjacentChunks) {
  // A single-partition schedule: whatever LPT assigns, each thread's spans
  // within the partition must be merged (no two adjacent spans).
  std::vector<PartitionShape> shapes{{.patterns = 1000, .states = 4, .cats = 4}};
  const WorkSchedule ws = WorkSchedule::build(SchedulingStrategy::kLpt, 4, shapes);
  for (int t = 0; t < 4; ++t) {
    const auto sp = ws.spans(t, 0);
    for (std::size_t k = 1; k < sp.size(); ++k)
      EXPECT_GT(sp[k].begin, sp[k - 1].end);
  }
  expect_disjoint_cover(ws, shapes);
}

TEST(WorkSchedule, AdaptiveLptChunkTargetTightensSkewedPackings) {
  // Heterogeneous per-pattern costs: a long cheap DNA partition plus a
  // short expensive protein one. At the historical fixed total/(4T) chunk
  // target the packing ends up with ~4T coarse chunks of uneven cost, and
  // greedy LPT strands one thread ~20-30% over the mean; the adaptive
  // target keeps halving until the modeled imbalance is within the 1% goal
  // (floor: total/(64T)).
  const std::vector<PartitionShape> shapes = {
      {.patterns = 100000, .states = 4, .cats = 1, .weight = 0.25},  // c = 1
      {.patterns = 37, .states = 20, .cats = 1, .weight = 45.0},     // c = 900
  };
  for (int T : {4, 8}) {
    const WorkSchedule ws =
        WorkSchedule::build(SchedulingStrategy::kLpt, T, shapes);
    SCOPED_TRACE("T=" + std::to_string(T));
    expect_disjoint_cover(ws, shapes);
    EXPECT_LE(ws.modeled_imbalance(), 0.02);
  }
}

TEST(WorkSchedule, AdaptiveLptStaysNearTheGoalOnLargeMixedShapes) {
  // Large mixed shapes where pattern granularity is far below the goal:
  // the adaptive target must land within (goal + LPT floor slack).
  const std::vector<PartitionShape> shapes = {
      {.patterns = 1031, .states = 20, .cats = 4},
      {.patterns = 4096, .states = 4, .cats = 4},
      {.patterns = 777, .states = 4, .cats = 2},
      {.patterns = 2053, .states = 20, .cats = 1},
  };
  for (int T : {4, 8, 16}) {
    const WorkSchedule ws =
        WorkSchedule::build(SchedulingStrategy::kLpt, T, shapes);
    SCOPED_TRACE("T=" + std::to_string(T));
    expect_disjoint_cover(ws, shapes);
    EXPECT_LE(ws.modeled_imbalance(), 0.02);
  }
}

TEST(WorkSchedule, AdaptiveLptDegenerateShapesStayCorrect) {
  // Fewer indivisible patterns than threads: no target can balance this;
  // the adaptation must terminate and still produce a disjoint cover.
  const std::vector<PartitionShape> shapes = {
      {.patterns = 3, .states = 20, .cats = 4},
  };
  const WorkSchedule ws =
      WorkSchedule::build(SchedulingStrategy::kLpt, 8, shapes);
  expect_disjoint_cover(ws, shapes);
}

TEST(WorkSchedule, StrategyNamesRoundTrip) {
  for (SchedulingStrategy s : kAllStrategies)
    EXPECT_EQ(scheduling_strategy_from_string(to_string(s)), s);
  EXPECT_FALSE(scheduling_strategy_from_string("bogus").has_value());
}

TEST(WorkSpanTest, CountsStridedPatterns) {
  EXPECT_EQ((WorkSpan{0, 0, 10, 1}).count(), 10u);
  EXPECT_EQ((WorkSpan{0, 3, 10, 4}).count(), 2u);   // 3, 7
  EXPECT_EQ((WorkSpan{0, 10, 10, 1}).count(), 0u);
  EXPECT_EQ((WorkSpan{0, 0, 41, 8}).count(), 6u);   // 0,8,...,40
}

// --- engine-level cross-thread-count invariance -------------------------------

struct MixedRig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  MixedRig(int threads, SchedulingStrategy sched) {
    data = make_mixed_multigene(8, 3, 2, 30, 120, 4242);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    Rng rng(99);
    for (const auto& part : comp->partitions) {
      SubstModel m = part.type == DataType::kDna
                         ? make_model("GTR", empirical_frequencies(part))
                         : make_model("WAG");
      models.emplace_back(std::move(m), rng.uniform(0.5, 1.1), 4);
    }
    EngineOptions eo;
    eo.threads = threads;
    eo.unlinked_branch_lengths = true;
    eo.schedule = sched;
    engine = std::make_unique<Engine>(*comp, data.true_tree,
                                      std::move(models), eo);
  }
};

struct Observations {
  double lnl;
  std::vector<double> d1, d2;
};

Observations observe(Engine& eng) {
  Observations obs;
  obs.lnl = eng.loglikelihood(0);
  std::vector<int> all(static_cast<std::size_t>(eng.partition_count()));
  for (int p = 0; p < eng.partition_count(); ++p)
    all[static_cast<std::size_t>(p)] = p;
  eng.prepare_root(1);
  eng.compute_sumtable(all);
  std::vector<double> lens(all.size());
  for (std::size_t k = 0; k < all.size(); ++k) lens[k] = 0.07 + 0.03 * k;
  obs.d1.resize(all.size());
  obs.d2.resize(all.size());
  eng.nr_derivatives(all, lens, obs.d1, obs.d2);
  return obs;
}

TEST(ScheduleInvariance, LnlAndDerivativesAgreeAcrossThreadsAndStrategies) {
  MixedRig ref_rig(1, SchedulingStrategy::kCyclic);
  const Observations ref = observe(*ref_rig.engine);
  ASSERT_TRUE(std::isfinite(ref.lnl));

  for (SchedulingStrategy s : kAllStrategies)
    for (int T : {1, 2, 4, 8}) {
      MixedRig rig(T, s);
      if (s == SchedulingStrategy::kMeasured)
        rig.engine->calibrate_schedule(0);
      const Observations got = observe(*rig.engine);
      SCOPED_TRACE(std::string(to_string(s)) + " T=" + std::to_string(T));
      EXPECT_NEAR(got.lnl, ref.lnl, 1e-9 * std::abs(ref.lnl));
      for (std::size_t k = 0; k < ref.d1.size(); ++k) {
        EXPECT_NEAR(got.d1[k], ref.d1[k],
                    1e-9 * std::max(1.0, std::abs(ref.d1[k])));
        EXPECT_NEAR(got.d2[k], ref.d2[k],
                    1e-9 * std::max(1.0, std::abs(ref.d2[k])));
      }
    }
}

TEST(ScheduleInvariance, StrategySwitchMidRunKeepsLikelihood) {
  MixedRig rig(4, SchedulingStrategy::kCyclic);
  Engine& eng = *rig.engine;
  const double ref = eng.loglikelihood(0);
  for (SchedulingStrategy s :
       {SchedulingStrategy::kBlock, SchedulingStrategy::kWeighted,
        SchedulingStrategy::kLpt, SchedulingStrategy::kCyclic}) {
    eng.set_scheduling_strategy(s);
    eng.invalidate_all();
    EXPECT_NEAR(eng.loglikelihood(0), ref, 1e-9 * std::abs(ref))
        << to_string(s);
    EXPECT_EQ(eng.schedule().strategy(), s);
  }
}

TEST(ScheduleInvariance, SinglePartitionCommandsMatchUnderCostSplits) {
  // oldPAR-style phases issue commands scoped to ONE partition; the global
  // cost split may own such a partition with a single thread, so the engine
  // block-splits those commands instead. Both the per-partition evaluations
  // and a full oldPAR branch-length optimization must match the cyclic
  // T=1 reference.
  MixedRig ref_rig(1, SchedulingStrategy::kCyclic);
  std::vector<double> ref_lnl(
      static_cast<std::size_t>(ref_rig.engine->partition_count()));
  for (int p = 0; p < ref_rig.engine->partition_count(); ++p) {
    ref_rig.engine->loglikelihood(0, {p});
    ref_lnl[static_cast<std::size_t>(p)] =
        ref_rig.engine->per_partition_lnl()[static_cast<std::size_t>(p)];
  }
  const double ref_opt =
      optimize_branch_lengths(*ref_rig.engine, Strategy::kOldPar);

  for (SchedulingStrategy s :
       {SchedulingStrategy::kWeighted, SchedulingStrategy::kLpt}) {
    MixedRig rig(8, s);
    SCOPED_TRACE(to_string(s));
    for (int p = 0; p < rig.engine->partition_count(); ++p) {
      rig.engine->loglikelihood(0, {p});
      EXPECT_NEAR(
          rig.engine->per_partition_lnl()[static_cast<std::size_t>(p)],
          ref_lnl[static_cast<std::size_t>(p)],
          1e-9 * std::abs(ref_lnl[static_cast<std::size_t>(p)]));
    }
    const double got_opt =
        optimize_branch_lengths(*rig.engine, Strategy::kOldPar);
    EXPECT_NEAR(got_opt, ref_opt, 1e-7 * std::abs(ref_opt));
  }
}

TEST(LptAssign, AssignsEveryItemDeterministically) {
  const std::vector<double> cost{5.0, 1.0, 3.0, 3.0, 2.0, 8.0};
  const auto a = lpt_assign(cost, 3);
  ASSERT_EQ(a.size(), cost.size());
  for (int t : a) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 3);
  }
  EXPECT_EQ(a, lpt_assign(cost, 3));  // deterministic, incl. the 3.0 tie

  // LPT quality: max load <= opt + max item. opt >= total/T here.
  std::vector<double> load(3, 0.0);
  for (std::size_t i = 0; i < cost.size(); ++i)
    load[static_cast<std::size_t>(a[i])] += cost[i];
  const double total = 22.0;
  EXPECT_LE(*std::max_element(load.begin(), load.end()), total / 3.0 + 8.0);
}

TEST(LptAssign, EdgeCases) {
  EXPECT_TRUE(lpt_assign({}, 4).empty());
  const std::vector<double> one{2.0};
  EXPECT_EQ(lpt_assign(one, 1), std::vector<int>{0});
  // Fewer items than threads: each item its own bin (the least-loaded rule
  // never doubles up while an empty bin exists).
  const std::vector<double> two{1.0, 1.0};
  const auto a = lpt_assign(two, 8);
  EXPECT_NE(a[0], a[1]);
  // Uniform costs with items a multiple of threads: perfectly level.
  const std::vector<double> uniform(12, 1.0);
  std::vector<int> count(4, 0);
  for (int t : lpt_assign(uniform, 4)) ++count[static_cast<std::size_t>(t)];
  for (int c : count) EXPECT_EQ(c, 3);
}

TEST(BatchExecModeTest, NamesRoundTrip) {
  for (BatchExecMode m : {BatchExecMode::kAuto, BatchExecMode::kFine,
                          BatchExecMode::kCoarse}) {
    const auto parsed = batch_exec_mode_from_string(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(batch_exec_mode_from_string("warp").has_value());
}

TEST(ScheduleInvariance, AnalysisOptionPlumbsThrough) {
  Dataset data = make_mixed_multigene(6, 2, 1, 30, 60, 7);
  AnalysisOptions opts;
  opts.threads = 2;
  opts.schedule = SchedulingStrategy::kWeighted;
  Analysis an(data.alignment, data.scheme, opts, data.true_tree);
  EXPECT_EQ(an.engine().scheduling_strategy(), SchedulingStrategy::kWeighted);
  EXPECT_TRUE(std::isfinite(an.loglikelihood()));
}

}  // namespace
}  // namespace plk
