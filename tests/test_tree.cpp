// Tests for tree/: structure invariants, Newick I/O, random generation,
// traversal orders, Robinson-Foulds distance.
#include <gtest/gtest.h>

#include <set>

#include "tree/newick.hpp"
#include "tree/rf_distance.hpp"
#include "tree/traversal.hpp"
#include "tree/tree.hpp"
#include "tree/tree_gen.hpp"
#include "util/rng.hpp"

namespace plk {
namespace {

Tree quartet() {
  // ((t1,t2),(t3,t4)) as an unrooted tree: tips 0-3, inner 4,5.
  return Tree::from_edges({"t1", "t2", "t3", "t4"},
                          {{4, 0, 0.1},
                           {4, 1, 0.2},
                           {4, 5, 0.3},
                           {5, 2, 0.4},
                           {5, 3, 0.5}});
}

TEST(Tree, BasicCounts) {
  Tree t = quartet();
  EXPECT_EQ(t.tip_count(), 4);
  EXPECT_EQ(t.node_count(), 6);
  EXPECT_EQ(t.edge_count(), 5);
  EXPECT_TRUE(t.is_tip(0));
  EXPECT_FALSE(t.is_tip(4));
  EXPECT_EQ(t.label(2), "t3");
}

TEST(Tree, AdjacencyAndOtherEnd) {
  Tree t = quartet();
  EXPECT_EQ(t.edges_of(0).size(), 1u);
  EXPECT_EQ(t.edges_of(4).size(), 3u);
  EXPECT_EQ(t.other_end(0, 4), 0);
  EXPECT_EQ(t.other_end(0, 0), 4);
  EXPECT_THROW(t.other_end(0, 5), std::logic_error);
}

TEST(Tree, FindEdge) {
  Tree t = quartet();
  EXPECT_EQ(t.find_edge(4, 5), 2);
  EXPECT_EQ(t.find_edge(0, 5), kNoId);
}

TEST(Tree, InternalEdgeDetection) {
  Tree t = quartet();
  EXPECT_TRUE(t.is_internal_edge(2));
  EXPECT_FALSE(t.is_internal_edge(0));
}

TEST(Tree, ValidateRejectsBadDegrees) {
  // A tip with two edges.
  EXPECT_THROW(Tree::from_edges({"a", "b", "c"},
                                {{3, 0, 0.1}, {3, 1, 0.1}, {0, 2, 0.1}}),
               std::logic_error);
}

TEST(Tree, ValidateRejectsDisconnected) {
  // 4 taxa, correct counts but two components (self-loop style).
  EXPECT_THROW(Tree::from_edges({"a", "b", "c", "d"},
                                {{4, 0, 0.1},
                                 {4, 1, 0.1},
                                 {4, 2, 0.1},
                                 {5, 3, 0.1},
                                 {5, 5, 0.1}}),
               std::logic_error);
}

TEST(Tree, ReattachMaintainsInvariants) {
  Tree t = quartet();
  // NNI-style swap: move tip 1 to node 5 and tip 2 to node 4.
  t.reattach(1, 4, 5);
  t.reattach(3, 5, 4);
  t.validate();
  EXPECT_EQ(t.find_edge(4, 2), 3);
  EXPECT_EQ(t.find_edge(5, 1), 1);
}

TEST(Tree, TotalLength) {
  EXPECT_DOUBLE_EQ(quartet().total_length(), 1.5);
}

TEST(Tree, PathBetweenEdges) {
  Tree t = quartet();
  // Path from pendant edge of t1 (edge 0) to pendant edge of t3 (edge 3)
  // crosses inner nodes 4 and 5.
  auto path = t.path_between_edges(0, 3);
  const std::set<NodeId> nodes(path.begin(), path.end());
  EXPECT_TRUE(nodes.count(4));
  EXPECT_TRUE(nodes.count(5));
  EXPECT_TRUE(t.path_between_edges(2, 2).empty());
}

// --- Newick -----------------------------------------------------------------

TEST(Newick, ParseUnrooted) {
  Tree t = parse_newick("(t1:0.1,t2:0.2,(t3:0.3,t4:0.4):0.5);");
  EXPECT_EQ(t.tip_count(), 4);
  EXPECT_EQ(t.edge_count(), 5);
  t.validate();
}

TEST(Newick, ParseRootedGetsUnrooted) {
  // Binary root: the two root edges fuse (0.2 + 0.3).
  Tree t = parse_newick("((t1:0.1,t2:0.1):0.2,(t3:0.1,t4:0.1):0.3);");
  EXPECT_EQ(t.tip_count(), 4);
  EXPECT_EQ(t.edge_count(), 5);
  double longest = 0;
  for (EdgeId e = 0; e < t.edge_count(); ++e)
    longest = std::max(longest, t.length(e));
  EXPECT_DOUBLE_EQ(longest, 0.5);
}

TEST(Newick, ParseWithTaxonOrder) {
  const std::vector<std::string> order{"c", "a", "b"};
  Tree t = parse_newick("(a:1,b:1,c:1);", order);
  EXPECT_EQ(t.label(0), "c");
  EXPECT_EQ(t.label(1), "a");
}

TEST(Newick, ParseQuotedLabels) {
  Tree t = parse_newick("('taxon one':1,b:1,c:1);");
  EXPECT_EQ(t.label(0), "taxon one");
}

TEST(Newick, RoundTripPreservesTopologyAndLengths) {
  Rng rng(99);
  for (int n : {4, 7, 16, 40}) {
    Tree t = random_tree(n, rng);
    Tree u = parse_newick(write_newick(t, 12), t.labels());
    EXPECT_EQ(rf_distance(t, u), 0) << "n=" << n;
    EXPECT_NEAR(t.total_length(), u.total_length(), 1e-9);
  }
}

TEST(Newick, ParseErrors) {
  EXPECT_THROW(parse_newick("(a:1,b:1"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:1,b:1,c:1,d:1,e:1);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:1,b:x,c:1);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:1,(b:1,):1,c:1);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:1,b:1,c:1); junk"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:1,a:1,c:1);", {"a", "a", "c"}),
               std::runtime_error);
  EXPECT_THROW(parse_newick("(a:1,b:1,c:1);", {"a", "b", "x"}),
               std::runtime_error);
}

// --- random trees -----------------------------------------------------------

TEST(TreeGen, ValidAndDeterministic) {
  Rng r1(5), r2(5);
  Tree a = random_tree(25, r1);
  Tree b = random_tree(25, r2);
  a.validate();
  EXPECT_EQ(rf_distance(a, b), 0);
  EXPECT_DOUBLE_EQ(a.total_length(), b.total_length());
}

TEST(TreeGen, DifferentSeedsDiffer) {
  Rng r1(5), r2(6);
  Tree a = random_tree(25, r1);
  Tree b = random_tree(25, r2);
  EXPECT_GT(rf_distance(a, b), 0);
}

TEST(TreeGen, BranchLengthsRespectOptions) {
  Rng rng(7);
  TreeGenOptions opts;
  opts.mean_branch_length = 0.05;
  opts.min_branch_length = 0.01;
  Tree t = random_tree(50, rng, opts);
  for (EdgeId e = 0; e < t.edge_count(); ++e)
    EXPECT_GE(t.length(e), 0.01);
}

TEST(TreeGen, RejectsTooFewTaxa) {
  Rng rng(1);
  EXPECT_THROW(random_tree(2, rng), std::invalid_argument);
}

// --- traversal orders -------------------------------------------------------

TEST(Traversal, DfsEdgeOrderCoversAllEdgesOnce) {
  Rng rng(3);
  Tree t = random_tree(20, rng);
  auto order = dfs_edge_order(t);
  EXPECT_EQ(order.size(), static_cast<std::size_t>(t.edge_count()));
  std::set<EdgeId> uniq(order.begin(), order.end());
  EXPECT_EQ(uniq.size(), order.size());
}

TEST(Traversal, ConsecutiveDfsEdgesShareANode) {
  Rng rng(4);
  Tree t = random_tree(15, rng);
  auto order = dfs_edge_order(t);
  // DFS property: each edge shares a node with some earlier edge (locality).
  std::set<NodeId> visited{0};
  for (EdgeId e : order) {
    const bool touches = visited.count(t.edge(e).a) || visited.count(t.edge(e).b);
    EXPECT_TRUE(touches);
    visited.insert(t.edge(e).a);
    visited.insert(t.edge(e).b);
  }
}

TEST(Traversal, RadiusBoundsTargets) {
  Rng rng(8);
  Tree t = random_tree(30, rng);
  auto near = edges_within_radius(t, 0, 1);
  auto far = edges_within_radius(t, 0, 100);
  EXPECT_LT(near.size(), far.size());
  EXPECT_EQ(far.size(), static_cast<std::size_t>(t.edge_count() - 1));
}

// --- RF distance ------------------------------------------------------------

TEST(Rf, IdenticalTreesHaveZero) {
  Rng rng(11);
  Tree t = random_tree(30, rng);
  EXPECT_EQ(rf_distance(t, t), 0);
  EXPECT_DOUBLE_EQ(rf_normalized(t, t), 0.0);
}

TEST(Rf, SymmetricAndBounded) {
  Rng r1(1), r2(2);
  Tree a = random_tree(20, r1);
  Tree b = random_tree(20, r2);
  EXPECT_EQ(rf_distance(a, b), rf_distance(b, a));
  EXPECT_LE(rf_distance(a, b), 2 * (20 - 3));
  EXPECT_LE(rf_normalized(a, b), 1.0);
}

TEST(Rf, NniMovesDistanceTwo) {
  Tree t = quartet();
  Tree u = quartet();
  // Swap tips 1 and 2 across the internal edge: one NNI -> RF 2.
  u.reattach(1, 4, 5);
  u.reattach(3, 5, 4);
  EXPECT_EQ(rf_distance(t, u), 2);
}

TEST(Rf, RejectsDifferentSizes) {
  Rng rng(1);
  Tree a = random_tree(10, rng);
  Tree b = random_tree(12, rng);
  EXPECT_THROW(rf_distance(a, b), std::invalid_argument);
}

TEST(Rf, BipartitionCountMatchesInternalEdges) {
  Rng rng(21);
  Tree t = random_tree(25, rng);
  EXPECT_EQ(bipartitions(t).size(), static_cast<std::size_t>(25 - 3));
}

}  // namespace
}  // namespace plk
