// Tests for the paper's core claim infrastructure: oldPAR and newPAR must be
// *algorithmically equivalent* (same optima, same final likelihoods) while
// differing dramatically in synchronization count. Also covers joint vs
// per-partition branch lengths and the improvement guarantees of each
// optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/branch_opt.hpp"
#include "core/engine.hpp"
#include "core/model_opt.hpp"
#include "sim/datasets.hpp"

namespace plk {
namespace {

struct Rig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  Rig(int taxa, std::size_t sites, std::size_t plen, int threads,
      bool unlinked, std::uint64_t seed = 4242) {
    data = make_simulated_dna(taxa, sites, plen, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions)
      models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0,
                          4);
    EngineOptions eo;
    eo.threads = threads;
    eo.unlinked_branch_lengths = unlinked;
    engine = std::make_unique<Engine>(*comp, data.true_tree,
                                      std::move(models), eo);
  }
};

// --- branch-length optimization -----------------------------------------------

class BranchOptP
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(BranchOptP, ImprovesOrKeepsLikelihood) {
  const auto [threads, unlinked] = GetParam();
  Rig rig(10, 400, 100, threads, unlinked);
  const double before = rig.engine->loglikelihood(0);
  const double after =
      optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
  EXPECT_GE(after, before - 1e-6);
  EXPECT_GT(after, before + 0.1);  // random start lengths are far from ML
}

INSTANTIATE_TEST_SUITE_P(Grid, BranchOptP,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Bool()));

TEST(Strategies, BranchOptOldAndNewReachSameOptimum) {
  Rig a(10, 400, 100, 2, true, 7);
  Rig b(10, 400, 100, 2, true, 7);
  const double la = optimize_branch_lengths(*a.engine, Strategy::kOldPar);
  const double lb = optimize_branch_lengths(*b.engine, Strategy::kNewPar);
  EXPECT_NEAR(la, lb, 1e-3 * std::abs(la) * 1e-2 + 0.05);
  // Per-edge, per-partition lengths must agree closely.
  for (EdgeId e = 0; e < a.engine->tree().edge_count(); ++e)
    for (int p = 0; p < a.engine->partition_count(); ++p)
      EXPECT_NEAR(a.engine->branch_lengths().get(e, p),
                  b.engine->branch_lengths().get(e, p),
                  1e-3 + 0.02 * a.engine->branch_lengths().get(e, p))
          << "edge " << e << " part " << p;
}

TEST(Strategies, NewParUsesFarFewerCommands) {
  Rig a(10, 800, 100, 1, true, 9);
  Rig b(10, 800, 100, 1, true, 9);
  optimize_branch_lengths(*a.engine, Strategy::kOldPar);
  optimize_branch_lengths(*b.engine, Strategy::kNewPar);
  const auto old_cmds = a.engine->stats().commands;
  const auto new_cmds = b.engine->stats().commands;
  // 8 partitions: oldPAR pays per-partition sumtables and NR loops.
  EXPECT_GT(old_cmds, 3 * new_cmds);
}

TEST(Strategies, LinkedModeIdenticalAcrossStrategies) {
  Rig a(8, 300, 100, 2, false, 3);
  Rig b(8, 300, 100, 2, false, 3);
  const double la = optimize_branch_lengths(*a.engine, Strategy::kOldPar);
  const double lb = optimize_branch_lengths(*b.engine, Strategy::kNewPar);
  // Joint estimate: the two strategies run the very same schedule.
  EXPECT_DOUBLE_EQ(la, lb);
  EXPECT_EQ(a.engine->stats().commands, b.engine->stats().commands);
}

TEST(Strategies, UnlinkedFitsAtLeastAsWellAsLinked) {
  // Per-partition branch lengths add parameters; the optimum cannot be worse.
  Rig linked(8, 400, 100, 1, false, 11);
  Rig unlinked(8, 400, 100, 1, true, 11);
  const double ll = optimize_branch_lengths(*linked.engine, Strategy::kNewPar);
  const double lu =
      optimize_branch_lengths(*unlinked.engine, Strategy::kNewPar);
  EXPECT_GE(lu, ll - 1e-6);
}

TEST(Strategies, OptimizeSingleEdgeMatchesGoldenSection) {
  // NR on one edge must find the same optimum as a derivative-free search
  // over the engine's likelihood.
  Rig rig(8, 300, 300, 1, false, 17);
  Engine& eng = *rig.engine;
  const EdgeId e = 3;
  optimize_edge(eng, e, Strategy::kNewPar);
  const double nr_len = eng.branch_lengths().get(e, 0);
  const double nr_lnl = eng.loglikelihood(e);

  // Golden-section over the same 1-D function.
  double best_lnl = -1e300, best_b = 0;
  for (double b = 0.002; b < 1.0; b *= 1.02) {
    eng.branch_lengths().set_all(e, b);
    const double l = eng.loglikelihood(e);
    if (l > best_lnl) {
      best_lnl = l;
      best_b = b;
    }
  }
  EXPECT_NEAR(nr_len, best_b, 0.03 * best_b + 1e-4);
  EXPECT_GE(nr_lnl, best_lnl - 1e-3);
}

// --- model-parameter optimization -----------------------------------------------

TEST(Strategies, ModelOptImprovesLikelihood) {
  Rig rig(8, 400, 100, 2, true, 21);
  const double before = rig.engine->loglikelihood(0);
  const double after =
      optimize_model_parameters(*rig.engine, Strategy::kNewPar);
  EXPECT_GT(after, before);
}

TEST(Strategies, ModelOptOldAndNewAgree) {
  Rig a(8, 400, 100, 1, true, 23);
  Rig b(8, 400, 100, 1, true, 23);
  ModelOptOptions mo;
  mo.optimize_rates = false;  // alpha only, for a tight comparison
  const double la = optimize_model_parameters(*a.engine, Strategy::kOldPar, mo);
  const double lb = optimize_model_parameters(*b.engine, Strategy::kNewPar, mo);
  EXPECT_NEAR(la, lb, 0.05);
  for (int p = 0; p < a.engine->partition_count(); ++p)
    EXPECT_NEAR(a.engine->model(p).alpha(), b.engine->model(p).alpha(),
                0.05 * a.engine->model(p).alpha() + 1e-3)
        << "partition " << p;
}

TEST(Strategies, ModelOptRecoversSimulationAlpha) {
  // Generous data and a fixed true tree: estimated alphas should land in the
  // right ballpark of the simulated per-partition alphas (0.3 - 1.5).
  Rig rig(12, 2000, 1000, 4, true, 25);
  optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
  optimize_model_parameters(*rig.engine, Strategy::kNewPar);
  for (int p = 0; p < rig.engine->partition_count(); ++p) {
    EXPECT_GT(rig.engine->model(p).alpha(), 0.1);
    EXPECT_LT(rig.engine->model(p).alpha(), 5.0);
  }
}

TEST(Strategies, RateOptimizationImprovesOverEqualRates) {
  Rig rig(8, 600, 200, 2, true, 27);
  optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
  ModelOptOptions alpha_only;
  alpha_only.optimize_rates = false;
  const double without_rates =
      optimize_model_parameters(*rig.engine, Strategy::kNewPar, alpha_only);
  const double with_rates =
      optimize_model_parameters(*rig.engine, Strategy::kNewPar);
  EXPECT_GE(with_rates, without_rates - 1e-6);
}

TEST(Strategies, ModelOptCommandGapMatchesPaper) {
  // Model opt has a much smaller command gap than branch-length opt (the
  // paper's 5-10% vs 8x observation at the schedule level).
  Rig a(8, 800, 100, 1, true, 29);
  Rig b(8, 800, 100, 1, true, 29);
  ModelOptOptions mo;
  optimize_model_parameters(*a.engine, Strategy::kOldPar, mo);
  const auto old_cmds = a.engine->stats().commands;
  optimize_model_parameters(*b.engine, Strategy::kNewPar, mo);
  const auto new_cmds = b.engine->stats().commands;
  EXPECT_GT(old_cmds, new_cmds);  // still fewer commands under newPAR
}

TEST(Strategies, PerPartitionLnlSumsToTotal) {
  Rig rig(8, 300, 100, 2, true, 31);
  const double total = rig.engine->loglikelihood(0);
  double sum = 0;
  for (double l : rig.engine->per_partition_lnl()) sum += l;
  EXPECT_NEAR(total, sum, 1e-9 * std::abs(total));
}

}  // namespace
}  // namespace plk
