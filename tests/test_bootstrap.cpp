// Tests for core/bootstrap: replicate weight resampling, bipartition
// support computation, and Newick-with-support serialization.
#include <gtest/gtest.h>

#include "core/bootstrap.hpp"
#include "sim/datasets.hpp"
#include "tree/newick.hpp"
#include "tree/rf_distance.hpp"
#include "tree/tree_gen.hpp"

namespace plk {
namespace {

TEST(Bootstrap, ReplicatePreservesSiteCounts) {
  Dataset d = make_simulated_dna(8, 600, 200, 21);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  Rng rng(22);
  auto rep = bootstrap_replicate(comp, rng);
  ASSERT_EQ(rep.partitions.size(), comp.partitions.size());
  for (std::size_t p = 0; p < rep.partitions.size(); ++p) {
    double total = 0;
    for (double w : rep.partitions[p].weights) total += w;
    EXPECT_DOUBLE_EQ(total,
                     static_cast<double>(comp.partitions[p].site_count));
    // Tip data shared structure unchanged.
    EXPECT_EQ(rep.partitions[p].pattern_count,
              comp.partitions[p].pattern_count);
    EXPECT_EQ(rep.partitions[p].tip_states, comp.partitions[p].tip_states);
  }
}

TEST(Bootstrap, ReplicatesDiffer) {
  Dataset d = make_simulated_dna(6, 400, 400, 23);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  Rng rng(24);
  auto a = bootstrap_replicate(comp, rng);
  auto b = bootstrap_replicate(comp, rng);
  EXPECT_NE(a.partitions[0].weights, b.partitions[0].weights);
}

TEST(Bootstrap, WeightsFollowOriginalMultiplicities) {
  // A pattern with weight 9x that of another should be drawn ~9x as often.
  CompressedAlignment aln;
  aln.taxon_names = {"a", "b"};
  CompressedPartition part;
  part.name = "g";
  part.type = DataType::kDna;
  part.pattern_count = 2;
  part.site_count = 1000;
  part.weights = {900.0, 100.0};
  part.tip_states = {{1, 2}, {1, 2}};
  aln.partitions.push_back(part);

  Rng rng(25);
  double first = 0;
  const int reps = 50;
  for (int i = 0; i < reps; ++i)
    first += bootstrap_replicate(aln, rng).partitions[0].weights[0];
  EXPECT_NEAR(first / reps, 900.0, 15.0);
}

TEST(Bootstrap, SupportIsOneForIdenticalTrees) {
  Rng rng(26);
  Tree ref = random_tree(10, rng);
  std::vector<Tree> reps(20, ref);
  auto support = bipartition_support(ref, reps);
  EXPECT_EQ(support.size(), static_cast<std::size_t>(10 - 3));
  for (const auto& [e, s] : support) {
    EXPECT_TRUE(ref.is_internal_edge(e));
    EXPECT_DOUBLE_EQ(s, 1.0);
  }
}

TEST(Bootstrap, SupportReflectsReplicateMix) {
  // Half the replicates agree with ref, half are a different topology:
  // shared bipartitions get support ~1, ref-only ones ~0.5.
  Rng r1(27), r2(28);
  Tree ref = random_tree(12, r1);
  Tree other = random_tree(12, r2);
  std::vector<Tree> reps;
  for (int i = 0; i < 10; ++i) reps.push_back(ref);
  for (int i = 0; i < 10; ++i) reps.push_back(other);
  auto support = bipartition_support(ref, reps);
  for (const auto& [e, s] : support) {
    EXPECT_GE(s, 0.5);  // every ref bipartition is in >= half the reps
    EXPECT_LE(s, 1.0);
  }
  bool any_partial = false;
  for (const auto& [e, s] : support) any_partial |= (s < 1.0);
  EXPECT_TRUE(any_partial);
}

TEST(Bootstrap, SupportZeroForDisjointTopologies) {
  // Caterpillar vs balanced topologies over many taxa share few splits.
  Rng r1(29), r2(30);
  Tree ref = random_tree(20, r1);
  std::vector<Tree> reps;
  for (int i = 0; i < 5; ++i) reps.push_back(random_tree(20, r2));
  auto support = bipartition_support(ref, reps);
  double total = 0;
  for (const auto& [e, s] : support) total += s;
  EXPECT_LT(total / static_cast<double>(support.size()), 0.5);
}

TEST(Bootstrap, NewickWithSupportRoundTrips) {
  Rng rng(31);
  Tree ref = random_tree(8, rng);
  std::vector<Tree> reps(4, ref);
  auto support = bipartition_support(ref, reps);
  const std::string nwk = write_newick_with_support(ref, support);
  EXPECT_NE(nwk.find("100"), std::string::npos);
  // Inner labels parse as node labels; topology survives.
  Tree back = parse_newick(nwk, ref.labels());
  EXPECT_EQ(rf_distance(back, ref), 0);
}

}  // namespace
}  // namespace plk
