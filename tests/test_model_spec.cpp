// Tests for model/model_spec.hpp (the model specification grammar),
// model/rates.hpp (Gamma / free-rate / +I mixtures), and the hostile-input
// validation of SubstModel parameter vectors.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/partition_model.hpp"
#include "model/gamma.hpp"
#include "model/model_spec.hpp"
#include "model/rates.hpp"
#include "model/subst_model.hpp"

namespace plk {
namespace {

// --- parsing ----------------------------------------------------------------

TEST(ModelSpec, ParsesBareFamilies) {
  EXPECT_EQ(parse_model_spec("GTR").name, "GTR");
  EXPECT_EQ(parse_model_spec("GTR").rate_kind, ModelSpec::RateKind::kNone);
  EXPECT_EQ(parse_model_spec("JC").name, "JC");
  EXPECT_EQ(parse_model_spec("WAG").name, "WAG");
  EXPECT_EQ(parse_model_spec("LG").name, "LG");
}

TEST(ModelSpec, ResolvesAliases) {
  EXPECT_EQ(parse_model_spec("JC69").name, "JC");
  EXPECT_EQ(parse_model_spec("K2P").name, "K80");
  EXPECT_EQ(parse_model_spec("HKY85").name, "HKY");
  EXPECT_EQ(parse_model_spec("DNA").name, "GTR");
  EXPECT_EQ(parse_model_spec("PROT").name, "WAG");
  EXPECT_EQ(parse_model_spec("protgamma").name, "WAG");
  EXPECT_EQ(parse_model_spec("gtr+g4").name, "GTR");  // case-insensitive
}

TEST(ModelSpec, ParsesRateSuffixes) {
  ModelSpec g = parse_model_spec("GTR+G4");
  EXPECT_EQ(g.rate_kind, ModelSpec::RateKind::kGamma);
  EXPECT_EQ(g.categories, 4);
  EXPECT_FALSE(g.invariant);

  ModelSpec r = parse_model_spec("WAG+R6+I");
  EXPECT_EQ(r.rate_kind, ModelSpec::RateKind::kFree);
  EXPECT_EQ(r.categories, 6);
  EXPECT_TRUE(r.invariant);

  // Category count defaults to 4 when omitted.
  EXPECT_EQ(parse_model_spec("GTR+G").categories, 4);
  EXPECT_EQ(parse_model_spec("GTR+R").categories, 4);

  // +I alone: no rate mixture, invariant term on.
  ModelSpec i = parse_model_spec("HKY+I");
  EXPECT_EQ(i.rate_kind, ModelSpec::RateKind::kNone);
  EXPECT_TRUE(i.invariant);
}

TEST(ModelSpec, ParsesParameters) {
  ModelSpec hky = parse_model_spec("HKY{2.5}");
  ASSERT_EQ(hky.params.size(), 1u);
  EXPECT_DOUBLE_EQ(hky.params[0], 2.5);

  ModelSpec gtr = parse_model_spec("GTR{1,2,3,4,5,6}+G4");
  ASSERT_EQ(gtr.params.size(), 6u);
  EXPECT_DOUBLE_EQ(gtr.params[5], 6.0);
}

TEST(ModelSpec, ParsesFrequencyModes) {
  EXPECT_EQ(parse_model_spec("GTR+FC").freq_mode,
            ModelSpec::FreqMode::kCounts);
  EXPECT_EQ(parse_model_spec("WAG+FO").freq_mode, ModelSpec::FreqMode::kModel);
  EXPECT_EQ(parse_model_spec("GTR+G4+FE").freq_mode,
            ModelSpec::FreqMode::kEqual);
}

TEST(ModelSpec, RoundTripsThroughCanonicalForm) {
  // parse -> print -> parse must be the identity on the parsed struct.
  for (const char* text :
       {"GTR", "GTR+G4", "GTR+R4+I", "HKY{2.5}+I", "GTR{1.5,2,3,0.5,2.25,1}",
        "WAG+R6", "LG+G8+FE", "JC+I", "K80{4}+G2", "DAYHOFF+I+FO"}) {
    SCOPED_TRACE(text);
    const ModelSpec spec = parse_model_spec(text);
    const std::string canon = to_string(spec);
    EXPECT_EQ(parse_model_spec(canon), spec);
    // And printing is a fixed point on canonical text.
    EXPECT_EQ(to_string(parse_model_spec(canon)), canon);
  }
}

TEST(ModelSpec, RejectsHostileInput) {
  for (const char* text :
       {"", "   ", "BOGUS", "GTR+", "GTR+X", "GTR+G0", "GTR+G65", "GTR+G4+G4",
        "GTR+G4+R4", "GTR+I+I", "GTR+F", "GTR+FZ", "GTR+FC+FE", "GTR{",
        "GTR{}", "GTR{1,2}", "GTR{1,2,3,4,5,6,7}", "HKY{1,2}", "JC{1}",
        "WAG{1}", "HKY{abc}", "HKY{1.5x}", "HKY{nan}", "HKY{inf}", "HKY{}",
        "GTR{1,}", "GTR junk", "GTR+G4junk", "+G4"}) {
    SCOPED_TRACE(text);
    EXPECT_THROW(parse_model_spec(text), std::invalid_argument);
  }
}

TEST(ModelSpec, ProteinNameClassification) {
  EXPECT_TRUE(is_protein_model_name("WAG"));
  EXPECT_TRUE(is_protein_model_name("lg"));
  EXPECT_TRUE(is_protein_model_name("PROT"));
  EXPECT_FALSE(is_protein_model_name("GTR"));
  EXPECT_FALSE(is_protein_model_name("JC69"));
  EXPECT_FALSE(is_protein_model_name("NOSUCH"));
}

// --- spec -> model construction ---------------------------------------------

TEST(ModelSpec, MakeSubstModelHonorsParams) {
  const SubstModel hky =
      make_subst_model(parse_model_spec("HKY{3.5}"), {0.1, 0.2, 0.3, 0.4});
  EXPECT_EQ(hky.name(), "HKY");
  EXPECT_DOUBLE_EQ(hky.exchangeabilities()[1], 3.5);  // AG = kappa
  EXPECT_DOUBLE_EQ(hky.freqs()[3], 0.4);

  // K80 constrains frequencies to equal even when counts are supplied...
  const SubstModel k80 =
      make_subst_model(parse_model_spec("K80{2.0}"), {0.1, 0.2, 0.3, 0.4});
  EXPECT_DOUBLE_EQ(k80.freqs()[0], 0.25);
  // ...unless an explicit +FC lifts the constraint.
  const SubstModel k80fc =
      make_subst_model(parse_model_spec("K80{2.0}+FC"), {0.1, 0.2, 0.3, 0.4});
  EXPECT_DOUBLE_EQ(k80fc.freqs()[0], 0.1);

  const SubstModel equal =
      make_subst_model(parse_model_spec("GTR+FE"), {0.1, 0.2, 0.3, 0.4});
  for (double f : equal.freqs()) EXPECT_DOUBLE_EQ(f, 0.25);
}

TEST(ModelSpec, MakeRateModelShapes) {
  const RateModel none = make_rate_model(parse_model_spec("GTR"));
  EXPECT_EQ(none.categories(), 1);
  EXPECT_FALSE(none.invariant_sites());

  const RateModel g4 = make_rate_model(parse_model_spec("GTR+G4"));
  EXPECT_EQ(g4.kind(), RateModel::Kind::kGamma);
  EXPECT_EQ(g4.categories(), 4);

  const RateModel r4i = make_rate_model(parse_model_spec("GTR+R4+I"));
  EXPECT_EQ(r4i.kind(), RateModel::Kind::kFree);
  EXPECT_EQ(r4i.categories(), 4);
  EXPECT_TRUE(r4i.invariant_sites());
  EXPECT_DOUBLE_EQ(r4i.p_inv(), kPinvStart);
}

TEST(ModelSpec, DescribeModelNamesTheShape) {
  const PartitionModel gamma(
      make_subst_model(parse_model_spec("GTR")),
      make_rate_model(parse_model_spec("GTR+G4")));
  EXPECT_EQ(describe_model(gamma), "GTR+G4");

  const PartitionModel free_i(
      make_subst_model(parse_model_spec("HKY{2.0}")),
      make_rate_model(parse_model_spec("HKY+R4+I")));
  EXPECT_EQ(describe_model(free_i), "HKY+R4+I");
}

// --- RateModel invariants ---------------------------------------------------

TEST(RateModel, GammaMatchesDiscreteGammaBitwise) {
  // Plain Gamma must reproduce the historic grid exactly — this is the
  // bit-identity contract for pre-RateModel engine results.
  for (double alpha : {0.3, 1.0, 2.7}) {
    const RateModel m = RateModel::gamma(alpha, 4);
    const auto want = discrete_gamma_rates(alpha, 4);
    ASSERT_EQ(m.rates().size(), want.size());
    for (std::size_t c = 0; c < want.size(); ++c)
      EXPECT_EQ(m.rates()[c], want[c]);  // bitwise
    EXPECT_TRUE(m.uniform_categories());
  }
}

TEST(RateModel, NormalizationInvariantHolds) {
  // sum_c w_c r_c == 1 / (1 - p) under every mutation path.
  const auto check = [](const RateModel& m) {
    double mean = 0.0;
    for (int c = 0; c < m.categories(); ++c)
      mean += m.weights()[static_cast<std::size_t>(c)] *
              m.rates()[static_cast<std::size_t>(c)];
    EXPECT_NEAR(mean, 1.0 / (1.0 - m.p_inv()), 1e-12);
  };

  RateModel g = RateModel::gamma(0.8, 4);
  check(g);
  g.enable_invariant(0.2);
  check(g);
  g.set_alpha(1.6);
  check(g);

  RateModel f = RateModel::free({0.2, 1.0, 3.0}, {0.5, 0.3, 0.2});
  check(f);
  f.set_free_rate(1, 2.0);
  check(f);
  f.set_free_weight(0, 0.4);
  check(f);
  f.set_p_inv(0.15);
  check(f);
  double wsum = 0.0;
  for (double w : f.weights()) wsum += w;
  EXPECT_NEAR(wsum, 1.0, 1e-12);
}

TEST(RateModel, EvalWeightsCarryPinvFactor) {
  RateModel m = RateModel::gamma(1.0, 4);
  m.enable_invariant(0.25);
  for (int c = 0; c < 4; ++c)
    EXPECT_DOUBLE_EQ(m.eval_weights()[static_cast<std::size_t>(c)],
                     0.75 * m.weights()[static_cast<std::size_t>(c)]);
  EXPECT_FALSE(m.uniform_categories());
}

TEST(RateModel, RestoreFreeIsVerbatim) {
  RateModel f = RateModel::free({0.2, 1.0, 3.0}, {0.5, 0.3, 0.2});
  f.set_p_inv(0.12);
  const RateModel back =
      RateModel::restore_free(f.rates(), f.weights(), true, f.p_inv());
  EXPECT_EQ(back, f);  // bitwise: no renormalization on restore
}

TEST(RateModel, RejectsHostileInput) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(RateModel::gamma(1.0, 0), std::invalid_argument);
  EXPECT_THROW(RateModel::free({}, {}), std::invalid_argument);
  EXPECT_THROW(RateModel::free({1.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(RateModel::free({nan, 1.0}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(RateModel::free({inf, 1.0}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(RateModel::free({-1.0, 1.0}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(RateModel::free({1.0, 1.0}, {0.5, -0.5}),
               std::invalid_argument);
  EXPECT_THROW(RateModel::free({1.0, 1.0}, {0.5, nan}),
               std::invalid_argument);
  EXPECT_THROW(RateModel::restore_free({1.0}, {0.5, 0.5}, false, 0.0),
               std::invalid_argument);
  RateModel g = RateModel::gamma(1.0, 4);
  EXPECT_THROW(g.set_free_rate(0, 2.0), std::logic_error);
  EXPECT_THROW(g.set_free_weight(0, 0.5), std::logic_error);
}

// --- SubstModel hostile-input validation ------------------------------------

TEST(SubstModel, RejectsMalformedParameterVectors) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> exch(6, 1.0);
  const std::vector<double> freqs(4, 0.25);

  // Wrong sizes.
  EXPECT_THROW(SubstModel(4, {1.0, 1.0}, freqs), std::invalid_argument);
  EXPECT_THROW(SubstModel(4, exch, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(SubstModel(1, {}, {1.0}), std::invalid_argument);

  // Non-finite / non-positive entries, in both vectors.
  for (double bad : {nan, inf, -inf, -1.0, 0.0}) {
    SCOPED_TRACE(bad);
    std::vector<double> e = exch;
    e[3] = bad;
    EXPECT_THROW(SubstModel(4, e, freqs), std::invalid_argument);
    std::vector<double> f = freqs;
    f[2] = bad;
    EXPECT_THROW(SubstModel(4, exch, f), std::invalid_argument);
  }

  // The error message names the offending slot.
  try {
    std::vector<double> e = exch;
    e[3] = nan;
    SubstModel m(4, e, freqs);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("exchangeability[3]"),
              std::string::npos)
        << err.what();
  }

  // Mutators run the same checks.
  SubstModel m(4, exch, freqs);
  EXPECT_THROW(m.set_exchangeability(0, nan), std::invalid_argument);
  EXPECT_THROW(m.set_exchangeability(99, 1.0), std::out_of_range);
  EXPECT_THROW(m.set_exchangeabilities({1.0, nan, 1.0, 1.0, 1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(m.set_freqs({0.25, 0.25, 0.25, -0.25}), std::invalid_argument);
  EXPECT_THROW(m.set_freqs({0.5, 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace plk
