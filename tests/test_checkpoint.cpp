// Tests for core/checkpoint: full state round trip, cross-engine restore,
// and validation of incompatible or corrupted checkpoints.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <iomanip>
#include <sstream>

#include "plk.hpp"

namespace plk {
namespace {

struct Rig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  explicit Rig(std::uint64_t seed, bool unlinked = true,
               std::optional<Tree> tree = std::nullopt) {
    data = make_simulated_dna(8, 300, 100, 1234);  // same data every Rig
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    Rng rng(seed);
    for (const auto& part : comp->partitions)
      models.emplace_back(make_model("GTR", empirical_frequencies(part)),
                          rng.uniform(0.3, 2.0), 4);
    EngineOptions eo;
    eo.unlinked_branch_lengths = unlinked;
    Tree t = tree ? std::move(*tree) : [&] {
      Rng trng(seed ^ 0xbeef);
      return random_tree(comp->taxon_names, trng);
    }();
    engine = std::make_unique<Engine>(*comp, std::move(t), std::move(models),
                                      eo);
  }
};

TEST(Checkpoint, RoundTripPreservesLikelihood) {
  Rig source(1);
  // Put the source engine in a non-trivial state.
  optimize_branch_lengths(*source.engine, Strategy::kNewPar);
  ModelOptOptions mo;
  mo.optimize_rates = false;
  optimize_model_parameters(*source.engine, Strategy::kNewPar, mo);
  const double want = source.engine->loglikelihood(0);

  const std::string ckpt = serialize_checkpoint(*source.engine);

  // A second engine over the same data but different start state.
  Rig target(2);
  EXPECT_NE(target.engine->loglikelihood(0), want);
  apply_checkpoint(*target.engine, ckpt);
  EXPECT_DOUBLE_EQ(target.engine->loglikelihood(0), want);
}

TEST(Checkpoint, RestoresTopologyExactly) {
  Rig source(3);
  const std::string ckpt = serialize_checkpoint(*source.engine);
  Rig target(4);
  apply_checkpoint(*target.engine, ckpt);
  EXPECT_EQ(rf_distance(target.engine->tree(), source.engine->tree()), 0);
  for (EdgeId e = 0; e < source.engine->tree().edge_count(); ++e)
    for (int p = 0; p < source.engine->partition_count(); ++p)
      EXPECT_DOUBLE_EQ(target.engine->branch_lengths().get(e, p),
                       source.engine->branch_lengths().get(e, p));
}

TEST(Checkpoint, RestoresModelParameters) {
  Rig source(5);
  source.engine->model(1).set_alpha(0.123);
  source.engine->model(2).model().set_exchangeability(0, 3.5);
  source.engine->invalidate_partition(1);
  source.engine->invalidate_partition(2);
  const std::string ckpt = serialize_checkpoint(*source.engine);

  Rig target(6);
  apply_checkpoint(*target.engine, ckpt);
  EXPECT_DOUBLE_EQ(target.engine->model(1).alpha(), 0.123);
  EXPECT_DOUBLE_EQ(
      target.engine->model(2).model().exchangeabilities()[0], 3.5);
}

TEST(Checkpoint, FileRoundTrip) {
  Rig source(7);
  const double want = source.engine->loglikelihood(0);
  save_checkpoint_file(*source.engine, "/tmp/plk_ckpt_test.txt");
  Rig target(8);
  load_checkpoint_file(*target.engine, "/tmp/plk_ckpt_test.txt");
  EXPECT_DOUBLE_EQ(target.engine->loglikelihood(0), want);
}

TEST(Checkpoint, RejectsGarbage) {
  Rig rig(9);
  EXPECT_THROW(apply_checkpoint(*rig.engine, "not a checkpoint"),
               std::runtime_error);
  EXPECT_THROW(apply_checkpoint(*rig.engine, ""), std::runtime_error);
}

TEST(Checkpoint, RejectsTruncated) {
  Rig rig(10);
  const std::string full = serialize_checkpoint(*rig.engine);
  EXPECT_THROW(apply_checkpoint(*rig.engine, full.substr(0, full.size() / 2)),
               std::runtime_error);
}

TEST(Checkpoint, RejectsBranchLengthModeMismatch) {
  Rig linked(11, /*unlinked=*/false);
  Rig unlinked(12, /*unlinked=*/true);
  const std::string ckpt = serialize_checkpoint(*linked.engine);
  EXPECT_THROW(apply_checkpoint(*unlinked.engine, ckpt), std::runtime_error);
}

TEST(Checkpoint, RejectsWrongTaxa) {
  Rig rig(13);
  std::string ckpt = serialize_checkpoint(*rig.engine);
  // Corrupt one taxon label.
  const auto pos = ckpt.find("t3");
  ASSERT_NE(pos, std::string::npos);
  ckpt.replace(pos, 2, "zz");
  EXPECT_THROW(apply_checkpoint(*rig.engine, ckpt), std::runtime_error);
}

TEST(Checkpoint, EvalContextMidBootstrapRoundTripContinuesBitIdentical) {
  // A bootstrap replicate — an EvalContext over a shared core with
  // resampled pattern weights — is checkpointed mid-way through branch
  // smoothing; a fresh context restores it and both continue through the
  // identical remaining steps. The continuation log-likelihoods must match
  // bit for bit.
  Dataset d = make_simulated_dna(8, 300, 100, 1234);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(make_model("GTR", empirical_frequencies(part)), 0.8,
                        4);
  EngineOptions eo;
  eo.unlinked_branch_lengths = true;
  EngineCore core(comp, std::move(models), eo);

  Rng rng(99);
  const auto rep_weights = bootstrap_weights(comp, rng);
  const Tree start = d.true_tree;

  EvalContext a(core, start);
  for (int p = 0; p < core.partition_count(); ++p)
    a.set_pattern_weights(p, rep_weights[static_cast<std::size_t>(p)]);

  // Phase 1: optimize the first half of the edges (mid-bootstrap state).
  Engine view_a(core, a);
  const int E = a.tree().edge_count();
  const BranchOptOptions bo;
  for (EdgeId e = 0; e < E / 2; ++e)
    optimize_edge(view_a, e, Strategy::kNewPar, bo);

  const std::string ckpt = serialize_checkpoint(a);

  // Restore into a fresh context (replicate weights restored by the
  // caller, exactly as it set them before) — and into the original, so
  // both sides share the one post-restore state any continuation sees.
  EvalContext b(core, start);
  for (int p = 0; p < core.partition_count(); ++p)
    b.set_pattern_weights(p, rep_weights[static_cast<std::size_t>(p)]);
  apply_checkpoint(b, ckpt);
  apply_checkpoint(a, ckpt);

  // Phase 2: identical continuation on both contexts.
  Engine view_b(core, b);
  for (EdgeId e = E / 2; e < E; ++e) {
    optimize_edge(view_a, e, Strategy::kNewPar, bo);
    optimize_edge(view_b, e, Strategy::kNewPar, bo);
  }
  const double lnl_a = view_a.loglikelihood(0);
  const double lnl_b = view_b.loglikelihood(0);
  EXPECT_EQ(lnl_a, lnl_b);  // bit-identical continuation
  EXPECT_TRUE(std::isfinite(lnl_a));
}

TEST(Checkpoint, RefusesRestoreIntoPendingBatch) {
  Dataset d = make_simulated_dna(6, 200, 100, 77);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0,
                        4);
  EngineCore core(comp, std::move(models), {});
  EvalContext ctx(core, d.true_tree);
  const std::string ckpt = serialize_checkpoint(ctx);
  core.submit(ctx, EvalRequest::evaluate(0));
  // Restoring would replace the tree the queued command was built against.
  EXPECT_THROW(apply_checkpoint(ctx, ckpt), std::runtime_error);
  core.wait();
  apply_checkpoint(ctx, ckpt);  // fine after the flush
}

TEST(Checkpoint, SelfRestoreIsIdempotent) {
  Rig rig(14);
  const double before = rig.engine->loglikelihood(3);
  const std::string ckpt = serialize_checkpoint(*rig.engine);
  apply_checkpoint(*rig.engine, ckpt);
  EXPECT_DOUBLE_EQ(rig.engine->loglikelihood(3), before);
  // Frequency renormalization may move the first round trip by an ulp;
  // after that, serialization is an exact fixed point.
  const std::string once = serialize_checkpoint(*rig.engine);
  apply_checkpoint(*rig.engine, once);
  EXPECT_EQ(serialize_checkpoint(*rig.engine), once);
}

// --- format versioning -------------------------------------------------------

namespace {

/// Same FNV-1a the checkpoint writer uses; the v2 back-compat test edits
/// checkpoint text and must re-seal the checksum trailer.
std::uint64_t test_fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Rewrite a serialized checkpoint's payload with `edit`, then re-seal it.
std::string reseal(std::string text,
                   const std::function<void(std::string&)>& edit) {
  const auto cpos = text.rfind("\nchecksum ");
  EXPECT_NE(cpos, std::string::npos);
  std::string payload = text.substr(0, cpos + 1);
  edit(payload);
  std::ostringstream sum;
  sum << "checksum " << std::hex << std::setw(16) << std::setfill('0')
      << test_fnv1a64(payload) << '\n';
  return payload + sum.str();
}

}  // namespace

TEST(Checkpoint, ReadsVersion2FilesAsPlainGamma) {
  // A v3 checkpoint stripped of its rate-model lines and stamped "2" is
  // exactly what the pre-RateModel engine wrote; it must restore as plain
  // equal-weight Gamma at the recorded alpha, bit-identically.
  Rig source(31);
  source.engine->model(1).set_alpha(0.456);
  source.engine->invalidate_partition(1);
  const double want = source.engine->loglikelihood(0);

  const std::string v2 =
      reseal(serialize_checkpoint(*source.engine), [](std::string& payload) {
        const auto vpos = payload.find("plk-checkpoint 3");
        ASSERT_NE(vpos, std::string::npos);
        payload.replace(vpos, 16, "plk-checkpoint 2");
        // Drop every v3-only line (model / ratemodel / pinv).
        std::istringstream in(payload);
        std::string out, line;
        while (std::getline(in, line)) {
          if (line.rfind("model ", 0) == 0 ||
              line.rfind("ratemodel ", 0) == 0 ||
              line.rfind("pinv ", 0) == 0)
            continue;
          out += line;
          out += '\n';
        }
        payload = std::move(out);
      });

  Rig target(32);
  apply_checkpoint(*target.engine, v2);
  EXPECT_EQ(target.engine->loglikelihood(0), want);
  EXPECT_DOUBLE_EQ(target.engine->model(1).alpha(), 0.456);
  EXPECT_EQ(target.engine->model(1).rate_model(), RateModel::gamma(0.456, 4));
}

TEST(Checkpoint, RejectsRateModelCategoryCountMismatch) {
  // The CLV layout is sized by the category count at engine construction; a
  // checkpoint with a different count must be refused, not half-applied.
  Rig source(33);
  const std::string ckpt =
      reseal(serialize_checkpoint(*source.engine), [](std::string& payload) {
        const auto rpos = payload.find("ratemodel gamma 4");
        ASSERT_NE(rpos, std::string::npos);
        payload.replace(rpos, 17, "ratemodel gamma 8");
      });
  Rig target(34);
  EXPECT_THROW(apply_checkpoint(*target.engine, ckpt), std::runtime_error);
}

TEST(Checkpoint, RejectsMalformedRateModelLines) {
  Rig source(35);
  const std::string base = serialize_checkpoint(*source.engine);
  const auto corrupt = [&](const std::string& from, const std::string& to) {
    return reseal(base, [&](std::string& payload) {
      const auto pos = payload.find(from);
      ASSERT_NE(pos, std::string::npos);
      payload.replace(pos, from.size(), to);
    });
  };
  Rig target(36);
  EXPECT_THROW(apply_checkpoint(*target.engine,
                                corrupt("ratemodel gamma", "ratemodel bogus")),
               std::runtime_error);
  EXPECT_THROW(
      apply_checkpoint(*target.engine, corrupt("pinv 0", "pinv 7")),
      std::runtime_error);
}

// --- crash-consistency corruption matrix -------------------------------------
//
// The on-disk format (v2) ends in a checksum trailer and every write goes
// temp-file -> fsync -> atomic rename with a 2-deep ring (path, path.1).
// Each scenario below corrupts the ring a different way and checks the
// loader's response: fall back when an older good generation exists, fail
// loudly when none does, and never read a stale temp file.

namespace {
std::string ring_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void remove_ring(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".tmp").c_str());
}
}  // namespace

TEST(CheckpointCorruption, BitFlipFallsBackToPreviousGeneration) {
  const std::string path = ring_path("plk_ckpt_bitflip.txt");
  remove_ring(path);
  Rig rig(20);
  const double gen1 = rig.engine->loglikelihood(0);
  save_checkpoint_file(*rig.engine, path);  // generation 1
  optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
  save_checkpoint_file(*rig.engine, path);  // generation 2; gen 1 -> path.1

  // Flip one payload bit of the newest generation.
  std::string bytes = read_file(path);
  bytes[bytes.size() / 3] ^= 0x10;
  write_file(path, bytes);

  Rig target(21);
  load_checkpoint_file(*target.engine, path);  // falls back to path.1
  EXPECT_DOUBLE_EQ(target.engine->loglikelihood(0), gen1);
}

TEST(CheckpointCorruption, TruncationFallsBackToPreviousGeneration) {
  const std::string path = ring_path("plk_ckpt_trunc.txt");
  remove_ring(path);
  Rig rig(22);
  const double gen1 = rig.engine->loglikelihood(0);
  save_checkpoint_file(*rig.engine, path);
  optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
  save_checkpoint_file(*rig.engine, path);

  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() / 2));  // torn write

  Rig target(23);
  load_checkpoint_file(*target.engine, path);
  EXPECT_DOUBLE_EQ(target.engine->loglikelihood(0), gen1);
}

TEST(CheckpointCorruption, BothGenerationsCorruptFailsLoudly) {
  const std::string path = ring_path("plk_ckpt_bothbad.txt");
  remove_ring(path);
  Rig rig(24);
  save_checkpoint_file(*rig.engine, path);
  save_checkpoint_file(*rig.engine, path);
  write_file(path, "garbage");
  write_file(path + ".1", "more garbage");
  Rig target(25);
  EXPECT_THROW(load_checkpoint_file(*target.engine, path),
               std::runtime_error);
}

TEST(CheckpointCorruption, VersionMismatchRejected) {
  Rig rig(26);
  std::string ckpt = serialize_checkpoint(*rig.engine);
  // Forge a future format version; the (correct) checksum cannot save it.
  const auto pos = ckpt.find("plk-checkpoint 3");
  ASSERT_NE(pos, std::string::npos);
  ckpt.replace(pos, 16, "plk-checkpoint 9");
  EXPECT_THROW(apply_checkpoint(*rig.engine, ckpt), std::runtime_error);
}

TEST(CheckpointCorruption, StaleTempFileIsNeverRead) {
  const std::string path = ring_path("plk_ckpt_staletmp.txt");
  remove_ring(path);
  Rig rig(27);
  const double want = rig.engine->loglikelihood(0);
  save_checkpoint_file(*rig.engine, path);
  // A crash mid-write leaves a half-written temp file next to the ring.
  write_file(path + ".tmp", "half-written garbage from a crashed writer");
  Rig target(28);
  load_checkpoint_file(*target.engine, path);
  EXPECT_DOUBLE_EQ(target.engine->loglikelihood(0), want);
}

TEST(CheckpointCorruption, FaultedWriteLeavesRingIntact) {
  const std::string path = ring_path("plk_ckpt_iofault.txt");
  remove_ring(path);
  Rig rig(29);
  const double want = rig.engine->loglikelihood(0);
  save_checkpoint_file(*rig.engine, path);

  optimize_branch_lengths(*rig.engine, Strategy::kNewPar);
  {
    // The injected I/O error aborts the write after the temp file was
    // created but before any rename touched the ring.
    fault::ScopedFault f(fault::Site::kCheckpointIo, 1);
    EXPECT_THROW(save_checkpoint_file(*rig.engine, path),
                 std::runtime_error);
  }
  Rig target(30);
  load_checkpoint_file(*target.engine, path);  // previous generation intact
  EXPECT_DOUBLE_EQ(target.engine->loglikelihood(0), want);
}

TEST(CheckpointCorruption, SearchProgressRoundTrips) {
  Rig rig(31);
  SearchProgress out;
  out.rounds = 4;
  out.accepted_moves = 7;
  out.candidates_scored = 123;
  out.lnl = -1234.5;
  out.valid = true;
  EvalContext& ctx = rig.engine->context();
  const std::string ckpt = serialize_checkpoint(ctx, &out);

  SearchProgress in;
  apply_checkpoint(ctx, ckpt, &in);
  ASSERT_TRUE(in.valid);
  EXPECT_EQ(in.rounds, 4);
  EXPECT_EQ(in.accepted_moves, 7);
  EXPECT_EQ(in.candidates_scored, 123u);
  EXPECT_EQ(in.lnl, -1234.5);

  // A plain (search-less) checkpoint reports no progress.
  SearchProgress none;
  none.valid = true;
  apply_checkpoint(ctx, serialize_checkpoint(ctx), &none);
  EXPECT_FALSE(none.valid);
}

}  // namespace
}  // namespace plk
