// Direct unit tests for the likelihood kernel hot loops (core/kernels.hpp),
// against straightforward reference loops: newview combination, tip
// indicator handling, numerical scaling, cyclic slice decomposition,
// evaluate, sumtable and NR derivative identities.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/kernels.hpp"
#include "model/subst_model.hpp"
#include "util/rng.hpp"

namespace plk {
namespace {

constexpr int S = 4;
constexpr int C = 2;
constexpr std::size_t N = 37;  // patterns (odd, to exercise slice tails)
constexpr std::size_t kStride = C * S;

struct KernelRig {
  std::vector<double> clv1, clv2, out;
  std::vector<std::int32_t> scale1, scale2, out_scale;
  std::vector<double> p1, p2;  // [cat][i][j]
  std::vector<double> weights;
  Rng rng{77};

  KernelRig() {
    clv1.resize(N * kStride);
    clv2.resize(N * kStride);
    out.assign(N * kStride, -1.0);
    scale1.assign(N, 0);
    scale2.assign(N, 0);
    out_scale.assign(N, -1);
    weights.assign(N, 1.0);
    for (auto& x : clv1) x = rng.uniform(0.1, 1.0);
    for (auto& x : clv2) x = rng.uniform(0.1, 1.0);
    // Proper stochastic-ish matrices from a real model.
    auto m = gtr({1.5, 2.0, 0.6, 1.1, 3.0, 1.0}, {0.3, 0.2, 0.2, 0.3});
    Matrix pm;
    for (double t : {0.1, 0.4}) {
      m.transition_matrix(t, pm);
      p1.insert(p1.end(), pm.data(), pm.data() + S * S);
      m.transition_matrix(t * 1.7, pm);
      p2.insert(p2.end(), pm.data(), pm.data() + S * S);
    }
  }

  kernel::ChildView inner1() const {
    kernel::ChildView v;
    v.clv = clv1.data();
    v.scale = scale1.data();
    return v;
  }
  kernel::ChildView inner2() const {
    kernel::ChildView v;
    v.clv = clv2.data();
    v.scale = scale2.data();
    return v;
  }
};

/// Reference newview: textbook triple loop.
void reference_newview(const KernelRig& r, std::vector<double>& out) {
  out.resize(N * kStride);
  for (std::size_t i = 0; i < N; ++i)
    for (int c = 0; c < C; ++c)
      for (int a = 0; a < S; ++a) {
        double s1 = 0, s2 = 0;
        for (int j = 0; j < S; ++j) {
          s1 += r.p1[c * S * S + a * S + j] * r.clv1[i * kStride + c * S + j];
          s2 += r.p2[c * S * S + a * S + j] * r.clv2[i * kStride + c * S + j];
        }
        out[i * kStride + c * S + a] = s1 * s2;
      }
}

TEST(Kernels, NewviewMatchesReference) {
  KernelRig r;
  kernel::newview_slice<S>(0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(),
                           r.p2.data(), r.out.data(), r.out_scale.data());
  std::vector<double> ref;
  reference_newview(r, ref);
  for (std::size_t k = 0; k < ref.size(); ++k)
    EXPECT_NEAR(r.out[k], ref[k], 1e-15);
  for (std::size_t i = 0; i < N; ++i) EXPECT_EQ(r.out_scale[i], 0);
}

TEST(Kernels, SlicesPartitionTheWork) {
  // Running tid=0..T-1 must produce the same buffer as a single pass, and
  // every pattern must be written exactly once.
  KernelRig ref_rig;
  std::vector<double> whole(N * kStride), sliced(N * kStride, -7.0);
  std::vector<std::int32_t> sc(N);
  kernel::newview_slice<S>(0, N, 1, C, ref_rig.inner1(), ref_rig.inner2(),
                           ref_rig.p1.data(), ref_rig.p2.data(), whole.data(),
                           sc.data());
  for (int T : {2, 3, 5, 8}) {
    std::fill(sliced.begin(), sliced.end(), -7.0);
    for (int tid = 0; tid < T; ++tid)
      kernel::newview_slice<S>(tid, N, T, C, ref_rig.inner1(),
                               ref_rig.inner2(), ref_rig.p1.data(),
                               ref_rig.p2.data(), sliced.data(), sc.data());
    EXPECT_EQ(sliced, whole) << "T=" << T;
  }
}

TEST(Kernels, TipChildUsesIndicators) {
  // A tip child with a determined state behaves like an inner CLV that is
  // one-hot at that state.
  KernelRig r;
  std::vector<std::uint16_t> codes(N);
  std::vector<double> indicators(2 * S, 0.0);
  indicators[0 * S + 2] = 1.0;  // code 0 -> state G
  indicators[1 * S + 0] = 1.0;  // code 1 -> state A
  for (std::size_t i = 0; i < N; ++i) codes[i] = i % 2;

  kernel::ChildView tip;
  tip.codes = codes.data();
  tip.indicators = indicators.data();

  std::vector<double> out_tip(N * kStride), out_inner(N * kStride);
  std::vector<std::int32_t> sc(N);
  kernel::newview_slice<S>(0, N, 1, C, tip, r.inner2(), r.p1.data(),
                           r.p2.data(), out_tip.data(), sc.data());

  // Equivalent "inner" child: one-hot CLV replicated per category.
  std::vector<double> onehot(N * kStride, 0.0);
  for (std::size_t i = 0; i < N; ++i)
    for (int c = 0; c < C; ++c)
      onehot[i * kStride + c * S + (i % 2 ? 0 : 2)] = 1.0;
  std::vector<std::int32_t> zero(N, 0);
  kernel::ChildView as_inner;
  as_inner.clv = onehot.data();
  as_inner.scale = zero.data();
  kernel::newview_slice<S>(0, N, 1, C, as_inner, r.inner2(), r.p1.data(),
                           r.p2.data(), out_inner.data(), sc.data());
  for (std::size_t k = 0; k < out_tip.size(); ++k)
    EXPECT_NEAR(out_tip[k], out_inner[k], 1e-15);
}

TEST(Kernels, AmbiguousTipSumsStates) {
  // Indicator with two bits == sum of the two one-hot results.
  KernelRig r;
  std::vector<std::uint16_t> codes(N, 0);
  std::vector<double> ind_ag(S, 0.0), ind_a(S, 0.0), ind_g(S, 0.0);
  ind_ag[0] = ind_ag[2] = 1.0;
  ind_a[0] = 1.0;
  ind_g[2] = 1.0;
  std::vector<std::int32_t> sc(N);
  auto run = [&](const double* ind) {
    kernel::ChildView tip;
    tip.codes = codes.data();
    tip.indicators = ind;
    std::vector<double> out(N * kStride);
    kernel::newview_slice<S>(0, N, 1, C, tip, r.inner2(), r.p1.data(),
                             r.p2.data(), out.data(), sc.data());
    return out;
  };
  auto oa = run(ind_a.data());
  auto og = run(ind_g.data());
  auto oag = run(ind_ag.data());
  for (std::size_t i = 0; i < N; ++i)
    for (int c = 0; c < C; ++c)
      for (int a = 0; a < S; ++a) {
        // s1 sums over states; the product with s2 is linear in s1.
        const std::size_t k = i * kStride + c * S + a;
        EXPECT_NEAR(oag[k], oa[k] + og[k], 1e-12);
      }
}

TEST(Kernels, ScalingTriggersAndCounts) {
  KernelRig r;
  // Make the CLVs tiny so every product falls below 2^-256.
  for (auto& x : r.clv1) x = 1e-80;
  for (auto& x : r.clv2) x = 1e-80;
  r.scale1.assign(N, 3);  // children already carry counts
  r.scale2.assign(N, 2);
  std::vector<double> ref;
  reference_newview(r, ref);  // unscaled reference values
  kernel::newview_slice<S>(0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(),
                           r.p2.data(), r.out.data(), r.out_scale.data());
  for (std::size_t i = 0; i < N; ++i) {
    EXPECT_EQ(r.out_scale[i], 6);  // 3 + 2 + 1 new scaling event
    for (std::size_t k = 0; k < kStride; ++k) {
      // Stored value = true value * 2^256, exactly (power-of-two multiply).
      EXPECT_DOUBLE_EQ(r.out[i * kStride + k],
                       ref[i * kStride + k] * kernel::kScaleFactor);
      EXPECT_TRUE(std::isfinite(r.out[i * kStride + k]));
    }
  }
}

TEST(Kernels, NoScalingForHealthyValues) {
  KernelRig r;
  r.scale1.assign(N, 1);
  r.scale2.assign(N, 4);
  kernel::newview_slice<S>(0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(),
                           r.p2.data(), r.out.data(), r.out_scale.data());
  for (std::size_t i = 0; i < N; ++i) EXPECT_EQ(r.out_scale[i], 5);
}

TEST(Kernels, EvaluateMatchesReference) {
  KernelRig r;
  const double freqs[S] = {0.3, 0.2, 0.2, 0.3};
  const double got = kernel::evaluate_slice<S>(
      0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(), freqs,
      r.weights.data());
  double want = 0;
  for (std::size_t i = 0; i < N; ++i) {
    double site = 0;
    for (int c = 0; c < C; ++c)
      for (int a = 0; a < S; ++a) {
        double inner = 0;
        for (int j = 0; j < S; ++j)
          inner += r.p1[c * S * S + a * S + j] * r.clv2[i * kStride + c * S + j];
        site += freqs[a] * r.clv1[i * kStride + c * S + a] * inner;
      }
    want += std::log(site / C);
  }
  EXPECT_NEAR(got, want, 1e-10);
}

TEST(Kernels, EvaluateAppliesScaleCounts) {
  KernelRig r;
  const double freqs[S] = {0.25, 0.25, 0.25, 0.25};
  const double base = kernel::evaluate_slice<S>(
      0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(), freqs,
      r.weights.data());
  r.scale1.assign(N, 1);
  const double scaled = kernel::evaluate_slice<S>(
      0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(), freqs,
      r.weights.data());
  EXPECT_NEAR(scaled, base - static_cast<double>(N) * kernel::kLogScale,
              1e-9);
}

TEST(Kernels, EvaluateSliceSumsAcrossThreads) {
  KernelRig r;
  const double freqs[S] = {0.3, 0.2, 0.2, 0.3};
  const double whole = kernel::evaluate_slice<S>(
      0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(), freqs,
      r.weights.data());
  for (int T : {2, 4, 7}) {
    double sum = 0;
    for (int tid = 0; tid < T; ++tid)
      sum += kernel::evaluate_slice<S>(tid, N, T, C, r.inner1(), r.inner2(),
                                       r.p1.data(), freqs, r.weights.data());
    EXPECT_NEAR(sum, whole, 1e-10) << "T=" << T;
  }
}

TEST(Kernels, SumtableAndNrReproduceEvaluateDerivative) {
  // End-to-end identity on raw buffers: build a sumtable from two CLVs with
  // a real model, then check that nr_slice's d1 equals the numerical
  // derivative of the evaluate-based lnL in the branch length.
  KernelRig r;
  auto m = gtr({1.2, 2.2, 0.7, 1.4, 2.6, 1.0}, {0.28, 0.22, 0.24, 0.26});
  const std::vector<double> rates{0.5, 1.5};  // two "categories"

  std::vector<double> sumtable(N * kStride);
  kernel::sumtable_slice<S>(0, N, 1, C, r.inner1(), r.inner2(),
                            m.sym_transform().data(), sumtable.data());

  auto lnl_at = [&](double b) {
    std::vector<double> p(C * S * S);
    Matrix pm;
    for (int c = 0; c < C; ++c) {
      m.transition_matrix(b * rates[static_cast<std::size_t>(c)], pm);
      std::copy(pm.data(), pm.data() + S * S, p.begin() + c * S * S);
    }
    return kernel::evaluate_slice<S>(0, N, 1, C, r.inner1(), r.inner2(),
                                     p.data(), m.freqs().data(),
                                     r.weights.data());
  };

  const double b = 0.23;
  std::vector<double> exp_lam(C * S), lam(C * S);
  for (int c = 0; c < C; ++c)
    for (int k = 0; k < S; ++k) {
      lam[c * S + k] =
          m.eigenvalues()[static_cast<std::size_t>(k)] * rates[c];
      exp_lam[c * S + k] = std::exp(lam[c * S + k] * b);
    }
  double d1 = 0, d2 = 0;
  kernel::nr_slice<S>(0, N, 1, C, sumtable.data(), exp_lam.data(), lam.data(),
                      r.weights.data(), &d1, &d2);

  const double h = 1e-6;
  const double fd1 = (lnl_at(b + h) - lnl_at(b - h)) / (2 * h);
  // Second differences amplify round-off ~ |lnL| * eps / h^2; use a larger
  // step where truncation error O(h^2) is still tiny.
  const double h2 = 1e-4;
  const double fd2 =
      (lnl_at(b + h2) - 2 * lnl_at(b) + lnl_at(b - h2)) / (h2 * h2);
  EXPECT_NEAR(d1, fd1, 1e-4 * std::max(1.0, std::abs(fd1)));
  EXPECT_NEAR(d2, fd2, 1e-3 * std::max(1.0, std::abs(fd2)));
}

TEST(Kernels, WeightsScaleContributions) {
  KernelRig r;
  const double freqs[S] = {0.25, 0.25, 0.25, 0.25};
  const double w1 = kernel::evaluate_slice<S>(
      0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(), freqs,
      r.weights.data());
  std::vector<double> w3(N, 3.0);
  const double got = kernel::evaluate_slice<S>(
      0, N, 1, C, r.inner1(), r.inner2(), r.p1.data(), freqs, w3.data());
  EXPECT_NEAR(got, 3.0 * w1, 1e-9);
}

}  // namespace
}  // namespace plk
