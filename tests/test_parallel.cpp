// Tests for parallel/: thread-team correctness under load, reduction
// determinism, and instrumentation counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "parallel/thread_team.hpp"

namespace plk {
namespace {

class ThreadTeamP : public ::testing::TestWithParam<int> {};

TEST_P(ThreadTeamP, AllThreadsRun) {
  const int T = GetParam();
  ThreadTeam team(T, false);
  std::vector<PaddedDouble> hits(static_cast<std::size_t>(T));
  team.run([&](int tid) { hits[static_cast<std::size_t>(tid)].value = tid + 1; });
  for (int t = 0; t < T; ++t)
    EXPECT_DOUBLE_EQ(hits[static_cast<std::size_t>(t)].value, t + 1.0);
}

TEST_P(ThreadTeamP, ManyCommandsInSequence) {
  const int T = GetParam();
  ThreadTeam team(T, false);
  std::atomic<long> total{0};
  const int commands = 500;
  for (int c = 0; c < commands; ++c)
    team.run([&](int) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), static_cast<long>(commands) * T);
}

TEST_P(ThreadTeamP, CyclicSliceReductionMatchesSequential) {
  // The engine's pattern: each thread sums its cyclic slice into a padded
  // slot; the master reduces in thread order.
  const int T = GetParam();
  const std::size_t n = 10007;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = std::sin(static_cast<double>(i));
  ThreadTeam team(T, false);
  std::vector<PaddedDouble> partial(static_cast<std::size_t>(T));
  team.run([&](int tid) {
    double s = 0;
    for (std::size_t i = static_cast<std::size_t>(tid); i < n;
         i += static_cast<std::size_t>(T))
      s += xs[i];
    partial[static_cast<std::size_t>(tid)].value = s;
  });
  double sum = 0;
  for (int t = 0; t < T; ++t) sum += partial[static_cast<std::size_t>(t)].value;
  const double ref = std::accumulate(xs.begin(), xs.end(), 0.0);
  EXPECT_NEAR(sum, ref, 1e-9 * n);
}

TEST_P(ThreadTeamP, SequentialOpsBetweenCommandsAreOrdered) {
  // A command must not start before the previous one fully finished.
  const int T = GetParam();
  ThreadTeam team(T, false);
  std::vector<int> data(static_cast<std::size_t>(T), 0);
  for (int round = 1; round <= 50; ++round) {
    team.run([&](int tid) {
      // Each thread verifies it saw the previous round's value.
      EXPECT_EQ(data[static_cast<std::size_t>(tid)], round - 1);
      data[static_cast<std::size_t>(tid)] = round;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThreadTeamP,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(ThreadTeam, SyncCountCountsCommands) {
  ThreadTeam team(4, true);
  EXPECT_EQ(team.stats().sync_count, 0u);
  for (int i = 0; i < 7; ++i) team.run([](int) {});
  EXPECT_EQ(team.stats().sync_count, 7u);
  team.reset_stats();
  EXPECT_EQ(team.stats().sync_count, 0u);
}

TEST(ThreadTeam, InstrumentationMeasuresImbalance) {
  ThreadTeam team(4, true);
  // Thread 0 does ~all the work: imbalance must be most of total critical
  // path; with balanced work it must be small.
  team.run([&](int tid) {
    if (tid == 0) {
      volatile double x = 0;
      for (int i = 0; i < 2000000; ++i) x += std::sqrt(i + 1.0);
    }
  });
  const auto& st = team.stats();
  EXPECT_GT(st.critical_path_seconds, 0.0);
  EXPECT_GT(st.imbalance_seconds, st.critical_path_seconds);  // 3 idle threads
}

TEST(ThreadTeam, BalancedWorkHasLowImbalance) {
  ThreadTeam team(4, true);
  team.run([&](int) {
    volatile double x = 0;
    for (int i = 0; i < 2000000; ++i) x += std::sqrt(i + 1.0);
  });
  const auto& st = team.stats();
  EXPECT_LT(st.imbalance_seconds, 3.0 * st.critical_path_seconds);
  EXPECT_GT(st.total_work_seconds, st.critical_path_seconds);
}

TEST(ThreadTeam, SingleThreadWorks) {
  ThreadTeam team(1, true);
  int calls = 0;
  team.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(team.stats().sync_count, 1u);
}

TEST(ThreadTeam, RejectsZeroThreads) {
  EXPECT_THROW(ThreadTeam(0), std::invalid_argument);
}

TEST(ThreadTeam, DestructsCleanlyWithoutCommands) {
  ThreadTeam team(8, false);
  // No run() calls: destructor must still join all workers promptly.
}

TEST(ThreadTeam, OversubscriptionStillCompletes) {
  // More threads than cores: workers park instead of spinning forever.
  ThreadTeam team(64, false);
  std::atomic<int> total{0};
  team.run([&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadTeam, ParksAndWakesAcrossLongSerialPhases) {
  // Long serial master phases (e.g. eigendecompositions during model
  // optimization) exhaust the workers' spin budget; they must park on the
  // condition variable and still wake promptly for the next command.
  ThreadTeam team(4, false);
  std::atomic<int> total{0};
  for (int round = 0; round < 3; ++round) {
    team.run([&](int) { total.fetch_add(1, std::memory_order_relaxed); });
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  team.run([&](int) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), 16);
  // Destruction with parked workers must also join cleanly (covered by the
  // fixture going out of scope right after an idle period).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

TEST(ThreadTeam, CpuTimeInstrumentationMeasuresOwnWork) {
  ThreadTeam team(2, true, /*cpu_time=*/true);
  team.run([&](int) {
    volatile double x = 0;
    for (int i = 0; i < 500000; ++i) x += std::sqrt(i + 1.0);
  });
  const auto& st = team.stats();
  EXPECT_GT(st.total_work_seconds, 0.0);
  EXPECT_GT(st.critical_path_seconds, 0.0);
  EXPECT_GE(st.imbalance_seconds, 0.0);
}

}  // namespace
}  // namespace plk
