// Tests for server/: the NDJSON wire protocol, the streaming placement
// engine (including the bit-identity of batched concurrent placement
// against sequential single-query scoring across thread/shard configs),
// and the TCP server end to end — admission control, malformed frames,
// and concurrent multi-session traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/placement.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "sim/datasets.hpp"
#include "tree/newick.hpp"
#include "tree/tree.hpp"

namespace plk {
namespace {

// --- protocol ---------------------------------------------------------------

TEST(Protocol, RoundTrip) {
  WireMessage m;
  m.set("op", "place");
  m.set("id", "q1");
  m.set_number("edge", 7);
  m.set_number("lnl", -1931.5311111111112);
  m.set_bool("ok", true);
  const std::string line = m.serialize();
  std::string err;
  auto back = WireMessage::parse(line, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back->get_string("op"), "place");
  EXPECT_EQ(*back->get_string("id"), "q1");
  EXPECT_EQ(back->get_number("edge"), 7.0);
  EXPECT_EQ(back->get_bool("ok"), true);
  // Field order is preserved, so serialization is byte-stable.
  EXPECT_EQ(back->serialize(), line);
}

TEST(Protocol, DoublesRoundTripBitExactly) {
  // The last two exceed long long range: json_number must take the %.17g
  // path without ever evaluating the double -> long long cast (UB there).
  const double values[] = {-1931.5311111111112, 0.1,  1e-17,  -4134.337,
                           12345678.000000123,  3.0,  -0.0,   9.3e18,
                           -1.2e19};
  for (const double v : values) {
    WireMessage m;
    m.set_number("x", v);
    auto back = WireMessage::parse(m.serialize());
    ASSERT_TRUE(back.has_value());
    const double r = *back->get_number("x");
    EXPECT_EQ(std::memcmp(&r, &v, sizeof v) == 0 || r == v, true) << v;
    EXPECT_EQ(r, v);
  }
}

TEST(Protocol, EscapesAndUnicode) {
  WireMessage m;
  m.set("s", "a\"b\\c\nd\te\x01");
  auto back = WireMessage::parse(m.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back->get_string("s"), "a\"b\\c\nd\te\x01");
  auto uni = WireMessage::parse("{\"s\":\"\\u0041\\u00e9\"}");
  ASSERT_TRUE(uni.has_value());
  EXPECT_EQ(*uni->get_string("s"), "A\xc3\xa9");
}

TEST(Protocol, RejectsMalformed) {
  std::string err;
  EXPECT_FALSE(WireMessage::parse("not json", &err).has_value());
  EXPECT_FALSE(WireMessage::parse("{\"a\":1", &err).has_value());
  EXPECT_FALSE(WireMessage::parse("{\"a\":[1,2]}", &err).has_value());
  EXPECT_FALSE(WireMessage::parse("{\"a\":{\"b\":1}}", &err).has_value());
  EXPECT_FALSE(WireMessage::parse("{\"a\":1}garbage", &err).has_value());
  EXPECT_FALSE(WireMessage::parse("", &err).has_value());
  EXPECT_TRUE(WireMessage::parse("{}").has_value());
  EXPECT_TRUE(WireMessage::parse("  {\"a\":null}  ").has_value());
}

TEST(Protocol, LineBufferSplitsAndBoundsLines) {
  LineBuffer lb(/*max_line=*/16);
  const std::string chunk = "{\"a\":1}\n{\"b\"";
  lb.append(chunk.data(), chunk.size());
  auto l1 = lb.next_line();
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->text, "{\"a\":1}");
  EXPECT_FALSE(l1->oversized);
  EXPECT_FALSE(lb.next_line().has_value());  // partial line stays buffered
  const std::string rest = ":2}\n";
  lb.append(rest.data(), rest.size());
  auto l2 = lb.next_line();
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->text, "{\"b\":2}");

  const std::string big(64, 'x');
  lb.append(big.data(), big.size());
  auto over = lb.next_line();
  ASSERT_TRUE(over.has_value());
  EXPECT_TRUE(over->oversized);
  EXPECT_LE(over->text.size(), 16u);
}

TEST(Protocol, OversizedLineContinuationIsDiscarded) {
  LineBuffer lb(/*max_line=*/16);
  const std::string big(64, 'x');
  lb.append(big.data(), big.size());
  auto over = lb.next_line();
  ASSERT_TRUE(over.has_value());
  EXPECT_TRUE(over->oversized);
  // The rest of the same logical line must be swallowed, not resurfaced as
  // more oversized chunks (one request -> exactly one surfaced line).
  const std::string more(40, 'y');
  lb.append(more.data(), more.size());
  EXPECT_FALSE(lb.next_line().has_value());
  const std::string tail = "zz\n{\"a\":1}\n";
  lb.append(tail.data(), tail.size());
  auto next = lb.next_line();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->oversized);
  EXPECT_EQ(next->text, "{\"a\":1}");

  // A complete oversized line (terminator already present) does not start
  // discarding: framing resumes at the very next line.
  const std::string oneshot = std::string(64, 'w') + "\n{\"b\":2}\n";
  lb.append(oneshot.data(), oneshot.size());
  auto w = lb.next_line();
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->oversized);
  auto b = lb.next_line();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->text, "{\"b\":2}");
}

// --- parsimony prefilter ----------------------------------------------------

TEST(ParsimonyInserter, ExactCopyOfTipCostsZeroAtItsPendantEdge) {
  Alignment aln;
  aln.add("a", "AACCGGTT");
  aln.add("b", "AACCGGAA");
  aln.add("c", "CCAAGGTT");
  aln.add("d", "CCAATTTT");
  const PartitionScheme scheme =
      PartitionScheme::single(DataType::kDna, aln.site_count());
  const CompressedAlignment comp =
      CompressedAlignment::build(aln, scheme, true);
  const Tree tree = parse_newick("((a:1,b:1):1,(c:1,d:1):1);",
                                 {"a", "b", "c", "d"});
  const ParsimonyInserter ins(tree, comp);

  // Encode a's row against the compression.
  std::vector<std::vector<StateMask>> q(1);
  const CompressedPartition& part = comp.partitions[0];
  q[0].resize(part.pattern_count);
  for (std::size_t i = 0; i < part.site_to_pattern.size(); ++i)
    q[0][part.site_to_pattern[i]] = part.alphabet().encode(aln.at(0, i));

  const std::vector<double> costs = ins.costs(q);
  const EdgeId a_pendant = tree.edges_of(/*tip a=*/0)[0];
  EXPECT_EQ(costs[static_cast<std::size_t>(a_pendant)], 0.0);
  // The shortlist ranks that edge first.
  const auto top = ins.shortlist(q, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(costs[static_cast<std::size_t>(top[0])], 0.0);
}

// --- placement engine -------------------------------------------------------

PlacementEngine make_engine_over(const PlacementScenario& sc, int threads,
                                 int shards, int lanes) {
  PlacementOptions po;
  po.lanes = lanes;
  po.max_candidates = 6;
  EngineOptions eo;
  eo.threads = threads;
  eo.shards = shards;
  eo.unlinked_branch_lengths = true;
  return PlacementEngine(sc.reference.alignment, sc.reference.scheme,
                         Tree(sc.reference.true_tree), po, eo);
}

/// Submit every query, pump the engine dry, and return results in query
/// order (the batched concurrent path).
std::vector<PlacementResult> place_batched(PlacementEngine& eng,
                                           const PlacementScenario& sc) {
  std::map<std::uint64_t, std::size_t> by_ticket;
  for (std::size_t i = 0; i < sc.queries.size(); ++i)
    by_ticket[eng.submit(sc.queries[i].data)] = i;
  std::vector<PlacementResult> out(sc.queries.size());
  std::size_t collected = 0;
  while (collected < sc.queries.size()) {
    eng.pump();
    for (auto& [ticket, result] : eng.drain_ready()) {
      out[by_ticket.at(ticket)] = std::move(result);
      ++collected;
    }
  }
  return out;
}

TEST(PlacementEngine, BatchedMatchesSequentialBitForBit) {
  const PlacementScenario sc = make_placement_scenario(10, 400, 12, 7);
  struct Config {
    int threads, shards;
  };
  const Config configs[] = {{1, 1}, {1, 2}, {4, 1}, {4, 2}};
  // Results per config, for the cross-shard comparison afterwards.
  std::map<int, std::vector<PlacementResult>> by_threads_s1;
  for (const Config& c : configs) {
    SCOPED_TRACE("threads=" + std::to_string(c.threads) +
                 " shards=" + std::to_string(c.shards));
    PlacementEngine eng = make_engine_over(sc, c.threads, c.shards, 4);
    eng.optimize_reference();
    eng.start_service();

    const std::vector<PlacementResult> batched = place_batched(eng, sc);
    ASSERT_EQ(batched.size(), sc.queries.size());
    // The engine's own wave stats prove the queries were actually merged:
    // fewer waves than queries means lanes shared flushes.
    EXPECT_LT(eng.stats().waves, sc.queries.size());

    for (std::size_t i = 0; i < sc.queries.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      const PlacementResult seq =
          eng.place_sequential(sc.queries[i].data);
      ASSERT_TRUE(batched[i].ok) << batched[i].error;
      ASSERT_TRUE(seq.ok) << seq.error;
      // Bit-identical: best edge, its lnL, and the optimized pendant
      // length must not depend on wave composition.
      EXPECT_EQ(batched[i].edge, seq.edge);
      EXPECT_EQ(batched[i].lnl, seq.lnl);
      EXPECT_EQ(batched[i].pendant_length, seq.pendant_length);
    }

    if (c.shards == 1) {
      by_threads_s1[c.threads] = batched;
    } else {
      // Sharding must not change a single placement bit.
      const auto& base = by_threads_s1.at(c.threads);
      for (std::size_t i = 0; i < batched.size(); ++i) {
        EXPECT_EQ(batched[i].edge, base[i].edge);
        EXPECT_EQ(batched[i].lnl, base[i].lnl);
      }
    }
  }
}

TEST(PlacementEngine, RecoversTrueEdges) {
  // Queries are noisy copies of reference tips; ML placement should put
  // most of them back on their source tip's pendant edge.
  const PlacementScenario sc = make_placement_scenario(12, 600, 12, 3);
  PlacementEngine eng = make_engine_over(sc, 1, 1, 4);
  eng.optimize_reference();
  eng.start_service();
  const std::vector<PlacementResult> res = place_batched(eng, sc);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < res.size(); ++i) {
    ASSERT_TRUE(res[i].ok) << res[i].error;
    if (res[i].edge == sc.true_edges[i]) ++hits;
  }
  EXPECT_GE(hits * 2, res.size()) << hits << "/" << res.size();
}

TEST(PlacementEngine, BadQueryLengthFailsCleanly) {
  const PlacementScenario sc = make_placement_scenario(8, 200, 2, 5);
  PlacementEngine eng = make_engine_over(sc, 1, 1, 2);
  eng.optimize_reference();
  eng.start_service();
  const std::uint64_t bad = eng.submit("ACGT");  // wrong length
  const std::uint64_t good = eng.submit(sc.queries[0].data);
  while (eng.stats().placed < 2) eng.pump();
  bool saw_bad = false, saw_good = false;
  for (auto& [ticket, r] : eng.drain_ready()) {
    if (ticket == bad) {
      saw_bad = true;
      EXPECT_FALSE(r.ok);
      EXPECT_NE(r.error.find("reference sites"), std::string::npos);
    }
    if (ticket == good) {
      saw_good = true;
      EXPECT_TRUE(r.ok) << r.error;
    }
  }
  EXPECT_TRUE(saw_bad);
  EXPECT_TRUE(saw_good);
  EXPECT_EQ(eng.stats().failed, 1u);
}

TEST(PlacementEngine, WarmRestartReproducesPlacements) {
  const PlacementScenario sc = make_placement_scenario(10, 300, 4, 9);
  const std::string ckpt =
      std::string(::testing::TempDir()) + "plk_server_warm.ckpt";
  std::remove(ckpt.c_str());

  PlacementEngine a = make_engine_over(sc, 1, 1, 2);
  EXPECT_FALSE(a.warm_restart(ckpt));  // nothing to restore yet
  a.optimize_reference();
  a.save_checkpoint(ckpt);
  a.start_service();

  PlacementEngine b = make_engine_over(sc, 1, 1, 2);
  ASSERT_TRUE(b.warm_restart(ckpt));  // skips optimization entirely
  b.start_service();

  for (const auto& q : sc.queries) {
    const PlacementResult ra = a.place_sequential(q.data);
    const PlacementResult rb = b.place_sequential(q.data);
    ASSERT_TRUE(ra.ok && rb.ok);
    EXPECT_EQ(ra.edge, rb.edge);
    EXPECT_EQ(ra.lnl, rb.lnl);
  }
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".1").c_str());
}

// --- TCP server -------------------------------------------------------------

/// Scenario + started engine + open server on an ephemeral port. The
/// server is stepped from the test's main thread (the engine's master
/// thread); clients run in their own threads over blocking sockets.
struct TestServer {
  PlacementScenario sc;
  std::unique_ptr<PlacementEngine> engine;
  std::unique_ptr<PlkServer> server;

  explicit TestServer(std::size_t max_sessions = 64, int lanes = 4,
                      std::size_t max_queue = 1024)
      : sc(make_placement_scenario(10, 300, 16, 11)) {
    PlacementOptions po;
    po.lanes = lanes;
    po.max_candidates = 5;
    po.max_queue = max_queue;
    EngineOptions eo;
    eo.threads = 1;
    eo.unlinked_branch_lengths = true;
    engine = std::make_unique<PlacementEngine>(
        sc.reference.alignment, sc.reference.scheme,
        Tree(sc.reference.true_tree), po, eo);
    engine->optimize_reference();
    engine->start_service();
    ServerOptions so;
    so.port = 0;
    so.max_sessions = max_sessions;
    server = std::make_unique<PlkServer>(*engine, so);
    server->open();
  }

  /// Step the server until `remaining` client threads have finished, then
  /// a few times more so every quit/close drains.
  void pump_until_done(const std::atomic<int>& remaining) {
    while (remaining.load(std::memory_order_relaxed) > 0) server->step(2);
    for (int i = 0; i < 25; ++i) server->step(1);
  }
};

TEST(Server, PlacementsOverSocketMatchSequential) {
  TestServer ts;
  std::atomic<int> remaining{1};
  std::vector<WireMessage> responses;
  std::thread client_thread([&] {
    PlacementClient c;
    std::string err;
    if (!c.connect("127.0.0.1", ts.server->port(), &err)) {
      ADD_FAILURE() << "connect: " << err;
      remaining = 0;
      return;
    }
    auto hi = c.hello(&err);
    EXPECT_TRUE(hi.has_value() && hi->get_bool("ok").value_or(false));
    // Pipeline every query, then drain the responses.
    const std::size_t n = ts.sc.queries.size();
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(c.send_place("q" + std::to_string(i),
                               ts.sc.queries[i].data, &err))
          << err;
    for (std::size_t i = 0; i < n; ++i) {
      auto resp = c.read_message(&err);
      if (!resp.has_value()) {
        ADD_FAILURE() << "read: " << err;
        break;
      }
      responses.push_back(std::move(*resp));
    }
    c.quit();
    remaining = 0;
  });
  ts.pump_until_done(remaining);
  client_thread.join();

  ASSERT_EQ(responses.size(), ts.sc.queries.size());
  for (const WireMessage& r : responses) {
    ASSERT_TRUE(r.get_bool("ok").value_or(false))
        << (r.get_string("error") != nullptr ? *r.get_string("error") : "");
    const std::string* id = r.get_string("id");
    ASSERT_NE(id, nullptr);
    const std::size_t i =
        static_cast<std::size_t>(std::atoll(id->c_str() + 1));
    // The engine is idle now: score the same query sequentially and hold
    // the wire response to it, bit for bit (the protocol's 17-digit
    // doubles make this exact).
    const PlacementResult seq =
        ts.engine->place_sequential(ts.sc.queries[i].data);
    EXPECT_EQ(r.get_number("edge"), static_cast<double>(seq.edge));
    EXPECT_EQ(r.get_number("lnl"), seq.lnl);
  }
  EXPECT_EQ(ts.server->stats().sessions_dropped, 0u);
}

TEST(Server, RankReturnsTopCandidatesBestFirst) {
  TestServer ts;
  std::atomic<int> remaining{1};
  std::optional<WireMessage> ranked, plain;
  std::thread client_thread([&] {
    PlacementClient c;
    std::string err;
    if (!c.connect("127.0.0.1", ts.server->port(), &err)) {
      ADD_FAILURE() << "connect: " << err;
      remaining = 0;
      return;
    }
    WireMessage req;
    req.set("op", "place");
    req.set("id", "r0");
    req.set("seq", ts.sc.queries[0].data);
    req.set_number("rank", 3);
    ranked = c.request(req, &err);
    // The same query without "rank" must come back in the old shape.
    auto resp = c.place("p0", ts.sc.queries[0].data, &err);
    plain = std::move(resp);
    c.quit();
    remaining = 0;
  });
  ts.pump_until_done(remaining);
  client_thread.join();

  ASSERT_TRUE(ranked.has_value());
  ASSERT_TRUE(ranked->get_bool("ok").value_or(false))
      << (ranked->get_string("error") ? *ranked->get_string("error") : "");
  const double k = ranked->get_number("rank").value_or(-1.0);
  const double n = ranked->get_number("candidates").value_or(-1.0);
  ASSERT_GT(k, 0.0);
  EXPECT_EQ(k, std::min(3.0, n));
  // ranked[0] mirrors the flat best-placement fields.
  EXPECT_EQ(ranked->get_number("edge0"), ranked->get_number("edge"));
  EXPECT_EQ(ranked->get_number("lnl0"), ranked->get_number("lnl"));
  EXPECT_EQ(ranked->get_number("pendant0"), ranked->get_number("pendant"));
  // Best first, every entry complete.
  double prev = *ranked->get_number("lnl0");
  for (int i = 1; i < static_cast<int>(k); ++i) {
    const std::string s = std::to_string(i);
    ASSERT_TRUE(ranked->get_number("edge" + s).has_value()) << i;
    ASSERT_TRUE(ranked->get_number("pendant" + s).has_value()) << i;
    const double lnl = ranked->get_number("lnl" + s).value_or(1.0);
    EXPECT_LE(lnl, prev);
    prev = lnl;
  }
  // The engine is idle now: the ranked list must match the sequential
  // reference path bit for bit, like the best placement does.
  const PlacementResult seq = ts.engine->place_sequential(ts.sc.queries[0].data);
  ASSERT_GE(seq.ranked.size(), static_cast<std::size_t>(k));
  for (int i = 0; i < static_cast<int>(k); ++i) {
    const std::string s = std::to_string(i);
    EXPECT_EQ(*ranked->get_number("edge" + s),
              static_cast<double>(seq.ranked[static_cast<std::size_t>(i)].edge));
    EXPECT_EQ(*ranked->get_number("lnl" + s),
              seq.ranked[static_cast<std::size_t>(i)].lnl);
  }

  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(plain->get_bool("ok").value_or(false));
  EXPECT_FALSE(plain->has("rank"));
  EXPECT_FALSE(plain->has("edge0"));
}

TEST(Server, AdmissionRejectsSessionsOverCapacity) {
  TestServer ts(/*max_sessions=*/1);
  std::atomic<int> remaining{2};
  std::atomic<bool> first_connected{false}, second_done{false};
  std::thread first([&] {
    PlacementClient c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", ts.server->port(), &err)) << err;
    auto hi = c.hello(&err);
    EXPECT_TRUE(hi.has_value()) << err;  // session is established
    first_connected = true;
    while (!second_done.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    c.quit();
    --remaining;
  });
  std::thread second([&] {
    while (!first_connected.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    PlacementClient c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", ts.server->port(), &err)) << err;
    auto msg = c.read_message(&err);  // the rejection line
    ASSERT_TRUE(msg.has_value()) << err;
    EXPECT_FALSE(msg->get_bool("ok").value_or(true));
    ASSERT_NE(msg->get_string("error"), nullptr);
    EXPECT_NE(msg->get_string("error")->find("capacity"), std::string::npos);
    second_done = true;
    --remaining;
  });
  ts.pump_until_done(remaining);
  first.join();
  second.join();
  EXPECT_EQ(ts.server->stats().sessions_rejected, 1u);
}

TEST(Server, MalformedFramesDoNotPoisonTheSession) {
  TestServer ts;
  std::atomic<int> remaining{1};
  std::thread client_thread([&] {
    PlacementClient c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", ts.server->port(), &err)) << err;

    const auto expect_error = [&](const std::string& raw,
                                  const std::string& needle) {
      ASSERT_TRUE(c.send_raw(raw, &err)) << err;
      auto resp = c.read_message(&err);
      ASSERT_TRUE(resp.has_value()) << err;
      EXPECT_FALSE(resp->get_bool("ok").value_or(true)) << raw;
      ASSERT_NE(resp->get_string("error"), nullptr) << raw;
      EXPECT_NE(resp->get_string("error")->find(needle), std::string::npos)
          << raw << " -> " << *resp->get_string("error");
    };
    expect_error("this is not json\n", "malformed");
    expect_error("{\"op\":[1,2]}\n", "malformed");
    expect_error("{\"seq\":\"ACGT\"}\n", "missing op");
    expect_error("{\"op\":\"warp\"}\n", "unknown op");
    expect_error("{\"op\":\"place\",\"id\":\"x\"}\n", "missing seq");
    // Wrong-length sequence: accepted on the wire, failed by the engine.
    expect_error("{\"op\":\"place\",\"id\":\"x\",\"seq\":\"ACGT\"}\n",
                 "reference sites");

    // The session survived all of that.
    auto hi = c.hello(&err);
    ASSERT_TRUE(hi.has_value()) << err;
    EXPECT_TRUE(hi->get_bool("ok").value_or(false));
    c.quit();
    remaining = 0;
  });
  ts.pump_until_done(remaining);
  client_thread.join();
  EXPECT_EQ(ts.server->stats().sessions_dropped, 0u);
  EXPECT_GE(ts.server->stats().malformed, 2u);
}

// Regression: a pipelined burst larger than the engine queue used to hang.
// read_session recv()'d the whole burst into the userspace LineBuffer and
// stopped processing when the queue filled; poll never re-fired (no new
// kernel bytes), so the buffered requests were never resumed. step() now
// re-drains buffered sessions after each pump.
TEST(Server, PipelinedBurstBeyondQueueCapacityAllAnswered) {
  TestServer ts(/*max_sessions=*/64, /*lanes=*/4, /*max_queue=*/2);
  std::atomic<int> remaining{1};
  std::size_t answered = 0, ok = 0;
  std::thread client_thread([&] {
    PlacementClient c;
    std::string err;
    if (!c.connect("127.0.0.1", ts.server->port(), &err)) {
      ADD_FAILURE() << "connect: " << err;
      remaining = 0;
      return;
    }
    // One burst: every query hits the socket before any response is read.
    const std::size_t n = ts.sc.queries.size();
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(c.send_place("q" + std::to_string(i),
                               ts.sc.queries[i].data, &err))
          << err;
    for (std::size_t i = 0; i < n; ++i) {
      auto resp = c.read_message(&err);
      if (!resp.has_value()) {
        ADD_FAILURE() << "read: " << err;
        break;
      }
      ++answered;
      if (resp->get_bool("ok").value_or(false)) ++ok;
    }
    c.quit();
    remaining = 0;
  });
  ts.pump_until_done(remaining);
  client_thread.join();
  EXPECT_EQ(answered, ts.sc.queries.size());
  EXPECT_EQ(ok, ts.sc.queries.size());  // no "busy" rejections either
  EXPECT_EQ(ts.server->stats().sessions_dropped, 0u);
}

TEST(Server, RequestsPipelinedAfterQuitAreDiscarded) {
  TestServer ts;
  std::atomic<int> remaining{1};
  std::thread client_thread([&] {
    PlacementClient c;
    std::string err;
    if (!c.connect("127.0.0.1", ts.server->port(), &err)) {
      ADD_FAILURE() << "connect: " << err;
      remaining = 0;
      return;
    }
    // quit and a place in one write: the place lands after the protocol
    // session ended, so it must be discarded, not acknowledged-then-lost.
    WireMessage q;
    q.set("op", "quit");
    WireMessage p;
    p.set("op", "place");
    p.set("id", "late");
    p.set("seq", ts.sc.queries[0].data);
    EXPECT_TRUE(
        c.send_raw(q.serialize() + "\n" + p.serialize() + "\n", &err))
        << err;
    auto resp = c.read_message(&err);
    if (!resp.has_value()) {
      ADD_FAILURE() << "read: " << err;
    } else {
      const std::string* op = resp->get_string("op");
      EXPECT_TRUE(op != nullptr && *op == "quit");
      EXPECT_TRUE(resp->get_bool("ok").value_or(false));
      // Server closes after the quit response: no reply for "late" ever.
      EXPECT_FALSE(c.read_message(&err).has_value());
    }
    remaining = 0;
  });
  ts.pump_until_done(remaining);
  client_thread.join();
  EXPECT_EQ(ts.engine->stats().submitted, 0u);
  EXPECT_EQ(ts.server->stats().sessions_closed, 1u);
}

TEST(Server, ConcurrentSessionsAllServedAndBitIdentical) {
  TestServer ts(/*max_sessions=*/64, /*lanes=*/8);
  constexpr int kClients = 8;
  constexpr int kPerClient = 4;
  std::atomic<int> remaining{kClients};
  // [client][query] -> (edge, lnl) straight off the wire.
  std::vector<std::vector<std::pair<double, double>>> got(
      kClients, std::vector<std::pair<double, double>>(
                    kPerClient, {-1.0, 0.0}));
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      PlacementClient c;
      std::string err;
      if (!c.connect("127.0.0.1", ts.server->port(), &err)) {
        ADD_FAILURE() << "connect: " << err;
        --remaining;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t q =
            static_cast<std::size_t>(t * kPerClient + i) %
            ts.sc.queries.size();
        EXPECT_TRUE(
            c.send_place(std::to_string(i), ts.sc.queries[q].data, &err))
            << err;
      }
      for (int i = 0; i < kPerClient; ++i) {
        auto resp = c.read_message(&err);
        if (!resp.has_value()) {
          ADD_FAILURE() << "client " << t << " read: " << err;
          break;
        }
        EXPECT_TRUE(resp->get_bool("ok").value_or(false));
        const std::string* id = resp->get_string("id");
        ASSERT_NE(id, nullptr);
        const int slot = std::atoi(id->c_str());
        got[static_cast<std::size_t>(t)][static_cast<std::size_t>(slot)] = {
            resp->get_number("edge").value_or(-2.0),
            resp->get_number("lnl").value_or(0.0)};
      }
      c.quit();
      --remaining;
    });
  }
  ts.pump_until_done(remaining);
  for (auto& th : clients) th.join();

  // Zero dropped sessions, every client served.
  EXPECT_EQ(ts.server->stats().sessions_dropped, 0u);
  EXPECT_EQ(ts.server->stats().sessions_accepted,
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(ts.engine->stats().placed,
            static_cast<std::uint64_t>(kClients * kPerClient));

  // Every wire result equals the sequential reference scoring of the same
  // query — placement does not depend on which strangers shared the wave.
  for (int t = 0; t < kClients; ++t)
    for (int i = 0; i < kPerClient; ++i) {
      const std::size_t q = static_cast<std::size_t>(t * kPerClient + i) %
                            ts.sc.queries.size();
      const PlacementResult seq =
          ts.engine->place_sequential(ts.sc.queries[q].data);
      ASSERT_TRUE(seq.ok);
      EXPECT_EQ(got[t][i].first, static_cast<double>(seq.edge))
          << "client " << t << " query " << i;
      EXPECT_EQ(got[t][i].second, seq.lnl)
          << "client " << t << " query " << i;
    }
}

}  // namespace
}  // namespace plk
