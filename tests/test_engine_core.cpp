// Tests for the EngineCore / EvalContext split and the batched evaluation
// API (core/engine_core.hpp).
//
// Contracts pinned here:
//   * a context over a shared core computes the same likelihoods as a
//     standalone Engine over the same data (the facade is just core+ctx);
//   * a context with bootstrap-resampled weights matches an Engine built
//     over a bootstrap_replicate() alignment copy bit for bit;
//   * batched evaluation (submit/wait, evaluate_batch) returns exactly the
//     per-context sequential results while packing all requests into one
//     parallel region, including batches large enough to overflow the
//     shared tip-table LRUs (eviction pinning);
//   * optimize_branch_lengths_batch reproduces the sequential
//     one-engine-per-replicate optimizer bit for bit;
//   * the pending-request discipline is enforced;
//   * multi-start search over shared-core contexts picks the best start.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "plk.hpp"

namespace plk {
namespace {

struct CoreRig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<EngineCore> core;

  explicit CoreRig(int taxa, std::size_t sites, std::size_t plen,
                   std::uint64_t seed = 4711, int threads = 1,
                   bool unlinked = true) {
    data = make_simulated_dna(taxa, sites, plen, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions)
      models.emplace_back(make_model("GTR", empirical_frequencies(part)), 0.7,
                          4);
    EngineOptions eo;
    eo.threads = threads;
    eo.unlinked_branch_lengths = unlinked;
    core = std::make_unique<EngineCore>(*comp, std::move(models), eo);
  }

  std::vector<PartitionModel> models_copy() const {
    std::vector<PartitionModel> out;
    for (int p = 0; p < core->partition_count(); ++p)
      out.push_back(core->prototype_model(p));
    return out;
  }
};

TEST(EngineCore, ContextMatchesStandaloneEngine) {
  CoreRig rig(8, 300, 100, 5);
  EvalContext ctx(*rig.core, rig.data.true_tree);

  EngineOptions eo;
  eo.unlinked_branch_lengths = true;
  Engine standalone(*rig.comp, rig.data.true_tree, rig.models_copy(), eo);

  for (EdgeId e : {0, 3, 7}) {
    EXPECT_EQ(ctx.loglikelihood(e), standalone.loglikelihood(e))
        << "edge " << e;
  }
}

TEST(EngineCore, ResampledWeightsMatchReplicateAlignmentEngine) {
  CoreRig rig(8, 400, 200, 7);
  Rng rng_a(31), rng_b(31);
  const auto weights = bootstrap_weights(*rig.comp, rng_a);
  const auto rep = bootstrap_replicate(*rig.comp, rng_b);  // same draws

  EvalContext ctx(*rig.core, rig.data.true_tree);
  for (int p = 0; p < rig.core->partition_count(); ++p)
    ctx.set_pattern_weights(p, weights[static_cast<std::size_t>(p)]);

  EngineOptions eo;
  eo.unlinked_branch_lengths = true;
  Engine rep_engine(rep, rig.data.true_tree, rig.models_copy(), eo);

  EXPECT_EQ(ctx.loglikelihood(0), rep_engine.loglikelihood(0));
  EXPECT_EQ(ctx.loglikelihood(2), rep_engine.loglikelihood(2));
}

TEST(EngineCore, EvaluateBatchMatchesSequentialPerContext) {
  CoreRig rig(8, 360, 120, 11, /*threads=*/3);
  Rng rng(17);

  // Several contexts with different trees AND different weights.
  std::vector<std::unique_ptr<EvalContext>> owned;
  std::vector<EvalContext*> ctxs;
  std::vector<EdgeId> edges;
  for (int c = 0; c < 5; ++c) {
    Rng trng(100 + static_cast<std::uint64_t>(c));
    auto ctx = std::make_unique<EvalContext>(
        *rig.core, random_tree(rig.comp->taxon_names, trng));
    const auto w = bootstrap_weights(*rig.comp, rng);
    for (int p = 0; p < rig.core->partition_count(); ++p)
      ctx->set_pattern_weights(p, w[static_cast<std::size_t>(p)]);
    ctxs.push_back(ctx.get());
    owned.push_back(std::move(ctx));
    edges.push_back(static_cast<EdgeId>(c * 2));
  }

  // Sequential reference first, on twin contexts (so the batch below runs
  // from the same cold-CLV state).
  std::vector<double> want;
  {
    std::vector<std::unique_ptr<EvalContext>> twin;
    for (int c = 0; c < 5; ++c) {
      twin.push_back(std::make_unique<EvalContext>(*rig.core,
                                                   ctxs[(std::size_t)c]->tree()));
      for (int p = 0; p < rig.core->partition_count(); ++p)
        twin.back()->set_pattern_weights(
            p, ctxs[(std::size_t)c]->pattern_weights(p));
      want.push_back(twin.back()->loglikelihood(edges[(std::size_t)c]));
    }
  }

  const auto before = rig.core->team_stats().sync_count;
  const auto got = rig.core->evaluate_batch(ctxs, edges);
  const auto after = rig.core->team_stats().sync_count;

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t c = 0; c < want.size(); ++c)
    EXPECT_EQ(got[c], want[c]) << "context " << c;
  EXPECT_EQ(after - before, 1u);  // the whole batch was ONE parallel region
}

TEST(EngineCore, LargeBatchSurvivesTipTableLruPressure) {
  // More contexts than kTipTableLruSize, all evaluating at the SAME edge
  // with different branch lengths: every context needs its own live tip
  // table during the one batched command, which forces the per-edge LRU
  // past its capacity (eviction pinning). Values must match sequential.
  CoreRig rig(6, 200, 100, 13, /*threads=*/2);
  const int C = 3 * kTipTableLruSize;
  std::vector<std::unique_ptr<EvalContext>> owned;
  std::vector<EvalContext*> ctxs;
  std::vector<EdgeId> edges;
  for (int c = 0; c < C; ++c) {
    auto ctx = std::make_unique<EvalContext>(*rig.core, rig.data.true_tree);
    // Perturb every branch so each context's tip tables differ everywhere.
    BranchLengths& bl = ctx->branch_lengths();
    for (EdgeId e = 0; e < ctx->tree().edge_count(); ++e)
      for (int p = 0; p < rig.core->partition_count(); ++p)
        bl.set(e, p, bl.get(e, p) * (1.0 + 0.01 * (c + 1)));
    ctxs.push_back(ctx.get());
    owned.push_back(std::move(ctx));
    edges.push_back(0);
  }

  std::vector<double> want;
  for (int c = 0; c < C; ++c) {
    EvalContext twin(*rig.core, rig.data.true_tree);
    BranchLengths& bl = twin.branch_lengths();
    for (EdgeId e = 0; e < twin.tree().edge_count(); ++e)
      for (int p = 0; p < rig.core->partition_count(); ++p)
        bl.set(e, p, bl.get(e, p) * (1.0 + 0.01 * (c + 1)));
    want.push_back(twin.loglikelihood(0));
  }

  const auto got = rig.core->evaluate_batch(ctxs, edges);
  for (int c = 0; c < C; ++c)
    EXPECT_EQ(got[static_cast<std::size_t>(c)],
              want[static_cast<std::size_t>(c)])
        << "context " << c;
}

TEST(EngineCore, PendingDisciplineIsEnforced) {
  CoreRig rig(6, 150, 150, 19);
  EvalContext a(*rig.core, rig.data.true_tree);
  EvalContext b(*rig.core, rig.data.true_tree);

  rig.core->submit(a, EvalRequest::evaluate(0));
  // Same context twice in one batch: refused.
  EXPECT_THROW(rig.core->submit(a, EvalRequest::evaluate(1)),
               std::logic_error);
  // Direct calls while the core has an open batch: refused for EVERY
  // context, pending or not (a one-off command would trim tip tables the
  // queued commands still reference).
  EXPECT_THROW(a.loglikelihood(0), std::logic_error);
  EXPECT_THROW(b.loglikelihood(0), std::logic_error);
  // Submitting a different context is fine.
  rig.core->submit(b, EvalRequest::evaluate(0));
  const auto res = rig.core->wait();
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0], res[1]);  // same tree, same weights
  // Flushed: the contexts are usable again.
  EXPECT_EQ(a.loglikelihood(0), res[0]);
}

TEST(EngineCore, ModelMutationBetweenSubmitAndWaitLeavesClvsStale) {
  // The queued command runs with the OLD model's matrices; the CLVs it
  // writes must therefore stay marked stale for the NEW model epoch, so
  // the next direct evaluation recomputes them.
  CoreRig rig(6, 200, 100, 71);
  EvalContext ctx(*rig.core, rig.data.true_tree);
  rig.core->submit(ctx, EvalRequest::evaluate(0));
  ctx.model(0).set_alpha(2.5);
  ctx.invalidate_partition(0);
  rig.core->wait();

  EvalContext fresh(*rig.core, rig.data.true_tree);
  fresh.model(0).set_alpha(2.5);
  fresh.invalidate_partition(0);
  EXPECT_EQ(ctx.loglikelihood(0), fresh.loglikelihood(0));
}

TEST(EngineCore, DestroyingPendingContextIsSafe) {
  // A context destroyed between submit() and wait() (exception unwind)
  // must not leave a dangling queue entry; its ticket reports 0.0 and the
  // surviving contexts' results are unaffected.
  CoreRig rig(6, 200, 100, 73);
  EvalContext keep(*rig.core, rig.data.true_tree);
  const double want = keep.loglikelihood(0);
  {
    auto doomed = std::make_unique<EvalContext>(*rig.core, rig.data.true_tree);
    rig.core->submit(*doomed, EvalRequest::evaluate(0));
    rig.core->submit(keep, EvalRequest::evaluate(0));
    doomed.reset();
  }
  const auto res = rig.core->wait();
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0], 0.0);
  EXPECT_EQ(res[1], want);
}

TEST(EngineCore, ExplicitEmptyPartitionScopeStaysEmpty) {
  // Pre-split semantics: an explicitly empty partition list is a
  // degenerate command over nothing, NOT "all partitions".
  CoreRig rig(6, 150, 150, 43);
  EvalContext ctx(*rig.core, rig.data.true_tree);
  const double full = ctx.loglikelihood(0);
  EXPECT_LT(full, 0.0);
  EXPECT_EQ(ctx.loglikelihood(0, {}), 0.0);
  // Empty-scope sumtable and NR derivative passes are no-ops, not errors.
  ctx.prepare_root(0);
  ctx.compute_sumtable({});
  ctx.nr_derivatives({}, {}, {}, {});
  // The factory without a partition argument still means every partition.
  rig.core->submit(ctx, EvalRequest::evaluate(0));
  EXPECT_EQ(rig.core->wait().at(0), full);
}

TEST(EngineCore, BatchedBranchOptimizationMatchesSequentialBitForBit) {
  CoreRig rig(8, 360, 90, 23, /*threads=*/2, /*unlinked=*/true);
  const int R = 4;
  Rng rng(2718);
  std::vector<std::vector<std::vector<double>>> weights;
  for (int r = 0; r < R; ++r)
    weights.push_back(bootstrap_weights(*rig.comp, rng));

  // Sequential: one engine per replicate over an alignment copy.
  EngineOptions eo;
  eo.threads = 2;
  eo.unlinked_branch_lengths = true;
  std::vector<double> want;
  for (int r = 0; r < R; ++r) {
    CompressedAlignment rep = *rig.comp;
    for (std::size_t p = 0; p < rep.partitions.size(); ++p)
      rep.partitions[p].weights = weights[static_cast<std::size_t>(r)][p];
    Engine eng(rep, rig.data.true_tree, rig.models_copy(), eo);
    want.push_back(optimize_branch_lengths(eng, Strategy::kNewPar));
  }

  // Batched: contexts over the shared core.
  std::vector<std::unique_ptr<EvalContext>> owned;
  std::vector<EvalContext*> ctxs;
  for (int r = 0; r < R; ++r) {
    auto ctx = std::make_unique<EvalContext>(*rig.core, rig.data.true_tree);
    for (int p = 0; p < rig.core->partition_count(); ++p)
      ctx->set_pattern_weights(
          p, weights[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)]);
    ctxs.push_back(ctx.get());
    owned.push_back(std::move(ctx));
  }
  const auto got = optimize_branch_lengths_batch(*rig.core, ctxs);

  ASSERT_EQ(got.size(), want.size());
  for (int r = 0; r < R; ++r)
    EXPECT_EQ(got[static_cast<std::size_t>(r)],
              want[static_cast<std::size_t>(r)])
        << "replicate " << r;
}

TEST(EngineCore, CopyStateFromHandlesDifferentTipOrderings) {
  // The destination context's tree maps tip ids to taxa differently from
  // the source's; adoption must carry the mapping with the tree.
  CoreRig rig(7, 200, 100, 83);
  std::vector<std::string> rotated = rig.comp->taxon_names;
  std::rotate(rotated.begin(), rotated.begin() + 2, rotated.end());
  Rng r1(3), r2(9);
  EvalContext a(*rig.core, random_tree(rotated, r1));
  EvalContext b(*rig.core, random_tree(rig.comp->taxon_names, r2));
  const double want = b.loglikelihood(0);
  a.copy_state_from(b);
  EXPECT_EQ(a.loglikelihood(0), want);
}

TEST(EngineCore, CopyStateFromCarriesTreeModelsAndLengths) {
  CoreRig rig(7, 200, 100, 29);
  Rng trng(5);
  EvalContext a(*rig.core, random_tree(rig.comp->taxon_names, trng));
  EvalContext b(*rig.core, rig.data.true_tree);
  b.model(0).set_alpha(1.9);
  b.invalidate_partition(0);
  const double want = b.loglikelihood(0);

  a.copy_state_from(b);
  EXPECT_EQ(a.loglikelihood(0), want);
  EXPECT_EQ(rf_distance(a.tree(), b.tree()), 0);
  EXPECT_DOUBLE_EQ(a.model(0).alpha(), 1.9);
}

TEST(EngineCore, MultiStartSearchPicksBestStart) {
  CoreRig rig(8, 500, 250, 37, /*threads=*/2);
  std::vector<std::unique_ptr<EvalContext>> owned;
  std::vector<EvalContext*> ctxs;
  for (int s = 0; s < 3; ++s) {
    Rng trng(40 + static_cast<std::uint64_t>(s));
    owned.push_back(std::make_unique<EvalContext>(
        *rig.core, random_tree(rig.comp->taxon_names, trng)));
    ctxs.push_back(owned.back().get());
  }
  SearchOptions so;
  so.max_rounds = 1;
  so.spr_radius = 2;
  so.optimize_model = false;
  const MultiStartResult ms = search_ml_multistart(*rig.core, ctxs, so);
  ASSERT_EQ(ms.results.size(), 3u);
  ASSERT_GE(ms.best, 0);
  for (const auto& r : ms.results) {
    EXPECT_TRUE(std::isfinite(r.final_lnl));
    EXPECT_LE(r.final_lnl,
              ms.results[static_cast<std::size_t>(ms.best)].final_lnl);
  }
}

TEST(EngineCore, AnalysisMultiStartBeatsOrMatchesSingleStart) {
  Dataset d = make_simulated_dna(8, 400, 200, 55);
  AnalysisOptions single;
  single.start_tree = StartTree::kRandom;
  single.search.max_rounds = 1;
  single.search.spr_radius = 2;
  AnalysisOptions multi = single;
  multi.search_starts = 3;

  Analysis a1(d.alignment, d.scheme, single);
  const double lnl1 = a1.run_search().lnl;
  Analysis a3(d.alignment, d.scheme, multi);
  const AnalysisResult r3 = a3.run_search();
  // Start 0 is identical in both runs, so the 3-start best can only match
  // or beat the single start.
  EXPECT_GE(r3.lnl, lnl1 - 1e-9);
  // The engine was left on the winning tree.
  EXPECT_NEAR(a3.engine().loglikelihood(0), r3.lnl, 1e-6 * std::abs(r3.lnl));
}

/// The model-epoch registry is a real LRU: a model state in active use
/// keeps its epoch (and with it tip-table sharing) through arbitrary churn
/// from one-shot states, while the registry itself stays bounded.
TEST(EngineCore, EpochRegistryLruKeepsHotStatesThroughChurn) {
  CoreRig rig(6, 120, 60, 71);
  EngineCore& core = *rig.core;

  PartitionModel hot = core.prototype_model(0);
  const std::uint64_t hot_epoch = core.epoch_for_model(hot);
  EXPECT_EQ(core.epoch_for_model(hot), hot_epoch);  // content-addressed

  // Churn far past the cap with distinct one-shot states, touching the hot
  // state every few insertions so its recency stays fresh.
  PartitionModel churn = core.prototype_model(0);
  const std::size_t n = kEpochRegistryCap + kEpochRegistryCap / 2;
  for (std::size_t i = 0; i < n; ++i) {
    churn.set_alpha(0.05 + 1e-5 * static_cast<double>(i));
    core.epoch_for_model(churn);
    if (i % 64 == 0) EXPECT_EQ(core.epoch_for_model(hot), hot_epoch);
  }
  EXPECT_GT(core.stats().epoch_registry_evictions, 0u);
  // The hot association survived every eviction wave...
  EXPECT_EQ(core.epoch_for_model(hot), hot_epoch);
  // ...while a state evicted long ago gets a fresh (unique) epoch — sharing
  // lost, correctness kept.
  churn.set_alpha(0.05);  // the very first churn state
  const std::uint64_t revisit = core.epoch_for_model(churn);
  EXPECT_NE(revisit, hot_epoch);
}

/// Coarse batch execution (whole items per thread) must be bit-identical
/// to fine execution: the owning thread replays the fine schedule's spans.
TEST(EngineCore, CoarseBatchExecutionIsBitIdenticalToFine) {
  const auto run = [](BatchExecMode mode) {
    CoreRig rig(8, 240, 80, 73, /*threads=*/4);
    rig.core->set_batch_execution(mode);
    std::vector<std::unique_ptr<EvalContext>> owned;
    std::vector<EvalContext*> ctxs;
    Rng rng(74);
    for (int c = 0; c < 10; ++c) {
      owned.push_back(std::make_unique<EvalContext>(
          *rig.core, random_tree(default_labels(8), rng)));
      ctxs.push_back(owned.back().get());
    }
    // Smoothing exercises prepare-root, sumtable, and NR flushes; the final
    // batched evaluation exercises the fused eval reduction.
    std::vector<double> lnls =
        optimize_branch_lengths_batch(*rig.core, ctxs);
    const std::uint64_t coarse = rig.core->stats().coarse_commands;
    return std::make_pair(lnls, coarse);
  };
  const auto [fine, fine_coarse] = run(BatchExecMode::kFine);
  const auto [coarse, coarse_count] = run(BatchExecMode::kCoarse);
  ASSERT_EQ(fine.size(), coarse.size());
  for (std::size_t i = 0; i < fine.size(); ++i)
    EXPECT_EQ(fine[i], coarse[i]) << "context " << i;
  EXPECT_EQ(fine_coarse, 0u);
  EXPECT_GT(coarse_count, 0u);

  // And kAuto engages coarse execution on its own once items outnumber the
  // team 2:1, still bit-identically.
  const auto [autos, auto_count] = run(BatchExecMode::kAuto);
  for (std::size_t i = 0; i < fine.size(); ++i) EXPECT_EQ(fine[i], autos[i]);
  EXPECT_GT(auto_count, 0u);
}

TEST(EngineCore, StatsCountBatchedRequestsAgainstCommands) {
  CoreRig rig(6, 200, 100, 61, /*threads=*/2);
  std::vector<std::unique_ptr<EvalContext>> owned;
  std::vector<EvalContext*> ctxs;
  std::vector<EdgeId> edges;
  for (int c = 0; c < 4; ++c) {
    owned.push_back(
        std::make_unique<EvalContext>(*rig.core, rig.data.true_tree));
    ctxs.push_back(owned.back().get());
    edges.push_back(0);
  }
  rig.core->reset_stats();
  rig.core->evaluate_batch(ctxs, edges);
  EXPECT_EQ(rig.core->stats().commands, 1u);
  EXPECT_EQ(rig.core->stats().requests, 4u);
}

}  // namespace
}  // namespace plk
