// Tests for parsimony/: Fitch scoring against hand-computed values and the
// randomized stepwise-addition starting tree.
#include <gtest/gtest.h>

#include "bio/patterns.hpp"
#include "parsimony/fitch.hpp"
#include "tree/newick.hpp"
#include "tree/rf_distance.hpp"
#include "tree/tree_gen.hpp"
#include "sim/datasets.hpp"
#include "sim/seqgen.hpp"

namespace plk {
namespace {

CompressedAlignment compress(const Alignment& aln) {
  return CompressedAlignment::build(
      aln, PartitionScheme::single(DataType::kDna, aln.site_count()), true);
}

TEST(Fitch, HandComputedQuartet) {
  // Tree ((a,b),(c,d)). Column 1: A A C C -> 1 mutation on the inner edge.
  // Column 2: A C A C -> 2 mutations. Column 3: A A A A -> 0.
  Alignment aln;
  aln.add("a", "AAA");
  aln.add("b", "ACA");
  aln.add("c", "CAA");
  aln.add("d", "CCA");
  Tree t = parse_newick("((a:1,b:1):1,(c:1,d:1):1);",
                        {"a", "b", "c", "d"});
  EXPECT_DOUBLE_EQ(parsimony_score(t, compress(aln)), 3.0);
}

TEST(Fitch, TopologyMatters) {
  // Same data, tree grouping (a,c): both informative columns now cost 2 and
  // 1 respectively (the AACC column needs 2 changes, ACAC only 1).
  Alignment aln;
  aln.add("a", "AA");
  aln.add("b", "AC");
  aln.add("c", "CA");
  aln.add("d", "CC");
  Tree good = parse_newick("((a:1,b:1):1,(c:1,d:1):1);", {"a", "b", "c", "d"});
  Tree other = parse_newick("((a:1,c:1):1,(b:1,d:1):1);", {"a", "b", "c", "d"});
  EXPECT_DOUBLE_EQ(parsimony_score(good, compress(aln)), 3.0);
  EXPECT_DOUBLE_EQ(parsimony_score(other, compress(aln)), 3.0);
  // A column supporting (a,b) must favor the grouping tree.
  Alignment ab;
  ab.add("a", "A");
  ab.add("b", "A");
  ab.add("c", "C");
  ab.add("d", "C");
  EXPECT_LT(parsimony_score(good, compress(ab)),
            parsimony_score(other, compress(ab)));
}

TEST(Fitch, ConstantColumnsCostNothing) {
  Alignment aln;
  aln.add("a", "AAAA");
  aln.add("b", "AAAA");
  aln.add("c", "AAAA");
  aln.add("d", "AAAA");
  Rng rng(1);
  Tree t = random_tree({"a", "b", "c", "d"}, rng);
  EXPECT_DOUBLE_EQ(parsimony_score(t, compress(aln)), 0.0);
}

TEST(Fitch, GapsAreFreeWildcards) {
  // A gap (full mask) never forces a mutation.
  Alignment aln;
  aln.add("a", "A");
  aln.add("b", "-");
  aln.add("c", "A");
  aln.add("d", "A");
  Rng rng(2);
  Tree t = random_tree({"a", "b", "c", "d"}, rng);
  EXPECT_DOUBLE_EQ(parsimony_score(t, compress(aln)), 0.0);
}

TEST(Fitch, WeightsMultiplyCosts) {
  Alignment aln;
  aln.add("a", "AAAC");
  aln.add("b", "AAAC");
  aln.add("c", "CCCA");
  aln.add("d", "CCCA");
  // Pattern AACC has weight 3, pattern CCAA weight 1; on the matching
  // topology each costs one mutation -> total 4.
  Tree t = parse_newick("((a:1,b:1):1,(c:1,d:1):1);", {"a", "b", "c", "d"});
  auto comp = compress(aln);
  EXPECT_EQ(comp.partitions[0].pattern_count, 2u);
  EXPECT_DOUBLE_EQ(parsimony_score(t, comp), 4.0);
}

TEST(Fitch, ScoreInvariantToTipRelabeledTree) {
  // Score must be label-driven, not tip-id-driven: a tree parsed with a
  // different taxon order gives the same score.
  Dataset d = make_simulated_dna(8, 200, 200, 5);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  const std::string nwk = write_newick(d.true_tree);
  Tree reordered = parse_newick(nwk);  // tips numbered by appearance
  EXPECT_DOUBLE_EQ(parsimony_score(d.true_tree, comp),
                   parsimony_score(reordered, comp));
}

TEST(Fitch, MultiPartitionSums) {
  Dataset d = make_simulated_dna(6, 300, 100, 7);
  auto all = CompressedAlignment::build(d.alignment, d.scheme, true);
  const double whole = parsimony_score(d.true_tree, all);
  double parts = 0;
  for (std::size_t p = 0; p < all.partitions.size(); ++p) {
    CompressedAlignment one;
    one.taxon_names = all.taxon_names;
    one.partitions.push_back(all.partitions[p]);
    parts += parsimony_score(d.true_tree, one);
  }
  EXPECT_DOUBLE_EQ(whole, parts);
}

TEST(Stepwise, ProducesValidTree) {
  Dataset d = make_simulated_dna(15, 400, 400, 9);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  Rng rng(10);
  Tree t = parsimony_stepwise_tree(comp, rng);
  t.validate();
  EXPECT_EQ(t.tip_count(), 15);
  // Tip ids follow alignment order.
  for (NodeId v = 0; v < t.tip_count(); ++v)
    EXPECT_EQ(t.label(v), comp.taxon_names[static_cast<std::size_t>(v)]);
}

TEST(Stepwise, BeatsRandomTreesOnParsimony) {
  Dataset d = make_simulated_dna(12, 800, 800, 11);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  Rng rng(12);
  Tree mp = parsimony_stepwise_tree(comp, rng);
  const double mp_score = parsimony_score(mp, comp);
  for (int i = 0; i < 5; ++i) {
    Tree r = random_tree(comp.taxon_names, rng);
    EXPECT_LT(mp_score, parsimony_score(r, comp)) << "random tree " << i;
  }
}

TEST(Stepwise, RecoversTruthOnParsimonyFriendlyData) {
  // Parsimony needs short branches and mild rate heterogeneity to be
  // consistent (long branches invite long-branch attraction — we verified
  // that the default simulator settings genuinely mislead MP). Simulate a
  // clock-ish, low-divergence dataset: stepwise addition must recover the
  // generating topology.
  Rng sim_rng(5);
  TreeGenOptions tgo;
  tgo.mean_branch_length = 0.03;
  Tree truth = random_tree(10, sim_rng);
  std::vector<SimPartition> parts{
      SimPartition{"g", jc69(), 4000, 10.0, 8, 1.0, {}}};
  Alignment aln = simulate(truth, parts, sim_rng);
  auto comp = CompressedAlignment::build(
      aln, PartitionScheme::single(DataType::kDna, 4000), true);
  Rng rng(14);
  Tree mp = parsimony_stepwise_tree(comp, rng);
  EXPECT_EQ(rf_distance(mp, truth), 0);
  EXPECT_DOUBLE_EQ(parsimony_score(mp, comp), parsimony_score(truth, comp));
}

TEST(Stepwise, DeterministicGivenRngState) {
  Dataset d = make_simulated_dna(9, 300, 300, 15);
  auto comp = CompressedAlignment::build(d.alignment, d.scheme, true);
  Rng r1(16), r2(16);
  EXPECT_EQ(rf_distance(parsimony_stepwise_tree(comp, r1),
                        parsimony_stepwise_tree(comp, r2)),
            0);
}

TEST(Stepwise, RejectsTooFewTaxa) {
  Alignment aln;
  aln.add("a", "ACGT");
  aln.add("b", "ACGA");
  auto comp = compress(aln);
  Rng rng(1);
  EXPECT_THROW(parsimony_stepwise_tree(comp, rng), std::invalid_argument);
}

}  // namespace
}  // namespace plk
