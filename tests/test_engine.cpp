// Engine correctness tests.
//
// The gold standard here is an independent brute-force Felsenstein
// implementation (explicit sum over all internal-node state assignments),
// checked against the engine on small trees for DNA and protein data, with
// and without rate heterogeneity. On top of that: virtual-root invariance,
// parallel-vs-sequential equality, pattern-compression equivalence,
// analytic two-taxon JC values, numerical-scaling robustness, and
// finite-difference validation of the Newton-Raphson derivatives.
#include <gtest/gtest.h>

#include <cmath>

#include "bio/msa_io.hpp"
#include "core/analysis.hpp"
#include "core/branch_opt.hpp"
#include "core/engine.hpp"
#include "model/matrix.hpp"
#include "sim/datasets.hpp"
#include "sim/seqgen.hpp"
#include "tree/newick.hpp"
#include "tree/tree_gen.hpp"

namespace plk {
namespace {

/// Independent reference: likelihood by explicit enumeration of internal
/// state assignments. Exponential in the number of inner nodes — tests only.
double brute_force_lnl(const Tree& tree, const CompressedPartition& part,
                       const PartitionModel& pm, const BranchLengths& bl,
                       int pidx,
                       const std::vector<std::string>& taxon_names) {
  const int S = part.states();
  const auto& rates = pm.category_rates();
  const int C = pm.gamma_categories();
  const auto& freqs = pm.model().freqs();

  // Map alignment taxon index -> tree tip id.
  std::vector<NodeId> tip_of(taxon_names.size());
  for (std::size_t x = 0; x < taxon_names.size(); ++x) {
    NodeId found = kNoId;
    for (NodeId t = 0; t < tree.tip_count(); ++t)
      if (tree.label(t) == taxon_names[x]) found = t;
    tip_of[x] = found;
  }
  // tip mask per tree tip per pattern
  std::vector<const StateMask*> tip_masks(
      static_cast<std::size_t>(tree.tip_count()));
  for (std::size_t x = 0; x < taxon_names.size(); ++x)
    tip_masks[static_cast<std::size_t>(tip_of[x])] = part.tip_states[x].data();

  std::vector<NodeId> inner;
  for (NodeId v = tree.tip_count(); v < tree.node_count(); ++v)
    inner.push_back(v);
  const std::size_t n_inner = inner.size();

  // Per category, per edge transition matrices.
  std::vector<std::vector<Matrix>> pmat(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c) {
    pmat[static_cast<std::size_t>(c)].resize(
        static_cast<std::size_t>(tree.edge_count()));
    for (EdgeId e = 0; e < tree.edge_count(); ++e)
      pm.model().transition_matrix(
          bl.get(e, pidx) * rates[static_cast<std::size_t>(c)],
          pmat[static_cast<std::size_t>(c)][static_cast<std::size_t>(e)]);
  }

  double lnl = 0.0;
  std::vector<int> assign(n_inner, 0);
  for (std::size_t i = 0; i < part.pattern_count; ++i) {
    double site = 0.0;
    for (int c = 0; c < C; ++c) {
      const auto& P = pmat[static_cast<std::size_t>(c)];
      double cat_sum = 0.0;
      // Enumerate all S^n_inner assignments.
      std::fill(assign.begin(), assign.end(), 0);
      for (;;) {
        auto state_of = [&](NodeId v) {
          for (std::size_t k = 0; k < n_inner; ++k)
            if (inner[k] == v) return assign[k];
          return -1;
        };
        double prob = freqs[static_cast<std::size_t>(state_of(inner[0]))];
        for (EdgeId e = 0; e < tree.edge_count(); ++e) {
          const NodeId a = tree.edge(e).a;
          const NodeId b = tree.edge(e).b;
          const NodeId in = tree.is_tip(a) ? b : a;
          const NodeId out = tree.is_tip(a) ? a : b;
          if (tree.is_tip(out)) {
            const StateMask m =
                tip_masks[static_cast<std::size_t>(out)][i];
            double f = 0;
            for (int s = 0; s < S; ++s)
              if (m & (StateMask{1} << s))
                f += P[static_cast<std::size_t>(e)](
                    static_cast<std::size_t>(state_of(in)),
                    static_cast<std::size_t>(s));
            prob *= f;
          } else {
            prob *= P[static_cast<std::size_t>(e)](
                static_cast<std::size_t>(state_of(a)),
                static_cast<std::size_t>(state_of(b)));
          }
        }
        cat_sum += prob;
        // Next assignment.
        std::size_t k = 0;
        while (k < n_inner && ++assign[k] == S) {
          assign[k] = 0;
          ++k;
        }
        if (k == n_inner) break;
      }
      site += cat_sum / C;
    }
    lnl += part.weights[i] * std::log(site);
  }
  return lnl;
}

/// Build an engine over a simulated dataset.
struct Rig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  Rig(int taxa, std::size_t sites, std::size_t plen, int threads,
        bool unlinked, int cats = 4, std::uint64_t seed = 1234,
        bool compress = true, bool protein = false) {
    data = protein
               ? make_realworld_like(taxa, static_cast<int>(sites / plen) + 1,
                                     plen, plen + 1, 0.0, true, seed)
               : make_simulated_dna(taxa, sites, plen, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, compress));
    std::vector<PartitionModel> models;
    Rng rng(seed ^ 0xabcdef);
    for (const auto& part : comp->partitions) {
      SubstModel m = part.type == DataType::kDna
                         ? make_model("GTR", empirical_frequencies(part))
                         : make_model("WAG");
      models.emplace_back(std::move(m), rng.uniform(0.4, 1.2), cats);
    }
    EngineOptions eo;
    eo.threads = threads;
    eo.unlinked_branch_lengths = unlinked;
    engine = std::make_unique<Engine>(*comp, data.true_tree,
                                      std::move(models), eo);
  }
};

// --- brute-force agreement ----------------------------------------------------

TEST(Engine, MatchesBruteForceSmallDna) {
  Rig s(5, 40, 40, 1, false, 4);
  const double got = s.engine->loglikelihood(0);
  double want = 0;
  for (int p = 0; p < s.engine->partition_count(); ++p)
    want += brute_force_lnl(s.data.true_tree, s.comp->partitions[0],
                            s.engine->model(p), s.engine->branch_lengths(), p,
                            s.comp->taxon_names);
  EXPECT_NEAR(got, want, 1e-8 * std::abs(want));
}

TEST(Engine, MatchesBruteForceMultiPartition) {
  Rig s(5, 60, 20, 1, true, 4, 777);
  const double got = s.engine->loglikelihood(0);
  double want = 0;
  for (int p = 0; p < s.engine->partition_count(); ++p)
    want += brute_force_lnl(
        s.data.true_tree, s.comp->partitions[static_cast<std::size_t>(p)],
        s.engine->model(p), s.engine->branch_lengths(), p,
        s.comp->taxon_names);
  EXPECT_NEAR(got, want, 1e-8 * std::abs(want));
  // Per-partition values must match individually too.
  for (int p = 0; p < s.engine->partition_count(); ++p) {
    const double bp = brute_force_lnl(
        s.data.true_tree, s.comp->partitions[static_cast<std::size_t>(p)],
        s.engine->model(p), s.engine->branch_lengths(), p,
        s.comp->taxon_names);
    EXPECT_NEAR(s.engine->per_partition_lnl()[static_cast<std::size_t>(p)],
                bp, 1e-8 * std::abs(bp))
        << "partition " << p;
  }
}

TEST(Engine, MatchesBruteForceProtein) {
  Rig s(4, 25, 25, 1, false, 2, 99, true, true);
  s.engine->loglikelihood(0, {0});
  const double got = s.engine->per_partition_lnl()[0];
  const double want = brute_force_lnl(
      s.data.true_tree, s.comp->partitions[0], s.engine->model(0),
      s.engine->branch_lengths(), 0, s.comp->taxon_names);
  EXPECT_NEAR(got, want, 1e-8 * std::abs(want));
}

TEST(Engine, MatchesBruteForceSingleCategory) {
  Rig s(6, 30, 30, 1, false, 1, 31);
  const double got = s.engine->loglikelihood(2);
  const double want = brute_force_lnl(
      s.data.true_tree, s.comp->partitions[0], s.engine->model(0),
      s.engine->branch_lengths(), 0, s.comp->taxon_names);
  EXPECT_NEAR(got, want, 1e-8 * std::abs(want));
}

// --- analytic two-taxon case ---------------------------------------------------

TEST(Engine, TwoTaxonJcAnalytic) {
  Alignment aln;
  aln.add("a", "ACGTAC");
  aln.add("b", "ACGTTT");
  auto comp = CompressedAlignment::build(
      aln, PartitionScheme::single(DataType::kDna, 6), false);
  Tree tree = Tree::from_edges({"a", "b"}, {{0, 1, 0.25}});
  std::vector<PartitionModel> models;
  models.emplace_back(jc69(), 1.0, 1);
  Engine engine(comp, tree, std::move(models), {});
  const double got = engine.loglikelihood(0);

  const double t = 0.25;
  const double same = 0.25 + 0.75 * std::exp(-4.0 * t / 3.0);
  const double diff = 0.25 - 0.25 * std::exp(-4.0 * t / 3.0);
  // 4 matching sites, 2 mismatching; site L = 0.25 * P_xy(t).
  const double want = 4 * std::log(0.25 * same) + 2 * std::log(0.25 * diff);
  EXPECT_NEAR(got, want, 1e-12 * std::abs(want));
}

// --- virtual-root invariance ----------------------------------------------------

class RootInvariance : public ::testing::TestWithParam<int> {};

TEST_P(RootInvariance, SameLnlOnEveryEdge) {
  Rig s(10, 200, 50, GetParam(), true, 4, 2024);
  const double ref = s.engine->loglikelihood(0);
  for (EdgeId e = 1; e < s.data.true_tree.edge_count(); ++e)
    EXPECT_NEAR(s.engine->loglikelihood(e), ref, 1e-7 * std::abs(ref))
        << "edge " << e;
}

INSTANTIATE_TEST_SUITE_P(Threads, RootInvariance, ::testing::Values(1, 3, 8));

TEST(Engine, RootInvarianceProtein) {
  Rig s(6, 60, 30, 2, false, 4, 5, true, true);
  const double ref = s.engine->loglikelihood(0);
  for (EdgeId e = 1; e < s.data.true_tree.edge_count(); ++e)
    EXPECT_NEAR(s.engine->loglikelihood(e), ref, 1e-7 * std::abs(ref));
}

// --- parallel == sequential -----------------------------------------------------

TEST(Engine, ParallelMatchesSequential) {
  double ref = 0;
  for (int threads : {1, 2, 4, 8, 16}) {
    Rig s(12, 300, 60, threads, true, 4, 888);
    const double lnl = s.engine->loglikelihood(3);
    if (threads == 1)
      ref = lnl;
    else
      EXPECT_NEAR(lnl, ref, 1e-9 * std::abs(ref)) << threads << " threads";
  }
}

TEST(Engine, ParallelMatchesSequentialProtein) {
  double ref = 0;
  for (int threads : {1, 4}) {
    Rig s(8, 90, 30, threads, false, 4, 11, true, true);
    const double lnl = s.engine->loglikelihood(1);
    if (threads == 1)
      ref = lnl;
    else
      EXPECT_NEAR(lnl, ref, 1e-9 * std::abs(ref));
  }
}

// --- pattern compression equivalence ---------------------------------------------

TEST(Engine, CompressionDoesNotChangeLikelihood) {
  Rig a(8, 120, 40, 1, false, 4, 33, /*compress=*/true);
  Rig b(8, 120, 40, 1, false, 4, 33, /*compress=*/false);
  // Same seed -> same data, models, tree.
  EXPECT_LE(a.comp->total_patterns(), b.comp->total_patterns());
  EXPECT_NEAR(a.engine->loglikelihood(0), b.engine->loglikelihood(0), 1e-8);
}

// --- gaps and missing data -------------------------------------------------------

TEST(Engine, AllGapColumnContributesZero) {
  Alignment base;
  base.add("a", "ACGT");
  base.add("b", "AGGT");
  base.add("c", "ACTT");
  Alignment gappy;
  gappy.add("a", "ACGT-");
  gappy.add("b", "AGGT-");
  gappy.add("c", "ACTT-");
  Rng rng(4);
  Tree tree = random_tree({"a", "b", "c"}, rng);

  auto run = [&](const Alignment& aln) {
    auto comp = CompressedAlignment::build(
        aln, PartitionScheme::single(DataType::kDna, aln.site_count()), false);
    std::vector<PartitionModel> models;
    models.emplace_back(jc69(), 1.0, 4);
    Engine engine(comp, tree, std::move(models), {});
    return engine.loglikelihood(0);
  };
  EXPECT_NEAR(run(base), run(gappy), 1e-10);
}

TEST(Engine, AmbiguityCodesSumStates) {
  // For a 2-taxon tree, L(R) = L(A) + L(G) per site.
  Tree tree = Tree::from_edges({"a", "b"}, {{0, 1, 0.3}});
  auto lnl_for = [&](const std::string& sa, const std::string& sb) {
    Alignment aln;
    aln.add("a", sa);
    aln.add("b", sb);
    auto comp = CompressedAlignment::build(
        aln, PartitionScheme::single(DataType::kDna, sa.size()), false);
    std::vector<PartitionModel> models;
    models.emplace_back(jc69(), 1.0, 1);
    Engine engine(comp, tree, std::move(models), {});
    return engine.loglikelihood(0);
  };
  const double la = std::exp(lnl_for("A", "A"));
  const double lg = std::exp(lnl_for("A", "G"));
  const double lr = std::exp(lnl_for("A", "R"));
  EXPECT_NEAR(lr, la + lg, 1e-12);
}

// --- numerical scaling ------------------------------------------------------------

TEST(Engine, LargeTreeDoesNotUnderflow) {
  // 160 taxa: unscaled per-site likelihoods would underflow doubles
  // (~1e-320 at these depths); scaling must keep lnL finite and consistent
  // across root placements.
  Rig s(160, 50, 50, 4, false, 4, 314);
  const double lnl = s.engine->loglikelihood(0);
  EXPECT_TRUE(std::isfinite(lnl));
  EXPECT_LT(lnl, 0.0);
  EXPECT_NEAR(s.engine->loglikelihood(200), lnl, 1e-6 * std::abs(lnl));
}

// --- NR derivatives vs finite differences ------------------------------------------

TEST(Engine, NrDerivativesMatchFiniteDifferences) {
  Rig s(8, 200, 50, 1, true, 4, 62);
  Engine& eng = *s.engine;
  const EdgeId edge = 4;
  const auto parts = std::vector<int>{0, 1, 2, 3};
  eng.prepare_root(edge);
  eng.compute_sumtable(parts);

  std::vector<double> lens(parts.size()), d1(parts.size()), d2(parts.size());
  for (std::size_t k = 0; k < parts.size(); ++k) lens[k] = 0.08 + 0.02 * k;
  eng.nr_derivatives(parts, lens, d1, d2);

  const double h = 1e-6;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const int p = parts[k];
    auto lnl_at = [&](double b) {
      eng.branch_lengths().set(edge, p, b);
      eng.loglikelihood(edge, {p});
      return eng.per_partition_lnl()[static_cast<std::size_t>(p)];
    };
    const double f0 = lnl_at(lens[k] - h);
    const double f1 = lnl_at(lens[k]);
    const double f2 = lnl_at(lens[k] + h);
    const double fd1 = (f2 - f0) / (2 * h);
    const double fd2 = (f2 - 2 * f1 + f0) / (h * h);
    EXPECT_NEAR(d1[k], fd1, 1e-3 * std::max(1.0, std::abs(fd1)))
        << "partition " << p;
    EXPECT_NEAR(d2[k], fd2, 1e-2 * std::max(1.0, std::abs(fd2)))
        << "partition " << p;
  }
}

TEST(Engine, NrRequiresSumtable) {
  Rig s(6, 60, 60, 1, false);
  double len = 0.1, d1, d2;
  EXPECT_THROW(
      s.engine->nr_derivatives({0}, {&len, 1}, {&d1, 1}, {&d2, 1}),
      std::logic_error);
}

// --- invalidation and epochs ---------------------------------------------------------

TEST(Engine, AlphaChangeChangesLikelihoodReversibly) {
  Rig s(8, 150, 50, 2, false, 4, 71);
  Engine& eng = *s.engine;
  const double before = eng.loglikelihood(0);
  const double alpha0 = eng.model(1).alpha();

  eng.model(1).set_alpha(alpha0 * 3.0);
  eng.invalidate_partition(1);
  const double changed = eng.loglikelihood(0);
  EXPECT_NE(before, changed);

  eng.model(1).set_alpha(alpha0);
  eng.invalidate_partition(1);
  EXPECT_NEAR(eng.loglikelihood(0), before, 1e-9 * std::abs(before));
}

TEST(Engine, PartialTraversalTouchesFewNodes) {
  Rig s(30, 100, 100, 1, false, 4, 55);
  Engine& eng = *s.engine;
  const EdgeId pend = eng.tree().edges_of(0).front();  // tip 0's edge
  eng.loglikelihood(pend);  // full traversal
  const auto full_ops = eng.stats().newview_ops;
  // Move the root to an adjacent edge: only the path nodes flip.
  const NodeId inner = eng.tree().other_end(pend, 0);
  EdgeId adjacent = kNoId;
  for (EdgeId e : eng.tree().edges_of(inner))
    if (e != pend) adjacent = e;
  eng.loglikelihood(adjacent);
  const auto delta = eng.stats().newview_ops - full_ops;
  EXPECT_LE(delta, 2u);  // at most the two endpoints of the new root edge
  EXPECT_GT(full_ops, 20u);
}

TEST(Engine, PartitionScopedRecompute) {
  Rig s(10, 100, 25, 1, true, 4, 91);
  Engine& eng = *s.engine;
  eng.loglikelihood(0);
  eng.reset_stats();
  // Invalidate one of 4 partitions; re-evaluating it must not touch others.
  eng.model(2).set_alpha(0.9);
  eng.invalidate_partition(2);
  eng.loglikelihood(0, {2});
  const auto ops = eng.stats().newview_ops;
  const auto inner_nodes = static_cast<std::uint64_t>(10 - 2);
  EXPECT_EQ(ops, inner_nodes);  // (n-2) newviews x 1 partition
}

// --- construction validation -----------------------------------------------------------

TEST(Engine, RejectsMismatchedTaxa) {
  Rig s(6, 60, 60, 1, false);
  Rng rng(1);
  Tree wrong = random_tree({"x1", "x2", "x3", "x4", "x5", "x6"}, rng);
  std::vector<PartitionModel> models;
  models.emplace_back(jc69(), 1.0, 4);
  EXPECT_THROW(Engine(*s.comp, wrong, std::move(models), {}),
               std::invalid_argument);
}

TEST(Engine, RejectsWrongModelCount) {
  Rig s(6, 80, 40, 1, false);  // 2 partitions
  std::vector<PartitionModel> models;
  models.emplace_back(jc69(), 1.0, 4);
  EXPECT_THROW(Engine(*s.comp, s.data.true_tree, std::move(models), {}),
               std::invalid_argument);
}

TEST(Engine, RejectsWrongStateCount) {
  Rig s(6, 60, 60, 1, false);  // DNA partition
  std::vector<PartitionModel> models;
  models.emplace_back(protein_model("WAG"), 1.0, 4);
  EXPECT_THROW(Engine(*s.comp, s.data.true_tree, std::move(models), {}),
               std::invalid_argument);
}

// --- stats ------------------------------------------------------------------------------

// --- tip-table LRU cache ----------------------------------------------------

TEST(Engine, TipTableLruBoundsRebuildsUnderAlternatingLengths) {
  Rig s(6, 80, 80, 1, false, 4, 17);
  Engine& eng = *s.engine;
  // A root edge whose `b` endpoint is a tip: its evaluate-side tip table is
  // rebuilt whenever (model epoch, branch length) misses the per-edge LRU.
  EdgeId edge = kNoId;
  for (EdgeId e = 0; e < eng.tree().edge_count() && edge == kNoId; ++e)
    if (eng.tree().is_tip(eng.tree().edge(e).b)) edge = e;
  ASSERT_NE(edge, kNoId);
  eng.loglikelihood(edge);  // warm tables at the current length
  const auto warm = eng.stats().tip_table_rebuilds;
  const double b0 = eng.branch_lengths().get(edge, 0);

  // A Newton/Brent-style candidate sweep revisits the same few lengths over
  // and over; pre-LRU every revisit rebuilt the table.
  double lnl_half = 0.0, lnl_double = 0.0;
  for (int round = 0; round < 10; ++round) {
    eng.branch_lengths().set_all(edge, b0 * 0.5);
    lnl_half = eng.loglikelihood(edge);
    eng.branch_lengths().set_all(edge, b0 * 2.0);
    lnl_double = eng.loglikelihood(edge);
  }
  EXPECT_NE(lnl_half, lnl_double);
  // Two new candidate lengths -> at most two rebuilds per partition,
  // independent of the number of rounds (20 evaluations here).
  const auto parts = static_cast<std::uint64_t>(eng.partition_count());
  EXPECT_LE(eng.stats().tip_table_rebuilds - warm, 2 * parts);
  EXPECT_GT(eng.stats().tip_table_hits, 10u);
}

TEST(Engine, TipTableRebuildsBoundedPerNrSweep) {
  Rig s(10, 120, 30, 1, true, 4, 23);  // 4 partitions, unlinked lengths
  Engine& eng = *s.engine;
  eng.loglikelihood(0);
  eng.reset_stats();
  const BranchOptOptions opts;
  optimize_branch_lengths(eng, Strategy::kNewPar, opts);
  const auto& st = eng.stats();
  // A sweep changes each edge's length once per pass, so rebuilds are
  // bounded by (tip-adjacent edges) x partitions x (passes + warm slack) —
  // NOT by the number of NR iterations the sweep performed.
  const auto tips = static_cast<std::uint64_t>(eng.tree().tip_count());
  const auto parts = static_cast<std::uint64_t>(eng.partition_count());
  const auto bound =
      tips * parts * static_cast<std::uint64_t>(opts.smoothing_passes + 2);
  EXPECT_GT(st.nr_iterations, 0u);
  EXPECT_LE(st.tip_table_rebuilds, bound);
  EXPECT_GT(st.tip_table_hits, st.tip_table_rebuilds);
}

TEST(Engine, TipTableInvalidatedByModelEpoch) {
  Rig s(6, 60, 60, 1, false, 4, 29);
  Engine& eng = *s.engine;
  const double before = eng.loglikelihood(0);
  const auto warm = eng.stats().tip_table_rebuilds;
  eng.loglikelihood(0);
  EXPECT_EQ(eng.stats().tip_table_rebuilds, warm);  // cache hit
  eng.model(0).set_alpha(eng.model(0).alpha() * 2.0);
  eng.invalidate_partition(0);
  const double after = eng.loglikelihood(0);
  EXPECT_NE(before, after);
  EXPECT_GT(eng.stats().tip_table_rebuilds, warm);  // epoch bump rebuilds
}

TEST(Engine, CommandAndEvaluationCounters) {
  Rig s(8, 80, 40, 2, false, 4, 13);
  Engine& eng = *s.engine;
  eng.loglikelihood(0);
  EXPECT_EQ(eng.stats().commands, 1u);
  EXPECT_EQ(eng.stats().evaluations, 2u);  // one per partition
  eng.prepare_root(0);                     // no-op: already oriented
  EXPECT_EQ(eng.stats().commands, 1u);
  eng.compute_sumtable({0, 1});
  EXPECT_EQ(eng.stats().commands, 2u);
  double lens[2] = {0.1, 0.1}, d1[2], d2[2];
  eng.nr_derivatives({0, 1}, lens, d1, d2);
  EXPECT_EQ(eng.stats().commands, 3u);
  EXPECT_EQ(eng.stats().nr_iterations, 2u);
  eng.reset_stats();
  EXPECT_EQ(eng.stats().commands, 0u);
}

}  // namespace
}  // namespace plk
