// Tests for bio/: alphabets, alignments, partition schemes, pattern
// compression, and MSA file I/O.
#include <gtest/gtest.h>

#include "bio/alignment.hpp"
#include "bio/alphabet.hpp"
#include "bio/msa_io.hpp"
#include "bio/partition.hpp"
#include "bio/patterns.hpp"

namespace plk {
namespace {

// --- alphabet ---------------------------------------------------------------

TEST(Alphabet, DnaDeterminedStates) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(a.size(), 4);
  EXPECT_EQ(a.encode('A'), 0b0001u);
  EXPECT_EQ(a.encode('C'), 0b0010u);
  EXPECT_EQ(a.encode('G'), 0b0100u);
  EXPECT_EQ(a.encode('T'), 0b1000u);
  EXPECT_EQ(a.encode('a'), a.encode('A'));  // case-insensitive
}

TEST(Alphabet, DnaAmbiguityCodes) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(a.encode('R'), 0b0101u);  // A|G
  EXPECT_EQ(a.encode('Y'), 0b1010u);  // C|T
  EXPECT_EQ(a.encode('S'), 0b0110u);
  EXPECT_EQ(a.encode('W'), 0b1001u);
  EXPECT_EQ(a.encode('K'), 0b1100u);
  EXPECT_EQ(a.encode('M'), 0b0011u);
  EXPECT_EQ(a.encode('B'), 0b1110u);
  EXPECT_EQ(a.encode('D'), 0b1101u);
  EXPECT_EQ(a.encode('H'), 0b1011u);
  EXPECT_EQ(a.encode('V'), 0b0111u);
  EXPECT_EQ(a.encode('U'), a.encode('T'));  // RNA
}

TEST(Alphabet, DnaGapsAndUnknowns) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(a.encode('-'), a.gap_mask());
  EXPECT_EQ(a.encode('?'), a.gap_mask());
  EXPECT_EQ(a.encode('.'), a.gap_mask());
  EXPECT_EQ(a.encode('N'), a.gap_mask());
  EXPECT_EQ(a.encode('!'), a.gap_mask());  // unrecognized -> missing
  EXPECT_EQ(a.gap_mask(), 0b1111u);
}

TEST(Alphabet, DnaDecodeRoundTrip) {
  const Alphabet& a = Alphabet::dna();
  for (char c : std::string("ACGTRYSWKMBDHV")) EXPECT_EQ(a.decode(a.encode(c)), c);
  EXPECT_EQ(a.decode(a.gap_mask()), '-');
}

TEST(Alphabet, ProteinBasics) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.size(), 20);
  EXPECT_EQ(a.symbols(), "ARNDCQEGHILKMFPSTWYV");
  // 'N' must be asparagine (state 2), not missing data.
  EXPECT_EQ(a.encode('N'), StateMask{1} << 2);
  EXPECT_EQ(a.encode('X'), a.gap_mask());
  EXPECT_EQ(a.encode('-'), a.gap_mask());
  // B = N|D, Z = Q|E.
  EXPECT_EQ(a.encode('B'), (StateMask{1} << 2) | (StateMask{1} << 3));
  EXPECT_EQ(a.encode('Z'), (StateMask{1} << 5) | (StateMask{1} << 6));
}

TEST(Alphabet, ProteinAllSymbolsDetermined) {
  const Alphabet& a = Alphabet::protein();
  for (char c : a.symbols()) {
    EXPECT_TRUE(Alphabet::is_determined(a.encode(c))) << c;
    EXPECT_EQ(a.decode(a.encode(c)), c);
  }
}

TEST(Alphabet, SingleStateIndex) {
  EXPECT_EQ(Alphabet::single_state(0b0001), 0);
  EXPECT_EQ(Alphabet::single_state(0b1000), 3);
  EXPECT_THROW(Alphabet::single_state(0b0101), std::invalid_argument);
  EXPECT_THROW(Alphabet::single_state(0), std::invalid_argument);
}

TEST(Alphabet, ForTypeSelects) {
  EXPECT_EQ(Alphabet::for_type(DataType::kDna).size(), 4);
  EXPECT_EQ(Alphabet::for_type(DataType::kProtein).size(), 20);
}

// --- alignment --------------------------------------------------------------

TEST(Alignment, AddAndAccess) {
  Alignment a;
  a.add("tax1", "ACGT");
  a.add("tax2", "AGGT");
  EXPECT_EQ(a.taxon_count(), 2u);
  EXPECT_EQ(a.site_count(), 4u);
  EXPECT_EQ(a.at(1, 1), 'G');
  EXPECT_EQ(a.row(0), "ACGT");
  EXPECT_EQ(a.find_taxon("tax2"), 1u);
  EXPECT_EQ(a.find_taxon("nope"), Alignment::npos);
}

TEST(Alignment, RejectsInconsistentLengths) {
  Alignment a;
  a.add("t1", "ACGT");
  EXPECT_THROW(a.add("t2", "ACG"), std::invalid_argument);
}

TEST(Alignment, RejectsDuplicateNames) {
  Alignment a;
  a.add("t1", "ACGT");
  EXPECT_THROW(a.add("t1", "ACGT"), std::invalid_argument);
}

TEST(Alignment, RejectsEmptyName) {
  Alignment a;
  EXPECT_THROW(a.add("", "ACGT"), std::invalid_argument);
}

// --- partition scheme -------------------------------------------------------

TEST(Partition, ParseBasic) {
  auto s = PartitionScheme::parse("DNA, gene1 = 1-1000\nDNA, gene2 = 1001-2000\n");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].name, "gene1");
  EXPECT_EQ(s[0].type, DataType::kDna);
  EXPECT_EQ(s[0].site_count(), 1000u);
  EXPECT_EQ(s[1].ranges[0].begin, 1000u);
  EXPECT_EQ(s[1].ranges[0].end, 2000u);
  s.validate(2000);
}

TEST(Partition, ParseMultiRangeAndStride) {
  auto s = PartitionScheme::parse("WAG, genA = 1-10, 21-30\nDNA, c3 = 31-40\\2\n");
  EXPECT_EQ(s[0].type, DataType::kProtein);
  EXPECT_EQ(s[0].site_count(), 20u);
  EXPECT_EQ(s[1].site_count(), 5u);
  const auto sites = s[1].sites();
  EXPECT_EQ(sites[0], 30u);
  EXPECT_EQ(sites[1], 32u);
}

TEST(Partition, ParseCommentsAndBlanks) {
  auto s = PartitionScheme::parse("# comment\n\nDNA, g = 1-4\n");
  EXPECT_EQ(s.size(), 1u);
}

TEST(Partition, ParseErrors) {
  EXPECT_THROW(PartitionScheme::parse("DNA gene = 1-10\n"), std::runtime_error);
  EXPECT_THROW(PartitionScheme::parse("DNA, gene 1-10\n"), std::runtime_error);
  EXPECT_THROW(PartitionScheme::parse("BOGUS, g = 1-10\n"), std::runtime_error);
  EXPECT_THROW(PartitionScheme::parse("DNA, g = 10-1\n"), std::runtime_error);
  EXPECT_THROW(PartitionScheme::parse("DNA, g = 0-5\n"), std::runtime_error);
}

TEST(Partition, ValidateDetectsGapsAndOverlap) {
  auto gap = PartitionScheme::parse("DNA, a = 1-5\nDNA, b = 7-10\n");
  EXPECT_THROW(gap.validate(10), std::runtime_error);
  auto overlap = PartitionScheme::parse("DNA, a = 1-6\nDNA, b = 5-10\n");
  EXPECT_THROW(overlap.validate(10), std::runtime_error);
  auto beyond = PartitionScheme::parse("DNA, a = 1-11\n");
  EXPECT_THROW(beyond.validate(10), std::runtime_error);
}

TEST(Partition, RoundTripToString) {
  const std::string text = "GTR, gene1 = 1-100\nWAG, gene2 = 101-200\\3\n";
  auto s = PartitionScheme::parse(text);
  auto s2 = PartitionScheme::parse(s.to_string());
  EXPECT_EQ(s.to_string(), s2.to_string());
}

TEST(Partition, SingleCoversEverything) {
  auto s = PartitionScheme::single(DataType::kDna, 123);
  EXPECT_EQ(s.size(), 1u);
  s.validate(123);
}

// --- pattern compression ----------------------------------------------------

Alignment small_aln() {
  Alignment a;
  a.add("t1", "AACCA");
  a.add("t2", "AAGGA");
  a.add("t3", "AATTA");
  return a;
}

TEST(Patterns, CompressesDuplicateColumns) {
  auto comp = CompressedAlignment::build(
      small_aln(), PartitionScheme::single(DataType::kDna, 5), true);
  ASSERT_EQ(comp.partitions.size(), 1u);
  const auto& p = comp.partitions[0];
  // Columns: AAA, AAA, CGT, CGT, AAA -> 2 patterns with weights 3 and 2.
  EXPECT_EQ(p.pattern_count, 2u);
  EXPECT_EQ(p.site_count, 5u);
  EXPECT_DOUBLE_EQ(p.weights[0], 3.0);
  EXPECT_DOUBLE_EQ(p.weights[1], 2.0);
  EXPECT_EQ(p.site_to_pattern, (std::vector<std::size_t>{0, 0, 1, 1, 0}));
}

TEST(Patterns, NoCompressionKeepsEveryColumn) {
  auto comp = CompressedAlignment::build(
      small_aln(), PartitionScheme::single(DataType::kDna, 5), false);
  EXPECT_EQ(comp.partitions[0].pattern_count, 5u);
  for (double w : comp.partitions[0].weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(Patterns, PartitionsCompressIndependently) {
  // Identical columns in different partitions must NOT merge.
  auto scheme = PartitionScheme::parse("DNA, a = 1-2\nDNA, b = 3-5\n");
  auto comp = CompressedAlignment::build(small_aln(), scheme, true);
  ASSERT_EQ(comp.partitions.size(), 2u);
  EXPECT_EQ(comp.partitions[0].pattern_count, 1u);  // AAA, AAA
  EXPECT_EQ(comp.partitions[0].weights[0], 2.0);
  EXPECT_EQ(comp.partitions[1].pattern_count, 2u);  // CGT, CGT, AAA
  EXPECT_EQ(comp.total_patterns(), 3u);
  EXPECT_EQ(comp.total_sites(), 5u);
}

TEST(Patterns, TipStatesEncoded) {
  auto comp = CompressedAlignment::build(
      small_aln(), PartitionScheme::single(DataType::kDna, 5), true);
  const auto& p = comp.partitions[0];
  EXPECT_EQ(p.tip_states[0][1], Alphabet::dna().encode('C'));
  EXPECT_EQ(p.tip_states[2][1], Alphabet::dna().encode('T'));
}

TEST(Patterns, WeightsSumToSiteCount) {
  auto comp = CompressedAlignment::build(
      small_aln(), PartitionScheme::single(DataType::kDna, 5), true);
  double sum = 0;
  for (double w : comp.partitions[0].weights) sum += w;
  EXPECT_DOUBLE_EQ(sum, 5.0);
}

TEST(Patterns, RejectsSingleTaxon) {
  Alignment a;
  a.add("only", "ACGT");
  EXPECT_THROW(CompressedAlignment::build(
                   a, PartitionScheme::single(DataType::kDna, 4), true),
               std::invalid_argument);
}

// --- FASTA ------------------------------------------------------------------

TEST(Fasta, ParseWithWrappingAndWhitespace) {
  auto a = read_fasta(">t1 some description\nACGT\nACGT\n>t2\nTT TT\nGGGG\n");
  EXPECT_EQ(a.taxon_count(), 2u);
  EXPECT_EQ(a.row(0), "ACGTACGT");
  EXPECT_EQ(a.row(1), "TTTTGGGG");
  EXPECT_EQ(a.name(0), "t1");
}

TEST(Fasta, RoundTrip) {
  auto a = small_aln();
  auto b = read_fasta(write_fasta(a, 2));
  ASSERT_EQ(b.taxon_count(), a.taxon_count());
  for (std::size_t t = 0; t < a.taxon_count(); ++t) {
    EXPECT_EQ(a.name(t), b.name(t));
    EXPECT_EQ(a.row(t), b.row(t));
  }
}

TEST(Fasta, Errors) {
  EXPECT_THROW(read_fasta("ACGT\n"), std::runtime_error);
  EXPECT_THROW(read_fasta(">t1\n>t2\nAC\n"), std::runtime_error);
  EXPECT_THROW(read_fasta(""), std::runtime_error);
}

// --- PHYLIP -----------------------------------------------------------------

TEST(Phylip, ParseSequential) {
  auto a = read_phylip("3 5\nt1 AACCA\nt2 AAGGA\nt3 AATTA\n");
  EXPECT_EQ(a.taxon_count(), 3u);
  EXPECT_EQ(a.site_count(), 5u);
  EXPECT_EQ(a.row(2), "AATTA");
}

TEST(Phylip, ParseInterleaved) {
  auto a = read_phylip("2 8\nt1 ACGT\nt2 TTTT\n\nACGT\nGGGG\n");
  EXPECT_EQ(a.row(0), "ACGTACGT");
  EXPECT_EQ(a.row(1), "TTTTGGGG");
}

TEST(Phylip, RoundTrip) {
  auto a = small_aln();
  auto b = read_phylip(write_phylip(a));
  for (std::size_t t = 0; t < a.taxon_count(); ++t)
    EXPECT_EQ(a.row(t), b.row(t));
}

TEST(Phylip, Errors) {
  EXPECT_THROW(read_phylip("not a header\n"), std::runtime_error);
  EXPECT_THROW(read_phylip("2 4\nt1 ACGT\n"), std::runtime_error);
  EXPECT_THROW(read_phylip("2 4\nt1 ACGT\nt2 ACG\n"), std::runtime_error);
}

}  // namespace
}  // namespace plk
