// Tests for search/: SPR and NNI move mechanics (structure preservation,
// exact undo), the CLV staleness safety net (incremental likelihood after
// surgery must equal a fresh engine's), and end-to-end search behaviour
// (monotone improvement, true-tree recovery on clean data).
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "search/nni.hpp"
#include "search/search.hpp"
#include "search/spr.hpp"
#include "sim/datasets.hpp"
#include "tree/newick.hpp"
#include "tree/rf_distance.hpp"
#include "tree/tree_gen.hpp"

namespace plk {
namespace {

struct Rig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  Rig(int taxa, std::size_t sites, std::size_t plen, int threads,
      bool unlinked, std::uint64_t seed = 555,
      std::optional<Tree> start = std::nullopt) {
    data = make_simulated_dna(taxa, sites, plen, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions)
      models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0,
                          4);
    EngineOptions eo;
    eo.threads = threads;
    eo.unlinked_branch_lengths = unlinked;
    engine = std::make_unique<Engine>(
        *comp, start ? std::move(*start) : data.true_tree, std::move(models),
        eo);
  }

  /// Likelihood computed by a completely fresh engine over the current tree
  /// and branch lengths — the staleness oracle.
  double fresh_lnl() {
    std::vector<PartitionModel> models;
    for (int p = 0; p < engine->partition_count(); ++p)
      models.push_back(engine->model(p));
    EngineOptions eo;
    eo.unlinked_branch_lengths = !engine->branch_lengths().linked();
    Engine fresh(*comp, engine->tree(), std::move(models), eo);
    for (EdgeId e = 0; e < engine->tree().edge_count(); ++e)
      for (int p = 0; p < engine->partition_count(); ++p)
        fresh.branch_lengths().set(e, p, engine->branch_lengths().get(e, p));
    return fresh.loglikelihood(engine->root_edge() == kNoId
                                   ? 0
                                   : engine->root_edge());
  }
};

// --- SPR mechanics ------------------------------------------------------------

TEST(Spr, ApplyPreservesTreeInvariants) {
  Rng rng(12);
  Tree t = random_tree(12, rng);
  int applied = 0;
  for (EdgeId pe = 0; pe < t.edge_count(); ++pe) {
    for (NodeId s : {t.edge(pe).a, t.edge(pe).b}) {
      for (EdgeId target : spr_targets(t, pe, s, 3)) {
        Tree copy = t;
        SprUndo u = apply_spr(copy, SprMove{pe, s, target});
        copy.validate();
        ++applied;
        (void)u;
      }
    }
  }
  EXPECT_GT(applied, 50);
}

TEST(Spr, UndoRestoresExactly) {
  Rng rng(13);
  Tree t = random_tree(15, rng);
  const Tree before = t;
  for (EdgeId pe = 0; pe < t.edge_count(); ++pe) {
    for (NodeId s : {t.edge(pe).a, t.edge(pe).b}) {
      for (EdgeId target : spr_targets(t, pe, s, 4)) {
        SprUndo u = apply_spr(t, SprMove{pe, s, target});
        undo_spr(t, u);
        t.validate();
        // Topology identical (adjacency-list order may rotate, so compare
        // structure, endpoints and lengths rather than serialized text).
        ASSERT_EQ(rf_distance(t, before), 0);
        for (EdgeId e = 0; e < t.edge_count(); ++e) {
          const auto &ea = t.edge(e), &eb = before.edge(e);
          EXPECT_TRUE((ea.a == eb.a && ea.b == eb.b) ||
                      (ea.a == eb.b && ea.b == eb.a));
          EXPECT_DOUBLE_EQ(ea.length, eb.length);
        }
      }
    }
  }
}

TEST(Spr, MoveChangesTopology) {
  Rng rng(14);
  Tree t = random_tree(10, rng);
  Tree orig = t;
  bool changed_any = false;
  for (EdgeId pe = 0; pe < t.edge_count() && !changed_any; ++pe) {
    const NodeId s = t.edge(pe).a;
    auto targets = spr_targets(t, pe, s, 5);
    // Targets at distance >= 2 from the pruning point change the topology.
    for (EdgeId target : targets) {
      Tree copy = orig;
      apply_spr(copy, SprMove{pe, s, target});
      if (rf_distance(copy, orig) > 0) changed_any = true;
    }
  }
  EXPECT_TRUE(changed_any);
}

TEST(Spr, RejectsInvalidMoves) {
  Rng rng(15);
  Tree t = random_tree(8, rng);
  // Target == prune edge.
  EXPECT_FALSE(spr_is_valid(t, SprMove{0, t.edge(0).a, 0}));
  EXPECT_THROW(apply_spr(t, SprMove{0, t.edge(0).a, 0}),
               std::invalid_argument);
  // Tip-side joint (pruning "everything else" off a tip).
  for (EdgeId e = 0; e < t.edge_count(); ++e) {
    const auto& ed = t.edge(e);
    if (t.is_tip(ed.a))
      EXPECT_FALSE(spr_is_valid(t, SprMove{e, ed.b, (e + 1) % t.edge_count()}))
          << "joint is a tip";
  }
}

TEST(Spr, TargetsExcludePrunedSubtree) {
  Rng rng(16);
  Tree t = random_tree(12, rng);
  for (EdgeId pe = 0; pe < t.edge_count(); ++pe) {
    const NodeId s = t.edge(pe).a;
    for (EdgeId target : spr_targets(t, pe, s, 100)) {
      EXPECT_TRUE(spr_is_valid(t, SprMove{pe, s, target}));
    }
  }
}

TEST(Spr, RadiusLimitsTargetCount) {
  Rng rng(17);
  Tree t = random_tree(30, rng);
  const EdgeId pe = t.edges_of(0).front();
  const auto near = spr_targets(t, pe, 0, 2);
  const auto far = spr_targets(t, pe, 0, 50);
  EXPECT_LT(near.size(), far.size());
}

// --- NNI mechanics --------------------------------------------------------------

TEST(Nni, TwoMovesExistPerInternalEdge) {
  Rng rng(18);
  Tree t = random_tree(10, rng);
  for (EdgeId e = 0; e < t.edge_count(); ++e) {
    if (!t.is_internal_edge(e)) {
      EXPECT_THROW(nni_moves(t, e), std::invalid_argument);
      continue;
    }
    auto [m1, m2] = nni_moves(t, e);
    Tree t1 = t, t2 = t;
    apply_nni(t1, m1);
    apply_nni(t2, m2);
    t1.validate();
    t2.validate();
    EXPECT_EQ(rf_distance(t, t1), 2);
    EXPECT_EQ(rf_distance(t, t2), 2);
    EXPECT_EQ(rf_distance(t1, t2), 2);
  }
}

TEST(Nni, SelfInverse) {
  Rng rng(19);
  Tree t = random_tree(12, rng);
  const Tree before = t;
  for (EdgeId e = 0; e < t.edge_count(); ++e) {
    if (!t.is_internal_edge(e)) continue;
    auto [m1, m2] = nni_moves(t, e);
    apply_nni(t, m1);
    apply_nni(t, m1);
    t.validate();
    ASSERT_EQ(rf_distance(t, before), 0);
    for (EdgeId f = 0; f < t.edge_count(); ++f) {
      const auto &ea = t.edge(f), &eb = before.edge(f);
      EXPECT_TRUE((ea.a == eb.a && ea.b == eb.b) ||
                  (ea.a == eb.b && ea.b == eb.a));
    }
  }
}

// --- staleness safety net ---------------------------------------------------------

TEST(Spr, IncrementalLikelihoodMatchesFreshEngineAfterMoves) {
  // Apply a chain of SPR moves with targeted invalidation; after every move
  // the incrementally maintained likelihood must equal a fresh engine's.
  Rig rig(12, 200, 50, 1, true, 61);
  Engine& eng = *rig.engine;
  eng.loglikelihood(0);
  Rng rng(62);
  int done = 0;
  while (done < 12) {
    const EdgeId pe = static_cast<EdgeId>(rng.below(
        static_cast<std::uint64_t>(eng.tree().edge_count())));
    const NodeId s =
        rng.below(2) ? eng.tree().edge(pe).a : eng.tree().edge(pe).b;
    const auto targets = spr_targets(eng.tree(), pe, s, 4);
    if (targets.empty()) continue;
    const EdgeId target =
        targets[static_cast<std::size_t>(rng.below(targets.size()))];

    eng.prepare_root(pe);
    SprUndo u = apply_spr(eng.tree(), SprMove{pe, s, target});
    // Mirror the default-length surgery into the per-partition store.
    for (int p = 0; p < eng.partition_count(); ++p) {
      const double lf = eng.branch_lengths().get(u.fused, p);
      const double lc = eng.branch_lengths().get(u.carried, p);
      const double lt = eng.branch_lengths().get(u.target, p);
      eng.branch_lengths().set(u.fused, p, lf + lc);
      eng.branch_lengths().set(u.carried, p, 0.5 * lt);
      eng.branch_lengths().set(u.target, p, 0.5 * lt);
    }
    invalidate_after_spr(eng, u);

    const double incremental = eng.loglikelihood(pe);
    const double fresh = rig.fresh_lnl();
    ASSERT_NEAR(incremental, fresh, 1e-7 * std::abs(fresh))
        << "stale CLVs after SPR " << done;
    ++done;
  }
}

TEST(Nni, IncrementalLikelihoodMatchesFreshEngineAfterMoves) {
  Rig rig(10, 150, 50, 1, false, 63);
  Engine& eng = *rig.engine;
  eng.loglikelihood(0);
  for (EdgeId e = 0; e < eng.tree().edge_count(); ++e) {
    if (!eng.tree().is_internal_edge(e)) continue;
    eng.prepare_root(e);
    auto [m1, m2] = nni_moves(eng.tree(), e);
    apply_nni(eng.tree(), m1);
    invalidate_after_nni(eng, m1);
    const double incremental = eng.loglikelihood(e);
    const double fresh = rig.fresh_lnl();
    ASSERT_NEAR(incremental, fresh, 1e-7 * std::abs(fresh)) << "edge " << e;
    apply_nni(eng.tree(), m1);  // restore
    invalidate_after_nni(eng, m1);
  }
}

// --- full search -----------------------------------------------------------------

TEST(Search, ImprovesFromRandomStart) {
  Rng rng(64);
  Rig rig(9, 400, 100, 2, true, 65, random_tree(default_labels(9), rng));
  const double start = rig.engine->loglikelihood(0);
  SearchOptions so;
  so.max_rounds = 2;
  so.spr_radius = 4;
  so.model_opts.optimize_rates = false;
  SearchResult res = search_ml(*rig.engine, so);
  EXPECT_GT(res.final_lnl, start);
  EXPECT_GT(res.candidates_scored, 0u);
}

TEST(Search, RecoversTrueTreeFromCleanData) {
  // Plenty of signal (long alignment), 8 taxa: the search must find a tree
  // whose topology is very close to (usually identical to) the truth.
  Rng rng(66);
  Rig rig(8, 1500, 1500, 4, false, 67,
          random_tree(default_labels(8), rng));
  SearchOptions so;
  so.max_rounds = 4;
  so.spr_radius = 6;
  so.model_opts.optimize_rates = false;
  search_ml(*rig.engine, so);
  const int rf = rf_distance(rig.engine->tree(), rig.data.true_tree);
  EXPECT_LE(rf, 2) << "searched tree too far from the simulation truth";
}

TEST(Search, StrategiesFindEquallyGoodTrees) {
  Rng r1(68), r2(68);
  Rig a(8, 600, 150, 2, true, 69, random_tree(default_labels(8), r1));
  Rig b(8, 600, 150, 2, true, 69, random_tree(default_labels(8), r2));
  SearchOptions so;
  so.max_rounds = 2;
  so.spr_radius = 4;
  so.model_opts.optimize_rates = false;
  so.strategy = Strategy::kOldPar;
  const double la = search_ml(*a.engine, so).final_lnl;
  so.strategy = Strategy::kNewPar;
  const double lb = search_ml(*b.engine, so).final_lnl;
  // Identical moves modulo NR tie-breaking; scores must agree closely.
  EXPECT_NEAR(la, lb, 0.01 * std::abs(la) * 0.01 + 1.0);
}

TEST(Search, TreeStaysValidThroughout) {
  Rng rng(70);
  Rig rig(10, 300, 100, 1, true, 71, random_tree(default_labels(10), rng));
  SearchOptions so;
  so.max_rounds = 1;
  so.spr_radius = 3;
  so.model_opts.optimize_rates = false;
  search_ml(*rig.engine, so);
  rig.engine->tree().validate();
  // Final state must be internally consistent: incremental == fresh.
  const double incr = rig.engine->loglikelihood(0);
  EXPECT_NEAR(incr, rig.fresh_lnl(), 1e-7 * std::abs(incr));
}

}  // namespace
}  // namespace plk
