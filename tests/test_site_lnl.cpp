// Tests for the per-site log-likelihood API and the analysis-level start
// tree options (parsimony vs random).
#include <gtest/gtest.h>

#include <cmath>

#include "plk.hpp"

namespace plk {
namespace {

struct Rig {
  Dataset data;
  std::unique_ptr<CompressedAlignment> comp;
  std::unique_ptr<Engine> engine;

  explicit Rig(int taxa, std::size_t sites, std::size_t plen,
               std::uint64_t seed = 3141, int threads = 1) {
    data = make_simulated_dna(taxa, sites, plen, seed);
    comp = std::make_unique<CompressedAlignment>(
        CompressedAlignment::build(data.alignment, data.scheme, true));
    std::vector<PartitionModel> models;
    for (const auto& part : comp->partitions)
      models.emplace_back(make_model("GTR", empirical_frequencies(part)),
                          0.7, 4);
    EngineOptions eo;
    eo.threads = threads;
    eo.unlinked_branch_lengths = true;
    engine = std::make_unique<Engine>(*comp, data.true_tree,
                                      std::move(models), eo);
  }
};

TEST(SiteLnl, WeightedSumEqualsPartitionTotal) {
  Rig rig(8, 300, 100, 5);
  Engine& eng = *rig.engine;
  eng.loglikelihood(0);
  for (int p = 0; p < eng.partition_count(); ++p) {
    const auto sites = eng.site_loglikelihoods(0, p);
    ASSERT_EQ(sites.size(), eng.pattern_count(p));
    double sum = 0;
    for (std::size_t i = 0; i < sites.size(); ++i)
      sum += sites[i] *
             rig.comp->partitions[static_cast<std::size_t>(p)].weights[i];
    EXPECT_NEAR(sum, eng.per_partition_lnl()[static_cast<std::size_t>(p)],
                1e-9 * std::abs(sum))
        << "partition " << p;
  }
}

TEST(SiteLnl, InvariantToRootPlacement) {
  Rig rig(7, 120, 120, 7);
  Engine& eng = *rig.engine;
  const auto ref = eng.site_loglikelihoods(0, 0);
  for (EdgeId e = 1; e < eng.tree().edge_count(); e += 3) {
    const auto got = eng.site_loglikelihoods(e, 0);
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(got[i], ref[i], 1e-8 * std::max(1.0, std::abs(ref[i])))
          << "edge " << e << " pattern " << i;
  }
}

TEST(SiteLnl, MatchesParallelExecution) {
  Rig a(8, 240, 80, 9, /*threads=*/1);
  Rig b(8, 240, 80, 9, /*threads=*/6);
  const auto sa = a.engine->site_loglikelihoods(2, 1);
  const auto sb = b.engine->site_loglikelihoods(2, 1);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(SiteLnl, AllValuesAreLogProbabilities) {
  Rig rig(8, 200, 200, 11);
  const auto sites = rig.engine->site_loglikelihoods(0, 0);
  for (double s : sites) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_LT(s, 0.0);  // per-site likelihoods are < 1
  }
}

TEST(SiteLnl, RespondsToModelChange) {
  Rig rig(8, 200, 200, 13);
  Engine& eng = *rig.engine;
  const auto before = eng.site_loglikelihoods(0, 0);
  eng.model(0).set_alpha(eng.model(0).alpha() * 4);
  eng.invalidate_partition(0);
  const auto after = eng.site_loglikelihoods(0, 0);
  int changed = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    changed += std::abs(before[i] - after[i]) > 1e-12;
  EXPECT_GT(changed, static_cast<int>(before.size() / 2));
}

TEST(SiteLnl, SpanOverloadWritesIntoCallerStorage) {
  Rig rig(8, 240, 120, 15);
  Engine& eng = *rig.engine;
  const auto want = eng.site_loglikelihoods(1, 0);

  // One caller-owned buffer reused across partitions/edges: no per-call
  // allocation. Poison it first so untouched entries would be caught.
  std::vector<double> buf(eng.pattern_count(0), -777.0);
  eng.site_loglikelihoods(1, 0, buf);
  ASSERT_EQ(buf.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_DOUBLE_EQ(buf[i], want[i]) << "pattern " << i;

  // Reuse for a different edge; values must be fully overwritten.
  eng.site_loglikelihoods(4, 0, buf);
  const auto want4 = eng.site_loglikelihoods(4, 0);
  for (std::size_t i = 0; i < want4.size(); ++i)
    EXPECT_DOUBLE_EQ(buf[i], want4[i]) << "pattern " << i;
}

TEST(SiteLnl, SpanOverloadRejectsWrongSize) {
  Rig rig(8, 200, 200, 27);
  std::vector<double> tiny(3);
  EXPECT_THROW(rig.engine->site_loglikelihoods(0, 0, tiny),
               std::invalid_argument);
}

// --- start tree options ------------------------------------------------------

TEST(StartTrees, ParsimonyStartBeatsRandomStartInitially) {
  Dataset d = make_simulated_dna(12, 1500, 500, 17);
  AnalysisOptions ro;
  ro.start_tree = StartTree::kRandom;
  Analysis random_an(d.alignment, d.scheme, ro);
  AnalysisOptions po;
  po.start_tree = StartTree::kParsimony;
  Analysis pars_an(d.alignment, d.scheme, po);
  // Before any optimization, the parsimony topology should already fit the
  // data much better than a uniform random topology.
  EXPECT_GT(pars_an.loglikelihood(), random_an.loglikelihood());
}

TEST(StartTrees, ParsimonyStartIsValidTree) {
  Dataset d = make_simulated_dna(9, 400, 100, 19);
  AnalysisOptions opts;
  opts.start_tree = StartTree::kParsimony;
  Analysis an(d.alignment, d.scheme, opts);
  an.engine().tree().validate();
  EXPECT_EQ(an.engine().tree().tip_count(), 9);
  EXPECT_TRUE(std::isfinite(an.loglikelihood()));
}

TEST(StartTrees, ExplicitTreeOverridesOption) {
  Dataset d = make_simulated_dna(8, 200, 100, 21);
  AnalysisOptions opts;
  opts.start_tree = StartTree::kParsimony;
  Analysis an(d.alignment, d.scheme, opts, d.true_tree);
  EXPECT_EQ(rf_distance(an.engine().tree(), d.true_tree), 0);
}

}  // namespace
}  // namespace plk
