// Input-parsing hardening: hostile or malformed Newick / FASTA / PHYLIP
// inputs must fail with a clean std::runtime_error — never crash, hang, or
// blow the stack. A long-running analysis reads these files unattended; the
// failure mode of a bad input is a diagnosable error at startup.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bio/msa_io.hpp"
#include "tree/newick.hpp"

namespace plk {
namespace {

// --- newick ------------------------------------------------------------------

TEST(NewickNegative, DeepNestingIsAParseErrorNotAStackOverflow) {
  // 100k unbalanced opens would recurse once per '(' — far past any real
  // tree and, unguarded, past the thread's stack.
  std::string bomb(100000, '(');
  bomb += "a,b);";
  try {
    parse_newick(bomb);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting depth"), std::string::npos)
        << e.what();
  }
}

TEST(NewickNegative, RealisticNestingStillParses) {
  // A 500-deep caterpillar is legitimate (pathological but real); the
  // depth guard must not reject it.
  std::string tree;
  for (int i = 0; i < 500; ++i) tree += '(';
  tree += "t0:0.1";
  for (int i = 0; i < 500; ++i) {
    tree += ",t" + std::to_string(i + 1) + ":0.1)";
    if (i + 1 < 500) tree += ":0.1";
  }
  tree += ';';
  EXPECT_NO_THROW(parse_newick(tree));
}

TEST(NewickNegative, UnterminatedGroup) {
  EXPECT_THROW(parse_newick("((a:0.1,b:0.2"), std::runtime_error);
}

TEST(NewickNegative, UnterminatedQuotedLabel) {
  EXPECT_THROW(parse_newick("('abc"), std::runtime_error);
}

TEST(NewickNegative, MalformedBranchLength) {
  EXPECT_THROW(parse_newick("(a:zzz,b:0.1,c:0.1);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:+-1.5,b:0.1,c:0.1);"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a:,b:0.1,c:0.1);"), std::runtime_error);
}

TEST(NewickNegative, TrailingGarbage) {
  EXPECT_THROW(parse_newick("(a:0.1,b:0.1,c:0.1); extra"),
               std::runtime_error);
}

TEST(NewickNegative, EmptyAndDegenerate) {
  EXPECT_THROW(parse_newick(""), std::runtime_error);
  EXPECT_THROW(parse_newick(";"), std::runtime_error);
  EXPECT_THROW(parse_newick("(a);"), std::runtime_error);
}

TEST(NewickNegative, NonBinaryInnerNode) {
  EXPECT_THROW(parse_newick("((a:1,b:1,c:1,d:1):1,e:1,f:1);"),
               std::runtime_error);
}

TEST(NewickNegative, UnlabeledTip) {
  EXPECT_THROW(parse_newick("(a:0.1,:0.2,c:0.1);"), std::runtime_error);
}

TEST(NewickNegative, TaxonOrderMismatches) {
  const std::string tree = "(a:0.1,b:0.1,c:0.1);";
  EXPECT_THROW(parse_newick(tree, {"a", "b"}), std::runtime_error);
  EXPECT_THROW(parse_newick(tree, {"a", "b", "zz"}), std::runtime_error);
  EXPECT_THROW(parse_newick(tree, {"a", "a", "c"}), std::runtime_error);
}

// --- FASTA -------------------------------------------------------------------

TEST(FastaNegative, EmptyInput) {
  EXPECT_THROW(read_fasta(""), std::runtime_error);
  EXPECT_THROW(read_fasta("\n\n"), std::runtime_error);
}

TEST(FastaNegative, DataBeforeFirstHeader) {
  EXPECT_THROW(read_fasta("ACGT\n>a\nACGT\n"), std::runtime_error);
}

TEST(FastaNegative, HeaderWithoutName) {
  EXPECT_THROW(read_fasta(">\nACGT\n"), std::runtime_error);
  EXPECT_THROW(read_fasta(">   \nACGT\n"), std::runtime_error);
}

TEST(FastaNegative, RecordWithoutSequence) {
  EXPECT_THROW(read_fasta(">a\n>b\nACGT\n"), std::runtime_error);
  EXPECT_THROW(read_fasta(">only\n"), std::runtime_error);
}

// --- PHYLIP ------------------------------------------------------------------

TEST(PhylipNegative, MissingHeader) {
  EXPECT_THROW(read_phylip(""), std::runtime_error);
  EXPECT_THROW(read_phylip("not a header\n"), std::runtime_error);
}

TEST(PhylipNegative, FewerTaxaThanHeaderClaims) {
  EXPECT_THROW(read_phylip("3 4\nt1 ACGT\nt2 ACGT\n"), std::runtime_error);
}

TEST(PhylipNegative, SiteCountMismatch) {
  EXPECT_THROW(read_phylip("2 8\nt1 ACGT\nt2 ACGT\n"), std::runtime_error);
}

TEST(PhylipNegative, InterleavedBlockTooLong) {
  EXPECT_THROW(read_phylip("2 8\nt1 ACGT\nt2 ACGT\n\nACGT\nACGT\nACGT\n"),
               std::runtime_error);
}

// --- file-level --------------------------------------------------------------

TEST(IoNegative, MissingFilesFailCleanly) {
  EXPECT_THROW(read_file("/nonexistent/plk/input"), std::runtime_error);
  EXPECT_THROW(read_fasta_file("/nonexistent/plk/input.fasta"),
               std::runtime_error);
  EXPECT_THROW(read_phylip_file("/nonexistent/plk/input.phy"),
               std::runtime_error);
}

}  // namespace
}  // namespace plk
