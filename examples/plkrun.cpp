// plkrun — a RAxML-style command-line driver for the library.
//
// Covers the analyses of the paper's Section V from the shell:
//
//   # full ML search on a FASTA alignment with a RAxML partition file
//   plkrun -s genes.fasta -q genes.part -T 8 -o run1 --search
//
//   # model-parameter optimization on a fixed tree (no search)
//   plkrun -s genes.phy -t start.nwk --optimize
//
//   # the paper's comparison: same run under the old parallelization
//   plkrun -s genes.fasta -q genes.part -T 16 --strategy old --search
//
//   # no data at hand? simulate a paper-style dataset first
//   plkrun --simulate 20,10000,500 -T 8 --search
//
// Outputs <prefix>.bestTree (Newick) and a run summary on stdout.
//
// Exit codes (stable contract for wrappers and schedulers):
//   0  analysis completed (also --help)
//   1  runtime error (bad input file, engine failure, ...)
//   2  usage error (unknown flag, missing value, no input)
//   3  interrupted: SIGINT/SIGTERM stopped the search at a round boundary;
//      state was checkpointed when --checkpoint is set, so the run can be
//      continued with --resume
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "plk.hpp"

namespace {

using namespace plk;

/// Raised by the signal handler; the search polls it at round boundaries
/// and shuts down gracefully (final checkpoint included).
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

struct CliOptions {
  std::string alignment_path;
  std::string partition_path;
  std::string tree_path;
  std::string out_prefix = "plk";
  std::string simulate_spec;  // "taxa,sites,plen"
  int threads = 1;
  int shards = 0;  // 0 = auto (PLK_SHARDS env, else 1)
  Strategy strategy = Strategy::kNewPar;
  bool joint_bl = false;
  bool do_search = false;
  bool do_optimize = false;
  bool parsimony_start = true;
  bool batched_candidates = true;
  int speculate = 8;
  std::string batch_exec = "auto";
  int radius = 5;
  int rounds = 5;
  int starts = 1;
  int replicates = 0;
  std::uint64_t seed = 42;
  std::string model;
  std::string checkpoint_path;
  int checkpoint_every = 1;
  bool resume = false;
};

void usage() {
  std::printf(
      "plkrun — partitioned phylogenetic likelihood analyses\n"
      "  -s FILE          alignment (FASTA or relaxed PHYLIP, by extension)\n"
      "  -q FILE          RAxML-style partition file (default: one DNA/GTR "
      "partition)\n"
      "  -t FILE          starting tree (Newick; default: stepwise-addition "
      "parsimony)\n"
      "  -o PREFIX        output prefix (default: plk)\n"
      "  -T N             threads (default 1)\n"
      "  --shards N       NUMA-aware engine sub-cores; threads are split\n"
      "                   across them and results stay bit-identical to\n"
      "                   --shards 1 (default: PLK_SHARDS env, else 1)\n"
      "  --strategy S     'new' (default) or 'old' parallelization\n"
      "  --joint-bl       joint branch lengths (default: per-partition)\n"
      "  --search         full ML tree search\n"
      "  --optimize       model/branch optimization on the fixed tree\n"
      "  --random-start   random instead of parsimony starting tree\n"
      "  --batched-candidates on|off\n"
      "                   lockstep SPR candidate scoring (default on; off =\n"
      "                   the sequential per-candidate scorer, for A/B runs)\n"
      "  --speculate N    max prune-edge groups merged per speculative wave\n"
      "                   window (default 8; 1 = per-group waves)\n"
      "  --batch-exec M   batch flush execution: auto|fine|coarse (default\n"
      "                   auto: coarse once items outnumber threads 2:1)\n"
      "  --radius N       SPR radius (default 5)\n"
      "  --rounds N       max search rounds (default 5)\n"
      "  --starts N       independent search starts over one shared engine\n"
      "                   core (batched initial scoring; best tree wins)\n"
      "  --replicates N   after the search, N bootstrap replicates batched\n"
      "                   through the shared core; writes <prefix>.support\n"
      "  --model SPEC     substitution + rate model for every partition,\n"
      "                   e.g. GTR+G4, HKY{2.5}+I, WAG+R4+I (default: the\n"
      "                   partition file's model, else GTR+G4 / WAG+G4)\n"
      "  --seed N         RNG seed (default 42)\n"
      "  --simulate T,S,P simulate T taxa x S sites in partitions of P\n"
      "  --checkpoint F   crash-consistent search checkpoint file (written\n"
      "                   atomically, 2-deep ring F / F.1, checksummed)\n"
      "  --checkpoint-every N\n"
      "                   checkpoint every N-th search round (default 1)\n"
      "  --resume         continue the search from --checkpoint F instead of\n"
      "                   starting over (bit-identical to the same\n"
      "                   checkpointed run left uninterrupted)\n"
      "exit codes: 0 ok, 1 runtime error, 2 usage error, 3 interrupted\n"
      "            (SIGINT/SIGTERM; checkpointed, resumable with --resume)\n");
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", a.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "-h" || a == "--help") {
      usage();
      return std::nullopt;
    } else if (a == "-s") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.alignment_path = v;
    } else if (a == "-q") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.partition_path = v;
    } else if (a == "-t") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.tree_path = v;
    } else if (a == "-o") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.out_prefix = v;
    } else if (a == "-T") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.threads = std::atoi(v);
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.shards = std::atoi(v);
      if (o.shards < 1) {
        std::fprintf(stderr, "--shards needs >= 1\n");
        return std::nullopt;
      }
    } else if (a == "--strategy") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "old") == 0)
        o.strategy = Strategy::kOldPar;
      else if (std::strcmp(v, "new") == 0)
        o.strategy = Strategy::kNewPar;
      else {
        std::fprintf(stderr, "unknown strategy '%s'\n", v);
        return std::nullopt;
      }
    } else if (a == "--model") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.model = v;
    } else if (a == "--joint-bl") {
      o.joint_bl = true;
    } else if (a == "--search") {
      o.do_search = true;
    } else if (a == "--optimize") {
      o.do_optimize = true;
    } else if (a == "--random-start") {
      o.parsimony_start = false;
    } else if (a == "--batched-candidates") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "on") == 0)
        o.batched_candidates = true;
      else if (std::strcmp(v, "off") == 0)
        o.batched_candidates = false;
      else {
        std::fprintf(stderr, "--batched-candidates wants 'on' or 'off'\n");
        return std::nullopt;
      }
    } else if (a == "--speculate") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.speculate = std::atoi(v);
      if (o.speculate < 1) {
        std::fprintf(stderr, "--speculate wants N >= 1\n");
        return std::nullopt;
      }
    } else if (a == "--batch-exec") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (!batch_exec_mode_from_string(v)) {
        std::fprintf(stderr, "--batch-exec wants auto, fine, or coarse\n");
        return std::nullopt;
      }
      o.batch_exec = v;
    } else if (a == "--radius") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.radius = std::atoi(v);
    } else if (a == "--rounds") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.rounds = std::atoi(v);
    } else if (a == "--starts") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.starts = std::atoi(v);
    } else if (a == "--replicates") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.replicates = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--simulate") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.simulate_spec = v;
    } else if (a == "--checkpoint") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.checkpoint_path = v;
    } else if (a == "--checkpoint-every") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.checkpoint_every = std::atoi(v);
      if (o.checkpoint_every < 1) {
        std::fprintf(stderr, "--checkpoint-every wants N >= 1\n");
        return std::nullopt;
      }
    } else if (a == "--resume") {
      o.resume = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      usage();
      return std::nullopt;
    }
  }
  if (!o.do_search && !o.do_optimize) o.do_search = true;
  if (o.resume && o.checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume needs --checkpoint FILE\n");
    return std::nullopt;
  }
  if (o.alignment_path.empty() && o.simulate_spec.empty()) {
    std::fprintf(stderr, "need -s FILE or --simulate T,S,P\n");
    usage();
    return std::nullopt;
  }
  return o;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed) return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 2;
  const CliOptions& cli = *parsed;
  Log::set_level(LogLevel::Info);

  try {
    // --- inputs -------------------------------------------------------------
    Alignment aln;
    PartitionScheme scheme;
    if (!cli.simulate_spec.empty()) {
      int taxa = 0;
      std::size_t sites = 0, plen = 0;
      if (std::sscanf(cli.simulate_spec.c_str(), "%d,%zu,%zu", &taxa, &sites,
                      &plen) != 3) {
        std::fprintf(stderr, "bad --simulate spec (want T,S,P)\n");
        return 2;
      }
      Dataset d = make_simulated_dna(taxa, sites, plen, cli.seed);
      aln = std::move(d.alignment);
      scheme = std::move(d.scheme);
      std::printf("simulated %s\n", d.name.c_str());
    } else {
      aln = ends_with(cli.alignment_path, ".phy") ||
                    ends_with(cli.alignment_path, ".phylip")
                ? read_phylip_file(cli.alignment_path)
                : read_fasta_file(cli.alignment_path);
      scheme = cli.partition_path.empty()
                   ? PartitionScheme::single(DataType::kDna, aln.site_count())
                   : PartitionScheme::parse(read_file(cli.partition_path));
      scheme.validate(aln.site_count());
    }
    std::printf("%zu taxa, %zu sites, %zu partitions; %d threads, %s, %s "
                "branch lengths\n",
                aln.taxon_count(), aln.site_count(), scheme.size(),
                cli.threads, std::string(to_string(cli.strategy)).c_str(),
                cli.joint_bl ? "joint" : "per-partition");

    AnalysisOptions opts;
    opts.threads = cli.threads;
    opts.shards = cli.shards;
    opts.strategy = cli.strategy;
    opts.per_partition_branch_lengths = !cli.joint_bl;
    opts.model = cli.model;
    opts.seed = cli.seed;
    opts.start_tree = cli.parsimony_start ? StartTree::kParsimony
                                          : StartTree::kRandom;
    opts.search.spr_radius = cli.radius;
    opts.search.max_rounds = cli.rounds;
    opts.search.batched_candidates = cli.batched_candidates;
    opts.search.candidate_batch.speculate_groups = cli.speculate;
    opts.search_starts = cli.starts;
    opts.search.checkpoint_path = cli.checkpoint_path;
    opts.search.checkpoint_every = cli.checkpoint_every;
    opts.search.resume = cli.resume;
    opts.search.stop_flag = &g_stop;
    std::signal(SIGINT, &handle_stop_signal);
    std::signal(SIGTERM, &handle_stop_signal);

    std::optional<Tree> start;
    if (!cli.tree_path.empty()) {
      std::vector<std::string> names;
      for (const auto& s : aln.sequences()) names.push_back(s.name);
      start = parse_newick(read_file(cli.tree_path), names);
    }
    Analysis analysis(aln, scheme, opts, std::move(start));
    analysis.engine().core().set_batch_execution(
        *batch_exec_mode_from_string(cli.batch_exec));

    // --- run ----------------------------------------------------------------
    AnalysisResult res =
        cli.do_search ? analysis.run_search() : analysis.optimize_parameters();

    std::printf("final lnL: %.4f (%.2fs, %llu sync events, %.2fs thread "
                "idle)\n",
                res.lnl, res.seconds,
                static_cast<unsigned long long>(res.team_stats.sync_count),
                res.team_stats.imbalance_seconds);
    if (analysis.engine().shard_count() > 1) {
      const EngineStats& es = analysis.engine().stats();
      std::printf(
          "  shards: %d sub-cores, %llu multi-shard flushes, %.2f team "
          "syncs/flush\n",
          analysis.engine().shard_count(),
          static_cast<unsigned long long>(es.shard_fanouts),
          es.commands > 0 ? static_cast<double>(es.shard_team_syncs) /
                                static_cast<double>(es.commands)
                          : 0.0);
    }
    if (cli.do_search) {
      std::printf("search: %llu candidates scored (%s scorer), %d accepted, "
                  "%d rounds\n",
                  static_cast<unsigned long long>(res.search.candidates_scored),
                  cli.batched_candidates ? "batched" : "sequential",
                  res.search.accepted_moves, res.search.rounds);
      if (cli.batched_candidates)
        std::printf(
            "  batch: %llu groups in %llu lockstep waves (%llu cross-group), "
            "%llu candidates re-scored / %llu groups re-enumerated after "
            "commits, peak %zu CLV pool slots (%zu allocated), %llu coarse "
            "flushes\n",
            static_cast<unsigned long long>(res.search.batch.groups),
            static_cast<unsigned long long>(res.search.batch.waves),
            static_cast<unsigned long long>(
                res.search.batch.cross_group_waves),
            static_cast<unsigned long long>(
                res.search.batch.rescored_candidates),
            static_cast<unsigned long long>(res.search.batch.conflict_groups),
            res.search.batch.pool_slots_peak,
            res.search.batch.pool_slots_allocated,
            static_cast<unsigned long long>(
                analysis.engine().stats().coarse_commands));
    }
    for (int p = 0; p < analysis.engine().partition_count(); ++p) {
      const PartitionModel& pm = analysis.engine().model(p);
      const RateModel& rm = pm.rate_model();
      std::string rate_info;
      char buf[48];
      if (rm.kind() == RateModel::Kind::kGamma && rm.categories() > 1) {
        std::snprintf(buf, sizeof buf, ", alpha %.4f", pm.alpha());
        rate_info += buf;
      }
      if (rm.invariant_sites()) {
        std::snprintf(buf, sizeof buf, ", p-inv %.4f", rm.p_inv());
        rate_info += buf;
      }
      std::printf("  partition %2d: %s%s, lnL %.4f\n", p,
                  describe_model(pm).c_str(), rate_info.c_str(),
                  analysis.engine().per_partition_lnl()[
                      static_cast<std::size_t>(p)]);
    }

    const std::string tree_file = cli.out_prefix + ".bestTree";
    write_file(tree_file, res.newick + "\n");
    std::printf("tree written to %s\n", tree_file.c_str());

    if (cli.do_search && res.search.interrupted) {
      std::printf("search interrupted by signal; state is consistent%s\n",
                  cli.checkpoint_path.empty()
                      ? ""
                      : (", resume with --resume --checkpoint " +
                         cli.checkpoint_path)
                            .c_str());
      return 3;
    }

    // --- bootstrap support (batched through the shared engine core) --------
    if (cli.replicates > 0) {
      EngineCore& core = analysis.engine().core();
      analysis.engine().sync_tree_lengths();
      const Tree best = analysis.engine().tree();
      SearchOptions bso;
      bso.strategy = cli.strategy;
      bso.spr_radius = cli.radius;
      bso.max_rounds = 1;  // quick replicate searches from the best tree
      Rng rng(cli.seed ^ 0xb0075);
      core.reset_stats();
      const std::vector<Tree> reps =
          bootstrap_trees(core, best, cli.replicates, rng, bso);
      const auto support = bipartition_support(best, reps);
      double mean = 0;
      for (const auto& [e, s] : support) mean += s;
      if (!support.empty()) mean /= static_cast<double>(support.size());
      std::printf("bootstrap: %d replicates, mean support %.0f%% (%llu "
                  "requests in %llu parallel regions)\n",
                  cli.replicates, 100.0 * mean,
                  static_cast<unsigned long long>(core.stats().requests),
                  static_cast<unsigned long long>(core.stats().commands));
      const std::string support_file = cli.out_prefix + ".support";
      write_file(support_file, write_newick_with_support(best, support) + "\n");
      std::printf("support tree written to %s\n", support_file.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
