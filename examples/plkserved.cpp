// plkserved — the streaming phylogenetic placement daemon.
//
// Loads a reference alignment + tree ONCE, optimizes the reference model
// state (or warm-restarts it from a checkpoint ring), and then serves
// placement queries over NDJSON-on-TCP for as long as it runs:
//
//   # serve a reference on port 7717 with 8 threads and 16 query lanes
//   plkserved -s ref.fasta -t ref.nwk -T 8 --lanes 16
//
//   # no data at hand? simulate a reference
//   plkserved --simulate 24,3000 --port 7717
//
//   # warm restart: reuse the optimized model state from the last run
//   plkserved -s ref.fasta -t ref.nwk --checkpoint ref.ckpt
//
// The protocol is one JSON object per line (docs/server.md):
//   {"op":"place","id":"q1","seq":"ACGT..."} ->
//   {"ok":true,"op":"place","id":"q1","edge":7,"lnl":-1931.53,...}
//
// Exit codes (same contract as plkrun):
//   0  clean shutdown (quit of the last client does NOT stop the server)
//   1  runtime error (bad input, socket failure, engine fault)
//   2  usage error
//   3  interrupted: SIGINT/SIGTERM drained in-flight queries, answered
//      them, wrote the final checkpoint (with --checkpoint), and exited
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "plk.hpp"

namespace {

using namespace plk;

std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

struct CliOptions {
  std::string alignment_path;
  std::string partition_path;
  std::string tree_path;
  std::string simulate_spec;  // "taxa,sites"
  std::string write_queries_path;
  int sim_queries = 32;
  std::string bind_address = "127.0.0.1";
  int port = 7717;
  int threads = 1;
  int shards = 0;
  int lanes = 8;
  int candidates = 8;
  std::size_t max_sessions = 64;
  std::size_t max_queue = 1024;
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  std::uint64_t seed = 42;
  bool no_model_opt = false;
};

void usage() {
  std::printf(
      "plkserved — streaming phylogenetic placement daemon\n"
      "  -s FILE          reference alignment (FASTA or relaxed PHYLIP)\n"
      "  -t FILE          reference tree (Newick; required with -s)\n"
      "  -q FILE          RAxML-style partition file (default: one DNA/GTR)\n"
      "  --simulate T,S   simulated reference: T taxa, S sites\n"
      "  --queries N      with --simulate: held-out queries generated (32)\n"
      "  --write-queries FILE\n"
      "                   with --simulate: write the held-out queries as\n"
      "                   FASTA (feed to plkplace / soak drivers)\n"
      "  --bind ADDR      IPv4 bind address (default 127.0.0.1)\n"
      "  --port N         listen port (default 7717; 0 = ephemeral, printed)\n"
      "  -T N             threads (default 1)\n"
      "  --shards N       NUMA-aware engine sub-cores (default: PLK_SHARDS)\n"
      "  --lanes N        concurrent query lanes per wave (default 8)\n"
      "  --candidates N   parsimony-shortlisted edges per query (default 8)\n"
      "  --max-sessions N admission limit (default 64)\n"
      "  --max-queue N    engine queue bound before backpressure (1024)\n"
      "  --checkpoint F   model-state checkpoint ring: warm restart from it\n"
      "                   when readable, write it at shutdown\n"
      "  --checkpoint-every N\n"
      "                   also checkpoint every N placements (default: only\n"
      "                   at shutdown)\n"
      "  --no-model-opt   skip model optimization at startup (branch lengths\n"
      "                   only)\n"
      "  --seed N         RNG seed for --simulate (default 42)\n"
      "exit codes: 0 clean stop, 1 runtime error, 2 usage, 3 interrupted\n"
      "            (SIGINT/SIGTERM; in-flight queries answered, checkpoint\n"
      "            written)\n");
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", a.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "-h" || a == "--help") {
      usage();
      return std::nullopt;
    } else if (a == "-s") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.alignment_path = v;
    } else if (a == "-q") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.partition_path = v;
    } else if (a == "-t") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.tree_path = v;
    } else if (a == "--simulate") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.simulate_spec = v;
    } else if (a == "--queries") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.sim_queries = std::atoi(v);
      if (o.sim_queries < 1) {
        std::fprintf(stderr, "--queries wants N >= 1\n");
        return std::nullopt;
      }
    } else if (a == "--write-queries") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.write_queries_path = v;
    } else if (a == "--bind") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.bind_address = v;
    } else if (a == "--port") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.port = std::atoi(v);
    } else if (a == "-T") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.threads = std::atoi(v);
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.shards = std::atoi(v);
    } else if (a == "--lanes") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.lanes = std::atoi(v);
      if (o.lanes < 1) {
        std::fprintf(stderr, "--lanes wants N >= 1\n");
        return std::nullopt;
      }
    } else if (a == "--candidates") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.candidates = std::atoi(v);
      if (o.candidates < 1) {
        std::fprintf(stderr, "--candidates wants N >= 1\n");
        return std::nullopt;
      }
    } else if (a == "--max-sessions") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.max_sessions = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--max-queue") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.max_queue = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--checkpoint") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.checkpoint_path = v;
    } else if (a == "--checkpoint-every") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.checkpoint_every = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--no-model-opt") {
      o.no_model_opt = true;
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      usage();
      return std::nullopt;
    }
  }
  if (o.alignment_path.empty() && o.simulate_spec.empty()) {
    std::fprintf(stderr, "need -s FILE (with -t FILE) or --simulate T,S\n");
    usage();
    return std::nullopt;
  }
  if (!o.alignment_path.empty() && o.tree_path.empty()) {
    std::fprintf(stderr, "-s needs a reference tree via -t FILE\n");
    return std::nullopt;
  }
  return o;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed) return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 2;
  const CliOptions& cli = *parsed;
  Log::set_level(LogLevel::Info);

  try {
    // --- reference inputs ---------------------------------------------------
    Alignment aln;
    PartitionScheme scheme;
    Tree tree;
    if (!cli.simulate_spec.empty()) {
      int taxa = 0;
      std::size_t sites = 0;
      if (std::sscanf(cli.simulate_spec.c_str(), "%d,%zu", &taxa, &sites) !=
          2) {
        std::fprintf(stderr, "bad --simulate spec (want T,S)\n");
        return 2;
      }
      PlacementScenario sc =
          make_placement_scenario(taxa, sites, cli.sim_queries, cli.seed);
      if (!cli.write_queries_path.empty()) {
        std::string fasta;
        for (const auto& q : sc.queries)
          fasta += ">" + q.name + "\n" + q.data + "\n";
        write_file(cli.write_queries_path, fasta);
        std::printf("wrote %zu queries to %s\n", sc.queries.size(),
                    cli.write_queries_path.c_str());
      }
      aln = std::move(sc.reference.alignment);
      scheme = std::move(sc.reference.scheme);
      tree = std::move(sc.reference.true_tree);
      std::printf("simulated reference %s\n", sc.reference.name.c_str());
    } else {
      aln = ends_with(cli.alignment_path, ".phy") ||
                    ends_with(cli.alignment_path, ".phylip")
                ? read_phylip_file(cli.alignment_path)
                : read_fasta_file(cli.alignment_path);
      scheme = cli.partition_path.empty()
                   ? PartitionScheme::single(DataType::kDna, aln.site_count())
                   : PartitionScheme::parse(read_file(cli.partition_path));
      scheme.validate(aln.site_count());
      std::vector<std::string> names;
      for (const auto& s : aln.sequences()) names.push_back(s.name);
      tree = parse_newick(read_file(cli.tree_path), names);
    }
    std::printf("reference: %zu taxa, %zu sites, %zu partitions; %d threads, "
                "%d lanes x %d candidates\n",
                aln.taxon_count(), aln.site_count(), scheme.size(),
                cli.threads, cli.lanes, cli.candidates);

    // --- engine -------------------------------------------------------------
    PlacementOptions popts;
    popts.lanes = cli.lanes;
    popts.max_candidates = cli.candidates;
    popts.max_queue = cli.max_queue;
    popts.optimize_models = !cli.no_model_opt;
    EngineOptions eopts;
    eopts.threads = cli.threads;
    eopts.shards = cli.shards;
    eopts.unlinked_branch_lengths = true;
    PlacementEngine engine(aln, scheme, std::move(tree), popts, eopts);

    bool warm = false;
    if (!cli.checkpoint_path.empty())
      warm = engine.warm_restart(cli.checkpoint_path);
    if (warm) {
      std::printf("warm restart from %s\n", cli.checkpoint_path.c_str());
    } else {
      const double lnl = engine.optimize_reference();
      std::printf("reference optimized: lnL %.4f\n", lnl);
      if (!cli.checkpoint_path.empty())
        engine.save_checkpoint(cli.checkpoint_path);
    }
    engine.start_service();

    // --- serve --------------------------------------------------------------
    ServerOptions sopts;
    sopts.bind_address = cli.bind_address;
    sopts.port = cli.port;
    sopts.max_sessions = cli.max_sessions;
    sopts.checkpoint_path = cli.checkpoint_path;
    sopts.checkpoint_every = cli.checkpoint_every;
    PlkServer server(engine, sopts);
    server.open();
    std::printf("plkserved listening on %s:%d (max %zu sessions)\n",
                cli.bind_address.c_str(), server.port(), cli.max_sessions);
    std::fflush(stdout);

    std::signal(SIGINT, &handle_stop_signal);
    std::signal(SIGTERM, &handle_stop_signal);
    std::signal(SIGPIPE, SIG_IGN);
    const int rc = server.run(g_stop);

    const PlacementStats& ps = engine.stats();
    const ServerStats& ss = server.stats();
    std::printf(
        "served %llu placements (%llu failed) over %llu sessions in %llu "
        "waves (occupancy %.2f), %llu rejected at admission, p50 %.2f ms / "
        "p99 %.2f ms\n",
        static_cast<unsigned long long>(ps.placed),
        static_cast<unsigned long long>(ps.failed),
        static_cast<unsigned long long>(ss.sessions_accepted),
        static_cast<unsigned long long>(ps.waves),
        ps.waves == 0 ? 0.0
                      : static_cast<double>(ps.wave_lanes) /
                            (static_cast<double>(ps.waves) *
                             engine.lane_count()),
        static_cast<unsigned long long>(ss.sessions_rejected),
        server.latency().percentile(50), server.latency().percentile(99));
    if (rc != 0) return rc;
    return g_stop.load(std::memory_order_relaxed) ? 3 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
