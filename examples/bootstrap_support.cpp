// Bootstrap analysis: estimate branch support for an ML tree.
//
// Runs B bootstrap replicates (resampled pattern weights -> quick ML search
// from a parsimony starting tree each) and draws the support values onto
// the best-known tree — the classic Felsenstein-bootstrap workflow the
// paper's introduction cites as the embarrassingly parallel layer *above*
// the fine-grained PLK parallelism studied in the paper.
//
// Usage: example_bootstrap_support [taxa] [sites] [replicates]
#include <cstdio>
#include <cstdlib>

#include "plk.hpp"

int main(int argc, char** argv) {
  using namespace plk;

  const int taxa = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::size_t sites = argc > 2 ? (std::size_t)std::atoll(argv[2]) : 1200;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 20;

  Dataset data = make_simulated_dna(taxa, sites, sites / 3, /*seed=*/4242);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);

  auto make_models = [&] {
    std::vector<PartitionModel> models;
    for (const auto& part : comp.partitions)
      models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0,
                          4);
    return models;
  };
  SearchOptions so;
  so.max_rounds = 1;
  so.spr_radius = 3;
  so.model_opts.optimize_rates = false;

  // 1. Best tree on the original data, from a parsimony start.
  Rng rng(7);
  EngineOptions eo;
  eo.threads = 8;
  Engine best_engine(comp, parsimony_stepwise_tree(comp, rng), make_models(),
                     eo);
  const double best_lnl = search_ml(best_engine, so).final_lnl;
  best_engine.sync_tree_lengths();
  const Tree best = best_engine.tree();
  std::printf("best tree lnL: %.2f\n", best_lnl);

  // 2. Replicate searches on resampled weights.
  std::vector<Tree> rep_trees;
  std::vector<CompressedAlignment> rep_data;  // must outlive their engines
  rep_data.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    rep_data.push_back(bootstrap_replicate(comp, rng));
    Engine eng(rep_data.back(), parsimony_stepwise_tree(rep_data.back(), rng),
               make_models(), eo);
    search_ml(eng, so);
    eng.sync_tree_lengths();
    rep_trees.push_back(eng.tree());
    std::printf("  replicate %2d done (RF to best: %d)\r", r + 1,
                rf_distance(rep_trees.back(), best));
    std::fflush(stdout);
  }
  std::printf("\n");

  // 3. Draw support onto the best tree.
  auto support = bipartition_support(best, rep_trees);
  double mean_support = 0;
  for (const auto& [e, s] : support) mean_support += s;
  mean_support /= static_cast<double>(support.size());
  std::printf("mean bipartition support: %.0f%% over %zu internal branches\n",
              100.0 * mean_support, support.size());
  std::printf("%s\n", write_newick_with_support(best, support).c_str());
  return 0;
}
