// Bootstrap analysis: estimate branch support for an ML tree.
//
// Runs B bootstrap replicates and draws the support values onto the
// best-known tree — the classic Felsenstein-bootstrap workflow the paper's
// introduction cites as the embarrassingly parallel layer *above* the
// fine-grained PLK parallelism studied in the paper.
//
// Replicates run through ONE shared EngineCore: each replicate is an
// EvalContext holding only resampled pattern weights (no alignment copy,
// no tip re-encoding, no thread respawn), branch lengths are smoothed for
// all replicates in lockstep through the core's batched submit()/wait()
// API, and the per-replicate SPR searches share the core's tip-table LRUs
// and thread team. Compare with the pre-batching one-engine-per-replicate
// loop benchmarked in bench/bench_batch.cpp.
//
// Usage: example_bootstrap_support [taxa] [sites] [replicates]
#include <cstdio>
#include <cstdlib>

#include "plk.hpp"

int main(int argc, char** argv) {
  using namespace plk;

  const int taxa = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::size_t sites = argc > 2 ? (std::size_t)std::atoll(argv[2]) : 1200;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 20;

  Dataset data = make_simulated_dna(taxa, sites, sites / 3, /*seed=*/4242);
  auto comp = CompressedAlignment::build(data.alignment, data.scheme, true);

  std::vector<PartitionModel> models;
  for (const auto& part : comp.partitions)
    models.emplace_back(make_model("GTR", empirical_frequencies(part)), 1.0, 4);
  SearchOptions so;
  so.max_rounds = 1;
  so.spr_radius = 3;
  so.model_opts.optimize_rates = false;

  // One core for the whole analysis: best-tree search AND all replicates.
  EngineOptions eo;
  eo.threads = 8;
  EngineCore core(comp, std::move(models), eo);

  // 1. Best tree on the original data, from a parsimony start.
  Rng rng(7);
  EvalContext best_ctx(core, parsimony_stepwise_tree(comp, rng));
  Engine best_engine(core, best_ctx);
  const double best_lnl = search_ml(best_engine, so).final_lnl;
  const Tree best = best_ctx.tree();
  std::printf("best tree lnL: %.2f\n", best_lnl);

  // 2. Replicate searches on resampled weights, batched through the core.
  core.reset_stats();
  Timer timer;
  const std::vector<Tree> rep_trees =
      bootstrap_trees(core, best, reps, rng, so);
  const double rep_seconds = timer.seconds();
  for (int r = 0; r < reps; ++r)
    std::printf("  replicate %2d: RF to best = %d\n", r + 1,
                rf_distance(rep_trees[static_cast<std::size_t>(r)], best));
  std::printf("%d replicates in %.2fs — %llu logical requests packed into "
              "%llu parallel regions\n",
              reps, rep_seconds,
              static_cast<unsigned long long>(core.stats().requests),
              static_cast<unsigned long long>(core.stats().commands));

  // 3. Draw support onto the best tree.
  auto support = bipartition_support(best, rep_trees);
  double mean_support = 0;
  for (const auto& [e, s] : support) mean_support += s;
  mean_support /= static_cast<double>(support.size());
  std::printf("mean bipartition support: %.0f%% over %zu internal branches\n",
              100.0 * mean_support, support.size());
  std::printf("%s\n", write_newick_with_support(best, support).c_str());
  return 0;
}
