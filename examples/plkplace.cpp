// plkplace — command-line client for the plkserved placement daemon.
//
//   # place every sequence of a FASTA against a running server
//   plkplace --port 7717 -s queries.fasta
//
//   # keep the server's lanes full with a deeper pipeline window
//   plkplace -s queries.fasta --window 64
//
// Prints one TSV row per query (id, edge, lnL, pendant length) and a
// summary line; --stats appends the server's STATS counters.
//
// Exit codes: 0 all queries placed, 1 runtime error or any failed
// placement, 2 usage error, 3 interrupted (SIGINT/SIGTERM: stops sending,
// drains the responses already in flight).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "plk.hpp"

namespace {

using namespace plk;

std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

struct CliOptions {
  std::string host = "127.0.0.1";
  int port = 7717;
  std::string query_path;
  int window = 32;
  bool show_stats = false;
};

void usage() {
  std::printf(
      "plkplace — stream queries to a plkserved placement daemon\n"
      "  --host ADDR   server IPv4 address (default 127.0.0.1)\n"
      "  --port N      server port (default 7717)\n"
      "  -s FILE       query sequences (FASTA, reference column layout)\n"
      "  --window N    max pipelined in-flight requests (default 32)\n"
      "  --stats       print server statistics after placing\n"
      "exit codes: 0 ok, 1 runtime error / failed placement, 2 usage,\n"
      "            3 interrupted\n");
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", a.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "-h" || a == "--help") {
      usage();
      return std::nullopt;
    } else if (a == "--host") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.host = v;
    } else if (a == "--port") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.port = std::atoi(v);
    } else if (a == "-s") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.query_path = v;
    } else if (a == "--window") {
      const char* v = next();
      if (!v) return std::nullopt;
      o.window = std::atoi(v);
      if (o.window < 1) {
        std::fprintf(stderr, "--window wants N >= 1\n");
        return std::nullopt;
      }
    } else if (a == "--stats") {
      o.show_stats = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      usage();
      return std::nullopt;
    }
  }
  if (o.query_path.empty()) {
    std::fprintf(stderr, "need -s FILE with query sequences\n");
    usage();
    return std::nullopt;
  }
  return o;
}

/// Print one response row; returns true when the placement succeeded.
bool print_response(const WireMessage& m) {
  const std::string* id = m.get_string("id");
  const bool ok = m.get_bool("ok").value_or(false);
  if (ok) {
    std::printf("%s\t%lld\t%.6f\t%.6f\n", id != nullptr ? id->c_str() : "?",
                static_cast<long long>(m.get_number("edge").value_or(-1)),
                m.get_number("lnl").value_or(0.0),
                m.get_number("pendant").value_or(0.0));
  } else {
    const std::string* err = m.get_string("error");
    std::printf("%s\tFAILED\t%s\n", id != nullptr ? id->c_str() : "?",
                err != nullptr ? err->c_str() : "unknown error");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed) return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 2;
  const CliOptions& cli = *parsed;

  std::signal(SIGINT, &handle_stop_signal);
  std::signal(SIGTERM, &handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    const Alignment queries = read_fasta_file(cli.query_path);
    if (queries.taxon_count() == 0) {
      std::fprintf(stderr, "no sequences in %s\n", cli.query_path.c_str());
      return 1;
    }

    PlacementClient client;
    std::string err;
    if (!client.connect(cli.host, cli.port, &err)) {
      std::fprintf(stderr, "connect failed: %s\n", err.c_str());
      return 1;
    }
    auto hi = client.hello(&err);
    if (!hi || !hi->get_bool("ok").value_or(false)) {
      std::fprintf(stderr, "handshake failed: %s\n",
                   !hi ? err.c_str()
                       : hi->get_string("error") != nullptr
                             ? hi->get_string("error")->c_str()
                             : "rejected");
      return 1;
    }
    std::printf("# server: %zu-edge reference, %lld lanes\n",
                static_cast<std::size_t>(hi->get_number("edges").value_or(0)),
                static_cast<long long>(hi->get_number("lanes").value_or(0)));

    // Pipelined stream: keep up to `window` requests in flight so the
    // server can merge this client's queries into shared waves.
    std::size_t sent = 0, received = 0, failed = 0;
    std::size_t inflight = 0;
    const std::size_t total = queries.taxon_count();
    bool interrupted = false;
    while (received < sent ||
           (sent < total && !interrupted)) {
      interrupted = interrupted || g_stop.load(std::memory_order_relaxed);
      while (!interrupted && sent < total &&
             inflight < static_cast<std::size_t>(cli.window)) {
        const Sequence& q = queries.sequences()[sent];
        if (!client.send_place(q.name, q.data, &err)) {
          std::fprintf(stderr, "send failed: %s\n", err.c_str());
          return 1;
        }
        ++sent;
        ++inflight;
      }
      if (inflight == 0) break;
      auto resp = client.read_message(&err);
      if (!resp) {
        std::fprintf(stderr, "read failed: %s\n", err.c_str());
        return 1;
      }
      ++received;
      --inflight;
      if (!print_response(*resp)) ++failed;
    }
    std::printf("# placed %zu/%zu queries, %zu failed%s\n", received, total,
                failed, interrupted ? " (interrupted)" : "");

    if (cli.show_stats) {
      auto st = client.stats(&err);
      if (st) {
        for (const auto& [k, v] : st->fields()) {
          if (v.kind == WireValue::Kind::kNumber)
            std::printf("# stats %s = %s\n", k.c_str(),
                        json_number(v.num).c_str());
        }
      }
    }
    client.quit();
    if (interrupted) return 3;
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
