// Simulation study: generate data on a known tree, infer a tree back from a
// random start, and measure topological accuracy (Robinson-Foulds distance)
// — the standard way to validate an ML implementation end to end.
//
// Usage: example_simulate_and_infer [taxa] [sites] [seed]
#include <cstdio>
#include <cstdlib>

#include "plk.hpp"

int main(int argc, char** argv) {
  using namespace plk;
  Log::set_level(LogLevel::Info);

  const int taxa = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::size_t sites = argc > 2 ? (std::size_t)std::atoll(argv[2]) : 2000;
  const std::uint64_t seed = argc > 3 ? (std::uint64_t)std::atoll(argv[3]) : 20090615;

  // 1. Simulate on a random "true" tree under GTR+Gamma.
  Dataset data = make_simulated_dna(taxa, sites, sites / 4, seed);
  std::printf("true tree: %s\n", write_newick(data.true_tree).c_str());

  // 2. Infer from a random starting topology.
  AnalysisOptions opts;
  opts.threads = 4;
  opts.seed = seed ^ 0xdecafbad;  // a different random start tree
  opts.search.max_rounds = 3;
  opts.search.spr_radius = 5;
  Analysis analysis(data.alignment, data.scheme, opts);
  std::printf("random-start lnL: %.2f\n", analysis.loglikelihood());

  AnalysisResult res = analysis.run_search();
  std::printf("final lnL %.2f after %d rounds, %d accepted SPR moves, "
              "%llu candidates scored (%.2fs)\n",
              res.lnl, res.search.rounds, res.search.accepted_moves,
              static_cast<unsigned long long>(res.search.candidates_scored),
              res.seconds);

  // 3. Compare against the simulation truth.
  Tree found = parse_newick(res.newick, data.true_tree.labels());
  const int rf = rf_distance(found, data.true_tree);
  std::printf("Robinson-Foulds distance to truth: %d (normalized %.3f)\n",
              rf, rf_normalized(found, data.true_tree));
  std::printf("inferred tree: %s\n", res.newick.c_str());
  return rf <= 4 ? 0 : 1;  // clean data: expect (near-)perfect recovery
}
