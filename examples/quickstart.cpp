// Quickstart: simulate a small multi-gene DNA alignment, optimize model
// parameters and branch lengths on the true tree, and print the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "plk.hpp"

int main() {
  using namespace plk;
  Log::set_level(LogLevel::Info);

  // 1. A synthetic 12-taxon, 4-gene dataset (2,000 DNA columns).
  Dataset data = make_simulated_dna(/*taxa=*/12, /*sites=*/2000,
                                    /*partition_length=*/500, /*seed=*/42);
  std::printf("dataset %s: %zu taxa, %zu sites, %zu partitions\n",
              data.name.c_str(), data.alignment.taxon_count(),
              data.alignment.site_count(), data.scheme.size());

  // 2. Analyze on the true tree with per-partition branch lengths, using
  //    the paper's newPAR simultaneous-optimization strategy on 4 threads.
  AnalysisOptions opts;
  opts.threads = 4;
  opts.strategy = Strategy::kNewPar;
  opts.per_partition_branch_lengths = true;

  Analysis analysis(data.alignment, data.scheme, opts, data.true_tree);
  std::printf("starting lnL: %.3f\n", analysis.loglikelihood());

  AnalysisResult res = analysis.optimize_parameters();
  std::printf("optimized lnL: %.3f in %.2fs\n", res.lnl, res.seconds);
  std::printf("parallel commands (sync events): %llu\n",
              static_cast<unsigned long long>(res.engine_stats.commands));
  for (int p = 0; p < analysis.engine().partition_count(); ++p)
    std::printf("  partition %d: alpha = %.3f\n", p,
                analysis.engine().model(p).alpha());
  std::printf("tree: %s\n", res.newick.c_str());
  return 0;
}
