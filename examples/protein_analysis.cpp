// Mixed DNA + protein partitioned analysis.
//
// Demonstrates the 20-state kernel and the cyclic pattern distribution that
// balances expensive protein columns across threads (the reason the paper's
// protein datasets barely suffer from the load-balance problem), plus
// reading alignments and RAxML-style partition files from disk.
#include <cstdio>

#include "plk.hpp"

int main() {
  using namespace plk;

  // 1. Simulate a small phylogenomic dataset: two DNA genes + one protein
  //    gene on a shared 8-taxon tree.
  Rng rng(77);
  Tree tree = random_tree(8, rng);
  std::vector<SimPartition> parts;
  parts.push_back(SimPartition{"rbcL", hky85(2.5, {0.3, 0.2, 0.2, 0.3}),
                               800, 0.7, 16, 1.0, {}});
  parts.push_back(SimPartition{"cytB", jc69(), 600, 1.1, 16, 1.4, {}});
  parts.push_back(SimPartition{"BRCA1_aa", protein_model("WAG"), 300, 0.9,
                               16, 0.8, {}});
  Alignment aln = simulate(tree, parts, rng);

  // 2. Round-trip through the on-disk formats a user would actually have.
  write_file("/tmp/plk_example.phy", write_phylip(aln));
  write_file("/tmp/plk_example.part",
             "HKY, rbcL = 1-800\n"
             "JC, cytB = 801-1400\n"
             "WAG, BRCA1_aa = 1401-1700\n");
  Alignment loaded = read_phylip_file("/tmp/plk_example.phy");
  PartitionScheme scheme =
      PartitionScheme::parse(read_file("/tmp/plk_example.part"));
  scheme.validate(loaded.site_count());

  // 3. Analyze with per-partition branch lengths on 4 threads.
  AnalysisOptions opts;
  opts.threads = 4;
  opts.per_partition_branch_lengths = true;
  Analysis analysis(loaded, scheme, opts, tree);

  std::printf("start lnL: %.2f\n", analysis.loglikelihood());
  AnalysisResult res = analysis.optimize_parameters();
  std::printf("optimized lnL: %.2f (%.2fs)\n", res.lnl, res.seconds);
  for (int p = 0; p < analysis.engine().partition_count(); ++p) {
    const auto& m = analysis.engine().model(p);
    std::printf("  partition %d: %2d states, alpha = %.3f\n", p,
                m.model().states(), m.alpha());
  }
  std::printf("tree: %s\n", res.newick.c_str());
  return 0;
}
