// Partitioned phylogenomic analysis: the paper's headline scenario.
//
// Simulates a multi-gene DNA alignment (many short partitions, per-partition
// branch lengths), runs a full ML tree search under BOTH parallelization
// strategies and reports runtimes plus the synchronization accounting — a
// miniature of the paper's Figure 3 experiment you can play with.
//
// Usage: example_partitioned_search [taxa] [sites] [partition_len] [threads]
#include <cstdio>
#include <cstdlib>

#include "plk.hpp"

int main(int argc, char** argv) {
  using namespace plk;

  const int taxa = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::size_t sites = argc > 2 ? (std::size_t)std::atoll(argv[2]) : 6000;
  const std::size_t plen = argc > 3 ? (std::size_t)std::atoll(argv[3]) : 300;
  const int threads = argc > 4 ? std::atoi(argv[4]) : 8;

  Dataset data = make_simulated_dna(taxa, sites, plen, /*seed=*/7);
  std::printf("%s: %zu taxa, %zu sites, %zu partitions, %d threads\n",
              data.name.c_str(), data.alignment.taxon_count(),
              data.alignment.site_count(), data.scheme.size(), threads);

  for (Strategy strategy : {Strategy::kOldPar, Strategy::kNewPar}) {
    AnalysisOptions opts;
    opts.threads = threads;
    opts.strategy = strategy;
    opts.per_partition_branch_lengths = true;  // the hard case
    opts.search.max_rounds = 1;
    opts.search.spr_radius = 3;

    Analysis analysis(data.alignment, data.scheme, opts, data.true_tree);
    AnalysisResult res = analysis.run_search();
    std::printf(
        "%-7s lnL %.2f | %.2fs | %llu sync events | %.2fs thread idle "
        "(imbalance)\n",
        std::string(to_string(strategy)).c_str(), res.lnl, res.seconds,
        static_cast<unsigned long long>(res.team_stats.sync_count),
        res.team_stats.imbalance_seconds);
  }
  return 0;
}
