#!/usr/bin/env bash
# Soak test for the placement server: one plkserved daemon, SOAK_CLIENTS
# concurrent pipelined plkplace clients looping over a query FASTA for
# SOAK_DURATION seconds. Verifies the long-run service contract:
#
#   * every client pass succeeds (all placements ok, no connection errors),
#   * the server drops zero sessions (sessions_dropped == 0 in STATS),
#   * SIGTERM drains gracefully and the daemon exits with code 3.
#
# Usage: tools/server_soak.sh [BUILD_DIR]       (default: build)
# Env:   SOAK_CLIENTS (64), SOAK_DURATION (60 s), SOAK_QUERIES (32),
#        SOAK_THREADS (2)
set -u -o pipefail

BUILD=${1:-build}
CLIENTS=${SOAK_CLIENTS:-64}
DURATION=${SOAK_DURATION:-60}
QUERIES=${SOAK_QUERIES:-32}
THREADS=${SOAK_THREADS:-2}
WORK=$(mktemp -d)
trap 'kill "$SRV_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

echo "soak: $CLIENTS clients x ${DURATION}s over $QUERIES queries"

"$BUILD/plkserved" --simulate 16,1000 --queries "$QUERIES" \
    --write-queries "$WORK/queries.fasta" --port 0 -T "$THREADS" \
    --lanes 16 --max-sessions $((CLIENTS * 2)) \
    --checkpoint "$WORK/soak.ckpt" > "$WORK/served.log" 2>&1 &
SRV_PID=$!

for _ in $(seq 1 150); do
  grep -q "listening on" "$WORK/served.log" && break
  kill -0 "$SRV_PID" 2>/dev/null || { echo "server died during startup:";
                                      cat "$WORK/served.log"; exit 1; }
  sleep 0.2
done
PORT=$(grep -oP 'listening on [0-9.]+:\K[0-9]+' "$WORK/served.log")
[ -n "$PORT" ] || { echo "no port in server log"; cat "$WORK/served.log"; exit 1; }
echo "server up on port $PORT (pid $SRV_PID)"

client_loop() {
  local id=$1 end=$((SECONDS + DURATION)) passes=0
  while [ "$SECONDS" -lt "$end" ]; do
    "$BUILD/plkplace" --port "$PORT" -s "$WORK/queries.fasta" \
        > /dev/null 2>"$WORK/client_$id.err" || {
      echo "client $id FAILED on pass $passes:"; cat "$WORK/client_$id.err"
      return 1
    }
    passes=$((passes + 1))
  done
  echo "$passes" > "$WORK/passes_$id"
}

PIDS=()
for c in $(seq 1 "$CLIENTS"); do
  client_loop "$c" &
  PIDS+=($!)
done

FAILED=0
for p in "${PIDS[@]}"; do
  wait "$p" || FAILED=1
done
[ "$FAILED" -eq 0 ] || { echo "soak FAILED: client error"; exit 1; }

TOTAL_PASSES=$(cat "$WORK"/passes_* 2>/dev/null | awk '{s+=$1} END {print s+0}')
echo "all $CLIENTS clients done ($TOTAL_PASSES total passes)"

# Final stats through one more session: the dropped-session hard gate.
STATS=$("$BUILD/plkplace" --port "$PORT" -s "$WORK/queries.fasta" --stats \
        | grep '^# stats') || { echo "stats pass failed"; exit 1; }
echo "$STATS"
DROPPED=$(echo "$STATS" | awk '/sessions_dropped/ {print $NF}')
if [ "$DROPPED" != "0" ]; then
  echo "soak FAILED: $DROPPED dropped session(s)"
  exit 1
fi

# Graceful shutdown contract: SIGTERM -> drain -> exit code 3.
kill -TERM "$SRV_PID"
wait "$SRV_PID"
RC=$?
SRV_PID=""
tail -2 "$WORK/served.log"
if [ "$RC" -ne 3 ]; then
  echo "soak FAILED: expected exit code 3 after SIGTERM, got $RC"
  exit 1
fi
echo "soak passed: zero dropped sessions, graceful SIGTERM exit"
