#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*_ci.json records.

Compares each benchmark JSON produced by a CI run against the committed
baseline of the same name in ci/baselines/, on the KEY RATIOS that the
repository's performance work is about (ratios, not absolute seconds, so the
gate is largely host-speed independent):

  kernel   specialized/generic speedup (per-case geomean)
  balance  weighted/cyclic imbalance_seconds (lower is better)
           + the hard gate that every strategy agreed on the likelihood
  batch    batched/sequential replicate throughput
  search   batched/sequential candidates-per-sec, speculative/batched
           candidates-per-sec, lockstep/serial replicated-search throughput
           + the hard gates that the scorers produced identical moves and
           likelihoods
  shard    shards=2 over shards=1 throughput (on a small host this is the
           sub-core fan-out overhead rather than a NUMA speedup)
           + the hard gate that every shard count reproduced the shards=1
           likelihoods and derivatives bit for bit
  place    batched streaming placement over sequential single-query
           placement throughput
           + the hard gate that every batched placement (edge, lnL,
           pendant length) equals the sequential scoring bit for bit

A metric REGRESSES when it falls outside the tolerance band around its
baseline (worse by more than --tolerance, fractionally; a couple of noisy
metrics carry wider built-in bands — see EXTRA_TOLERANCE). Hard correctness
gates (identical moves, likelihood agreement) do not use bands: they fail
the job outright. Improvements beyond the band are reported as hints to
refresh the baseline. When a bench records `host_cores` and it differs
between the baseline and the current run, a warning is printed: throughput
ratios saturate differently across core counts, so a band miss on a new
runner class usually means "refresh the baseline", not "regression".

Baseline refresh workflow: see docs/ci.md. In short — download the
`bench-json` artifact of a healthy run on the runner class CI uses, copy the
files over ci/baselines/, and commit them together with the change that
moved the numbers.

Usage:
  tools/bench_check.py [--baseline-dir ci/baselines] [--tolerance 0.4]
                       BENCH_kernel_ci.json BENCH_search_ci.json ...

Exit status: 0 = all gates green, 1 = regression or hard-gate failure,
2 = usage/baseline problems.
"""

import argparse
import json
import math
import os
import sys

# Direction per metric: +1 = higher is better, -1 = lower is better.
HIGHER, LOWER = +1, -1

# Multiplier on --tolerance for metrics known to be noisy on shared runners
# (imbalance_seconds is a difference of thread timings: tiny absolute
# numbers at CI scale).
EXTRA_TOLERANCE = {
    "weighted_over_cyclic_imbalance": 1.5,
}


def geomean(xs):
    xs = [x for x in xs if x > 0]
    if not xs:
        return 0.0
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def metrics_for(doc):
    """Extract (metrics, hard_gates) from one bench JSON document.

    metrics: {name: (value, direction)}
    hard_gates: [(name, ok, detail)]
    """
    bench = doc.get("bench", "?")
    metrics, hard = {}, []

    if bench == "kernel":
        speedups = [c["speedup"] for c in doc.get("cases", [])]
        if speedups:
            metrics["kernel_speedup_geomean"] = (geomean(speedups), HIGHER)
        # Individually-gated cases: the reduction-bound two-pattern DNA paths
        # and the cache-blocked inner-inner newview are the PR-level targets
        # a geomean over a dozen cases could quietly absorb.
        by_case = {c.get("name"): c.get("speedup")
                   for c in doc.get("cases", [])}
        for case in ("newview_dna_inner_inner", "nr_dna",
                     "pmat_build_dna", "pmat_build_protein",
                     "evaluate_dna_freerates_pinv", "nr_dna_freerates_pinv"):
            if by_case.get(case):
                metrics[f"kernel_{case}_speedup"] = (by_case[case], HIGHER)
        # Absolute pmat-build cost per (branch, category) task. ns, not a
        # ratio — only comparable within one runner class (the host_cores
        # warning below covers cross-class moves).
        pm = doc.get("pmat_build") or {}
        if pm.get("dna_ns_per_task"):
            metrics["pmat_build_dna_ns_per_task"] = (
                pm["dna_ns_per_task"], LOWER)
        if pm.get("protein_ns_per_task"):
            metrics["pmat_build_protein_ns_per_task"] = (
                pm["protein_ns_per_task"], LOWER)

    elif bench == "balance":
        strategies = {s["strategy"]: s for s in doc.get("strategies", [])}
        cyc = strategies.get("cyclic")
        wgt = strategies.get("weighted")
        if cyc and wgt and cyc.get("imbalance_seconds", 0) > 0:
            metrics["weighted_over_cyclic_imbalance"] = (
                wgt["imbalance_seconds"] / cyc["imbalance_seconds"],
                LOWER,
            )
        agree = str(doc.get("lnl_agreement_1e12", "")).lower() == "true"
        hard.append(
            ("balance_lnl_agreement_1e12", agree,
             "all scheduling strategies must agree on lnL to 1e-12"))

    elif bench == "batch":
        if "speedup" in doc:
            metrics["batched_replicate_speedup"] = (doc["speedup"], HIGHER)
        diff = doc.get("max_abs_lnl_diff")
        hard.append(
            ("batch_lnl_equal", diff is not None and abs(diff) <= 1e-6,
             "missing max_abs_lnl_diff field" if diff is None else
             f"batched vs sequential replicate lnL diff {diff:g} (<= 1e-6)"))
        # Generalized rate path: the +R4+I replica of the workload must stay
        # within a band of the gamma cost (weighted-category kernels are the
        # hot loops) and must reproduce its sequential run exactly too.
        if "free_rates_over_gamma" in doc:
            metrics["free_rates_over_gamma"] = (
                doc["free_rates_over_gamma"], LOWER)
        if "freerates_speedup" in doc:
            metrics["freerates_replicate_speedup"] = (
                doc["freerates_speedup"], HIGHER)
        if "freerates_max_abs_lnl_diff" in doc:
            fr_diff = doc["freerates_max_abs_lnl_diff"]
            hard.append(
                ("batch_freerates_lnl_equal", abs(fr_diff) <= 1e-6,
                 f"+R4+I batched vs sequential replicate lnL diff "
                 f"{fr_diff:g} (<= 1e-6)"))

    elif bench == "search":
        runs = doc.get("runs", [])
        if runs:
            last = runs[-1]  # the highest thread count measured
            if "speedup" in last:
                metrics["batched_over_seq_candidates_per_sec"] = (
                    last["speedup"], HIGHER)
            if "spec_speedup_vs_batched" in last:
                metrics["spec_over_batched_candidates_per_sec"] = (
                    last["spec_speedup_vs_batched"], HIGHER)
            # A missing field on a hard gate is a FAILURE, not a pass: if
            # the bench's JSON schema drifts, the gate must scream rather
            # than silently wave regressions through.
            moves_ok = all(r.get("identical_moves") == 1 for r in runs)
            hard.append(
                ("search_identical_moves", moves_ok,
                 "batched/speculative scorers must accept the exact "
                 "sequential move sequence at every thread count "
                 "(missing field counts as failure)"))
            diffs = [r.get("max_abs_lnl_diff") for r in runs]
            diffs_ok = all(d is not None and abs(d) <= 1e-6 for d in diffs)
            detail = ("missing max_abs_lnl_diff field"
                      if any(d is None for d in diffs) else
                      f"scorer lnL diff {max(abs(d) for d in diffs):g} "
                      "(<= 1e-6)")
            hard.append(("search_lnl_equal", diffs_ok, detail))
        rep = doc.get("replicated")
        if rep:
            if "speedup" in rep:
                metrics["replicated_lockstep_speedup"] = (
                    rep["speedup"], HIGHER)
            hard.append(
                ("replicated_identical_trees",
                 rep.get("identical_trees") == 1,
                 "lockstep replicate searches must reproduce the serial "
                 "per-replicate trees (missing field counts as failure)"))

    elif bench == "shard":
        # Determinism is the hard gate: every shard count must reproduce
        # the shards=1 likelihoods AND derivatives bit for bit (a missing
        # field fails — schema drift must scream, not wave through).
        ident = str(doc.get("bit_identical", "")).lower() == "true"
        hard.append(
            ("shard_bit_identical", ident,
             "lnL/derivatives must be bit-identical across shard counts "
             "(missing field counts as failure)"))
        strong = {s.get("shards"): s for s in doc.get("strong", [])}
        s2 = strong.get(2)
        # The scaling ratio is only meaningful with real parallel hardware
        # under the teams; on a 1-core runner shards=2 measures pure
        # fan-out overhead, so gate the overhead ratio instead of demanding
        # a speedup that the host cannot physically deliver.
        if s2 and "speedup" in s2:
            metrics["shard2_over_shard1_throughput"] = (s2["speedup"], HIGHER)

    elif bench == "place":
        # The service contract: wave composition must not leak into
        # results. Every batched placement must equal the sequential
        # single-query scoring of the same query bit for bit (a missing
        # field fails — schema drift must scream, not wave through).
        ident = str(doc.get("bit_identical", "")).lower() == "true"
        hard.append(
            ("place_bit_identical", ident,
             "batched placements (edge, lnL, pendant) must be bit-identical "
             "to sequential scoring (missing field counts as failure)"))
        bat = doc.get("batched", {})
        if "speedup" in bat:
            metrics["batched_over_sequential_placements"] = (
                bat["speedup"], HIGHER)

    return metrics, hard


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="BENCH_*_ci.json files to check")
    ap.add_argument("--baseline-dir", default="ci/baselines")
    ap.add_argument("--tolerance", type=float, default=0.4,
                    help="fractional band around the baseline (default 0.4)")
    args = ap.parse_args()

    failures, notes = [], []
    for path in args.files:
        name = os.path.basename(path)
        try:
            with open(path) as f:
                current = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2

        cur_metrics, hard = metrics_for(current)
        for gate, ok, detail in hard:
            tag = "ok  " if ok else "FAIL"
            print(f"[{tag}] {name}: {gate} — {detail}")
            if not ok:
                failures.append(f"{name}: hard gate {gate}: {detail}")

        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(base_path):
            notes.append(f"{name}: no baseline at {base_path} "
                         "(add one — see docs/ci.md)")
            continue
        with open(base_path) as f:
            base_doc = json.load(f)
        base_metrics, _ = metrics_for(base_doc)

        # Ratios are largely host-independent, but not entirely: a baseline
        # recorded on a different core count saturates threads/shards/lanes
        # differently. Warn so a band miss on a new runner class is read as
        # "refresh the baseline", not as a code regression.
        cur_cores = current.get("host_cores")
        base_cores = base_doc.get("host_cores")
        if (cur_cores is not None and base_cores is not None
                and cur_cores != base_cores):
            notes.append(
                f"{name}: baseline was recorded on a {base_cores}-core host "
                f"but this run measured on {cur_cores} cores — throughput "
                "ratios may not be comparable; consider refreshing the "
                "baseline on this runner class (docs/ci.md)")

        for metric, (value, direction) in sorted(cur_metrics.items()):
            if metric not in base_metrics:
                notes.append(f"{name}: {metric} = {value:.3f} "
                             "(new metric, no baseline value)")
                continue
            base = base_metrics[metric][0]
            tol = args.tolerance * EXTRA_TOLERANCE.get(metric, 1.0)
            if direction == HIGHER:
                floor = base * (1.0 - tol)
                ok = value >= floor
                better = value > base * (1.0 + tol)
                band = f">= {floor:.3f}"
            else:
                ceil = base * (1.0 + tol)
                ok = value <= ceil
                better = value < base * (1.0 - tol)
                band = f"<= {ceil:.3f}"
            tag = "ok  " if ok else "FAIL"
            print(f"[{tag}] {name}: {metric} = {value:.3f} "
                  f"(baseline {base:.3f}, gate {band})")
            if not ok:
                failures.append(
                    f"{name}: {metric} regressed to {value:.3f} "
                    f"(baseline {base:.3f}, allowed {band})")
            elif better:
                notes.append(
                    f"{name}: {metric} = {value:.3f} is well beyond the "
                    f"baseline {base:.3f} — consider refreshing ci/baselines "
                    "(docs/ci.md)")

    for note in notes:
        print(f"[note] {note}")
    if failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf-regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
