// plkit — a Phylogenetic Likelihood Kernel with partition-aware load
// balancing. Umbrella header: include this to get the whole public API.
//
// Reproduction of Stamatakis & Ott, "Load Balance in the Phylogenetic
// Likelihood Kernel", ICPP 2009. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
#pragma once

#include "bio/alignment.hpp"
#include "bio/alphabet.hpp"
#include "bio/msa_io.hpp"
#include "bio/partition.hpp"
#include "bio/patterns.hpp"
#include "core/analysis.hpp"
#include "core/bootstrap.hpp"
#include "core/checkpoint.hpp"
#include "core/branch_lengths.hpp"
#include "core/branch_opt.hpp"
#include "core/engine.hpp"
#include "core/engine_core.hpp"
#include "core/model_opt.hpp"
#include "core/partition_model.hpp"
#include "core/strategy.hpp"
#include "model/gamma.hpp"
#include "model/subst_model.hpp"
#include "optimize/brent.hpp"
#include "optimize/newton.hpp"
#include "parallel/schedule.hpp"
#include "parallel/thread_team.hpp"
#include "parsimony/fitch.hpp"
#include "search/nni.hpp"
#include "search/search.hpp"
#include "search/spr.hpp"
#include "sim/datasets.hpp"
#include "sim/seqgen.hpp"
#include "tree/newick.hpp"
#include "tree/rf_distance.hpp"
#include "tree/traversal.hpp"
#include "tree/tree.hpp"
#include "tree/tree_gen.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
