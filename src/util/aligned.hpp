// Aligned memory utilities for the likelihood kernels.
//
// Conditional likelihood vectors (CLVs) are large arrays of doubles that are
// streamed through tight SIMD-friendly loops; we allocate them on cache-line
// (and AVX-512-friendly) 64-byte boundaries and pad per-thread accumulators to
// a cache line to avoid false sharing between worker threads.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace plk {

/// Cache line size used for padding shared, per-thread mutable state.
inline constexpr std::size_t kCacheLine = 64;

/// Alignment used for numeric arrays (covers SSE/AVX/AVX-512 loads).
inline constexpr std::size_t kVectorAlign = 64;

/// Minimal standard-conforming allocator that hands out memory aligned to
/// `Align` bytes. Used for CLV and scratch buffers.
template <class T, std::size_t Align = kVectorAlign>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment must be at least alignof(T)");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    void* p = std::aligned_alloc(Align, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }

 private:
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + Align - 1) / Align * Align;
  }
};

/// Vector of doubles aligned for vectorized kernel loops.
using AlignedDoubleVec = std::vector<double, AlignedAllocator<double>>;

/// A double padded out to a full cache line. Arrays of `PaddedDouble` are used
/// for per-thread partial reductions so writes from different threads never
/// share a line.
struct alignas(kCacheLine) PaddedDouble {
  double value = 0.0;
  char pad[kCacheLine - sizeof(double)] = {};
};

}  // namespace plk
