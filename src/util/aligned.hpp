// Aligned memory utilities for the likelihood kernels.
//
// Conditional likelihood vectors (CLVs) are large arrays of doubles that are
// streamed through tight SIMD-friendly loops; we allocate them on cache-line
// (and AVX-512-friendly) 64-byte boundaries and pad per-thread accumulators to
// a cache line to avoid false sharing between worker threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace plk {

/// Cache line size used for padding shared, per-thread mutable state.
inline constexpr std::size_t kCacheLine = 64;

/// Alignment used for numeric arrays (covers SSE/AVX/AVX-512 loads).
inline constexpr std::size_t kVectorAlign = 64;

/// Minimal standard-conforming allocator that hands out memory aligned to
/// `Align` bytes. Used for CLV and scratch buffers.
template <class T, std::size_t Align = kVectorAlign>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment must be at least alignof(T)");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    void* p = std::aligned_alloc(Align, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }

 private:
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + Align - 1) / Align * Align;
  }
};

/// Vector of doubles aligned for vectorized kernel loops.
using AlignedDoubleVec = std::vector<double, AlignedAllocator<double>>;

/// Aligned allocator whose default-construct is a no-op for trivial types.
/// `resize()` on a vector using it allocates pages without touching them, so
/// the first write decides NUMA placement (first-touch). Buffers using this
/// must be fully written before they are read.
template <class T, std::size_t Align = kVectorAlign>
class NoInitAllocator : public AlignedAllocator<T, Align> {
 public:
  static_assert(std::is_trivially_default_constructible_v<T>,
                "no-init allocation only makes sense for trivial types");
  NoInitAllocator() noexcept = default;
  template <class U>
  NoInitAllocator(const NoInitAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = NoInitAllocator<U, Align>;
  };

  // Value-initialization requests (resize, assign) become no-ops; explicit
  // construct-with-args (push_back with a value) still works.
  template <class U>
  void construct(U*) noexcept {}
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }

  friend bool operator==(const NoInitAllocator&, const NoInitAllocator&) {
    return true;
  }
};

/// Aligned vector of doubles whose resize does NOT zero-fill: pages stay
/// untouched until a kernel thread writes them (NUMA first-touch).
using AlignedNoInitDoubleVec = std::vector<double, NoInitAllocator<double>>;

/// Scale-count vector variant with the same first-touch property.
using NoInitInt32Vec = std::vector<std::int32_t, NoInitAllocator<std::int32_t>>;

/// A double padded out to a full cache line. Arrays of `PaddedDouble` are used
/// for per-thread partial reductions so writes from different threads never
/// share a line.
struct alignas(kCacheLine) PaddedDouble {
  double value = 0.0;
  char pad[kCacheLine - sizeof(double)] = {};
};

}  // namespace plk
