// Deterministic random number generation.
//
// All stochastic components of plkit (sequence simulation, random trees,
// random starting points for optimizers in tests) draw from an explicitly
// seeded xoshiro256** generator so that every experiment in the paper
// reproduction is bit-reproducible given its seed. splitmix64 is used to
// expand a single 64-bit user seed into the 256-bit xoshiro state, following
// the generator authors' recommendation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace plk {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the essentials of UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  /// Re-initialize the full 256-bit state from a single 64-bit seed.
  void reseed(std::uint64_t seed) {
    for (auto& w : s_) w = splitmix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation (rejection-free for
    // practical purposes at 64 bits of input entropy).
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Standard normal variate (Marsaglia polar method).
  double normal();

  /// Gamma(shape, scale=1) variate (Marsaglia & Tsang).
  double gamma(double shape);

  /// Sample an index in [0, probs.size()) with the given (not necessarily
  /// normalized) non-negative weights.
  std::size_t discrete(std::span<const double> probs);

  /// Shuffle a vector in place (Fisher–Yates).
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace plk
