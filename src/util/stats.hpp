// Small descriptive-statistics helpers used by benches and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

namespace plk {

/// Arithmetic mean; throws on an empty input.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean of empty range");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
inline double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/// Median (copies and sorts); throws on an empty input.
inline double median(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("median of empty range");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Minimum of a non-empty range.
inline double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

/// Maximum of a non-empty range.
inline double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace plk
