// Portable SIMD layer for the likelihood kernels.
//
// One backend is selected at compile time from the target's instruction set:
// AVX2 (4 doubles/vector, FMA when available), SSE2 and NEON (2 doubles),
// or plain scalar (1 double) as the universal fallback. The kernels in
// src/core/kernels/ are written once against this 4/2/1-lane-agnostic API
// and vectorize over the state dimension; both supported state counts
// (S=4 DNA, S=20 protein) are multiples of those backends' lane counts, so
// no remainder loops or padding are needed there.
//
// An AVX-512 backend (8 doubles/vector) also exists but is NEVER selected
// from the ambient ISA macros, even when the compiler targets it (e.g. under
// -march=native on an AVX-512 host): at 8 lanes neither state count is a
// lane multiple, so the width-agnostic kernels do not apply and AVX-512 uses
// dedicated kernels (core/kernels/avx512.hpp) with a 2-patterns-per-vector
// layout for S=4 and 20-padded-to-24 masked blocks for S=20. It is reached
// only through its force macro, from the runtime-dispatch backend TU
// (core/kernels/backend_avx512.cpp).
//
// Force macros (compile-time backend pinning, highest priority first):
//   PLK_SIMD_FORCE_SCALAR   scalar regardless of ISA (golden cross-checks)
//   PLK_SIMD_FORCE_AVX512   AVX-512 (requires -mavx512f -mavx512dq)
//   PLK_SIMD_FORCE_AVX2     AVX2    (requires -mavx2, FMA used if enabled)
//   PLK_SIMD_FORCE_SSE2     SSE2    (x86-64 baseline)
// The runtime dispatcher (core/kernels/dispatch.hpp) compiles one TU per
// backend with these macros and selects a kernel table at startup from CPUID
// and the PLK_FORCE_SIMD environment override.
//
// Everything backend-dependent lives inside an *inline namespace* named
// after the backend (PLK_SIMD_NS). SIMD-dependent kernel headers wrap their
// contents in PLK_SIMD_NS_BEGIN/END so that template instantiations made
// under different force macros get distinct mangled names — multiple backend
// TUs can then coexist in one binary without ODR collisions, while ordinary
// `plk::simd::` / `plk::kernel::` qualified names keep resolving through the
// inline namespace.
//
// All loads/stores use the unaligned forms: the engine allocates CLVs and
// tip tables 64-byte aligned (util/aligned.hpp) so they decode to aligned
// accesses anyway, but test rigs with plain std::vector buffers must not
// fault.
#pragma once

#include <cstddef>

#if defined(PLK_SIMD_FORCE_SCALAR)
// scalar: no ISA headers needed
#elif defined(PLK_SIMD_FORCE_AVX512)
#define PLK_SIMD_AVX512 1
#include <immintrin.h>
#elif defined(PLK_SIMD_FORCE_AVX2)
#define PLK_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(PLK_SIMD_FORCE_SSE2)
#define PLK_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__AVX2__)
#define PLK_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define PLK_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define PLK_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if defined(PLK_SIMD_AVX512)
#define PLK_SIMD_NS v_avx512
#elif defined(PLK_SIMD_AVX2)
#define PLK_SIMD_NS v_avx2
#elif defined(PLK_SIMD_SSE2)
#define PLK_SIMD_NS v_sse2
#elif defined(PLK_SIMD_NEON)
#define PLK_SIMD_NS v_neon
#else
#define PLK_SIMD_NS v_scalar
#endif

#define PLK_SIMD_NS_BEGIN inline namespace PLK_SIMD_NS {
#define PLK_SIMD_NS_END }

namespace plk {
namespace simd {
PLK_SIMD_NS_BEGIN

#if defined(PLK_SIMD_AVX512)

inline constexpr int kLanes = 8;
inline constexpr const char* kBackend = "avx512";

struct Vec {
  __m512d v;
};

inline Vec load(const double* p) { return {_mm512_loadu_pd(p)}; }
inline void store(double* p, Vec a) { _mm512_storeu_pd(p, a.v); }
inline Vec set1(double x) { return {_mm512_set1_pd(x)}; }
inline Vec zero() { return {_mm512_setzero_pd()}; }
inline Vec add(Vec a, Vec b) { return {_mm512_add_pd(a.v, b.v)}; }
inline Vec sub(Vec a, Vec b) { return {_mm512_sub_pd(a.v, b.v)}; }
inline Vec mul(Vec a, Vec b) { return {_mm512_mul_pd(a.v, b.v)}; }
inline Vec max(Vec a, Vec b) { return {_mm512_max_pd(a.v, b.v)}; }

/// a * b + c. VFMADD...PD on zmm registers is part of AVX512F itself.
inline Vec fma(Vec a, Vec b, Vec c) {
  return {_mm512_fmadd_pd(a.v, b.v, c.v)};
}

inline double reduce_add(Vec a) { return _mm512_reduce_add_pd(a.v); }
inline double reduce_max(Vec a) { return _mm512_reduce_max_pd(a.v); }

/// Masked forms for the S=20 pad-to-24 layout: the protein state vector is
/// two full 8-lane blocks plus a 4-lane tail accessed through lane mask
/// 0b1111. maskz_load zero-fills the upper lanes (additive identities), so
/// tail blocks flow through the same add/mul/fma pipeline as full blocks
/// without ever touching memory past the 20th state.
inline Vec maskz_load(unsigned char m, const double* p) {
  return {_mm512_maskz_loadu_pd(static_cast<__mmask8>(m), p)};
}
inline void mask_store(double* p, unsigned char m, Vec a) {
  _mm512_mask_storeu_pd(p, static_cast<__mmask8>(m), a.v);
}

#elif defined(PLK_SIMD_AVX2)

inline constexpr int kLanes = 4;
inline constexpr const char* kBackend = "avx2";

struct Vec {
  __m256d v;
};

inline Vec load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void store(double* p, Vec a) { _mm256_storeu_pd(p, a.v); }
inline Vec set1(double x) { return {_mm256_set1_pd(x)}; }
inline Vec zero() { return {_mm256_setzero_pd()}; }
inline Vec add(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
inline Vec sub(Vec a, Vec b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline Vec mul(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline Vec max(Vec a, Vec b) { return {_mm256_max_pd(a.v, b.v)}; }

/// a * b + c.
inline Vec fma(Vec a, Vec b, Vec c) {
#if defined(__FMA__)
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
  return {_mm256_add_pd(_mm256_mul_pd(a.v, b.v), c.v)};
#endif
}

inline double reduce_add(Vec a) {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

inline double reduce_max(Vec a) {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d m = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)));
}

#elif defined(PLK_SIMD_SSE2)

inline constexpr int kLanes = 2;
inline constexpr const char* kBackend = "sse2";

struct Vec {
  __m128d v;
};

inline Vec load(const double* p) { return {_mm_loadu_pd(p)}; }
inline void store(double* p, Vec a) { _mm_storeu_pd(p, a.v); }
inline Vec set1(double x) { return {_mm_set1_pd(x)}; }
inline Vec zero() { return {_mm_setzero_pd()}; }
inline Vec add(Vec a, Vec b) { return {_mm_add_pd(a.v, b.v)}; }
inline Vec sub(Vec a, Vec b) { return {_mm_sub_pd(a.v, b.v)}; }
inline Vec mul(Vec a, Vec b) { return {_mm_mul_pd(a.v, b.v)}; }
inline Vec max(Vec a, Vec b) { return {_mm_max_pd(a.v, b.v)}; }

inline Vec fma(Vec a, Vec b, Vec c) {
  return {_mm_add_pd(_mm_mul_pd(a.v, b.v), c.v)};
}

inline double reduce_add(Vec a) {
  return _mm_cvtsd_f64(_mm_add_sd(a.v, _mm_unpackhi_pd(a.v, a.v)));
}

inline double reduce_max(Vec a) {
  return _mm_cvtsd_f64(_mm_max_sd(a.v, _mm_unpackhi_pd(a.v, a.v)));
}

#elif defined(PLK_SIMD_NEON)

inline constexpr int kLanes = 2;
inline constexpr const char* kBackend = "neon";

struct Vec {
  float64x2_t v;
};

inline Vec load(const double* p) { return {vld1q_f64(p)}; }
inline void store(double* p, Vec a) { vst1q_f64(p, a.v); }
inline Vec set1(double x) { return {vdupq_n_f64(x)}; }
inline Vec zero() { return {vdupq_n_f64(0.0)}; }
inline Vec add(Vec a, Vec b) { return {vaddq_f64(a.v, b.v)}; }
inline Vec sub(Vec a, Vec b) { return {vsubq_f64(a.v, b.v)}; }
inline Vec mul(Vec a, Vec b) { return {vmulq_f64(a.v, b.v)}; }
inline Vec max(Vec a, Vec b) { return {vmaxq_f64(a.v, b.v)}; }

inline Vec fma(Vec a, Vec b, Vec c) { return {vfmaq_f64(c.v, a.v, b.v)}; }

inline double reduce_add(Vec a) { return vaddvq_f64(a.v); }
inline double reduce_max(Vec a) { return vmaxvq_f64(a.v); }

#else  // scalar fallback

inline constexpr int kLanes = 1;
inline constexpr const char* kBackend = "scalar";

struct Vec {
  double v;
};

inline Vec load(const double* p) { return {*p}; }
inline void store(double* p, Vec a) { *p = a.v; }
inline Vec set1(double x) { return {x}; }
inline Vec zero() { return {0.0}; }
inline Vec add(Vec a, Vec b) { return {a.v + b.v}; }
inline Vec sub(Vec a, Vec b) { return {a.v - b.v}; }
inline Vec mul(Vec a, Vec b) { return {a.v * b.v}; }
inline Vec max(Vec a, Vec b) { return {a.v > b.v ? a.v : b.v}; }
inline Vec fma(Vec a, Vec b, Vec c) { return {a.v * b.v + c.v}; }
inline double reduce_add(Vec a) { return a.v; }
inline double reduce_max(Vec a) { return a.v; }

#endif

PLK_SIMD_NS_END
}  // namespace simd
}  // namespace plk
