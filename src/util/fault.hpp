// Deterministic fault injection for the robustness test suite.
//
// The fault-tolerance machinery (numerical containment in EngineCore::wait,
// the search's degradation ladder, checkpoint ring recovery, the ThreadTeam
// watchdog) only earns trust when every recovery path can be driven on
// demand, repeatably. This header provides seed-driven, site-keyed injection
// points: a test arms a SITE (one well-known failure location compiled into
// the library) to fire on the Nth arrival, runs the workload, and the
// library throws / corrupts / stalls exactly there — bit-reproducibly,
// because arrivals are counted on the deterministic command stream, not on
// wall time.
//
// Zero overhead when disarmed: every injection point is guarded by a single
// relaxed atomic-bool load (`enabled()`), which is false for the whole
// process unless a test armed a site. Sites themselves live on cold paths
// (command assembly, flush boundaries, slot allocation, checkpoint I/O,
// worker dispatch) — never inside pattern loops.
//
// Adding a site: extend Site, place
//   `if (fault::enabled() && fault::should_fire(fault::Site::kMySite)) ...`
// at the failure location, and document the site's arrival unit here and in
// docs/robustness.md. Arrival units must be deterministic functions of the
// workload (requests, allocations, writes — not threads or clocks).
#pragma once

#include <atomic>
#include <cstdint>

namespace plk::fault {

/// Injection sites. The comment gives the ARRIVAL unit each site counts.
enum class Site : int {
  /// One arrival per overlay-context kEvaluate request at a flush boundary;
  /// firing poisons the request's reduced lnL row with a quiet NaN (as if a
  /// non-finite CLV had propagated into the reduction).
  kWaveEvalNan = 0,
  /// One arrival per overlay-context kNrDerivatives request at a flush
  /// boundary; firing poisons the reduced first-derivative row.
  kWaveNrNan,
  /// One arrival per ClvSlotPool::acquire; firing throws std::bad_alloc
  /// (an overlay failed to lease a CLV slot mid-assembly).
  kClvAlloc,
  /// One arrival per checkpoint file write; firing aborts the write after
  /// the temp file was created but before the atomic rename (simulating a
  /// full disk / I/O error, leaving a stale .tmp behind).
  kCheckpointIo,
  /// One arrival per worker-thread command dispatch; firing stalls that
  /// worker for stall_seconds() before it runs the command (watchdog food).
  kWorkerStall,
  /// One arrival per queue_edge_tables call during command assembly; firing
  /// throws std::bad_alloc mid-assembly (regression driver for the
  /// reserved-tip-table rollback).
  kAssemblyThrow,
  kSiteCount_,
};

inline constexpr int kSiteCount = static_cast<int>(Site::kSiteCount_);

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Fast-path guard every injection point checks first. Relaxed load of one
/// process-global bool: effectively free, and exact ordering does not matter
/// (tests arm/disarm on the master thread between workloads).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arm `site` to fire on its `fire_at`-th arrival (1-based). `repeat` makes
/// it fire on every arrival from then on (persistent fault) instead of once
/// (transient fault, the default — the recovery paths must survive both).
/// Arming any site sets enabled(); sites not armed never fire.
void arm_site(Site site, std::uint64_t fire_at, bool repeat = false);

/// Disarm everything and reset all counters. Safe to call when not armed.
void disarm();

/// Count one arrival at `site`; returns true when the armed shot fires.
/// Only call behind an enabled() check. Thread-safe (kWorkerStall arrives
/// on worker threads); all other sites arrive on the master.
bool should_fire(Site site);

/// Arrivals observed at `site` since the last arm/disarm.
std::uint64_t arrivals(Site site);
/// Times `site` actually fired since the last arm/disarm.
std::uint64_t fired(Site site);

/// Stall duration for kWorkerStall (default 0.2 s).
void set_stall_seconds(double s);
double stall_seconds();

/// Deterministic seed -> shot-number map for chaos sweeps: a sweep arms
/// each site at fire_at_for_seed(site, seed, max_n) so different seeds hit
/// different commands of the same workload. Returns a value in [1, max_n].
std::uint64_t fire_at_for_seed(Site site, std::uint64_t seed,
                               std::uint64_t max_n);

/// RAII arming for tests: arms in the constructor, disarms (everything) in
/// the destructor, so an ASSERT mid-test cannot leak an armed fault into
/// the next one.
class ScopedFault {
 public:
  ScopedFault(Site site, std::uint64_t fire_at, bool repeat = false) {
    arm_site(site, fire_at, repeat);
  }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

/// Enable floating-point exception trapping (FE_INVALID | FE_DIVBYZERO ->
/// SIGFPE) when the PLK_FE_TRAP environment variable is set to a non-empty,
/// non-"0" value. Called once from the EngineCore constructor; a no-op on
/// platforms without feenableexcept. Turns latent NaN/Inf *sources* into
/// hard failures in CI, where the containment layer would otherwise mask
/// them at the next flush boundary.
void maybe_enable_fp_traps_from_env();

}  // namespace plk::fault
