#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace plk {

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential rate must be > 0");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal() {
  // Marsaglia polar method; discards the second variate for simplicity.
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::gamma(double shape) {
  if (shape <= 0.0) throw std::invalid_argument("gamma shape must be > 0");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia & Tsang boosting trick).
    double u = uniform();
    while (u == 0.0) u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::size_t Rng::discrete(std::span<const double> probs) {
  double total = 0.0;
  for (double p : probs) total += p;
  if (total <= 0.0) throw std::invalid_argument("discrete: weights sum to 0");
  double target = uniform() * total;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    target -= probs[i];
    if (target < 0.0) return i;
  }
  return probs.size() - 1;  // numerical edge: target == total
}

}  // namespace plk
