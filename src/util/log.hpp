// Minimal leveled logger.
//
// plkit is a library first; it never writes to stdout unless the host program
// raises the verbosity. Benches and examples set Level::Info or Level::Debug.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace plk {

enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/// Global logging configuration (process-wide, thread-safe).
class Log {
 public:
  static LogLevel level() { return instance().level_; }
  static void set_level(LogLevel lvl) { instance().level_ = lvl; }

  /// Emit a message if `lvl` is at or below the configured verbosity.
  static void write(LogLevel lvl, const std::string& msg) {
    Log& log = instance();
    if (lvl > log.level_) return;
    std::lock_guard<std::mutex> lock(log.mu_);
    std::ostream& os = (lvl == LogLevel::Warn) ? std::cerr : std::cout;
    os << prefix(lvl) << msg << '\n';
  }

 private:
  static Log& instance() {
    static Log log;
    return log;
  }
  static const char* prefix(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::Warn: return "[plk warn] ";
      case LogLevel::Info: return "[plk] ";
      case LogLevel::Debug: return "[plk dbg] ";
      default: return "";
    }
  }
  LogLevel level_ = LogLevel::Warn;
  std::mutex mu_;
};

inline void log_warn(const std::string& m) { Log::write(LogLevel::Warn, m); }
inline void log_info(const std::string& m) { Log::write(LogLevel::Info, m); }
inline void log_debug(const std::string& m) { Log::write(LogLevel::Debug, m); }

}  // namespace plk
