#include "util/fault.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__GLIBC__)
#include <cfenv>
#endif

#include "util/rng.hpp"

namespace plk::fault {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

struct SiteState {
  std::atomic<std::uint64_t> fire_at{0};  // 0 = not armed
  std::atomic<bool> repeat{false};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> fired{0};
};

SiteState g_sites[kSiteCount];
std::atomic<double> g_stall_seconds{0.2};

SiteState& state(Site s) { return g_sites[static_cast<int>(s)]; }

}  // namespace

void arm_site(Site site, std::uint64_t fire_at, bool repeat) {
  SiteState& st = state(site);
  st.fire_at.store(fire_at, std::memory_order_relaxed);
  st.repeat.store(repeat, std::memory_order_relaxed);
  st.count.store(0, std::memory_order_relaxed);
  st.fired.store(0, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_seq_cst);
}

void disarm() {
  detail::g_enabled.store(false, std::memory_order_seq_cst);
  for (SiteState& st : g_sites) {
    st.fire_at.store(0, std::memory_order_relaxed);
    st.repeat.store(false, std::memory_order_relaxed);
    st.count.store(0, std::memory_order_relaxed);
    st.fired.store(0, std::memory_order_relaxed);
  }
}

bool should_fire(Site site) {
  SiteState& st = state(site);
  const std::uint64_t at = st.fire_at.load(std::memory_order_relaxed);
  if (at == 0) return false;
  const std::uint64_t n = st.count.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool fire =
      n == at || (n > at && st.repeat.load(std::memory_order_relaxed));
  if (fire) st.fired.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

std::uint64_t arrivals(Site site) {
  return state(site).count.load(std::memory_order_relaxed);
}

std::uint64_t fired(Site site) {
  return state(site).fired.load(std::memory_order_relaxed);
}

void set_stall_seconds(double s) {
  g_stall_seconds.store(s, std::memory_order_relaxed);
}

double stall_seconds() {
  return g_stall_seconds.load(std::memory_order_relaxed);
}

std::uint64_t fire_at_for_seed(Site site, std::uint64_t seed,
                               std::uint64_t max_n) {
  if (max_n == 0) max_n = 1;
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ull *
                            (static_cast<std::uint64_t>(site) + 1));
  return 1 + splitmix64(x) % max_n;
}

void maybe_enable_fp_traps_from_env() {
  const char* v = std::getenv("PLK_FE_TRAP");
  if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0) return;
#if defined(__GLIBC__)
  feenableexcept(FE_INVALID | FE_DIVBYZERO);
#endif
}

}  // namespace plk::fault
