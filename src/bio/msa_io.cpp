#include "bio/msa_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace plk {

namespace {

bool is_blank(std::string_view s) {
  for (char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  return true;
}

std::string strip_cr(std::string s) {
  if (!s.empty() && s.back() == '\r') s.pop_back();
  return s;
}

}  // namespace

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw std::runtime_error("short write to '" + path + "'");
}

Alignment read_fasta(std::string_view text) {
  Alignment aln;
  std::istringstream in{std::string(text)};
  std::string line, name, data;
  bool have_record = false;
  auto flush = [&] {
    if (!have_record) return;
    if (data.empty())
      throw std::runtime_error("FASTA record '" + name + "' has no sequence");
    aln.add(name, data);
    data.clear();
  };
  while (std::getline(in, line)) {
    line = strip_cr(std::move(line));
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      // Name = first whitespace-delimited token after '>'.
      std::istringstream hs(line.substr(1));
      hs >> name;
      if (name.empty()) throw std::runtime_error("FASTA header without name");
      have_record = true;
    } else {
      if (!have_record)
        throw std::runtime_error("FASTA sequence data before first header");
      for (char c : line)
        if (!std::isspace(static_cast<unsigned char>(c))) data.push_back(c);
    }
  }
  flush();
  if (aln.taxon_count() == 0) throw std::runtime_error("empty FASTA input");
  return aln;
}

Alignment read_fasta_file(const std::string& path) {
  return read_fasta(read_file(path));
}

std::string write_fasta(const Alignment& aln, std::size_t wrap) {
  std::ostringstream out;
  for (std::size_t t = 0; t < aln.taxon_count(); ++t) {
    out << '>' << aln.name(t) << '\n';
    std::string_view row = aln.row(t);
    if (wrap == 0) {
      out << row << '\n';
    } else {
      for (std::size_t i = 0; i < row.size(); i += wrap)
        out << row.substr(i, wrap) << '\n';
    }
  }
  return out.str();
}

Alignment read_phylip(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::size_t n_taxa = 0, n_sites = 0;
  if (!(in >> n_taxa >> n_sites))
    throw std::runtime_error("PHYLIP header missing taxon/site counts");
  std::string rest;
  std::getline(in, rest);  // consume remainder of header line

  std::vector<Sequence> rows;
  rows.reserve(n_taxa);

  // First block: names + data. Subsequent (interleaved) blocks: data only.
  std::string line;
  std::size_t row = 0;
  bool first_block = true;
  while (std::getline(in, line)) {
    line = strip_cr(std::move(line));
    if (is_blank(line)) {
      if (!rows.empty() && row != 0 && row != n_taxa)
        throw std::runtime_error("PHYLIP block with wrong number of rows");
      if (!rows.empty() && row == n_taxa) {
        first_block = false;
        row = 0;
      }
      continue;
    }
    std::istringstream ls(line);
    std::string first_tok;
    ls >> first_tok;
    std::string chunk;
    if (first_block) {
      Sequence s;
      s.name = first_tok;
      std::string tok;
      while (ls >> tok) s.data += tok;
      rows.push_back(std::move(s));
    } else {
      if (row >= n_taxa)
        throw std::runtime_error("PHYLIP interleaved block too long");
      rows[row].data += first_tok;
      std::string tok;
      while (ls >> tok) rows[row].data += tok;
    }
    ++row;
    if (first_block && rows.size() == n_taxa) {
      first_block = false;
      row = 0;
    }
  }

  if (rows.size() != n_taxa)
    throw std::runtime_error("PHYLIP: expected " + std::to_string(n_taxa) +
                             " taxa, found " + std::to_string(rows.size()));
  for (const auto& s : rows)
    if (s.data.size() != n_sites)
      throw std::runtime_error("PHYLIP: taxon '" + s.name + "' has " +
                               std::to_string(s.data.size()) + " sites, " +
                               "header says " + std::to_string(n_sites));
  return Alignment(std::move(rows));
}

Alignment read_phylip_file(const std::string& path) {
  return read_phylip(read_file(path));
}

std::string write_phylip(const Alignment& aln) {
  std::ostringstream out;
  out << aln.taxon_count() << ' ' << aln.site_count() << '\n';
  for (std::size_t t = 0; t < aln.taxon_count(); ++t)
    out << aln.name(t) << ' ' << aln.row(t) << '\n';
  return out.str();
}

}  // namespace plk
