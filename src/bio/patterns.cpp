#include "bio/patterns.hpp"

#include <cstring>
#include <stdexcept>
#include <unordered_map>

namespace plk {

std::size_t CompressedAlignment::total_patterns() const {
  std::size_t n = 0;
  for (const auto& p : partitions) n += p.pattern_count;
  return n;
}

std::size_t CompressedAlignment::total_sites() const {
  std::size_t n = 0;
  for (const auto& p : partitions) n += p.site_count;
  return n;
}

CompressedAlignment CompressedAlignment::build(const Alignment& aln,
                                               const PartitionScheme& scheme,
                                               bool compress) {
  scheme.validate(aln.site_count());
  const std::size_t n_taxa = aln.taxon_count();
  if (n_taxa < 2) throw std::invalid_argument("alignment needs >= 2 taxa");

  CompressedAlignment out;
  out.taxon_names.reserve(n_taxa);
  for (std::size_t t = 0; t < n_taxa; ++t)
    out.taxon_names.push_back(aln.name(t));

  for (const auto& def : scheme) {
    CompressedPartition part;
    part.name = def.name;
    part.type = def.type;
    part.model_name = def.model_name;
    part.global_sites = def.sites();
    part.site_count = part.global_sites.size();
    if (part.site_count == 0)
      throw std::invalid_argument("partition '" + def.name + "' is empty");
    const Alphabet& alpha = part.alphabet();

    part.tip_states.assign(n_taxa, {});
    part.site_to_pattern.resize(part.site_count);

    // Column -> pattern index. The key is the raw (uppercased via encoding)
    // mask column; identical masks <=> identical tip CLVs <=> mergeable.
    std::unordered_map<std::string, std::size_t> seen;
    std::vector<StateMask> column(n_taxa);
    std::string key(n_taxa * sizeof(StateMask), '\0');

    for (std::size_t j = 0; j < part.site_count; ++j) {
      const std::size_t site = part.global_sites[j];
      for (std::size_t t = 0; t < n_taxa; ++t)
        column[t] = alpha.encode(aln.at(t, site));

      std::size_t pat;
      if (compress) {
        std::memcpy(key.data(), column.data(), key.size());
        auto [it, inserted] = seen.emplace(key, part.pattern_count);
        pat = it->second;
        if (!inserted) {
          part.weights[pat] += 1.0;
          part.site_to_pattern[j] = pat;
          continue;
        }
      } else {
        pat = part.pattern_count;
      }
      ++part.pattern_count;
      part.weights.push_back(1.0);
      for (std::size_t t = 0; t < n_taxa; ++t)
        part.tip_states[t].push_back(column[t]);
      part.site_to_pattern[j] = pat;
    }
    out.partitions.push_back(std::move(part));
  }
  return out;
}

}  // namespace plk
