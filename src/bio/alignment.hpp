// Multiple sequence alignments.
//
// An `Alignment` is the raw, character-based input of a phylogenomic
// analysis: n taxa (rows) by m sites (columns). Pattern compression into the
// kernel-ready representation happens later (see bio/patterns.hpp), because
// compression is per-partition.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace plk {

/// One named sequence (alignment row).
struct Sequence {
  std::string name;
  std::string data;
};

/// An n-by-m character matrix with named rows. All rows have equal length.
class Alignment {
 public:
  Alignment() = default;

  /// Build from a list of sequences; throws if lengths differ or names clash.
  explicit Alignment(std::vector<Sequence> seqs);

  /// Append a row; throws if its length differs from existing rows or the
  /// name duplicates an existing taxon.
  void add(std::string name, std::string data);

  std::size_t taxon_count() const { return rows_.size(); }
  std::size_t site_count() const {
    return rows_.empty() ? 0 : rows_.front().data.size();
  }

  const std::string& name(std::size_t taxon) const { return rows_[taxon].name; }
  std::string_view row(std::size_t taxon) const { return rows_[taxon].data; }
  char at(std::size_t taxon, std::size_t site) const {
    return rows_[taxon].data[site];
  }

  /// Index of the taxon with the given name, or npos if absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_taxon(std::string_view name) const;

  const std::vector<Sequence>& sequences() const { return rows_; }

 private:
  void check_add(const std::string& name, const std::string& data) const;
  std::vector<Sequence> rows_;
};

}  // namespace plk
