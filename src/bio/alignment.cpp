#include "bio/alignment.hpp"

#include <stdexcept>

namespace plk {

Alignment::Alignment(std::vector<Sequence> seqs) {
  for (auto& s : seqs) add(std::move(s.name), std::move(s.data));
}

void Alignment::check_add(const std::string& name,
                          const std::string& data) const {
  if (name.empty()) throw std::invalid_argument("empty taxon name");
  if (!rows_.empty() && data.size() != rows_.front().data.size())
    throw std::invalid_argument("alignment row '" + name +
                                "' has inconsistent length");
  if (find_taxon(name) != npos)
    throw std::invalid_argument("duplicate taxon name '" + name + "'");
}

void Alignment::add(std::string name, std::string data) {
  check_add(name, data);
  rows_.push_back(Sequence{std::move(name), std::move(data)});
}

std::size_t Alignment::find_taxon(std::string_view name) const {
  for (std::size_t i = 0; i < rows_.size(); ++i)
    if (rows_[i].name == name) return i;
  return npos;
}

}  // namespace plk
