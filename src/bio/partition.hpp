// Partition schemes for multi-gene (phylogenomic) alignments.
//
// A partition scheme splits the alignment columns into disjoint genes; each
// gene gets its own substitution model, alpha shape parameter and —
// optionally — its own branch lengths (the per-partition estimate whose
// parallelization the paper studies). The text format parsed here is the
// RAxML one:
//
//   DNA, gene0 = 1-1000
//   DNA, gene1 = 1001-1500, 2001-2500
//   WAG, geneP = 1501-2000
//   DNA, codon3 = 3001-3300\3
//
// Coordinates are 1-based inclusive; "\3" is an optional stride.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "bio/alphabet.hpp"

namespace plk {

/// A [begin, end) half-open range of 0-based site indices with a stride.
struct SiteRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t stride = 1;
};

/// One partition (gene): a name, a data type, a model name and site ranges.
struct PartitionDef {
  std::string name;
  DataType type = DataType::kDna;
  std::string model_name;  // e.g. "GTR", "WAG", "JTT"
  std::vector<SiteRange> ranges;

  /// Expand ranges into the ordered list of global site indices.
  std::vector<std::size_t> sites() const;
  /// Total number of sites in this partition.
  std::size_t site_count() const;
};

/// An ordered set of partitions covering an alignment.
class PartitionScheme {
 public:
  PartitionScheme() = default;
  explicit PartitionScheme(std::vector<PartitionDef> parts)
      : parts_(std::move(parts)) {}

  /// The trivial scheme: one partition spanning all `site_count` sites.
  static PartitionScheme single(DataType type, std::size_t site_count,
                                std::string model_name = "GTR");

  /// Parse the RAxML partition-file format (see file header). Throws
  /// std::runtime_error with a line number on malformed input.
  static PartitionScheme parse(std::string_view text);

  /// Render back to the RAxML text format.
  std::string to_string() const;

  /// Verify that the scheme covers every site of an alignment with
  /// `site_count` columns exactly once; throws otherwise.
  void validate(std::size_t site_count) const;

  std::size_t size() const { return parts_.size(); }
  bool empty() const { return parts_.empty(); }
  const PartitionDef& operator[](std::size_t i) const { return parts_[i]; }
  PartitionDef& operator[](std::size_t i) { return parts_[i]; }
  void add(PartitionDef p) { parts_.push_back(std::move(p)); }

  auto begin() const { return parts_.begin(); }
  auto end() const { return parts_.end(); }

 private:
  std::vector<PartitionDef> parts_;
};

}  // namespace plk
