// Biological alphabets and state encoding.
//
// Characters are encoded as *state sets*: a bitmask over the alphabet's
// states. A fully determined character has exactly one bit set; IUPAC
// ambiguity codes (e.g. R = A|G) and gaps/unknowns (all bits) set several.
// The likelihood kernel turns a mask directly into a tip conditional
// likelihood vector: entry i is 1.0 iff bit i is set (Felsenstein 1981).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace plk {

/// Kind of molecular data a partition contains.
enum class DataType { kDna, kProtein };

/// Bitmask over alphabet states; supports up to 32 states (DNA=4, AA=20).
using StateMask = std::uint32_t;

/// An immutable alphabet: maps characters to state masks and back.
class Alphabet {
 public:
  /// The 4-state DNA alphabet with full IUPAC ambiguity support.
  static const Alphabet& dna();
  /// The 20-state amino-acid alphabet (B, Z, X ambiguity supported).
  static const Alphabet& protein();
  /// Look up the canonical alphabet for a data type.
  static const Alphabet& for_type(DataType t);

  DataType type() const { return type_; }

  /// Number of states (4 or 20).
  int size() const { return size_; }

  /// Mask with every state bit set: gap / completely unknown character.
  StateMask gap_mask() const { return (StateMask{1} << size_) - 1; }

  /// Encode one character; returns gap_mask() for '-', '?', '.' and any
  /// unrecognized character (treated as missing data, as RAxML does).
  StateMask encode(char c) const;

  /// Decode a mask back to a representative character ('-' for the full
  /// gap mask, '?' for other multi-state masks without an IUPAC code).
  char decode(StateMask m) const;

  /// Encode a whole string.
  std::vector<StateMask> encode(std::string_view s) const;

  /// True if the mask identifies exactly one state.
  static bool is_determined(StateMask m) { return m != 0 && (m & (m - 1)) == 0; }

  /// Index of the single set bit; only valid when is_determined(m).
  static int single_state(StateMask m);

  /// One-letter symbols of the determined states, in state-index order.
  std::string_view symbols() const { return symbols_; }

 private:
  Alphabet(DataType type, int size, std::string symbols);
  void add_code(char c, StateMask m);

  DataType type_;
  int size_;
  std::string symbols_;
  StateMask table_[256];
  std::vector<std::pair<StateMask, char>> decode_codes_;
};

}  // namespace plk
