// Pattern compression: the kernel-ready alignment representation.
//
// The likelihood of an alignment is a product over columns, and identical
// columns contribute identical per-site likelihoods, so the kernel iterates
// over the m' *distinct column patterns* and weights each by its multiplicity
// (Felsenstein's trick; in the paper's notation m' <= m). Compression is done
// per partition because two identical columns in different genes evolve under
// different models and may not be merged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bio/alignment.hpp"
#include "bio/alphabet.hpp"
#include "bio/partition.hpp"

namespace plk {

/// One partition of the alignment after pattern compression. Tip characters
/// are pre-encoded to state masks so the kernel never touches chars.
struct CompressedPartition {
  std::string name;
  DataType type = DataType::kDna;
  std::string model_name;

  std::size_t pattern_count = 0;
  std::size_t site_count = 0;

  /// Multiplicity of each pattern (sums to site_count).
  std::vector<double> weights;

  /// tip_states[taxon][pattern]: encoded state mask.
  std::vector<std::vector<StateMask>> tip_states;

  /// For each site of the partition (in partition order), its pattern index.
  std::vector<std::size_t> site_to_pattern;

  /// Global (alignment-level) site indices in partition order.
  std::vector<std::size_t> global_sites;

  const Alphabet& alphabet() const { return Alphabet::for_type(type); }
  int states() const { return alphabet().size(); }
};

/// A fully compressed, partitioned alignment: what the PLK engine consumes.
struct CompressedAlignment {
  std::vector<std::string> taxon_names;
  std::vector<CompressedPartition> partitions;

  std::size_t taxon_count() const { return taxon_names.size(); }
  std::size_t partition_count() const { return partitions.size(); }

  /// Total distinct patterns m' summed over partitions.
  std::size_t total_patterns() const;
  /// Total sites m summed over partitions.
  std::size_t total_sites() const;

  /// Compress `aln` under `scheme`. If `compress` is false, every column
  /// becomes its own pattern with weight 1 (useful for tests and to mimic
  /// the paper's simulated data where m == m').
  static CompressedAlignment build(const Alignment& aln,
                                   const PartitionScheme& scheme,
                                   bool compress = true);
};

}  // namespace plk
