#include "bio/alphabet.hpp"

#include <cctype>
#include <stdexcept>

namespace plk {

namespace {
constexpr StateMask kA = 1u << 0;
constexpr StateMask kC = 1u << 1;
constexpr StateMask kG = 1u << 2;
constexpr StateMask kT = 1u << 3;
}  // namespace

Alphabet::Alphabet(DataType type, int size, std::string symbols)
    : type_(type), size_(size), symbols_(std::move(symbols)) {
  if (static_cast<int>(symbols_.size()) != size_)
    throw std::logic_error("alphabet symbol count mismatch");
  const StateMask gap = gap_mask();
  for (auto& t : table_) t = gap;  // unknown characters behave as missing data
  for (int i = 0; i < size_; ++i) {
    const StateMask m = StateMask{1} << i;
    add_code(symbols_[static_cast<std::size_t>(i)], m);
  }
  add_code('-', gap);
  add_code('?', gap);
  add_code('.', gap);
  add_code('N', gap);  // harmless for AA too (N is a determined AA state and
                       // was registered above; add_code keeps the first entry)
}

void Alphabet::add_code(char c, StateMask m) {
  const auto upper = static_cast<unsigned char>(std::toupper(c));
  const auto lower = static_cast<unsigned char>(std::tolower(c));
  // First registration wins so determined states are not clobbered by the
  // ambiguity table (relevant for AA where e.g. 'N' is asparagine).
  if (table_[upper] == gap_mask() && c != '-' && c != '?' && c != '.') {
    table_[upper] = m;
    table_[lower] = m;
  } else if (c == '-' || c == '?' || c == '.') {
    table_[upper] = m;
    table_[lower] = m;
  }
  decode_codes_.emplace_back(m, static_cast<char>(std::toupper(c)));
}

StateMask Alphabet::encode(char c) const {
  return table_[static_cast<unsigned char>(c)];
}

char Alphabet::decode(StateMask m) const {
  if (m == gap_mask()) return '-';
  for (const auto& [mask, ch] : decode_codes_)
    if (mask == m) return ch;
  return '?';
}

std::vector<StateMask> Alphabet::encode(std::string_view s) const {
  std::vector<StateMask> out;
  out.reserve(s.size());
  for (char c : s) out.push_back(encode(c));
  return out;
}

int Alphabet::single_state(StateMask m) {
  if (!is_determined(m))
    throw std::invalid_argument("single_state on ambiguous mask");
  int i = 0;
  while ((m & 1u) == 0) {
    m >>= 1;
    ++i;
  }
  return i;
}

const Alphabet& Alphabet::dna() {
  static Alphabet a = [] {
    Alphabet al(DataType::kDna, 4, "ACGT");
    // IUPAC nucleotide ambiguity codes.
    al.add_code('U', kT);
    al.add_code('R', kA | kG);
    al.add_code('Y', kC | kT);
    al.add_code('S', kC | kG);
    al.add_code('W', kA | kT);
    al.add_code('K', kG | kT);
    al.add_code('M', kA | kC);
    al.add_code('B', kC | kG | kT);
    al.add_code('D', kA | kG | kT);
    al.add_code('H', kA | kC | kT);
    al.add_code('V', kA | kC | kG);
    return al;
  }();
  return a;
}

const Alphabet& Alphabet::protein() {
  static Alphabet a = [] {
    // Canonical RAxML/PAML amino-acid ordering:
    // A R N D C Q E G H I L K M F P S T W Y V
    Alphabet al(DataType::kProtein, 20, "ARNDCQEGHILKMFPSTWYV");
    const auto bit = [](int i) { return StateMask{1} << i; };
    al.add_code('B', bit(2) | bit(3));    // N or D
    al.add_code('Z', bit(5) | bit(6));    // Q or E
    al.add_code('J', bit(9) | bit(10));   // I or L
    al.add_code('X', al.gap_mask());      // fully unknown
    return al;
  }();
  return a;
}

const Alphabet& Alphabet::for_type(DataType t) {
  return t == DataType::kDna ? dna() : protein();
}

}  // namespace plk
