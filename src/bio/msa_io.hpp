// Alignment file I/O: FASTA and (relaxed) PHYLIP.
//
// Both readers accept the dialects RAxML users actually feed it: FASTA with
// wrapped sequence lines, PHYLIP with whitespace-separated names of any
// length ("relaxed" PHYLIP) and optionally interleaved blocks.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "bio/alignment.hpp"

namespace plk {

/// Parse FASTA text; throws std::runtime_error on malformed input.
Alignment read_fasta(std::string_view text);
/// Read FASTA from a file path.
Alignment read_fasta_file(const std::string& path);
/// Serialize to FASTA with lines wrapped at `wrap` characters (0 = no wrap).
std::string write_fasta(const Alignment& aln, std::size_t wrap = 80);

/// Parse relaxed PHYLIP (sequential or interleaved); throws on malformed
/// input, including a header/taxon-count mismatch.
Alignment read_phylip(std::string_view text);
/// Read PHYLIP from a file path.
Alignment read_phylip_file(const std::string& path);
/// Serialize to sequential relaxed PHYLIP.
std::string write_phylip(const Alignment& aln);

/// Slurp a whole file into a string; throws if it cannot be opened.
std::string read_file(const std::string& path);
/// Write a string to a file; throws on failure.
void write_file(const std::string& path, std::string_view content);

}  // namespace plk
