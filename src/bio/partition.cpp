#include "bio/partition.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace plk {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("partition file, line " + std::to_string(line_no) +
                           ": " + what);
}

/// Models we recognize on the left of the comma, and the data type each
/// implies. Unknown names are rejected so typos fail early.
DataType type_for_model(const std::string& model, std::size_t line_no) {
  static const char* dna_models[] = {"DNA", "GTR", "JC", "JC69", "K80",
                                     "K2P", "HKY", "HKY85"};
  static const char* aa_models[] = {"WAG", "JTT", "LG", "DAYHOFF", "PROT",
                                    "PROTGAMMA", "AA"};
  std::string up = model;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (const char* m : dna_models)
    if (up == m) return DataType::kDna;
  for (const char* m : aa_models)
    if (up == m) return DataType::kProtein;
  fail(line_no, "unknown model name '" + model + "'");
}

}  // namespace

std::vector<std::size_t> PartitionDef::sites() const {
  std::vector<std::size_t> out;
  for (const auto& r : ranges)
    for (std::size_t s = r.begin; s < r.end; s += r.stride) out.push_back(s);
  return out;
}

std::size_t PartitionDef::site_count() const {
  std::size_t n = 0;
  for (const auto& r : ranges)
    if (r.end > r.begin) n += (r.end - r.begin + r.stride - 1) / r.stride;
  return n;
}

PartitionScheme PartitionScheme::single(DataType type, std::size_t site_count,
                                        std::string model_name) {
  PartitionDef def;
  def.name = "ALL";
  def.type = type;
  def.model_name = std::move(model_name);
  def.ranges.push_back(SiteRange{0, site_count, 1});
  return PartitionScheme({def});
}

PartitionScheme PartitionScheme::parse(std::string_view text) {
  std::vector<PartitionDef> parts;
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;

    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) fail(line_no, "missing ',' after model");
    const std::size_t eq = line.find('=', comma);
    if (eq == std::string::npos) fail(line_no, "missing '=' after name");

    PartitionDef def;
    def.model_name = trim(line.substr(0, comma));
    def.type = type_for_model(def.model_name, line_no);
    def.name = trim(line.substr(comma + 1, eq - comma - 1));
    if (def.name.empty()) fail(line_no, "empty partition name");

    // Right-hand side: comma-separated ranges "a-b", "a" or "a-b\k".
    std::string rhs = trim(line.substr(eq + 1));
    std::istringstream rs(rhs);
    std::string piece;
    while (std::getline(rs, piece, ',')) {
      piece = trim(piece);
      if (piece.empty()) fail(line_no, "empty range");
      std::size_t stride = 1;
      if (const std::size_t back = piece.find('\\');
          back != std::string::npos) {
        stride = std::stoull(trim(piece.substr(back + 1)));
        if (stride == 0) fail(line_no, "zero stride");
        piece = trim(piece.substr(0, back));
      }
      std::size_t lo = 0, hi = 0;
      const std::size_t dash = piece.find('-');
      try {
        if (dash == std::string::npos) {
          lo = hi = std::stoull(piece);
        } else {
          lo = std::stoull(trim(piece.substr(0, dash)));
          hi = std::stoull(trim(piece.substr(dash + 1)));
        }
      } catch (const std::exception&) {
        fail(line_no, "malformed range '" + piece + "'");
      }
      if (lo == 0 || hi < lo)
        fail(line_no, "range must be 1-based and non-decreasing");
      def.ranges.push_back(SiteRange{lo - 1, hi, stride});
    }
    if (def.ranges.empty()) fail(line_no, "partition has no ranges");
    parts.push_back(std::move(def));
  }
  return PartitionScheme(std::move(parts));
}

std::string PartitionScheme::to_string() const {
  std::ostringstream out;
  for (const auto& p : parts_) {
    out << p.model_name << ", " << p.name << " = ";
    for (std::size_t i = 0; i < p.ranges.size(); ++i) {
      const auto& r = p.ranges[i];
      if (i) out << ", ";
      out << (r.begin + 1) << "-" << r.end;
      if (r.stride != 1) out << "\\" << r.stride;
    }
    out << '\n';
  }
  return out.str();
}

void PartitionScheme::validate(std::size_t site_count) const {
  std::vector<int> hits(site_count, 0);
  for (const auto& p : parts_) {
    for (std::size_t s : p.sites()) {
      if (s >= site_count)
        throw std::runtime_error("partition '" + p.name +
                                 "' references site beyond alignment end");
      ++hits[s];
    }
  }
  for (std::size_t s = 0; s < site_count; ++s) {
    if (hits[s] == 0)
      throw std::runtime_error("site " + std::to_string(s + 1) +
                               " not covered by any partition");
    if (hits[s] > 1)
      throw std::runtime_error("site " + std::to_string(s + 1) +
                               " covered by multiple partitions");
  }
}

}  // namespace plk
