#include "sim/seqgen.hpp"

#include <stdexcept>

#include "bio/partition.hpp"
#include "model/matrix.hpp"

namespace plk {

namespace {

/// Simulate one partition; appends its columns to `rows` (one string per
/// taxon, tip-id order).
void simulate_partition(const Tree& tree, const SimPartition& part, Rng& rng,
                        std::vector<std::string>& rows) {
  const int S = part.model.states();
  const Alphabet& alpha =
      S == 4 ? Alphabet::dna() : Alphabet::protein();
  const std::size_t m = part.sites;
  const auto& freqs = part.model.freqs();

  // Per-site rate categories: an explicit free-rate mixture when given,
  // else a fine discrete Gamma grid. Invariant sites (+I) get the sentinel
  // category and are copied verbatim down the tree. The Gamma/no-+I path
  // draws exactly as the pre-free-rate simulator did (same RNG stream).
  constexpr std::uint8_t kInvSite = 0xFF;
  const bool free_mix = !part.free_rates.empty();
  if (free_mix && part.free_rates.size() != part.free_weights.size())
    throw std::invalid_argument(
        "simulate: free_rates and free_weights must match in size");
  const std::vector<double> grid =
      free_mix ? part.free_rates
               : discrete_gamma_rates(part.alpha, part.rate_grid);
  if (grid.size() >= kInvSite)
    throw std::invalid_argument("simulate: too many rate categories");
  std::vector<std::uint8_t> cat(m);
  for (auto& c : cat) {
    if (part.p_inv > 0.0 && rng.uniform() < part.p_inv) {
      c = kInvSite;
      continue;
    }
    c = static_cast<std::uint8_t>(free_mix ? rng.discrete(part.free_weights)
                                           : rng.below(grid.size()));
  }

  // Per-edge, per-category transition matrices.
  std::vector<std::vector<Matrix>> pmat(
      static_cast<std::size_t>(tree.edge_count()));
  for (EdgeId e = 0; e < tree.edge_count(); ++e) {
    auto& per_cat = pmat[static_cast<std::size_t>(e)];
    per_cat.resize(grid.size());
    for (std::size_t c = 0; c < grid.size(); ++c)
      part.model.transition_matrix(
          tree.length(e) * part.branch_scale * grid[c], per_cat[c]);
  }

  // Root the walk at the first inner node; draw the root sequence from the
  // stationary distribution.
  const NodeId root = tree.tip_count();
  std::vector<std::vector<std::uint8_t>> seq(
      static_cast<std::size_t>(tree.node_count()));
  auto& rseq = seq[static_cast<std::size_t>(root)];
  rseq.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    rseq[i] = static_cast<std::uint8_t>(rng.discrete(freqs));

  // Depth-first walk: child state sampled from the parent's P(t) row.
  std::vector<std::pair<NodeId, EdgeId>> stack{{root, kNoId}};
  while (!stack.empty()) {
    const auto [v, via] = stack.back();
    stack.pop_back();
    for (EdgeId e : tree.edges_of(v)) {
      if (e == via) continue;
      const NodeId w = tree.other_end(e, v);
      auto& wseq = seq[static_cast<std::size_t>(w)];
      wseq.resize(m);
      const auto& vseq = seq[static_cast<std::size_t>(v)];
      const auto& per_cat = pmat[static_cast<std::size_t>(e)];
      for (std::size_t i = 0; i < m; ++i) {
        if (cat[i] == kInvSite) {  // invariant site: no substitutions ever
          wseq[i] = vseq[i];
          continue;
        }
        const double* row = per_cat[cat[i]].row(vseq[i]);
        // Inverse-CDF sample over the row (rows sum to ~1).
        double u = rng.uniform();
        int s = 0;
        for (; s < S - 1; ++s) {
          u -= row[s];
          if (u < 0.0) break;
        }
        wseq[i] = static_cast<std::uint8_t>(s);
      }
      stack.emplace_back(w, e);
    }
  }

  // Emit tip rows; taxa listed in missing_taxa get gaps.
  std::vector<char> missing(static_cast<std::size_t>(tree.tip_count()), 0);
  for (NodeId t : part.missing_taxa) {
    if (t < 0 || t >= tree.tip_count())
      throw std::invalid_argument("missing taxon id out of range");
    missing[static_cast<std::size_t>(t)] = 1;
  }
  const std::string_view symbols = alpha.symbols();
  for (NodeId t = 0; t < tree.tip_count(); ++t) {
    auto& row = rows[static_cast<std::size_t>(t)];
    if (missing[static_cast<std::size_t>(t)]) {
      row.append(m, '-');
    } else {
      const auto& tseq = seq[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < m; ++i) row.push_back(symbols[tseq[i]]);
    }
  }
}

}  // namespace

Alignment simulate(const Tree& tree, const std::vector<SimPartition>& parts,
                   Rng& rng) {
  if (tree.tip_count() < 3)
    throw std::invalid_argument("simulate: need >= 3 taxa");
  if (parts.empty()) throw std::invalid_argument("simulate: no partitions");
  std::vector<std::string> rows(static_cast<std::size_t>(tree.tip_count()));
  for (const auto& part : parts) simulate_partition(tree, part, rng, rows);

  Alignment aln;
  for (NodeId t = 0; t < tree.tip_count(); ++t)
    aln.add(tree.label(t), std::move(rows[static_cast<std::size_t>(t)]));
  return aln;
}

PartitionScheme simulate_scheme(const std::vector<SimPartition>& parts) {
  PartitionScheme scheme;
  std::size_t offset = 0;
  for (const auto& part : parts) {
    PartitionDef def;
    def.name = part.name;
    def.type = part.model.states() == 4 ? DataType::kDna : DataType::kProtein;
    def.model_name = !part.model_name.empty() ? part.model_name
                     : def.type == DataType::kDna ? "GTR"
                                                  : "WAG";
    def.ranges.push_back(SiteRange{offset, offset + part.sites, 1});
    offset += part.sites;
    scheme.add(std::move(def));
  }
  return scheme;
}

}  // namespace plk
