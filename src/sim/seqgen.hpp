// Sequence simulation along a tree (Seq-Gen equivalent; Rambaut & Grassly
// 1997 is the tool the paper used to generate its test datasets).
//
// Sequences evolve from a root sequence drawn from the stationary
// distribution; each branch applies P(b * r_site) where r_site is the site's
// Gamma rate multiplier (constant across the tree, per the Gamma model). The
// continuous Gamma is approximated by a fine discrete grid (configurable;
// 16 categories by default), which keeps the per-branch transition-matrix
// count trivial while being statistically indistinguishable from continuous
// sampling at alignment scale.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bio/alignment.hpp"
#include "bio/alphabet.hpp"
#include "bio/partition.hpp"
#include "model/gamma.hpp"
#include "model/subst_model.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plk {

/// One simulated partition (gene).
struct SimPartition {
  std::string name;
  SubstModel model;
  std::size_t sites = 1000;
  double alpha = 1.0;            ///< Gamma shape for rate heterogeneity
  int rate_grid = 16;            ///< discrete grid approximating continuous Gamma
  double branch_scale = 1.0;     ///< per-gene rate multiplier on all branches
  /// Taxa (by tip id) with no data for this gene — filled with gaps, which
  /// produces the "gappy" phylogenomic alignments the paper describes.
  std::vector<NodeId> missing_taxa;
};

/// Simulate all partitions on `tree`; returns the concatenated alignment
/// (columns ordered partition by partition, matching the PartitionScheme
/// that simulate_scheme() reports).
Alignment simulate(const Tree& tree, const std::vector<SimPartition>& parts,
                   Rng& rng);

/// The partition scheme describing the column layout simulate() produces.
PartitionScheme simulate_scheme(const std::vector<SimPartition>& parts);

}  // namespace plk
