// Sequence simulation along a tree (Seq-Gen equivalent; Rambaut & Grassly
// 1997 is the tool the paper used to generate its test datasets).
//
// Sequences evolve from a root sequence drawn from the stationary
// distribution; each branch applies P(b * r_site) where r_site is the site's
// Gamma rate multiplier (constant across the tree, per the Gamma model). The
// continuous Gamma is approximated by a fine discrete grid (configurable;
// 16 categories by default), which keeps the per-branch transition-matrix
// count trivial while being statistically indistinguishable from continuous
// sampling at alignment scale.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bio/alignment.hpp"
#include "bio/alphabet.hpp"
#include "bio/partition.hpp"
#include "model/gamma.hpp"
#include "model/subst_model.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plk {

/// One simulated partition (gene).
struct SimPartition {
  std::string name;
  SubstModel model;
  std::size_t sites = 1000;
  double alpha = 1.0;            ///< Gamma shape for rate heterogeneity
  int rate_grid = 16;            ///< discrete grid approximating continuous Gamma
  double branch_scale = 1.0;     ///< per-gene rate multiplier on all branches
  /// Taxa (by tip id) with no data for this gene — filled with gaps, which
  /// produces the "gappy" phylogenomic alignments the paper describes.
  std::vector<NodeId> missing_taxa;
  /// Free-rate mixture: when non-empty, per-site rates are drawn from these
  /// categories (weights must match in size and sum to ~1) instead of the
  /// Gamma grid above — the generating analogue of a +R fit.
  std::vector<double> free_rates;
  std::vector<double> free_weights;
  /// Proportion of invariant sites (+I): each site is, with this
  /// probability, held constant across the whole tree (rate 0).
  double p_inv = 0.0;
  /// Model spec reported by simulate_scheme() (e.g. "GTR+R4+I"); empty
  /// falls back to the bare family for the data type (GTR / WAG).
  std::string model_name;
};

/// Simulate all partitions on `tree`; returns the concatenated alignment
/// (columns ordered partition by partition, matching the PartitionScheme
/// that simulate_scheme() reports).
Alignment simulate(const Tree& tree, const std::vector<SimPartition>& parts,
                   Rng& rng);

/// The partition scheme describing the column layout simulate() produces.
PartitionScheme simulate_scheme(const std::vector<SimPartition>& parts);

}  // namespace plk
