#include "sim/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "sim/seqgen.hpp"
#include "tree/tree_gen.hpp"

namespace plk {

namespace {

/// Randomized GTR model: exchangeabilities log-uniform in [0.5, 4] (with the
/// G-T reference fixed at 1), frequencies jittered around uniform.
SubstModel random_gtr(Rng& rng) {
  std::vector<double> exch(6);
  for (std::size_t i = 0; i < 5; ++i)
    exch[i] = std::exp(rng.uniform(std::log(0.5), std::log(4.0)));
  exch[5] = 1.0;
  std::vector<double> freqs(4);
  double s = 0.0;
  for (auto& f : freqs) {
    f = 0.15 + rng.uniform() * 0.4;
    s += f;
  }
  for (auto& f : freqs) f /= s;
  return SubstModel(4, std::move(exch), std::move(freqs));
}

SimPartition make_sim_part(const std::string& name, std::size_t sites,
                           bool protein, Rng& rng) {
  SimPartition part{name,
                    protein ? protein_model("WAG") : random_gtr(rng),
                    sites,
                    /*alpha=*/rng.uniform(0.3, 1.5),
                    /*rate_grid=*/16,
                    /*branch_scale=*/std::exp(rng.uniform(-0.5, 0.5)),
                    /*missing_taxa=*/{}};
  return part;
}

Dataset build(const std::string& name, int taxa,
              std::vector<SimPartition> parts, std::uint64_t seed) {
  Rng rng(seed);
  Tree tree = random_tree(taxa, rng);
  Alignment aln = simulate(tree, parts, rng);
  PartitionScheme scheme = simulate_scheme(parts);
  return Dataset{name, std::move(aln), std::move(scheme), std::move(tree)};
}

}  // namespace

Dataset make_simulated_dna(int taxa, std::size_t sites,
                           std::size_t partition_length, std::uint64_t seed) {
  Rng rng(seed ^ 0xd5a7a5e7ULL);
  std::vector<SimPartition> parts;
  std::size_t remaining = sites;
  int idx = 0;
  while (remaining > 0) {
    // The last partition absorbs a short remainder (< one full length).
    std::size_t len = std::min(partition_length, remaining);
    if (remaining - len < partition_length / 2 && remaining - len > 0) {
      len = remaining;
    }
    parts.push_back(
        make_sim_part("gene" + std::to_string(idx++), len, false, rng));
    remaining -= len;
  }
  const std::string name = "d" + std::to_string(taxa) + "_" +
                           std::to_string(sites) + "_p" +
                           std::to_string(partition_length);
  return build(name, taxa, std::move(parts), seed);
}

Dataset make_unpartitioned_dna(int taxa, std::size_t sites,
                               std::uint64_t seed) {
  Rng rng(seed ^ 0xd5a7a5e7ULL);
  std::vector<SimPartition> parts{make_sim_part("ALL", sites, false, rng)};
  const std::string name =
      "d" + std::to_string(taxa) + "_" + std::to_string(sites) + "_unpart";
  return build(name, taxa, std::move(parts), seed);
}

Dataset make_freerate_dna(int taxa, std::size_t sites,
                          std::size_t partition_length, std::uint64_t seed) {
  Rng rng(seed ^ 0xf4ee4a7eULL);
  std::vector<SimPartition> parts;
  std::size_t remaining = sites;
  int idx = 0;
  while (remaining > 0) {
    std::size_t len = std::min(partition_length, remaining);
    if (remaining - len < partition_length / 2 && remaining - len > 0)
      len = remaining;
    SimPartition part = make_sim_part("gene" + std::to_string(idx++), len,
                                      false, rng);
    // A 4-category free-rate mixture: rates spread log-uniformly over two
    // decades, weights Dirichlet-ish (jittered uniform, normalized) — a
    // shape no Gamma alpha reproduces, so +R fits measurably beat +G here.
    part.free_rates.resize(4);
    part.free_weights.resize(4);
    double wsum = 0.0, mean = 0.0;
    for (int c = 0; c < 4; ++c) {
      part.free_rates[static_cast<std::size_t>(c)] =
          std::exp(rng.uniform(std::log(0.05), std::log(5.0)));
      part.free_weights[static_cast<std::size_t>(c)] =
          0.1 + rng.uniform() * 0.9;
      wsum += part.free_weights[static_cast<std::size_t>(c)];
    }
    for (int c = 0; c < 4; ++c) {
      part.free_weights[static_cast<std::size_t>(c)] /= wsum;
      mean += part.free_weights[static_cast<std::size_t>(c)] *
              part.free_rates[static_cast<std::size_t>(c)];
    }
    // Mean rate 1 over the variable sites keeps branch lengths calibrated.
    for (double& r : part.free_rates) r /= mean;
    part.p_inv = rng.uniform(0.1, 0.3);
    part.model_name = "GTR+R4+I";
    parts.push_back(std::move(part));
    remaining -= len;
  }
  const std::string name = "fr" + std::to_string(taxa) + "_" +
                           std::to_string(sites) + "_p" +
                           std::to_string(partition_length);
  return build(name, taxa, std::move(parts), seed);
}

Dataset make_realworld_like(int taxa, int partitions, std::size_t min_len,
                            std::size_t max_len, double missing_fraction,
                            bool protein, std::uint64_t seed) {
  Rng rng(seed ^ 0x4ea1f00dULL);
  std::vector<SimPartition> parts;
  for (int g = 0; g < partitions; ++g) {
    // Log-uniform gene lengths reproduce the broad spread the paper reports
    // (min 148 / max 2,705 patterns on the mammalian dataset).
    const double u = rng.uniform(std::log(static_cast<double>(min_len)),
                                 std::log(static_cast<double>(max_len)));
    auto part = make_sim_part("gene" + std::to_string(g),
                              static_cast<std::size_t>(std::exp(u)), protein,
                              rng);
    for (NodeId t = 0; t < taxa; ++t)
      if (rng.uniform() < missing_fraction) part.missing_taxa.push_back(t);
    // Never blank out every taxon of a gene.
    if (part.missing_taxa.size() + 3 > static_cast<std::size_t>(taxa))
      part.missing_taxa.clear();
    parts.push_back(std::move(part));
  }
  const std::string name = std::string(protein ? "r_prot_" : "r_dna_") +
                           std::to_string(taxa) + "x" +
                           std::to_string(partitions);
  return build(name, taxa, std::move(parts), seed);
}

Dataset make_mixed_multigene(int taxa, int dna_partitions,
                             int protein_partitions, std::size_t min_len,
                             std::size_t max_len, std::uint64_t seed) {
  Rng rng(seed ^ 0x3c6ef372ULL);
  std::vector<SimPartition> parts;
  const int total = dna_partitions + protein_partitions;
  int dna_left = dna_partitions, prot_left = protein_partitions;
  for (int g = 0; g < total; ++g) {
    // Interleave the two alphabets so neither data type is contiguous in
    // the concatenated pattern order.
    const bool protein =
        prot_left > 0 && (dna_left == 0 || g % 2 == 1);
    (protein ? prot_left : dna_left)--;
    const double u = rng.uniform(std::log(static_cast<double>(min_len)),
                                 std::log(static_cast<double>(max_len)));
    parts.push_back(make_sim_part("gene" + std::to_string(g),
                                  static_cast<std::size_t>(std::exp(u)),
                                  protein, rng));
  }
  const std::string name = "mixed_" + std::to_string(taxa) + "x" +
                           std::to_string(dna_partitions) + "dna+" +
                           std::to_string(protein_partitions) + "aa";
  return build(name, taxa, std::move(parts), seed);
}

Dataset make_paper_d50_50000(double scale, std::uint64_t seed) {
  const int taxa = std::max(8, static_cast<int>(std::lround(50 * scale)));
  const auto sites =
      static_cast<std::size_t>(std::max(2000.0, 50000.0 * scale));
  const auto plen =
      static_cast<std::size_t>(std::max(200.0, 1000.0 * scale));
  return make_simulated_dna(taxa, sites, plen, seed);
}

Dataset make_paper_d100_50000(double scale, std::uint64_t seed) {
  const int taxa = std::max(10, static_cast<int>(std::lround(100 * scale)));
  const auto sites =
      static_cast<std::size_t>(std::max(2000.0, 50000.0 * scale));
  const auto plen =
      static_cast<std::size_t>(std::max(200.0, 1000.0 * scale));
  return make_simulated_dna(taxa, sites, plen, seed);
}

Dataset make_paper_r125_19839(double scale, std::uint64_t seed) {
  const int taxa = std::max(10, static_cast<int>(std::lround(125 * scale)));
  const int partitions = std::max(6, static_cast<int>(std::lround(34 * scale)));
  const auto min_len =
      static_cast<std::size_t>(std::max(40.0, 148.0 * scale));
  const auto max_len =
      static_cast<std::size_t>(std::max(300.0, 2705.0 * scale));
  return make_realworld_like(taxa, partitions, min_len, max_len,
                             /*missing_fraction=*/0.15, /*protein=*/false,
                             seed);
}

Dataset make_paper_r26_21451(double scale, std::uint64_t seed) {
  const int taxa = std::max(8, static_cast<int>(std::lround(26 * scale)));
  const int partitions = std::max(6, static_cast<int>(std::lround(26 * scale)));
  const auto min_len =
      static_cast<std::size_t>(std::max(60.0, 173.0 * scale));
  const auto max_len =
      static_cast<std::size_t>(std::max(400.0, 2695.0 * scale));
  return make_realworld_like(taxa, partitions, min_len, max_len,
                             /*missing_fraction=*/0.1, /*protein=*/true,
                             seed);
}

PlacementScenario make_placement_scenario(int taxa, std::size_t sites,
                                          int queries, std::uint64_t seed) {
  if (taxa < 4)
    throw std::invalid_argument("make_placement_scenario: need >= 4 taxa");
  if (queries < 1)
    throw std::invalid_argument("make_placement_scenario: need >= 1 query");
  PlacementScenario sc;
  // Two partitions so query encoding and placement exercise the
  // multi-partition paths.
  sc.reference = make_simulated_dna(
      taxa, sites, std::max<std::size_t>(100, (sites + 1) / 2), seed);

  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const Tree& tree = sc.reference.true_tree;
  const Alignment& aln = sc.reference.alignment;
  const std::string_view dna = Alphabet::for_type(DataType::kDna).symbols();
  for (int k = 0; k < queries; ++k) {
    // Spread sources across the reference tips (wrapping when
    // queries > taxa), so concurrent sessions hit distinct true edges.
    const NodeId src = static_cast<NodeId>(k % taxa);
    const std::size_t row = aln.find_taxon(tree.label(src));
    std::string data{aln.row(row)};
    for (char& ch : data) {
      const double u = rng.uniform();
      if (u < 0.02) {
        auto pick = static_cast<std::size_t>(rng.uniform() * 4.0);
        ch = dna[std::min<std::size_t>(pick, 3)];
      } else if (u < 0.03) {
        ch = '-';
      }
    }
    sc.queries.push_back(Sequence{"q" + std::to_string(k), std::move(data)});
    sc.source_tips.push_back(src);
    sc.true_edges.push_back(tree.edges_of(src)[0]);
  }
  return sc;
}

}  // namespace plk
