// Factories for the paper's experimental datasets.
//
// The evaluation (Section V) uses two dataset families:
//   * dXX_YYYY: simulated DNA alignments on real-world seed trees with
//     XX in {10, 20, 50, 100} taxa and YYYY in {5000, 20000, 50000} columns,
//     divided into equal partitions of 1,000 / 5,000 / 10,000 columns
//     (1,000 ~ one average gene);
//   * three real-world phylogenomic alignments (viral proteins r26_21451,
//     r24_16916; mammalian DNA r125_19839 with 34 partitions of 148-2,705
//     distinct patterns).
// The real alignments are not redistributable/downloadable offline, so the
// factory synthesizes datasets with the *published shape* (taxon count,
// partition count, partition-length distribution, data type) — the only
// properties the load-balance behaviour depends on.
#pragma once

#include <cstdint>
#include <string>

#include "bio/alignment.hpp"
#include "bio/partition.hpp"
#include "tree/tree.hpp"

namespace plk {

/// A ready-to-analyze synthetic dataset.
struct Dataset {
  std::string name;
  Alignment alignment;
  PartitionScheme scheme;
  Tree true_tree;  ///< the simulation tree (for RF-distance checks)
};

/// The dXX_YYYY family: `taxa` taxa, `sites` DNA columns, equal partitions
/// of `partition_length` columns (the last one absorbs any remainder).
/// Per-partition GTR parameters and alpha are randomized (deterministically
/// from `seed`) so per-partition optimizations genuinely differ in iteration
/// count — the source of the paper's imbalance.
Dataset make_simulated_dna(int taxa, std::size_t sites,
                           std::size_t partition_length, std::uint64_t seed);

/// Unpartitioned variant (one partition spanning all sites).
Dataset make_unpartitioned_dna(int taxa, std::size_t sites,
                               std::uint64_t seed);

/// Heterogeneous-rate variant of the dXX_YYYY family: every partition is
/// generated under a KNOWN free-rate mixture (4 categories with unequal
/// weights, randomized per partition) plus a randomized invariant-site
/// proportion in [0.1, 0.3], and the partition scheme names the matching
/// "GTR+R4+I" spec — so an analysis over it exercises the +R/+I fitting
/// path against data whose generating parameters are recoverable.
Dataset make_freerate_dna(int taxa, std::size_t sites,
                          std::size_t partition_length, std::uint64_t seed);

/// Real-world-like multi-gene dataset: `partitions` genes with lengths drawn
/// log-uniformly in [min_len, max_len]; `missing_fraction` of (taxon, gene)
/// cells carry no data (gappy alignment). `protein` selects 20-state data
/// (the viral r26/r24 analogues) vs DNA (the mammalian r125 analogue).
Dataset make_realworld_like(int taxa, int partitions, std::size_t min_len,
                            std::size_t max_len, double missing_fraction,
                            bool protein, std::uint64_t seed);

/// Mixed DNA + protein multi-gene dataset: `dna_partitions` randomized-GTR
/// genes interleaved with `protein_partitions` WAG genes, lengths drawn
/// log-uniformly in [min_len, max_len]. The per-pattern kernel cost then
/// varies ~25x across partitions (4- vs 20-state), which is the skewed
/// multi-partition scenario the work-scheduling strategies are about.
Dataset make_mixed_multigene(int taxa, int dna_partitions,
                             int protein_partitions, std::size_t min_len,
                             std::size_t max_len, std::uint64_t seed);

/// The paper's named datasets at a configurable scale factor in (0, 1]:
/// scale 1 reproduces the published dimensions; smaller scales shrink taxa
/// and sites proportionally for laptop-budget runs.
Dataset make_paper_d50_50000(double scale, std::uint64_t seed);
Dataset make_paper_d100_50000(double scale, std::uint64_t seed);
Dataset make_paper_r125_19839(double scale, std::uint64_t seed);
Dataset make_paper_r26_21451(double scale, std::uint64_t seed);

/// A streaming-placement workload: a reference dataset plus held-out query
/// sequences with KNOWN true insertion edges. Each query is a noisy copy
/// (deterministic ~2% substitutions, ~1% gaps) of one reference tip's row,
/// so its best insertion edge is that tip's pendant edge — which is what
/// `true_edges` records. Queries cycle through the reference tips, so
/// `queries` may exceed `taxa`.
struct PlacementScenario {
  Dataset reference;  ///< alignment + scheme + reference tree (2 partitions)
  std::vector<Sequence> queries;   ///< query rows, reference column layout
  std::vector<NodeId> source_tips; ///< per query: the tip it was derived from
  std::vector<EdgeId> true_edges;  ///< per query: source tip's pendant edge
};

PlacementScenario make_placement_scenario(int taxa, std::size_t sites,
                                          int queries, std::uint64_t seed);

}  // namespace plk
