#include "parallel/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace plk {

std::string_view to_string(SchedulingStrategy s) {
  switch (s) {
    case SchedulingStrategy::kCyclic:
      return "cyclic";
    case SchedulingStrategy::kBlock:
      return "block";
    case SchedulingStrategy::kWeighted:
      return "weighted";
    case SchedulingStrategy::kLpt:
      return "lpt";
    case SchedulingStrategy::kMeasured:
      return "measured";
  }
  return "?";
}

std::optional<SchedulingStrategy> scheduling_strategy_from_string(
    std::string_view name) {
  for (SchedulingStrategy s :
       {SchedulingStrategy::kCyclic, SchedulingStrategy::kBlock,
        SchedulingStrategy::kWeighted, SchedulingStrategy::kLpt,
        SchedulingStrategy::kMeasured})
    if (name == to_string(s)) return s;
  return std::nullopt;
}

std::string_view to_string(BatchExecMode m) {
  switch (m) {
    case BatchExecMode::kAuto:
      return "auto";
    case BatchExecMode::kFine:
      return "fine";
    case BatchExecMode::kCoarse:
      return "coarse";
  }
  return "?";
}

std::optional<BatchExecMode> batch_exec_mode_from_string(
    std::string_view name) {
  for (BatchExecMode m :
       {BatchExecMode::kAuto, BatchExecMode::kFine, BatchExecMode::kCoarse})
    if (name == to_string(m)) return m;
  return std::nullopt;
}

std::vector<int> lpt_assign(std::span<const double> cost, int threads) {
  if (threads < 1) throw std::invalid_argument("lpt_assign needs >= 1 thread");
  std::vector<std::size_t> order(cost.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cost[a] != cost[b]) return cost[a] > cost[b];
    return a < b;
  });
  std::vector<int> owner(cost.size(), 0);
  std::vector<double> load(static_cast<std::size_t>(threads), 0.0);
  for (std::size_t i : order) {
    int best = 0;
    for (int t = 1; t < threads; ++t)
      if (load[static_cast<std::size_t>(t)] <
          load[static_cast<std::size_t>(best)])
        best = t;
    owner[i] = best;
    load[static_cast<std::size_t>(best)] += cost[i];
  }
  return owner;
}

namespace {

using SpanGrid = std::vector<std::vector<std::vector<WorkSpan>>>;  // [tid][p]

void build_cyclic(int T, const std::vector<PartitionShape>& shapes,
                  SpanGrid& grid) {
  for (int p = 0; p < static_cast<int>(shapes.size()); ++p) {
    const std::size_t n = shapes[static_cast<std::size_t>(p)].patterns;
    for (int t = 0; t < T; ++t)
      if (static_cast<std::size_t>(t) < n)
        grid[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)]
            .push_back(WorkSpan{p, static_cast<std::size_t>(t), n,
                                static_cast<std::size_t>(T)});
  }
}

void build_block(int T, const std::vector<PartitionShape>& shapes,
                 SpanGrid& grid) {
  for (int p = 0; p < static_cast<int>(shapes.size()); ++p) {
    const std::size_t n = shapes[static_cast<std::size_t>(p)].patterns;
    for (int t = 0; t < T; ++t) {
      const WorkSpan s = block_span(p, n, t, T);
      if (s.begin < s.end)
        grid[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)]
            .push_back(s);
    }
  }
}

/// One global contiguous split of the concatenated pattern sequence into T
/// equal-cost intervals. Split indices are derived per partition from the
/// global cost boundaries, clamped monotone, so the spans are disjoint and
/// cover every pattern exactly once regardless of rounding.
void build_weighted(int T, const std::vector<PartitionShape>& shapes,
                    SpanGrid& grid) {
  double total = 0.0;
  for (const auto& sh : shapes) total += sh.total_cost();
  if (total <= 0.0) {
    build_block(T, shapes, grid);
    return;
  }
  double base = 0.0;  // cost before this partition
  for (int p = 0; p < static_cast<int>(shapes.size()); ++p) {
    const auto& sh = shapes[static_cast<std::size_t>(p)];
    const double c = sh.cost_per_pattern();
    const std::size_t n = sh.patterns;
    std::size_t prev = 0;
    for (int t = 0; t < T; ++t) {
      // Upper cost boundary of thread t's interval.
      const double bound =
          t + 1 == T ? total : total * static_cast<double>(t + 1) /
                                   static_cast<double>(T);
      std::size_t hi = n;
      if (t + 1 < T) {
        const double split = (bound - base) / c;
        hi = split <= 0.0
                 ? 0
                 : std::min(n, static_cast<std::size_t>(std::ceil(split)));
        hi = std::max(hi, prev);
      }
      if (prev < hi)
        grid[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)]
            .push_back(WorkSpan{p, prev, hi, 1});
      prev = hi;
    }
    base += sh.total_cost();
  }
}

/// One LPT packing attempt at a given chunk-cost target. Returns the
/// resulting modeled imbalance (T * max_load / total - 1); fills `grid`.
double lpt_pack(int T, const std::vector<PartitionShape>& shapes,
                double total, double target, SpanGrid& grid) {
  for (auto& per_thread : grid)
    for (auto& spans : per_thread) spans.clear();

  struct Chunk {
    int part;
    std::size_t begin, end;
    double cost;
  };
  std::vector<Chunk> chunks;
  for (int p = 0; p < static_cast<int>(shapes.size()); ++p) {
    const auto& sh = shapes[static_cast<std::size_t>(p)];
    const double c = sh.cost_per_pattern();
    const std::size_t step = std::clamp(
        static_cast<std::size_t>(std::ceil(target / c)), std::size_t{1},
        std::max(sh.patterns, std::size_t{1}));
    for (std::size_t lo = 0; lo < sh.patterns; lo += step) {
      const std::size_t hi = std::min(sh.patterns, lo + step);
      chunks.push_back(Chunk{p, lo, hi, c * static_cast<double>(hi - lo)});
    }
  }
  // Largest first, ties by chunk index — chunks are generated in
  // (part, begin) order, so the packing is reproducible.
  std::vector<double> costs(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) costs[i] = chunks[i].cost;
  const std::vector<int> owner = lpt_assign(costs, T);
  std::vector<double> load(static_cast<std::size_t>(T), 0.0);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const Chunk& ch = chunks[i];
    const int t = owner[i];
    load[static_cast<std::size_t>(t)] += ch.cost;
    grid[static_cast<std::size_t>(t)][static_cast<std::size_t>(ch.part)]
        .push_back(WorkSpan{ch.part, ch.begin, ch.end, 1});
  }
  // Merge adjacent chunks a thread received from the same partition.
  for (auto& per_thread : grid)
    for (auto& spans : per_thread) {
      std::sort(spans.begin(), spans.end(),
                [](const WorkSpan& a, const WorkSpan& b) {
                  return a.begin < b.begin;
                });
      std::vector<WorkSpan> merged;
      for (const WorkSpan& s : spans) {
        if (!merged.empty() && merged.back().end == s.begin)
          merged.back().end = s.end;
        else
          merged.push_back(s);
      }
      spans = std::move(merged);
    }

  double mx = 0.0;
  for (double l : load) mx = std::max(mx, l);
  return static_cast<double>(T) * mx / total - 1.0;
}

/// Longest-processing-time greedy bin packing over partition chunks, with
/// an ADAPTIVE chunk-cost target: packing is attempted at total/(4T) — the
/// historical fixed target — and the target is halved until the packing's
/// modeled imbalance drops below kLptImbalanceGoal (or the chunks become
/// too fine to be worth the span-lookup overhead). The LPT makespan bound
/// is opt + max_chunk_cost, so the achievable imbalance is governed by the
/// chunk size relative to the observed command-length distribution — under
/// kMeasured shapes this adapts to real timings, not the static model.
void build_lpt(int T, const std::vector<PartitionShape>& shapes,
               SpanGrid& grid) {
  double total = 0.0;
  for (const auto& sh : shapes) total += sh.total_cost();
  if (total <= 0.0) {
    build_block(T, shapes, grid);
    return;
  }
  constexpr double kLptImbalanceGoal = 0.01;
  // Finest useful chunk: never below total/(64T) — beyond that the
  // spans-per-thread bookkeeping costs more than the imbalance it removes.
  const double floor_target = total / (64.0 * static_cast<double>(T));
  double target = total / (4.0 * static_cast<double>(T));
  double best = lpt_pack(T, shapes, total, target, grid);
  // Discrete packings are not monotone in the target, so walk the whole
  // halving ladder and keep the best packing seen, stopping early once the
  // goal is met.
  SpanGrid trial(grid.size(),
                 std::vector<std::vector<WorkSpan>>(shapes.size()));
  while (best > kLptImbalanceGoal && target > floor_target) {
    target = std::max(floor_target, target * 0.5);
    const double imbalance = lpt_pack(T, shapes, total, target, trial);
    if (imbalance < best) {
      best = imbalance;
      grid.swap(trial);
    }
  }
}

}  // namespace

WorkSchedule WorkSchedule::build(SchedulingStrategy strategy, int threads,
                                 const std::vector<PartitionShape>& shapes) {
  if (threads < 1) throw std::invalid_argument("WorkSchedule needs >= 1 thread");
  const int P = static_cast<int>(shapes.size());
  SpanGrid grid(static_cast<std::size_t>(threads),
                std::vector<std::vector<WorkSpan>>(
                    static_cast<std::size_t>(P)));
  switch (strategy) {
    case SchedulingStrategy::kCyclic:
      build_cyclic(threads, shapes, grid);
      break;
    case SchedulingStrategy::kBlock:
      build_block(threads, shapes, grid);
      break;
    case SchedulingStrategy::kWeighted:
    case SchedulingStrategy::kMeasured:
      build_weighted(threads, shapes, grid);
      break;
    case SchedulingStrategy::kLpt:
      build_lpt(threads, shapes, grid);
      break;
  }

  WorkSchedule ws;
  ws.strategy_ = strategy;
  ws.threads_ = threads;
  ws.partitions_ = P;
  ws.index_.resize(static_cast<std::size_t>(threads) *
                   static_cast<std::size_t>(P));
  ws.modeled_cost_.assign(static_cast<std::size_t>(threads), 0.0);
  for (int t = 0; t < threads; ++t)
    for (int p = 0; p < P; ++p) {
      auto& cell = grid[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
      ws.index_[static_cast<std::size_t>(t) * static_cast<std::size_t>(P) +
                static_cast<std::size_t>(p)] = {ws.spans_.size(), cell.size()};
      for (const WorkSpan& s : cell) {
        ws.spans_.push_back(s);
        ws.modeled_cost_[static_cast<std::size_t>(t)] +=
            static_cast<double>(s.count()) *
            shapes[static_cast<std::size_t>(p)].cost_per_pattern();
      }
    }
  return ws;
}

double WorkSchedule::tid_part_cost(int tid, int part,
                                   const PartitionShape& shape) const {
  double patterns = 0.0;
  for (const WorkSpan& s : spans(tid, part))
    patterns += static_cast<double>(s.count());
  return patterns * shape.cost_per_pattern();
}

double WorkSchedule::modeled_imbalance() const {
  double mx = 0.0, sum = 0.0;
  for (double c : modeled_cost_) {
    mx = std::max(mx, c);
    sum += c;
  }
  if (sum <= 0.0) return 0.0;
  return static_cast<double>(threads_) * mx / sum - 1.0;
}

}  // namespace plk
