// Persistent fork-join thread team (the paper's Pthreads worker model).
//
// RAxML's Pthreads parallelization keeps one master and T-1 workers alive for
// the whole run; the master orchestrates the search and broadcasts kernel
// commands (traversal lists, evaluations, Newton-Raphson derivative passes),
// each of which every thread executes over its cyclic share of alignment
// patterns, followed by a barrier/reduction. Every `run()` here is exactly
// one such synchronization event — the quantity whose count and granularity
// the paper's oldPAR/newPAR comparison is about — so the team counts them
// and (optionally) measures per-thread work time to quantify imbalance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/aligned.hpp"

namespace plk {

/// Aggregate instrumentation collected across run() calls.
struct TeamStats {
  /// Number of parallel commands issued (== synchronization events).
  std::uint64_t sync_count = 0;
  /// Sum over commands of (max per-thread work time) — the parallel
  /// critical path through the kernels.
  double critical_path_seconds = 0.0;
  /// Sum over commands and threads of (max - own) work time: total time
  /// threads spent waiting on the slowest thread (load imbalance).
  double imbalance_seconds = 0.0;
  /// Sum of all per-thread work time (useful to compute efficiency).
  double total_work_seconds = 0.0;
  /// Watchdog diagnostic dumps emitted (commands still in flight past the
  /// configured deadline; see set_watchdog()).
  std::uint64_t watchdog_dumps = 0;
};

/// A fixed-size team of threads executing broadcast commands.
///
/// In the default (master-inline) mode, thread 0 is the calling (master)
/// thread itself; `size() - 1` workers are spawned on construction and
/// joined on destruction. Not re-entrant: only the master may call run(),
/// and nested run() is not allowed.
///
/// In DETACHED mode all `size()` threads are spawned workers and the owner
/// drives commands asynchronously with start()/join() instead of run().
/// This is what lets one master fan a flush out to several shard teams
/// concurrently: start() broadcasts and returns immediately; join() blocks
/// until every worker finished. The sharded engine keeps shard 0's team
/// master-inline (the master contributes its own core there) and runs
/// shards 1..N-1 detached.
class ThreadTeam {
 public:
  /// `nthreads` >= 1 total threads (including the master in master-inline
  /// mode; all spawned in detached mode).
  /// `instrument`: collect per-thread work timings (small overhead: two
  /// clock reads per thread per command).
  /// `cpu_time`: measure per-thread CPU time instead of wall time. Wall
  /// time is the right default (it is what the caller waits for), but on an
  /// oversubscribed machine it mostly measures the OS scheduler; CPU time
  /// keeps the imbalance accounting meaningful there.
  /// `detached`: spawn all `nthreads` threads as workers and drive them via
  /// start()/join().
  /// `bind_cpus`: when non-empty, every spawned worker pins itself to this
  /// CPU set on startup (no-op unless built with PLK_NUMA_BIND).
  /// `concurrency_hint`: total number of engine threads sharing the machine
  /// (0 = just this team); used to size the between-command spin budget when
  /// several shard teams coexist.
  explicit ThreadTeam(int nthreads, bool instrument = true,
                      bool cpu_time = false, bool detached = false,
                      std::vector<int> bind_cpus = {},
                      int concurrency_hint = 0);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  int size() const { return nthreads_; }

  /// Broadcast command type: a raw function pointer plus opaque context.
  /// Commands fire on every synchronization event of a run, so the broadcast
  /// path deliberately avoids std::function (whose capture storage can heap-
  /// allocate on every run() call).
  using RawFn = void (*)(void* ctx, int tid);

  /// Execute fn(ctx, tid) on every thread (master runs tid 0 inline unless
  /// the team is detached); returns after all threads finished. One
  /// synchronization event.
  void run(RawFn fn, void* ctx);

  /// Detached-mode broadcast: publish the command to all workers and return
  /// without waiting. Exactly one join() must follow before the next
  /// start(). `fn`/`ctx` must stay valid until that join() returns.
  void start(RawFn fn, void* ctx);

  /// Block until every worker finished the command published by start().
  void join();

  bool detached() const { return detached_; }

  /// Convenience overload for callables (lambdas): forwards a pointer to
  /// `fn` as the context — no allocation, no type erasure overhead. The
  /// callable only needs to outlive the call, which run() guarantees by
  /// blocking until every thread finished.
  template <class F>
    requires(!std::is_convertible_v<F, RawFn>)
  void run(F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run([](void* ctx, int tid) { (*static_cast<Fn*>(ctx))(tid); },
        const_cast<void*>(
            static_cast<const void*>(std::addressof(fn))));
  }

  /// Instrumentation snapshot.
  const TeamStats& stats() const {
    stats_.watchdog_dumps =
        watchdog_dumps_.load(std::memory_order_acquire);
    return stats_;
  }
  void reset_stats() {
    stats_ = TeamStats{};
    watchdog_dumps_.store(0, std::memory_order_release);
  }
  bool instrumented() const { return instrument_; }

  /// Watchdog deadline: a dedicated monitor thread (started here) checks
  /// every deadline/4 whether the in-flight command has been running for
  /// more than `seconds`; if so it logs ONE diagnostic dump for that
  /// command — the issuer's description (set_diagnostics), the generation,
  /// and each worker's last completed generation — and the command keeps
  /// running. The monitor must be a separate thread: engine commands
  /// synchronize internally (phase barriers inside fn), so a stalled worker
  /// blocks the *master* inside its own share of the command, where it
  /// could never poll a deadline. The hang stays a hang (nobody can safely
  /// abandon a broadcast command), but it becomes an attributable one.
  /// 0 stops the monitor and disables the deadline (the default).
  /// Setup-time API: not safe to call concurrently with run().
  void set_watchdog(double seconds);
  double watchdog_seconds() const { return watchdog_seconds_; }

  /// Optional issuer-side describer for the active command, included in
  /// watchdog dumps (e.g. the engine reports its current flush's shape).
  /// Same raw-pointer style as RawFn: the callback must stay valid for the
  /// team's lifetime and is invoked on the watchdog thread while a command
  /// is in flight — it must only read state that is stable for a command's
  /// whole duration.
  using DiagFn = std::string (*)(void* ctx);
  void set_diagnostics(DiagFn fn, void* ctx) {
    diag_fn_ = fn;
    diag_ctx_ = ctx;
  }

  /// Last generation worker `tid` (1-based; 0 is the master) completed.
  std::uint64_t heartbeat(int tid) const {
    return heartbeats_[static_cast<std::size_t>(tid)].gen.load(
        std::memory_order_acquire);
  }

 private:
  /// One worker's progress marker, padded to its own cache line so
  /// heartbeat stores never share a line with a neighbour's.
  struct alignas(64) Heartbeat {
    std::atomic<std::uint64_t> gen{0};
  };

  void worker_loop(int tid);
  /// Monitor loop for the watchdog thread (see set_watchdog).
  void watchdog_loop();
  /// Emit the watchdog's one-per-command diagnostic dump.
  void dump_stall_diagnostics(double waited_seconds);
  /// Block worker until generation >= next or stop: bounded spin, then park
  /// on the condition variable (so workers do not burn cores through long
  /// serial master phases such as eigendecompositions).
  void worker_wait(std::uint64_t next);
  /// Wake parked workers after a generation bump (no-op syscall-free fast
  /// path when nobody is parked).
  void wake_parked();

  /// Fold per-thread work timings of a completed command into stats_.
  void fold_command_timings();

  int nthreads_;
  bool instrument_;
  bool cpu_time_;
  bool detached_;
  /// Workers that must report done per command: nthreads_ when detached,
  /// nthreads_ - 1 when the master runs tid 0 inline.
  int spawned_;
  std::vector<int> bind_cpus_;
  double spin_budget_seconds_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> parked_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  RawFn fn_ = nullptr;
  void* ctx_ = nullptr;
  double watchdog_seconds_ = 0.0;
  DiagFn diag_fn_ = nullptr;
  void* diag_ctx_ = nullptr;
  std::unique_ptr<Heartbeat[]> heartbeats_;
  std::vector<std::thread> workers_;
  std::vector<PaddedDouble> work_seconds_;  // per-thread, per-command
  mutable TeamStats stats_;
  // Watchdog monitor state. cmd_start_/in_flight_ are written by the master
  // around each command and read by the monitor; watchdog_dumps_ is the
  // monitor's counter, folded into stats_ on read.
  std::atomic<double> cmd_start_{0.0};
  std::atomic<bool> in_flight_{false};
  std::atomic<std::uint64_t> watchdog_dumps_{0};
  std::atomic<bool> wd_stop_{false};
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  std::thread watchdog_;
};

}  // namespace plk
