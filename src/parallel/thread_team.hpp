// Persistent fork-join thread team (the paper's Pthreads worker model).
//
// RAxML's Pthreads parallelization keeps one master and T-1 workers alive for
// the whole run; the master orchestrates the search and broadcasts kernel
// commands (traversal lists, evaluations, Newton-Raphson derivative passes),
// each of which every thread executes over its cyclic share of alignment
// patterns, followed by a barrier/reduction. Every `run()` here is exactly
// one such synchronization event — the quantity whose count and granularity
// the paper's oldPAR/newPAR comparison is about — so the team counts them
// and (optionally) measures per-thread work time to quantify imbalance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/aligned.hpp"

namespace plk {

/// Aggregate instrumentation collected across run() calls.
struct TeamStats {
  /// Number of parallel commands issued (== synchronization events).
  std::uint64_t sync_count = 0;
  /// Sum over commands of (max per-thread work time) — the parallel
  /// critical path through the kernels.
  double critical_path_seconds = 0.0;
  /// Sum over commands and threads of (max - own) work time: total time
  /// threads spent waiting on the slowest thread (load imbalance).
  double imbalance_seconds = 0.0;
  /// Sum of all per-thread work time (useful to compute efficiency).
  double total_work_seconds = 0.0;
};

/// A fixed-size team of threads executing broadcast commands.
///
/// Thread 0 is the calling (master) thread itself; `size() - 1` workers are
/// spawned on construction and joined on destruction. Not re-entrant: only
/// the master may call run(), and nested run() is not allowed.
class ThreadTeam {
 public:
  /// `nthreads` >= 1 total threads (including the master).
  /// `instrument`: collect per-thread work timings (small overhead: two
  /// clock reads per thread per command).
  /// `cpu_time`: measure per-thread CPU time instead of wall time. Wall
  /// time is the right default (it is what the caller waits for), but on an
  /// oversubscribed machine it mostly measures the OS scheduler; CPU time
  /// keeps the imbalance accounting meaningful there.
  explicit ThreadTeam(int nthreads, bool instrument = true,
                      bool cpu_time = false);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  int size() const { return nthreads_; }

  /// Broadcast command type: a raw function pointer plus opaque context.
  /// Commands fire on every synchronization event of a run, so the broadcast
  /// path deliberately avoids std::function (whose capture storage can heap-
  /// allocate on every run() call).
  using RawFn = void (*)(void* ctx, int tid);

  /// Execute fn(ctx, tid) on every thread (master runs tid 0 inline);
  /// returns after all threads finished. One synchronization event.
  void run(RawFn fn, void* ctx);

  /// Convenience overload for callables (lambdas): forwards a pointer to
  /// `fn` as the context — no allocation, no type erasure overhead. The
  /// callable only needs to outlive the call, which run() guarantees by
  /// blocking until every thread finished.
  template <class F>
    requires(!std::is_convertible_v<F, RawFn>)
  void run(F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run([](void* ctx, int tid) { (*static_cast<Fn*>(ctx))(tid); },
        const_cast<void*>(
            static_cast<const void*>(std::addressof(fn))));
  }

  /// Instrumentation snapshot.
  const TeamStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TeamStats{}; }
  bool instrumented() const { return instrument_; }

 private:
  void worker_loop(int tid);
  /// Block worker until generation >= next or stop: bounded spin, then park
  /// on the condition variable (so workers do not burn cores through long
  /// serial master phases such as eigendecompositions).
  void worker_wait(std::uint64_t next);
  /// Wake parked workers after a generation bump (no-op syscall-free fast
  /// path when nobody is parked).
  void wake_parked();

  int nthreads_;
  bool instrument_;
  bool cpu_time_;
  double spin_budget_seconds_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> parked_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  RawFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::vector<std::thread> workers_;
  std::vector<PaddedDouble> work_seconds_;  // per-thread, per-command
  TeamStats stats_;
};

}  // namespace plk
