#include "parallel/thread_team.hpp"

#include <chrono>
#include <stdexcept>

namespace plk {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Spin for a bounded number of iterations, then fall back to yielding, so
/// oversubscribed configurations (more threads than cores) still progress.
/// The spin budget is generous (~a few ms): between commands the master
/// performs serial orchestration (traversal lists, P matrices), and a worker
/// that yields during that window pays a scheduler wake-up latency far
/// larger than the command it is waiting for — RAxML's workers busy-wait
/// for the same reason.
template <class Pred>
void spin_until(Pred&& pred) {
  long spins = 0;
  while (!pred()) {
    if (++spins < 2'000'000) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace

ThreadTeam::ThreadTeam(int nthreads, bool instrument)
    : nthreads_(nthreads), instrument_(instrument) {
  if (nthreads_ < 1) throw std::invalid_argument("ThreadTeam needs >= 1 thread");
  work_seconds_.resize(static_cast<std::size_t>(nthreads_));
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int tid = 1; tid < nthreads_; ++tid)
    workers_.emplace_back([this, tid] { worker_loop(tid); });
}

ThreadTeam::~ThreadTeam() {
  stop_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  for (auto& w : workers_) w.join();
}

void ThreadTeam::worker_loop(int tid) {
  std::uint64_t next = 1;
  for (;;) {
    spin_until([&] {
      return generation_.load(std::memory_order_acquire) >= next ||
             stop_.load(std::memory_order_acquire);
    });
    if (stop_.load(std::memory_order_acquire)) return;
    if (instrument_) {
      const double t0 = now_seconds();
      fn_(ctx_, tid);
      work_seconds_[static_cast<std::size_t>(tid)].value = now_seconds() - t0;
    } else {
      fn_(ctx_, tid);
    }
    done_.fetch_add(1, std::memory_order_release);
    ++next;
  }
}

void ThreadTeam::run(RawFn fn, void* ctx) {
  ++stats_.sync_count;
  if (nthreads_ == 1) {
    if (instrument_) {
      const double t0 = now_seconds();
      fn(ctx, 0);
      const double dt = now_seconds() - t0;
      stats_.critical_path_seconds += dt;
      stats_.total_work_seconds += dt;
    } else {
      fn(ctx, 0);
    }
    return;
  }

  fn_ = fn;
  ctx_ = ctx;
  done_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);

  if (instrument_) {
    const double t0 = now_seconds();
    fn(ctx, 0);
    work_seconds_[0].value = now_seconds() - t0;
  } else {
    fn(ctx, 0);
  }

  spin_until([&] {
    return done_.load(std::memory_order_acquire) >= nthreads_ - 1;
  });

  if (instrument_) {
    double max_dt = 0.0, sum_dt = 0.0;
    for (int t = 0; t < nthreads_; ++t) {
      const double dt = work_seconds_[static_cast<std::size_t>(t)].value;
      max_dt = dt > max_dt ? dt : max_dt;
      sum_dt += dt;
    }
    stats_.critical_path_seconds += max_dt;
    stats_.total_work_seconds += sum_dt;
    stats_.imbalance_seconds += nthreads_ * max_dt - sum_dt;
  }
}

}  // namespace plk
