#include "parallel/thread_team.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <sstream>
#include <stdexcept>

#include "parallel/topology.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace plk {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by the calling thread (falls back to wall time where
/// no thread CPU clock exists).
inline double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#endif
  return now_seconds();
}

/// Spin for a bounded number of iterations, then fall back to yielding.
/// Used only on the master side (waiting for workers to finish a command,
/// a wait bounded by the command's own duration); workers use
/// worker_wait(), which parks on a condition variable instead.
template <class Pred>
void spin_until(Pred&& pred) {
  long spins = 0;
  while (!pred()) {
    if (++spins < 2'000'000) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace

ThreadTeam::ThreadTeam(int nthreads, bool instrument, bool cpu_time,
                       bool detached, std::vector<int> bind_cpus,
                       int concurrency_hint)
    : nthreads_(nthreads),
      instrument_(instrument),
      cpu_time_(cpu_time),
      detached_(detached),
      spawned_(detached ? nthreads : nthreads - 1),
      bind_cpus_(std::move(bind_cpus)) {
  if (nthreads_ < 1) throw std::invalid_argument("ThreadTeam needs >= 1 thread");
  // Workers busy-wait between commands: during the short serial windows of
  // command assembly a parked worker would pay a scheduler wake-up far
  // larger than the command it waits for (RAxML busy-waits for the same
  // reason). The budget is time-based — a fixed iteration count would span
  // ~7 ms to ~100 ms depending on the CPU's pause latency — so a serial
  // master phase longer than ~2 ms reliably parks the workers on every
  // host. When the team (or, under sharding, the whole engine — the
  // concurrency hint) oversubscribes the machine the budget drops to
  // ~0.2 ms, since spinning there only steals cycles from the threads
  // doing actual work.
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned occupancy = static_cast<unsigned>(
      concurrency_hint > nthreads_ ? concurrency_hint : nthreads_);
  spin_budget_seconds_ = (hw != 0 && occupancy > hw) ? 2e-4 : 2e-3;
  work_seconds_.resize(static_cast<std::size_t>(nthreads_));
  heartbeats_ = std::make_unique<Heartbeat[]>(static_cast<std::size_t>(nthreads_));
  workers_.reserve(static_cast<std::size_t>(spawned_));
  for (int tid = detached_ ? 0 : 1; tid < nthreads_; ++tid)
    workers_.emplace_back([this, tid] { worker_loop(tid); });
}

ThreadTeam::~ThreadTeam() {
  set_watchdog(0.0);  // join the monitor before tearing the team down
  stop_.store(true, std::memory_order_seq_cst);
  generation_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(park_mu_);
    park_cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
}

void ThreadTeam::worker_wait(std::uint64_t next) {
  long spins = 0;
  double spin_start = -1.0;
  for (;;) {
    if (generation_.load(std::memory_order_acquire) >= next ||
        stop_.load(std::memory_order_acquire))
      return;
    // Check the clock only every few thousand pause iterations: the hot
    // path stays a pure spin, and the budget is wall time, not a
    // pause-latency-dependent iteration count.
    if ((++spins & 0xfff) != 0) {
      cpu_relax();
      continue;
    }
    const double now = now_seconds();
    if (spin_start < 0.0) spin_start = now;
    if (now - spin_start < spin_budget_seconds_) {
      cpu_relax();
      continue;
    }
    // Register as parked *before* the final predicate re-check: the master
    // bumps the generation first and reads parked_ second (both seq_cst),
    // so either it sees us parked and notifies under the mutex, or our
    // re-check below observes the bump. Either way no wake-up is lost.
    parked_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lk(park_mu_);
      park_cv_.wait(lk, [&] {
        return generation_.load(std::memory_order_seq_cst) >= next ||
               stop_.load(std::memory_order_seq_cst);
      });
    }
    parked_.fetch_sub(1, std::memory_order_seq_cst);
    return;
  }
}

void ThreadTeam::wake_parked() {
  if (parked_.load(std::memory_order_seq_cst) == 0) return;
  // Taking the mutex orders the notify after any in-flight wait() entry:
  // a worker past its parked_ increment is either blocked in wait (gets the
  // notify) or has not yet locked the mutex (re-checks the predicate after
  // we release it, and sees the new generation).
  std::lock_guard<std::mutex> lk(park_mu_);
  park_cv_.notify_all();
}

void ThreadTeam::worker_loop(int tid) {
  if (!bind_cpus_.empty()) bind_current_thread(bind_cpus_);
  std::uint64_t next = 1;
  for (;;) {
    worker_wait(next);
    if (stop_.load(std::memory_order_acquire)) return;
    // Fault injection (tests only): stall this worker before it touches the
    // command, long enough to trip the watchdog deadline. The command still
    // runs to completion afterwards, so results are unchanged — exactly the
    // "silent hang becomes a diagnosed hang" scenario.
    if (fault::enabled() && fault::should_fire(fault::Site::kWorkerStall))
      std::this_thread::sleep_for(
          std::chrono::duration<double>(fault::stall_seconds()));
    if (instrument_) {
      const double t0 = cpu_time_ ? thread_cpu_seconds() : now_seconds();
      fn_(ctx_, tid);
      const double t1 = cpu_time_ ? thread_cpu_seconds() : now_seconds();
      work_seconds_[static_cast<std::size_t>(tid)].value = t1 - t0;
    } else {
      fn_(ctx_, tid);
    }
    heartbeats_[static_cast<std::size_t>(tid)].gen.store(
        next, std::memory_order_release);
    done_.fetch_add(1, std::memory_order_release);
    ++next;
  }
}

void ThreadTeam::dump_stall_diagnostics(double waited_seconds) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  std::ostringstream os;
  os << "watchdog: command generation " << gen << " incomplete after "
     << waited_seconds << " s (deadline " << watchdog_seconds_ << " s); done "
     << done_.load(std::memory_order_acquire) << "/" << spawned_
     << " workers, " << parked_.load(std::memory_order_seq_cst)
     << " parked; heartbeats:";
  for (int tid = detached_ ? 0 : 1; tid < nthreads_; ++tid) {
    const std::uint64_t hb = heartbeat(tid);
    os << " t" << tid << "=" << hb << (hb >= gen ? "" : "*");
  }
  os << " (* = behind)";
  if (diag_fn_ != nullptr) os << "; command: " << diag_fn_(diag_ctx_);
  log_warn(os.str());
}

void ThreadTeam::set_watchdog(double seconds) {
  if (seconds > 0.0) {
    watchdog_seconds_ = seconds;
    if (!watchdog_.joinable()) {
      wd_stop_.store(false, std::memory_order_release);
      watchdog_ = std::thread([this] { watchdog_loop(); });
    }
    return;
  }
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(wd_mu_);
      wd_stop_.store(true, std::memory_order_release);
    }
    wd_cv_.notify_all();
    watchdog_.join();
    watchdog_ = std::thread();
  }
  watchdog_seconds_ = 0.0;
}

void ThreadTeam::watchdog_loop() {
  // The monitor owns the one-dump-per-command bookkeeping: a command that
  // overruns the deadline is dumped exactly once (keyed by its generation),
  // however long it stays stuck. It cannot abandon the command — workers
  // hold raw pointers into the issuer's stack — so the hang stays a hang,
  // but an attributable one.
  std::uint64_t last_dumped_gen = 0;
  for (;;) {
    const double period =
        std::min(std::max(watchdog_seconds_ / 4.0, 1e-3), 1.0);
    {
      std::unique_lock<std::mutex> lk(wd_mu_);
      wd_cv_.wait_for(lk, std::chrono::duration<double>(period), [&] {
        return wd_stop_.load(std::memory_order_acquire);
      });
    }
    if (wd_stop_.load(std::memory_order_acquire)) return;
    if (!in_flight_.load(std::memory_order_acquire)) continue;
    const double waited =
        now_seconds() - cmd_start_.load(std::memory_order_acquire);
    if (waited <= watchdog_seconds_) continue;
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (gen == last_dumped_gen) continue;
    last_dumped_gen = gen;
    watchdog_dumps_.fetch_add(1, std::memory_order_acq_rel);
    dump_stall_diagnostics(waited);
  }
}

void ThreadTeam::start(RawFn fn, void* ctx) {
  ++stats_.sync_count;
  if (watchdog_seconds_ > 0.0) {
    cmd_start_.store(now_seconds(), std::memory_order_release);
    in_flight_.store(true, std::memory_order_release);
  }
  fn_ = fn;
  ctx_ = ctx;
  done_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_seq_cst);
  wake_parked();
}

void ThreadTeam::join() {
  spin_until([&] {
    return done_.load(std::memory_order_acquire) >= spawned_;
  });
  if (watchdog_seconds_ > 0.0)
    in_flight_.store(false, std::memory_order_release);
  if (instrument_) fold_command_timings();
}

void ThreadTeam::fold_command_timings() {
  double max_dt = 0.0, sum_dt = 0.0;
  for (int t = 0; t < nthreads_; ++t) {
    const double dt = work_seconds_[static_cast<std::size_t>(t)].value;
    max_dt = dt > max_dt ? dt : max_dt;
    sum_dt += dt;
  }
  stats_.critical_path_seconds += max_dt;
  stats_.total_work_seconds += sum_dt;
  stats_.imbalance_seconds += nthreads_ * max_dt - sum_dt;
}

void ThreadTeam::run(RawFn fn, void* ctx) {
  if (detached_) {  // no inline master share: broadcast and wait
    start(fn, ctx);
    join();
    return;
  }
  ++stats_.sync_count;
  // Watchdog bookkeeping brackets the WHOLE command, master share included:
  // engine commands synchronize internally (phase barriers inside fn), so a
  // stalled worker blocks the master inside its own fn — a post-fn wait
  // deadline would never see it. The monitor thread reads these.
  const bool wd = watchdog_seconds_ > 0.0;
  if (wd) {
    cmd_start_.store(now_seconds(), std::memory_order_release);
    in_flight_.store(true, std::memory_order_release);
  }
  if (nthreads_ == 1) {
    // No workers, but a generation still identifies the command for the
    // monitor's one-dump-per-command bookkeeping.
    if (wd) generation_.fetch_add(1, std::memory_order_seq_cst);
    if (instrument_) {
      const double t0 = cpu_time_ ? thread_cpu_seconds() : now_seconds();
      fn(ctx, 0);
      const double t1 = cpu_time_ ? thread_cpu_seconds() : now_seconds();
      const double dt = t1 - t0;
      work_seconds_[0].value = dt;
      stats_.critical_path_seconds += dt;
      stats_.total_work_seconds += dt;
    } else {
      fn(ctx, 0);
    }
    if (wd) in_flight_.store(false, std::memory_order_release);
    return;
  }

  fn_ = fn;
  ctx_ = ctx;
  done_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_seq_cst);
  wake_parked();

  if (instrument_) {
    const double t0 = cpu_time_ ? thread_cpu_seconds() : now_seconds();
    fn(ctx, 0);
    const double t1 = cpu_time_ ? thread_cpu_seconds() : now_seconds();
    work_seconds_[0].value = t1 - t0;
  } else {
    fn(ctx, 0);
  }

  spin_until([&] {
    return done_.load(std::memory_order_acquire) >= spawned_;
  });
  if (wd) in_flight_.store(false, std::memory_order_release);

  if (instrument_) fold_command_timings();
}

}  // namespace plk
