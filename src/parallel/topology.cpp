#include "parallel/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace plk {
namespace {

// Parse a sysfs cpulist string ("0-3,8,10-11") into sorted CPU ids.
std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    std::size_t end = i;
    const int lo = std::stoi(text.substr(i), &end);
    i += end;
    int hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      hi = std::stoi(text.substr(i), &end);
      i += end;
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  return cpus;
}

std::string read_small_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "re");
  if (f == nullptr) return {};
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace

HostTopology HostTopology::detect() {
  HostTopology topo;
  const unsigned hw = std::thread::hardware_concurrency();
  topo.logical_cpus = hw > 0 ? static_cast<int>(hw) : 1;
#if defined(__linux__)
  for (int id = 0; id < 1024; ++id) {
    const std::string base =
        "/sys/devices/system/node/node" + std::to_string(id);
    const std::string list = read_small_file(base + "/cpulist");
    if (list.empty()) {
      if (id > 0) break;  // node0 may be absent only on exotic layouts
      continue;
    }
    NumaNode node;
    node.id = id;
    node.cpus = parse_cpulist(list);
    if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
  }
#endif
  if (topo.nodes.empty()) {
    NumaNode node;
    node.id = 0;
    node.cpus.resize(static_cast<std::size_t>(topo.logical_cpus));
    std::iota(node.cpus.begin(), node.cpus.end(), 0);
    topo.nodes.push_back(std::move(node));
  }
  return topo;
}

ShardPlan ShardPlan::build(int shards, int threads,
                           const std::vector<PartitionShape>& shapes,
                           const HostTopology& topo) {
  ShardPlan plan;
  const int N = std::max(1, shards);
  const int T = std::max(1, threads);
  plan.threads_ = T;
  plan.specs_.resize(static_cast<std::size_t>(N));
  plan.owner_.assign(shapes.size() * static_cast<std::size_t>(T), 0);

  const int nodes = static_cast<int>(topo.nodes.size());
  for (int s = 0; s < N; ++s) {
    ShardSpec& spec = plan.specs_[static_cast<std::size_t>(s)];
    spec.threads = std::max(1, T / N + (s < T % N ? 1 : 0));
    spec.node = nodes > 1 ? topo.nodes[s % nodes].id : -1;
  }
  if (N == 1) {
    ShardSpec& spec = plan.specs_.front();
    for (std::size_t p = 0; p < shapes.size(); ++p)
      spec.slices.push_back({static_cast<int>(p), 0, T});
    return plan;
  }

  // Cumulative team sizes decide the vt boundaries of split partitions. When
  // N <= T the boundary of shard s is exactly its cumulative thread count, so
  // every local thread of a split slice replays exactly one vt per partition.
  std::vector<int> vt_lo(static_cast<std::size_t>(N) + 1, 0);
  int sum_t = 0;
  for (int s = 0; s < N; ++s) sum_t += plan.specs_[s].threads;
  {
    int cum = 0;
    for (int s = 0; s < N; ++s) {
      vt_lo[static_cast<std::size_t>(s)] =
          static_cast<int>(static_cast<long long>(T) * cum / sum_t);
      cum += plan.specs_[s].threads;
    }
    vt_lo[static_cast<std::size_t>(N)] = T;
  }

  std::vector<double> cost(shapes.size(), 0.0);
  double total = 0.0;
  for (std::size_t p = 0; p < shapes.size(); ++p) {
    cost[p] = static_cast<double>(shapes[p].patterns) *
              shapes[p].cost_per_pattern();
    total += cost[p];
  }
  const double huge_threshold = total > 0.0 ? 1.5 * total / N : 0.0;

  // Normalized per-shard load, seeded with the shares of split partitions.
  std::vector<double> load(static_cast<std::size_t>(N), 0.0);
  std::vector<int> whole;
  for (std::size_t p = 0; p < shapes.size(); ++p) {
    const bool split = total > 0.0 && cost[p] > huge_threshold;
    if (!split) {
      whole.push_back(static_cast<int>(p));
      continue;
    }
    for (int s = 0; s < N; ++s) {
      const int lo = vt_lo[static_cast<std::size_t>(s)];
      const int hi = vt_lo[static_cast<std::size_t>(s) + 1];
      if (hi <= lo) continue;
      plan.specs_[s].slices.push_back({static_cast<int>(p), lo, hi});
      load[static_cast<std::size_t>(s)] += cost[p] * (hi - lo) / T;
      for (int vt = lo; vt < hi; ++vt)
        plan.owner_[p * static_cast<std::size_t>(T) + vt] = s;
    }
  }

  // Remaining partitions go whole to the least-loaded shard (normalized by
  // team size), largest first, ties to the lowest shard index.
  std::sort(whole.begin(), whole.end(), [&](int a, int b) {
    if (cost[static_cast<std::size_t>(a)] != cost[static_cast<std::size_t>(b)])
      return cost[static_cast<std::size_t>(a)] >
             cost[static_cast<std::size_t>(b)];
    return a < b;
  });
  for (const int p : whole) {
    int best = 0;
    double best_load = load[0] / plan.specs_[0].threads;
    for (int s = 1; s < N; ++s) {
      const double l = load[static_cast<std::size_t>(s)] /
                       plan.specs_[static_cast<std::size_t>(s)].threads;
      if (l < best_load) {
        best = s;
        best_load = l;
      }
    }
    plan.specs_[static_cast<std::size_t>(best)].slices.push_back({p, 0, T});
    load[static_cast<std::size_t>(best)] += cost[static_cast<std::size_t>(p)];
    for (int vt = 0; vt < T; ++vt)
      plan.owner_[static_cast<std::size_t>(p) * T + vt] = best;
  }
  for (auto& spec : plan.specs_)
    std::sort(spec.slices.begin(), spec.slices.end(),
              [](const ShardSlice& a, const ShardSlice& b) {
                return a.part < b.part;
              });
  return plan;
}

bool bind_current_thread(const std::vector<int>& cpus) {
#if defined(PLK_NUMA_BIND) && defined(__linux__)
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus)
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

}  // namespace plk
