// Host topology detection and the shard plan: how EngineCore splits its
// partitions and virtual thread ids across NUMA-aware sub-cores.
//
// The plan's contract is the bit-identity invariant of the sharded engine:
// `threads` (T) stays the GLOBAL virtual-tid count at every shard count, and
// the plan assigns every (partition, vt) pair to exactly one shard. A shard's
// local threads replay whole virtual tids of the single global WorkSchedule,
// so every per-(vt, partition) reduction row holds the same value it would
// under one flat team, and the master's fixed-order fold over vt = 0..T-1 is
// unchanged. Huge partitions are split across shards by VT RANGE — never by
// raw pattern range, which would regroup a left-fold mid-stream and change
// the floating-point result.
#pragma once

#include <cstddef>
#include <vector>

#include "parallel/schedule.hpp"

namespace plk {

/// One NUMA node as detected from the OS (or a synthetic single node).
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;  ///< logical CPUs on this node, sorted
};

/// Host machine shape. On Linux this is parsed from
/// /sys/devices/system/node; elsewhere (or when sysfs is absent) it
/// degrades to one node covering every logical CPU.
struct HostTopology {
  std::vector<NumaNode> nodes;
  int logical_cpus = 1;

  static HostTopology detect();
};

/// One shard's share of one partition: the half-open virtual-tid interval
/// [vt_begin, vt_end) of the global schedule that this shard executes.
/// Whole (un-split) partitions appear as [0, T).
struct ShardSlice {
  int part = 0;
  int vt_begin = 0;
  int vt_end = 0;
};

/// Static description of one shard: its local team size, the NUMA node its
/// worker threads should bind to (-1 = unbound), and its slices.
struct ShardSpec {
  int threads = 1;
  int node = -1;
  std::vector<ShardSlice> slices;  ///< sorted by part, disjoint vt ranges
};

/// Deterministic assignment of every (partition, vt) pair to one shard.
///
/// Built once at engine construction from the STATIC partition shapes (never
/// from measured costs — the plan also decides first-touch page placement, so
/// it must not shift under recalibration). Thread counts split T as evenly as
/// possible (t_s = T/N + (s < T%N), clamped to >= 1 so N > T oversubscribes
/// rather than dropping shards). Partitions whose modeled cost exceeds
/// 1.5x the per-shard average are split across ALL shards by vt range in
/// proportion to team size; the rest are LPT-packed whole onto the shard with
/// the lowest normalized load. Everything is a pure function of
/// (shards, threads, shapes), so two engines with the same inputs — e.g. a
/// checkpoint writer and its resumer — build identical plans.
class ShardPlan {
 public:
  static ShardPlan build(int shards, int threads,
                         const std::vector<PartitionShape>& shapes,
                         const HostTopology& topo);

  int shard_count() const { return static_cast<int>(specs_.size()); }
  int threads() const { return threads_; }
  const ShardSpec& shard(int s) const { return specs_[s]; }

  /// Shard owning virtual tid `vt` of partition `part`.
  int owner(int part, int vt) const {
    return owner_[static_cast<std::size_t>(part) * threads_ + vt];
  }

  /// Shard owning vt 0 of `part` — the canonical builder of the partition's
  /// shared per-flush state (pmat buffers, tip tables, NR scratch).
  int primary_owner(int part) const { return owner(part, 0); }

 private:
  int threads_ = 1;
  std::vector<ShardSpec> specs_;
  std::vector<int> owner_;  ///< dense [part * threads_ + vt] lookup
};

/// Pin the calling thread to the given CPU set. Compiled to a no-op unless
/// PLK_NUMA_BIND is enabled at configure time (and on non-Linux hosts).
/// Returns true when an affinity mask was actually applied.
bool bind_current_thread(const std::vector<int>& cpus);

}  // namespace plk
