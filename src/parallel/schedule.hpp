// Explicit per-thread work assignment for the PLK kernels.
//
// The paper's Pthreads code hard-wires a cyclic (tid, T) pattern split into
// every kernel; this layer makes the assignment an explicit, pluggable
// object instead. Each thread receives a list of WorkSpans — strided runs of
// patterns of one partition — computed once per engine shape by a
// SchedulingStrategy and reused for every command until invalidated.
//
// Correctness does not depend on the strategy: pattern i of a parent CLV is
// computed from pattern i of the child CLVs only, so ANY disjoint covering
// assignment of each partition's patterns to threads preserves the
// no-intra-traversal-barrier property the cyclic split relied on — as long
// as the same assignment is used for every op of a command, which the
// engine guarantees by caching one WorkSchedule per shape.
//
// Strategies:
//   * kCyclic   — thread tid owns patterns {tid, tid+T, ...} of every
//                 partition, expressed as one strided span. Bit-identical to
//                 the historical hard-coded split (same patterns per thread,
//                 same in-thread accumulation order).
//   * kBlock    — per partition, T near-equal contiguous blocks.
//   * kWeighted — one global contiguous split of the concatenated pattern
//                 sequence by the static per-pattern cost model
//                 states x cats x weight; threads receive equal modeled
//                 cost, so a mixed DNA+protein run no longer hands every
//                 remainder pattern to the low tids.
//   * kLpt      — partitions are cut into chunks of roughly equal modeled
//                 cost and assigned longest-processing-time-first to the
//                 least-loaded thread (greedy bin packing). Best for many
//                 skewed partitions under multi-partition commands.
//   * kMeasured — the weighted split, but with each partition's
//                 cost-per-pattern replaced by timings observed through
//                 TeamStats (Engine::calibrate_schedule()).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace plk {

/// One strided run of patterns of one partition assigned to a thread:
/// patterns begin, begin+step, ... strictly below end.
struct WorkSpan {
  int part = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t step = 1;

  std::size_t count() const {
    return begin >= end ? 0 : (end - begin - 1) / step + 1;
  }
  friend bool operator==(const WorkSpan&, const WorkSpan&) = default;
};

/// Thread `tid`'s share of an even T-way contiguous split of one
/// partition's patterns (possibly empty). The single source of the
/// block-split boundary math: used by the kBlock strategy and by the
/// engine's single-partition-command fallback.
inline WorkSpan block_span(int part, std::size_t patterns, int tid,
                           int threads) {
  const std::size_t lo = patterns * static_cast<std::size_t>(tid) /
                         static_cast<std::size_t>(threads);
  const std::size_t hi = patterns * static_cast<std::size_t>(tid + 1) /
                         static_cast<std::size_t>(threads);
  return WorkSpan{part, lo, hi, 1};
}

/// How pattern work is distributed over the thread team (see file header).
enum class SchedulingStrategy { kCyclic, kBlock, kWeighted, kLpt, kMeasured };

std::string_view to_string(SchedulingStrategy s);
/// Parse "cyclic" / "block" / "weighted" / "lpt" / "measured".
std::optional<SchedulingStrategy> scheduling_strategy_from_string(
    std::string_view name);

/// How a multi-item batch flush (EngineCore::wait) maps items onto threads.
///
///   * kFine   — every thread walks every item and executes its own pattern
///               spans of each (the pre-coarse behavior). Best when items
///               are few and large: per-item balance is per-pattern perfect.
///   * kCoarse — whole items are assigned to single threads (LPT over each
///               item's modeled command cost); the owning thread replays the
///               fine schedule's per-thread spans virtually, so reduction
///               order — and therefore every result — is bit-identical to
///               kFine. Best when items outnumber threads: each thread
///               touches only its own items instead of dipping into every
///               small context's spans.
///   * kAuto   — wait() picks per flush from the batch shape (coarse once
///               live items >= 2x threads).
enum class BatchExecMode { kAuto, kFine, kCoarse };

std::string_view to_string(BatchExecMode m);
/// Parse "auto" / "fine" / "coarse".
std::optional<BatchExecMode> batch_exec_mode_from_string(std::string_view name);

/// Longest-processing-time greedy assignment of weighted items to
/// `threads` bins: items are taken in decreasing cost order (ties broken by
/// index, so the result is deterministic) and each goes to the currently
/// least-loaded bin. Returns the owning bin per item. This is the packing
/// rule shared by the kLpt pattern-chunk strategy and the coarse batch
/// executor's item-to-thread assignment.
std::vector<int> lpt_assign(std::span<const double> cost, int threads);

/// Everything the cost model knows about one partition.
struct PartitionShape {
  std::size_t patterns = 0;
  int states = 4;
  int cats = 1;
  /// Per-pattern cost multiplier. The static model charges
  /// states x cats x weight per pattern; the default weight equals the
  /// state count because the kernels' inner matrix-vector loops are S wide
  /// per state (making the static model quadratic in S, which is what the
  /// newview/evaluate/sumtable hot loops actually cost). Measured mode
  /// overwrites the whole product with observed seconds.
  double weight = 0.0;  // 0 = "use the default of `states`"

  double cost_per_pattern() const {
    const double w = weight > 0.0 ? weight : static_cast<double>(states);
    return static_cast<double>(states) * static_cast<double>(cats) * w;
  }
  double total_cost() const {
    return cost_per_pattern() * static_cast<double>(patterns);
  }
};

/// An immutable per-thread work assignment over all partitions.
///
/// Built once per (strategy, thread count, partition shapes) by build();
/// spans(tid, part) is then a read-only lookup safe to call concurrently
/// from every thread of a command.
class WorkSchedule {
 public:
  WorkSchedule() = default;

  static WorkSchedule build(SchedulingStrategy strategy, int threads,
                            const std::vector<PartitionShape>& shapes);

  SchedulingStrategy strategy() const { return strategy_; }
  int threads() const { return threads_; }
  int partitions() const { return partitions_; }

  /// The spans of partition `part` owned by thread `tid` (possibly empty;
  /// at most a handful of entries — one for every strategy except kLpt).
  std::span<const WorkSpan> spans(int tid, int part) const {
    const auto& ix = index_[static_cast<std::size_t>(tid) *
                                static_cast<std::size_t>(partitions_) +
                            static_cast<std::size_t>(part)];
    return {spans_.data() + ix.first, ix.second};
  }

  /// Modeled relative imbalance: T * max(cost) / sum(cost) - 1 (0 = perfect).
  double modeled_imbalance() const;

  /// Modeled cost of thread `tid`'s spans of `part` under `shape`. This is
  /// the unit a shard's cached slice view aggregates over its owned virtual
  /// tids: summing it for vt in [vt_begin, vt_end) prices exactly the share
  /// of a command the shard will execute, whatever the strategy.
  double tid_part_cost(int tid, int part, const PartitionShape& shape) const;

 private:
  SchedulingStrategy strategy_ = SchedulingStrategy::kCyclic;
  int threads_ = 1;
  int partitions_ = 0;
  // Flat span storage; index_[tid * partitions_ + part] = (offset, count).
  std::vector<WorkSpan> spans_;
  std::vector<std::pair<std::size_t, std::size_t>> index_;
  std::vector<double> modeled_cost_;
};

}  // namespace plk
