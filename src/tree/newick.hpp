// Newick tree serialization.
//
// Reads rooted or unrooted Newick strings into plk::Tree (rooted inputs with
// a binary root are unrooted by fusing the two root edges, the standard
// convention for time-reversible likelihood models, under which the root
// placement is irrelevant). Writes the canonical unrooted form with a
// trifurcation at the inner node adjacent to the first taxon.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tree/tree.hpp"

namespace plk {

/// Parse a Newick string. Tips are numbered in order of appearance.
/// Throws std::runtime_error on syntax errors or non-binary topologies.
Tree parse_newick(std::string_view text);

/// Parse a Newick string, forcing tip ids to match `taxon_order` (tip i gets
/// the id of its label's position in `taxon_order`). Throws if the label sets
/// differ.
Tree parse_newick(std::string_view text,
                  const std::vector<std::string>& taxon_order);

/// Serialize to Newick with branch lengths, trailing ";".
std::string write_newick(const Tree& tree, int precision = 6);

}  // namespace plk
