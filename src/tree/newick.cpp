#include "tree/newick.hpp"

#include <cctype>
#include <charconv>
#include <locale>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <unordered_map>

namespace plk {

namespace {

/// Locale-independent double parse of [first, last): returns one past the
/// consumed characters, or `first` on failure. Primary path is
/// std::from_chars; libc++ before LLVM 20 ships only the integral
/// overloads, so the fallback runs a classic-locale istringstream over the
/// delimiter-bounded token (tokens are a handful of characters, so this
/// stays O(1) per number — no whole-tail copies).
const char* parse_double(const char* first, const char* last, double& value) {
#if defined(__cpp_lib_to_chars)
  const auto [ptr, ec] = std::from_chars(first, last, value);
  return ec == std::errc{} ? ptr : first;
#else
  const char* tok_end = first;
  while (tok_end < last && (std::isdigit(static_cast<unsigned char>(*tok_end)) ||
                            *tok_end == '.' || *tok_end == '-' ||
                            *tok_end == '+' || *tok_end == 'e' ||
                            *tok_end == 'E'))
    ++tok_end;
  std::istringstream in(std::string(first, tok_end));
  in.imbue(std::locale::classic());
  if (!(in >> value)) return first;
  if (in.eof()) return tok_end;
  return first + in.tellg();
#endif
}

/// Intermediate rooted parse tree.
struct PNode {
  std::string label;
  double length = 0.1;
  bool has_length = false;
  std::vector<std::unique_ptr<PNode>> children;
  bool is_leaf() const { return children.empty(); }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::unique_ptr<PNode> parse() {
    skip_ws();
    auto root = node();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ';') ++pos_;
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after ';'");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("newick parse error at position " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::unique_ptr<PNode> node() {
    // The grammar recurses once per '(' nesting level; unchecked, a
    // pathological input like "((((((..." overflows the stack long before
    // any later validation sees it. Real trees nest O(taxa) deep at worst,
    // so a fixed generous cap turns the crash into a parse error.
    if (++depth_ > kMaxDepth) fail("nesting depth exceeds 10000");
    auto n = std::make_unique<PNode>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '(') {
      ++pos_;
      for (;;) {
        n->children.push_back(node());
        skip_ws();
        if (pos_ >= s_.size()) fail("unterminated '('");
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ')') {
          ++pos_;
          break;
        }
        fail("expected ',' or ')'");
      }
    }
    skip_ws();
    // Optional label (quoted or bare).
    if (pos_ < s_.size() && s_[pos_] == '\'') {
      ++pos_;
      while (pos_ < s_.size() && s_[pos_] != '\'') n->label += s_[pos_++];
      if (pos_ >= s_.size()) fail("unterminated quoted label");
      ++pos_;
    } else {
      while (pos_ < s_.size() && !strchr_tok(s_[pos_]))
        n->label += s_[pos_++];
    }
    skip_ws();
    // Optional branch length. std::from_chars is locale-independent (the
    // Newick grammar is always C-locale: '.' decimal point, optional
    // exponent) and consumes the number in place — no copy of the remaining
    // input, no O(n^2) blowup on large trees, no misparse under a
    // comma-decimal global locale.
    if (pos_ < s_.size() && s_[pos_] == ':') {
      ++pos_;
      skip_ws();
      const char* first = s_.data() + pos_;
      const char* last = s_.data() + s_.size();
      // from_chars rejects a leading '+' (stod accepted it); skip it only
      // when a number actually follows, so '+-1.5' still fails below.
      if (first + 1 < last && *first == '+' &&
          (std::isdigit(static_cast<unsigned char>(first[1])) ||
           first[1] == '.'))
        ++first;
      double value = 0.0;
      const char* ptr = parse_double(first, last, value);
      if (ptr == first) fail("malformed branch length");
      n->length = value;
      n->has_length = true;
      pos_ = static_cast<std::size_t>(ptr - s_.data());
    }
    --depth_;
    return n;
  }

  static constexpr int kMaxDepth = 10000;

  static bool strchr_tok(char c) {
    return c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
           std::isspace(static_cast<unsigned char>(c));
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void collect_tips(const PNode* n, std::vector<const PNode*>& tips) {
  if (n->is_leaf()) {
    tips.push_back(n);
    return;
  }
  for (const auto& c : n->children) collect_tips(c.get(), tips);
}

/// Recursively emit edges; returns the plk node id of `n`.
struct Builder {
  std::unordered_map<const PNode*, NodeId> tip_ids;
  std::vector<Tree::Edge> edges;
  NodeId next_inner;

  NodeId build(const PNode* n) {
    if (n->is_leaf()) return tip_ids.at(n);
    if (n->children.size() != 2)
      throw std::runtime_error("newick: non-binary inner node (degree " +
                               std::to_string(n->children.size() + 1) + ")");
    const NodeId me = next_inner++;
    for (const auto& c : n->children) {
      const NodeId cid = build(c.get());
      edges.push_back(Tree::Edge{me, cid, c->length});
    }
    return me;
  }
};

Tree build_tree(std::unique_ptr<PNode> root,
                const std::vector<std::string>* taxon_order) {
  std::vector<const PNode*> tips;
  collect_tips(root.get(), tips);
  const int n = static_cast<int>(tips.size());
  if (n < 2) throw std::runtime_error("newick: fewer than 2 taxa");

  std::vector<std::string> labels(static_cast<std::size_t>(n));
  std::unordered_map<const PNode*, NodeId> tip_ids;
  if (taxon_order) {
    if (static_cast<int>(taxon_order->size()) != n)
      throw std::runtime_error("newick: taxon count does not match order");
    std::unordered_map<std::string, NodeId> by_name;
    for (NodeId i = 0; i < n; ++i)
      if (!by_name.emplace((*taxon_order)[static_cast<std::size_t>(i)], i)
               .second)
        throw std::runtime_error("newick: duplicate taxon in order");
    for (const PNode* t : tips) {
      auto it = by_name.find(t->label);
      if (it == by_name.end())
        throw std::runtime_error("newick: unknown taxon '" + t->label + "'");
      tip_ids[t] = it->second;
      labels[static_cast<std::size_t>(it->second)] = t->label;
    }
    if (tip_ids.size() != static_cast<std::size_t>(n))
      throw std::runtime_error("newick: duplicate taxon label");
  } else {
    for (NodeId i = 0; i < n; ++i) {
      if (tips[static_cast<std::size_t>(i)]->label.empty())
        throw std::runtime_error("newick: unlabeled tip");
      tip_ids[tips[static_cast<std::size_t>(i)]] = i;
      labels[static_cast<std::size_t>(i)] =
          tips[static_cast<std::size_t>(i)]->label;
    }
  }

  if (n == 2) {
    double len = 0.0;
    for (const auto& c : root->children) len += c->length;
    if (root->children.empty())
      throw std::runtime_error("newick: 2 taxa require a root with children");
    return Tree::from_edges(std::move(labels), {Tree::Edge{0, 1, len}});
  }

  Builder b;
  b.tip_ids = std::move(tip_ids);
  b.next_inner = n;

  const std::size_t deg = root->children.size();
  if (deg == 3) {
    const NodeId me = b.next_inner++;
    for (const auto& c : root->children) {
      const NodeId cid = b.build(c.get());
      b.edges.push_back(Tree::Edge{me, cid, c->length});
    }
  } else if (deg == 2) {
    // Rooted input: fuse the two root edges into one.
    const NodeId l = b.build(root->children[0].get());
    const NodeId r = b.build(root->children[1].get());
    b.edges.push_back(Tree::Edge{
        l, r, root->children[0]->length + root->children[1]->length});
  } else {
    throw std::runtime_error("newick: root must have degree 2 or 3, has " +
                             std::to_string(deg));
  }
  return Tree::from_edges(std::move(labels), std::move(b.edges));
}

void write_subtree(const Tree& t, NodeId v, EdgeId via, std::ostream& out,
                   int precision) {
  if (t.is_tip(v)) {
    out << t.label(v);
  } else {
    out << '(';
    bool first = true;
    for (EdgeId e : t.edges_of(v)) {
      if (e == via) continue;
      if (!first) out << ',';
      first = false;
      write_subtree(t, t.other_end(e, v), e, out, precision);
    }
    out << ')';
  }
  out << ':';
  out.precision(precision);
  out << t.length(via);
}

}  // namespace

Tree parse_newick(std::string_view text) {
  Parser p(text);
  return build_tree(p.parse(), nullptr);
}

Tree parse_newick(std::string_view text,
                  const std::vector<std::string>& taxon_order) {
  Parser p(text);
  return build_tree(p.parse(), &taxon_order);
}

std::string write_newick(const Tree& tree, int precision) {
  std::ostringstream out;
  // Branch lengths must serialize with '.' regardless of the global locale
  // (an imbued comma-decimal locale would emit Newick no parser accepts).
  out.imbue(std::locale::classic());
  if (tree.tip_count() == 2) {
    out.precision(precision);
    out << '(' << tree.label(0) << ':' << tree.length(0) << ','
        << tree.label(1) << ":0);";
    return out.str();
  }
  // Root the output at the inner node adjacent to tip 0.
  const EdgeId pend = tree.edges_of(0).front();
  const NodeId root = tree.other_end(pend, 0);
  out << '(';
  out << tree.label(0) << ':';
  out.precision(precision);
  out << tree.length(pend);
  for (EdgeId e : tree.edges_of(root)) {
    if (e == pend) continue;
    out << ',';
    write_subtree(tree, tree.other_end(e, root), e, out, precision);
  }
  out << ");";
  return out.str();
}

}  // namespace plk
