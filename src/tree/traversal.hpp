// Tree traversal orderings.
#pragma once

#include <vector>

#include "tree/tree.hpp"

namespace plk {

/// All edges in depth-first order starting from `start_node` (default: tip
/// 0). Consecutive edges share a node, so iterating branch-length
/// optimization in this order keeps virtual-root relocations short (few CLV
/// re-orientations per step) — the same locality RAxML's smoothing pass
/// exploits.
std::vector<EdgeId> dfs_edge_order(const Tree& tree, NodeId start_node = 0);

/// Edges within `radius` edge-hops of `center`, excluding `center` itself
/// and (optionally) everything on the `forbidden_side` of it. Used for
/// radius-bounded SPR target enumeration.
std::vector<EdgeId> edges_within_radius(const Tree& tree, EdgeId center,
                                        int radius,
                                        NodeId forbidden_side = kNoId);

}  // namespace plk
