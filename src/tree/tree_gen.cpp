#include "tree/tree_gen.hpp"

#include <stdexcept>

namespace plk {

std::vector<std::string> default_labels(int n_taxa) {
  std::vector<std::string> labels;
  labels.reserve(static_cast<std::size_t>(n_taxa));
  for (int i = 1; i <= n_taxa; ++i) labels.push_back("t" + std::to_string(i));
  return labels;
}

Tree random_tree(std::vector<std::string> labels, Rng& rng,
                 const TreeGenOptions& opts) {
  const int n = static_cast<int>(labels.size());
  if (n < 3) throw std::invalid_argument("random_tree needs >= 3 taxa");

  auto blen = [&] {
    double b = rng.exponential(1.0 / opts.mean_branch_length);
    return b < opts.min_branch_length ? opts.min_branch_length : b;
  };

  // Start with the 3-taxon star: inner node n joined to tips 0,1,2.
  std::vector<Tree::Edge> edges;
  edges.reserve(static_cast<std::size_t>(2 * n - 3));
  NodeId next_inner = n;
  const NodeId hub = next_inner++;
  for (NodeId t = 0; t < 3; ++t)
    edges.push_back(Tree::Edge{hub, t, blen()});

  // Attach each remaining taxon to a uniformly chosen existing edge.
  for (NodeId t = 3; t < n; ++t) {
    const std::size_t pick = static_cast<std::size_t>(rng.below(edges.size()));
    const Tree::Edge old = edges[pick];
    const NodeId mid = next_inner++;
    // Split the picked edge at `mid` (approximately preserving its total
    // length, subject to the minimum-length clamp).
    const double split = rng.uniform(0.2, 0.8);
    auto clamp = [&](double b) {
      return b < opts.min_branch_length ? opts.min_branch_length : b;
    };
    edges[pick] = Tree::Edge{old.a, mid, clamp(old.length * split)};
    edges.push_back(Tree::Edge{mid, old.b, clamp(old.length * (1.0 - split))});
    edges.push_back(Tree::Edge{mid, t, blen()});
  }
  return Tree::from_edges(std::move(labels), std::move(edges));
}

Tree random_tree(int n_taxa, Rng& rng, const TreeGenOptions& opts) {
  return random_tree(default_labels(n_taxa), rng, opts);
}

}  // namespace plk
