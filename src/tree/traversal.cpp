#include "tree/traversal.hpp"

namespace plk {

namespace {

void dfs_edges(const Tree& t, NodeId v, EdgeId via, std::vector<EdgeId>& out) {
  for (EdgeId e : t.edges_of(v)) {
    if (e == via) continue;
    out.push_back(e);
    dfs_edges(t, t.other_end(e, v), e, out);
  }
}

}  // namespace

std::vector<EdgeId> dfs_edge_order(const Tree& tree, NodeId start_node) {
  std::vector<EdgeId> out;
  out.reserve(static_cast<std::size_t>(tree.edge_count()));
  dfs_edges(tree, start_node, kNoId, out);
  return out;
}

std::vector<EdgeId> edges_within_radius(const Tree& tree, EdgeId center,
                                        int radius, NodeId forbidden_side) {
  std::vector<EdgeId> out;
  std::vector<char> seen(static_cast<std::size_t>(tree.edge_count()), 0);
  seen[static_cast<std::size_t>(center)] = 1;

  // Frontier of (node, depth) pairs expanding outward from the center edge.
  std::vector<std::pair<NodeId, int>> frontier;
  for (NodeId v : {tree.edge(center).a, tree.edge(center).b}) {
    if (v == forbidden_side) continue;
    frontier.emplace_back(v, 0);
  }
  while (!frontier.empty()) {
    const auto [v, depth] = frontier.back();
    frontier.pop_back();
    if (depth >= radius) continue;
    for (EdgeId e : tree.edges_of(v)) {
      if (seen[static_cast<std::size_t>(e)]) continue;
      seen[static_cast<std::size_t>(e)] = 1;
      out.push_back(e);
      frontier.emplace_back(tree.other_end(e, v), depth + 1);
    }
  }
  return out;
}

}  // namespace plk
