#include "tree/rf_distance.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace plk {

namespace {

/// Fill `bits` with the tips on the `v` side of edge `e` (walking away
/// from `away`).
void collect_side(const Tree& t, NodeId v, EdgeId via, Bipartition& bits) {
  if (t.is_tip(v)) {
    bits[static_cast<std::size_t>(v) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(v) % 64);
    return;
  }
  for (EdgeId e : t.edges_of(v)) {
    if (e == via) continue;
    collect_side(t, t.other_end(e, v), e, bits);
  }
}

}  // namespace

std::vector<Bipartition> bipartitions(const Tree& t) {
  const std::size_t words = (static_cast<std::size_t>(t.tip_count()) + 63) / 64;
  std::vector<Bipartition> out;
  for (EdgeId e = 0; e < t.edge_count(); ++e) {
    if (!t.is_internal_edge(e)) continue;  // trivial bipartitions are shared
    Bipartition bits(words, 0);
    collect_side(t, t.edge(e).a, e, bits);
    // Canonicalize: store the side containing tip 0.
    if ((bits[0] & 1u) == 0)
      for (std::size_t w = 0; w < words; ++w) bits[w] = ~bits[w];
    // Mask off padding bits beyond tip_count.
    const std::size_t rem = static_cast<std::size_t>(t.tip_count()) % 64;
    if (rem != 0) bits[words - 1] &= (std::uint64_t{1} << rem) - 1;
    out.push_back(std::move(bits));
  }
  return out;
}

int rf_distance(const Tree& a, const Tree& b) {
  if (a.tip_count() != b.tip_count())
    throw std::invalid_argument("rf_distance: different taxon counts");
  auto ba = bipartitions(a);
  auto bb = bipartitions(b);
  std::set<Bipartition> sa(ba.begin(), ba.end());
  std::set<Bipartition> sb(bb.begin(), bb.end());
  int only = 0;
  for (const auto& x : sa)
    if (!sb.count(x)) ++only;
  for (const auto& x : sb)
    if (!sa.count(x)) ++only;
  return only;
}

double rf_normalized(const Tree& a, const Tree& b) {
  const int n = a.tip_count();
  if (n <= 3) return 0.0;
  return static_cast<double>(rf_distance(a, b)) /
         static_cast<double>(2 * (n - 3));
}

}  // namespace plk
