#include "tree/tree.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace plk {

NodeId Tree::other_end(EdgeId e, NodeId v) const {
  const Edge& ed = edges_[e];
  if (ed.a == v) return ed.b;
  if (ed.b == v) return ed.a;
  throw std::logic_error("other_end: node is not an endpoint of edge");
}

EdgeId Tree::find_edge(NodeId u, NodeId v) const {
  for (EdgeId e : adjacency_[u])
    if (other_end(e, u) == v) return e;
  return kNoId;
}

Tree Tree::from_edges(std::vector<std::string> tip_labels,
                      std::vector<Edge> edges) {
  Tree t;
  t.tip_count_ = static_cast<int>(tip_labels.size());
  t.labels_ = std::move(tip_labels);
  t.edges_ = std::move(edges);
  const int n_nodes = 2 * t.tip_count_ - 2;
  t.adjacency_.assign(static_cast<std::size_t>(n_nodes), {});
  for (EdgeId e = 0; e < t.edge_count(); ++e) {
    const Edge& ed = t.edges_[static_cast<std::size_t>(e)];
    if (ed.a < 0 || ed.a >= n_nodes || ed.b < 0 || ed.b >= n_nodes)
      throw std::invalid_argument("edge endpoint out of range");
    t.adjacency_[static_cast<std::size_t>(ed.a)].push_back(e);
    t.adjacency_[static_cast<std::size_t>(ed.b)].push_back(e);
  }
  t.validate();
  return t;
}

void Tree::validate() const {
  if (tip_count_ < 2) throw std::logic_error("tree needs >= 2 tips");
  if (tip_count_ == 2) {
    if (edge_count() != 1) throw std::logic_error("2-taxon tree needs 1 edge");
    return;
  }
  if (edge_count() != 2 * tip_count_ - 3)
    throw std::logic_error("edge count != 2n-3");
  for (NodeId v = 0; v < node_count(); ++v) {
    const std::size_t deg = adjacency_[static_cast<std::size_t>(v)].size();
    if (is_tip(v) && deg != 1)
      throw std::logic_error("tip with degree != 1");
    if (!is_tip(v) && deg != 3)
      throw std::logic_error("inner node with degree != 3");
  }
  // Connectivity: BFS from node 0 must reach every node.
  std::vector<char> seen(static_cast<std::size_t>(node_count()), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  int reached = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (EdgeId e : adjacency_[static_cast<std::size_t>(v)]) {
      const NodeId w = other_end(e, v);
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        ++reached;
        q.push(w);
      }
    }
  }
  if (reached != node_count()) throw std::logic_error("tree is disconnected");
  for (EdgeId e = 0; e < edge_count(); ++e)
    if (!(edges_[static_cast<std::size_t>(e)].length >= 0.0))
      throw std::logic_error("negative or NaN branch length");
}

void Tree::reattach(EdgeId e, NodeId from, NodeId to) {
  Edge& ed = edges_[static_cast<std::size_t>(e)];
  if (ed.a == from)
    ed.a = to;
  else if (ed.b == from)
    ed.b = to;
  else
    throw std::logic_error("reattach: 'from' is not an endpoint");
  auto& from_adj = adjacency_[static_cast<std::size_t>(from)];
  from_adj.erase(std::find(from_adj.begin(), from_adj.end(), e));
  adjacency_[static_cast<std::size_t>(to)].push_back(e);
}

void Tree::restore_adjacency_order(NodeId v, const std::vector<EdgeId>& order) {
  auto& adj = adjacency_[static_cast<std::size_t>(v)];
  if (order.size() != adj.size())
    throw std::logic_error("restore_adjacency_order: size mismatch");
  for (EdgeId e : order)
    if (std::find(adj.begin(), adj.end(), e) == adj.end())
      throw std::logic_error(
          "restore_adjacency_order: not a permutation of the current edges");
  adj = order;
}

std::vector<NodeId> Tree::path_between_edges(EdgeId from, EdgeId to) const {
  if (from == to) return {};
  // BFS over nodes from both endpoints of `from` until an endpoint of `to`
  // is reached; reconstruct the node path.
  std::vector<NodeId> parent(static_cast<std::size_t>(node_count()), kNoId);
  std::vector<char> seen(static_cast<std::size_t>(node_count()), 0);
  std::queue<NodeId> q;
  for (NodeId v : {edges_[static_cast<std::size_t>(from)].a,
                   edges_[static_cast<std::size_t>(from)].b}) {
    seen[static_cast<std::size_t>(v)] = 1;
    q.push(v);
  }
  const NodeId ta = edges_[static_cast<std::size_t>(to)].a;
  const NodeId tb = edges_[static_cast<std::size_t>(to)].b;
  NodeId hit = kNoId;
  while (!q.empty() && hit == kNoId) {
    const NodeId v = q.front();
    q.pop();
    if (v == ta || v == tb) {
      hit = v;
      break;
    }
    for (EdgeId e : adjacency_[static_cast<std::size_t>(v)]) {
      if (e == to) continue;  // do not walk across the target edge
      const NodeId w = other_end(e, v);
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        parent[static_cast<std::size_t>(w)] = v;
        q.push(w);
      }
    }
  }
  std::vector<NodeId> path;
  for (NodeId v = hit; v != kNoId; v = parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  return path;
}

double Tree::total_length() const {
  double s = 0.0;
  for (const Edge& e : edges_) s += e.length;
  return s;
}

}  // namespace plk
