// Random tree generation for simulation studies and tests.
#pragma once

#include <string>
#include <vector>

#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plk {

/// Options for random tree generation.
struct TreeGenOptions {
  /// Branch lengths are drawn i.i.d. exponential with this mean
  /// (expected substitutions per site; 0.1 is a typical empirical scale).
  double mean_branch_length = 0.1;
  /// Lower clamp applied to sampled branch lengths.
  double min_branch_length = 1e-4;
};

/// Generate a uniform random unrooted binary topology over the given labels
/// by sequential random edge attachment (each taxon is attached to an edge
/// chosen uniformly at random — the "random addition order" process).
Tree random_tree(std::vector<std::string> labels, Rng& rng,
                 const TreeGenOptions& opts = {});

/// Convenience: labels "t1".."tn".
Tree random_tree(int n_taxa, Rng& rng, const TreeGenOptions& opts = {});

/// Generate default labels "t1".."tn".
std::vector<std::string> default_labels(int n_taxa);

}  // namespace plk
