// Unrooted binary phylogenetic trees.
//
// A tree over n taxa has n tip nodes (degree 1), n-2 inner nodes (degree 3),
// and 2n-3 edges. Tips are nodes [0, n); inner nodes are [n, 2n-2). The tree
// is mutable: NNI and SPR moves (tree search) rewire edges in place, keeping
// node and edge ids stable so that per-node likelihood buffers owned by the
// engine survive topology changes.
//
// Each edge carries a single "default" branch length; analyses with
// per-partition branch lengths expand these into a matrix (see
// core/branch_lengths.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace plk {

using NodeId = int;
using EdgeId = int;
inline constexpr int kNoId = -1;

/// An unrooted tree with named tips and per-edge default branch lengths.
class Tree {
 public:
  struct Edge {
    NodeId a = kNoId;
    NodeId b = kNoId;
    double length = 0.1;
  };

  Tree() = default;

  /// Number of taxa (tips).
  int tip_count() const { return tip_count_; }
  /// Total nodes: 2n - 2.
  int node_count() const { return static_cast<int>(adjacency_.size()); }
  /// Total edges: 2n - 3.
  int edge_count() const { return static_cast<int>(edges_.size()); }

  bool is_tip(NodeId v) const { return v < tip_count_; }
  const std::string& label(NodeId tip) const { return labels_[tip]; }
  const std::vector<std::string>& labels() const { return labels_; }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  double length(EdgeId e) const { return edges_[e].length; }
  void set_length(EdgeId e, double len) { edges_[e].length = len; }

  /// Edge ids incident to `v` (1 for tips, 3 for inner nodes).
  const std::vector<EdgeId>& edges_of(NodeId v) const { return adjacency_[v]; }

  /// The endpoint of `e` that is not `v`; `v` must be an endpoint.
  NodeId other_end(EdgeId e, NodeId v) const;

  /// The edge joining u and v, or kNoId if they are not adjacent.
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// True if both endpoints of `e` are inner nodes.
  bool is_internal_edge(EdgeId e) const {
    return !is_tip(edges_[e].a) && !is_tip(edges_[e].b);
  }

  /// Build a tree from an explicit edge list over nodes laid out as
  /// described in the file header. Validates degrees.
  static Tree from_edges(std::vector<std::string> tip_labels,
                         std::vector<Edge> edges);

  /// Check structural invariants (degrees, connectivity); throws on failure.
  void validate() const;

  // --- topology surgery (used by NNI/SPR; see search/) -------------------

  /// Replace endpoint `from` of edge `e` with `to`, updating adjacency.
  /// The edge is appended to `to`'s adjacency list, so a reattach round trip
  /// ROTATES list order; surgery that must undo exactly (speculative SPR
  /// scoring) snapshots the affected lists and restores them afterwards.
  void reattach(EdgeId e, NodeId from, NodeId to);

  /// Restore a node's adjacency-list order from a snapshot taken before
  /// surgery. `order` must be a permutation of the node's current incident
  /// edges (throws std::logic_error otherwise). Traversal and surgery code
  /// consume edges_of() in list order, so an exact topological undo is only
  /// side-effect-free if the order is restored too.
  void restore_adjacency_order(NodeId v, const std::vector<EdgeId>& order);

  /// Nodes on the path between the midpoint of edge `from` and the midpoint
  /// of edge `to` (inclusive of endpoints of both edges).
  std::vector<NodeId> path_between_edges(EdgeId from, EdgeId to) const;

  /// Sum of all branch lengths.
  double total_length() const;

 private:
  int tip_count_ = 0;
  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace plk
