// Robinson–Foulds (symmetric bipartition) distance between unrooted trees.
//
// Used to verify that tree searches recover simulation truth and to compare
// search results across parallelization strategies.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace plk {

/// A tip-set bipartition encoded as a bitset over tip ids, canonicalized so
/// that the side containing tip 0 is stored.
using Bipartition = std::vector<std::uint64_t>;

/// All non-trivial bipartitions (one per internal edge) of `t`.
std::vector<Bipartition> bipartitions(const Tree& t);

/// Robinson–Foulds distance: number of bipartitions present in exactly one
/// of the two trees. Trees must share the same tip ids (use parse_newick
/// with a taxon order, or identical label vectors). Max value is 2(n-3).
int rf_distance(const Tree& a, const Tree& b);

/// Normalized RF in [0, 1]: rf / (2n - 6). Returns 0 for n <= 3.
double rf_normalized(const Tree& a, const Tree& b);

}  // namespace plk
