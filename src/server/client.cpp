#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace plk {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

}  // namespace

PlacementClient::~PlacementClient() { close(); }

bool PlacementClient::connect(const std::string& host, int port,
                              std::string* error) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, "socket() failed");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    set_error(error, "bad IPv4 address: " + host);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    set_error(error, std::string("connect() failed: ") + std::strerror(e));
    return false;
  }
  fd_ = fd;
  in_ = LineBuffer();
  return true;
}

void PlacementClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool PlacementClient::send_line(const std::string& line, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      set_error(error, std::string("send() failed: ") + std::strerror(errno));
      close();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<WireMessage> PlacementClient::read_message(std::string* error) {
  while (true) {
    if (auto line = in_.next_line()) {
      if (line->oversized) {
        set_error(error, "oversized response line");
        return std::nullopt;
      }
      std::string perr;
      auto msg = WireMessage::parse(line->text, &perr);
      if (!msg) {
        set_error(error, "bad response: " + perr);
        return std::nullopt;
      }
      return msg;
    }
    if (fd_ < 0) {
      set_error(error, "not connected");
      return std::nullopt;
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      in_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    set_error(error, n == 0 ? "connection closed by server"
                            : std::string("recv() failed: ") +
                                  std::strerror(errno));
    close();
    return std::nullopt;
  }
}

std::optional<WireMessage> PlacementClient::request(const WireMessage& msg,
                                                    std::string* error) {
  if (!send_line(msg.serialize() + "\n", error)) return std::nullopt;
  return read_message(error);
}

bool PlacementClient::send_place(const std::string& id, const std::string& seq,
                                 std::string* error) {
  WireMessage m;
  m.set("op", "place");
  m.set("id", id);
  m.set("seq", seq);
  return send_line(m.serialize() + "\n", error);
}

bool PlacementClient::send_raw(const std::string& bytes, std::string* error) {
  return send_line(bytes, error);
}

std::optional<WireMessage> PlacementClient::hello(std::string* error) {
  WireMessage m;
  m.set("op", "hello");
  m.set("client", "plk");
  return request(m, error);
}

std::optional<WireMessage> PlacementClient::stats(std::string* error) {
  WireMessage m;
  m.set("op", "stats");
  return request(m, error);
}

std::optional<WireMessage> PlacementClient::place(const std::string& id,
                                                  const std::string& seq,
                                                  std::string* error) {
  WireMessage m;
  m.set("op", "place");
  m.set("id", id);
  m.set("seq", seq);
  return request(m, error);
}

void PlacementClient::quit() {
  if (fd_ < 0) return;
  WireMessage m;
  m.set("op", "quit");
  send_line(m.serialize() + "\n", nullptr);
  // Best-effort read of the quit ack so the server sees an orderly close.
  read_message(nullptr);
  close();
}

}  // namespace plk
