// plkserved's transport layer: a single-threaded poll() event loop that
// shares its thread with the PlacementEngine it fronts (the engine core's
// master-thread discipline makes this mandatory, not a style choice —
// every public EngineCore entry point must run on one thread).
//
// The loop per step: accept new connections (admission control rejects at
// the door once max_sessions is reached), read request lines from sessions,
// feed `place` requests into the engine queue, pump the engine (ONE merged
// wave set across every active lane), deliver banked results back onto the
// sessions that asked, and flush outbound buffers. Backpressure is applied
// where a stream server must: while the engine queue is full the loop stops
// POLLIN-ing sessions, so unread requests stay in the kernel socket buffer
// and TCP flow control pushes back on the clients — no unbounded queues
// anywhere in the server.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "server/placement.hpp"
#include "server/session.hpp"

namespace plk {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";  ///< IPv4 dotted quad
  int port = 0;                            ///< 0 = ephemeral (see port())
  std::size_t max_sessions = 64;
  /// Write the engine checkpoint every N placements (0 = only at shutdown).
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
};

/// The placement daemon's socket front end over a started PlacementEngine.
/// Construct, open(), then either run() (blocking loop with a stop flag)
/// or call step() yourself (tests drive the loop directly).
class PlkServer {
 public:
  PlkServer(PlacementEngine& engine, const ServerOptions& opts);
  ~PlkServer();

  PlkServer(const PlkServer&) = delete;
  PlkServer& operator=(const PlkServer&) = delete;

  /// Bind + listen. Throws std::runtime_error on socket failure.
  void open();
  /// The bound port (resolves option port 0 to the kernel's choice).
  int port() const { return port_; }

  /// One event-loop iteration: poll up to timeout_ms (0 = nonblocking),
  /// then accept/read/pump/deliver/flush. Returns true if anything
  /// happened. Must be called from the engine's master thread.
  bool step(int timeout_ms);

  /// Loop step() until `stop` becomes true, then drain gracefully:
  /// abort queued queries, deliver the failures, flush sockets, write the
  /// final checkpoint, close everything. Returns 0 on a clean stop, 1 if
  /// the loop died on an exception.
  int run(const std::atomic<bool>& stop);

  /// The graceful drain run() performs; callable directly by tests.
  void shutdown(const std::string& reason);

  std::size_t session_count() const { return sessions_.size(); }
  const ServerStats& stats() const { return stats_; }
  const RollingLatency& latency() const { return latency_; }

 private:
  struct TicketInfo {
    std::uint64_t session_id = 0;
    std::string request_id;
    bool has_id = false;
    /// Top-k candidates requested via the optional "rank" field (0 = none).
    int rank = 0;
    std::chrono::steady_clock::time_point start;
  };

  void accept_new();
  /// Drain the session's socket into its LineBuffer and handle complete
  /// lines. Returns false if the session was closed/dropped.
  bool read_session(Session& s);
  /// Handle complete lines already buffered for the session, stopping when
  /// the engine queue fills or the session starts closing. Returns true if
  /// at least one line was consumed. Called from read_session and again
  /// from step() after waves drain (poll cannot re-fire for bytes that
  /// were already moved to userspace).
  bool process_buffered(Session& s);
  void handle_line(Session& s, const std::string& text, bool oversized);
  void respond(Session& s, const WireMessage& msg);
  void deliver_results();
  /// Push the session's out buffer into the socket; drops the session on a
  /// hard write error. Returns false if the session went away.
  bool flush_out(Session& s);
  void close_session(int fd, bool dropped);
  void maybe_checkpoint();
  WireMessage stats_message();

  PlacementEngine& engine_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  /// Idle descriptor released-then-reacquired so accept() can drain the
  /// backlog (accept + close) during EMFILE/ENFILE instead of spinning.
  int reserve_fd_ = -1;
  int port_ = 0;
  SessionRegistry sessions_;
  ServerStats stats_;
  RollingLatency latency_;
  std::unordered_map<std::uint64_t, TicketInfo> tickets_;
  std::uint64_t last_ckpt_placed_ = 0;
};

}  // namespace plk
