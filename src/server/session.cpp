#include "server/session.hpp"

#include <algorithm>
#include <cmath>

namespace plk {

Session& SessionRegistry::open(int fd) {
  Session& s = sessions_[fd];
  s.fd = fd;
  s.id = next_id_++;
  return s;
}

Session* SessionRegistry::find(int fd) {
  const auto it = sessions_.find(fd);
  return it == sessions_.end() ? nullptr : &it->second;
}

Session* SessionRegistry::find_by_id(std::uint64_t id) {
  for (auto& [fd, s] : sessions_)
    if (s.id == id) return &s;
  return nullptr;
}

void SessionRegistry::erase(int fd) { sessions_.erase(fd); }

void RollingLatency::record(double ms) {
  if (ring_.empty()) return;
  ring_[head_] = ms;
  head_ = (head_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
  ++count_;
}

double RollingLatency::percentile(double p) const {
  if (filled_ == 0) return 0.0;
  std::vector<double> v(ring_.begin(),
                        ring_.begin() + static_cast<std::ptrdiff_t>(filled_));
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::size_t k = std::min(
      filled_ - 1,
      static_cast<std::size_t>(std::floor(clamped / 100.0 *
                                          static_cast<double>(filled_ - 1) +
                                          0.5)));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[static_cast<std::ptrdiff_t>(k)];
}

}  // namespace plk
