// Streaming phylogenetic placement on the EngineCore batching front door.
//
// The server-side problem: a fixed reference alignment + ML tree, and an
// open-ended stream of query sequences, each asking "which edge of the
// reference tree does this sequence attach to, and with what likelihood?".
// Placing one query is a mini SPR scan — materialize the query on each
// candidate edge, locally optimize the three branches at the insertion
// point, evaluate — and scoring queries one at a time would spend the whole
// engine on barrier waits, exactly the failure mode the batched candidate
// scorer (search/candidate_batch.hpp) exists to fix.
//
// PlacementEngine therefore turns queries into *lanes* that share lockstep
// waves:
//
//   * The engine core is built over the reference alignment plus `lanes`
//     all-gap "query slot" taxa. All-gap rows preserve the reference's
//     pattern compression (a gap column constraint is absorbed into every
//     existing pattern), and EngineCore::set_taxon_masks() re-encodes a
//     slot's per-pattern state masks per query in O(patterns).
//   * Each lane owns a long-lived parent EvalContext over the reference
//     tree with the lane's slot tip grafted onto a fixed "park" edge, and
//     the context is permanently rooted at the slot tip's pendant edge.
//     With that orientation NO inner CLV includes the slot tip's data, so
//     rewriting the slot's codes invalidates nothing: the parent's CLVs are
//     computed once at service start and never again.
//   * Placing a query = encode it against the reference compression, rank
//     the reference edges with the directed-Fitch parsimony prefilter
//     (parsimony/fitch.hpp), and score the best `max_candidates` edges as
//     overlay graft candidates (CandidateScorer::stage_graft): an SPR of
//     the pendant edge onto each candidate edge, or the in-place form for
//     the park edge itself. Candidates from EVERY active lane merge into
//     shared waves, so a pump over L lanes x K candidates costs the
//     synchronization of roughly ONE sequential candidate.
//
// Determinism: per candidate the wave protocol's arithmetic is independent
// of wave composition (the candidate-batch equivalence the repo's tier-1
// tests pin down), lane trees are identical in shape (same node/edge ids)
// and share one pinned model state, and the parsimony prefilter is a pure
// function of the query — so a placement's (edge, lnL) is bit-identical
// whether the query was scored alone or merged into waves with dozens of
// concurrent strangers, at the same (threads, shards). place_sequential()
// IS that reference path; tests/test_server.cpp holds the two equal.
//
// Master-thread discipline: like the core it drives, a PlacementEngine is
// single-threaded — the server's socket loop and the engine share one
// thread, and concurrency comes from wave batching, not from threads.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bio/alignment.hpp"
#include "bio/partition.hpp"
#include "bio/patterns.hpp"
#include "core/branch_opt.hpp"
#include "core/engine_core.hpp"
#include "core/model_opt.hpp"
#include "core/strategy.hpp"
#include "parsimony/fitch.hpp"
#include "search/candidate_batch.hpp"
#include "tree/tree.hpp"

namespace plk {

/// Placement-service configuration.
struct PlacementOptions {
  /// Query slots: the number of queries scored concurrently per wave set.
  int lanes = 8;
  /// Candidate edges kept by the parsimony prefilter per query (clamped to
  /// the reference edge count).
  int max_candidates = 8;
  /// Submitted-but-unassigned queries held before submit() refuses (the
  /// server turns a full queue into socket backpressure).
  std::size_t max_queue = 1024;
  /// Starting pendant branch length for a parked query tip.
  double pendant_start = 0.1;
  Strategy strategy = Strategy::kNewPar;
  /// Local 3-edge optimization at each insertion point (mirrors the search
  /// scorer's local_branch_opts).
  BranchOptOptions local_opts{/*max_nr_iterations=*/8,
                              /*length_tolerance=*/1e-4,
                              /*smoothing_passes=*/1};
  /// Startup optimization of the reference context (skipped on a warm
  /// restart from a checkpoint).
  BranchOptOptions startup_branch_opts{};
  ModelOptOptions model_opts{};
  bool optimize_models = true;
  /// Wave sizing for each lane's scorer; max_batch is raised to
  /// max_candidates automatically so one query always fits one wave.
  CandidateBatchOptions batch{};
};

/// Service counters (monotonic; the server adds transport-level stats).
struct PlacementStats {
  std::uint64_t submitted = 0;   ///< queries accepted by submit()
  std::uint64_t placed = 0;      ///< results produced (ok or failed)
  std::uint64_t failed = 0;      ///< results that carry an error
  std::uint64_t waves = 0;       ///< merged wave sets flushed
  std::uint64_t wave_items = 0;  ///< candidates scored across all waves
  std::uint64_t wave_lanes = 0;  ///< lane participations across all waves
};

/// One scored candidate, as harvested from a lane.
struct RankedCandidate {
  EdgeId edge = kNoId;
  double lnl = 0.0;
  double pendant_length = 0.0;  ///< optimized pendant length (partition mean)
};

/// One placement outcome.
struct PlacementResult {
  bool ok = false;
  std::string error;
  EdgeId edge = kNoId;        ///< best reference edge
  double lnl = 0.0;           ///< candidate lnL at that edge
  double pendant_length = 0;  ///< optimized pendant length (partition mean)
  int candidates = 0;         ///< candidates actually scored
  /// Every scored candidate, best first (lnL descending, edge id ascending
  /// on ties); ranked[0] mirrors (edge, lnl, pendant_length). Lets the
  /// server answer "rank": k requests without re-scoring.
  std::vector<RankedCandidate> ranked;
};

/// The placement service engine. Construction builds the core (reference +
/// slot taxa) and the reference context; then either warm_restart() or
/// optimize_reference() readies the model state, and start_service() builds
/// the lanes. Queries flow submit() -> pump() -> drain_ready().
class PlacementEngine {
 public:
  PlacementEngine(const Alignment& reference, const PartitionScheme& scheme,
                  Tree reference_tree, const PlacementOptions& opts = {},
                  const EngineOptions& engine_opts = {});
  ~PlacementEngine();

  PlacementEngine(const PlacementEngine&) = delete;
  PlacementEngine& operator=(const PlacementEngine&) = delete;

  // --- startup --------------------------------------------------------------

  /// Restore reference models + branch lengths from a checkpoint file
  /// (core/checkpoint.hpp ring). Returns false — leaving the engine ready
  /// for optimize_reference() — when the file is missing or unreadable.
  bool warm_restart(const std::string& checkpoint_path);

  /// Optimize reference branch lengths (and models, per options) on the
  /// fixed reference topology. Returns the final reference lnL.
  double optimize_reference();

  /// Build the lanes (slot grafts, permanent pendant rooting, service pin)
  /// and the parsimony prefilter. Must be called once, after warm_restart()
  /// or optimize_reference(); queries are accepted afterwards.
  void start_service();
  bool service_started() const { return !lanes_.empty(); }

  /// Write the reference context's checkpoint (crash-consistent ring).
  void save_checkpoint(const std::string& path) const;

  // --- query stream ---------------------------------------------------------

  bool can_accept() const { return queue_.size() < opts_.max_queue; }
  std::size_t queued() const { return queue_.size(); }
  /// Queries submitted whose results have not been drained yet.
  std::size_t in_flight() const { return queue_.size() + ready_.size(); }

  /// Enqueue a query sequence (reference column layout; length must equal
  /// the reference site count — checked at scoring time, an error result).
  /// Returns the query's ticket. Throws std::runtime_error when the queue
  /// is full (check can_accept() first).
  std::uint64_t submit(std::string sequence);

  /// One scheduling step: assign queued queries to free lanes, stage every
  /// assigned query's candidates, flush them as ONE merged wave set, and
  /// bank the results. Returns true if any query was placed.
  bool pump();

  /// Take all banked results (ticket -> result), in completion order.
  std::vector<std::pair<std::uint64_t, PlacementResult>> drain_ready();

  /// Fail every queued query (shutdown drain); aborts any pending engine
  /// batch first. The failures are banked as results.
  void abort_all(const std::string& reason);

  // --- reference scoring path ----------------------------------------------

  /// Score one query with ONE candidate per wave on lane 0 — the sequential
  /// single-query reference whose (edge, lnL) the batched path must match
  /// bit-for-bit. Requires an idle engine (no queued queries).
  PlacementResult place_sequential(std::string_view sequence);

  // --- introspection --------------------------------------------------------

  const Tree& reference_tree() const { return ref_tree_; }
  int lane_count() const { return static_cast<int>(lanes_.size()); }
  std::size_t reference_sites() const { return ref_sites_; }
  const PlacementStats& stats() const { return stats_; }
  EngineCore& core() { return *core_; }
  EvalContext& reference_context() { return *ref_ctx_; }

 private:
  struct Lane;
  struct PendingQuery {
    std::uint64_t ticket = 0;
    std::string seq;
  };

  /// Encode a query row against the reference pattern compression: one
  /// state mask per pattern per partition, using each pattern's
  /// representative site. Throws std::runtime_error on a length mismatch.
  std::vector<std::vector<StateMask>> encode_query(
      std::string_view seq) const;

  /// Stage lane's shortlisted candidates into `sink` (scores land in the
  /// lane's per-candidate buffers).
  void stage_lane(Lane& lane, std::vector<WaveItem>& sink);
  /// Harvest the staged lane's best candidate into a banked result.
  void harvest_lane(Lane& lane);
  void fail_lane(Lane& lane, const std::string& error);
  /// Assign one pending query to a free lane (encode + prefilter + slot
  /// re-encode); banks an error result instead on a bad query.
  bool assign_query(Lane& lane, PendingQuery&& q);

  PlacementOptions opts_;
  Alignment combined_;  ///< reference rows + all-gap slot rows
  PartitionScheme scheme_;
  Tree ref_tree_;
  std::size_t ref_taxa_ = 0;
  std::size_t ref_sites_ = 0;
  EdgeId park_edge_ = 0;   ///< reference edge the slot tips park on
  EdgeId pendant_ = kNoId; ///< lane-tree id of every slot pendant edge
  EdgeId e1_ = kNoId;      ///< lane-tree id of the park edge's split half

  std::unique_ptr<CompressedAlignment> comp_;
  std::unique_ptr<EngineCore> core_;
  std::unique_ptr<EvalContext> ref_ctx_;
  std::unique_ptr<ParsimonyInserter> inserter_;
  /// Per-partition, per-pattern representative global site (first site of
  /// the pattern), for query encoding.
  std::vector<std::vector<std::size_t>> rep_site_;

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::deque<PendingQuery> queue_;
  std::vector<std::pair<std::uint64_t, PlacementResult>> ready_;
  std::uint64_t next_ticket_ = 1;
  PlacementStats stats_;
};

}  // namespace plk
