#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "model/model_spec.hpp"

namespace plk {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Comma-joined model specs of the engine's reference partitions, so clients
/// can see what likelihood model their placements are scored under.
std::string model_summary(PlacementEngine& engine) {
  EvalContext& ctx = engine.reference_context();
  std::string out;
  const int parts = engine.core().partition_count();
  for (int p = 0; p < parts; ++p) {
    if (p > 0) out += ',';
    out += describe_model(ctx.model(p));
  }
  return out;
}

}  // namespace

PlkServer::PlkServer(PlacementEngine& engine, const ServerOptions& opts)
    : engine_(engine), opts_(opts) {
  if (!engine_.service_started())
    throw std::logic_error("PlkServer: engine service not started");
}

PlkServer::~PlkServer() {
  for (auto& [fd, s] : sessions_.all()) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (reserve_fd_ >= 0) ::close(reserve_fd_);
}

void PlkServer::open() {
  if (listen_fd_ >= 0) throw std::logic_error("PlkServer: already open");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad bind address: " + opts_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    throw std::runtime_error(std::string("bind() failed: ") +
                             std::strerror(e));
  }
  if (::listen(fd, 128) != 0) {
    const int e = errno;
    ::close(fd);
    throw std::runtime_error(std::string("listen() failed: ") +
                             std::strerror(e));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = static_cast<int>(ntohs(bound.sin_port));
  set_nonblocking(fd);
  listen_fd_ = fd;
  // Held in reserve for accept_new's fd-exhaustion path.
  reserve_fd_ = ::open("/dev/null", O_RDONLY);
}

bool PlkServer::step(int timeout_ms) {
  if (listen_fd_ < 0) throw std::logic_error("PlkServer: not open");

  std::vector<pollfd> pfds;
  pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
  // Backpressure: a full engine queue withholds POLLIN from every session,
  // parking unread requests in kernel socket buffers until waves drain.
  const bool accept_reads = engine_.can_accept();
  for (auto& [fd, s] : sessions_.all()) {
    short ev = 0;
    if (accept_reads && !s.closing) ev |= POLLIN;
    if (!s.out.empty()) ev |= POLLOUT;
    pfds.push_back(pollfd{fd, ev, 0});
  }

  // Never sleep while the engine has work to pump.
  const int timeout = engine_.queued() > 0 ? 0 : timeout_ms;
  const int rc = ::poll(pfds.data(), pfds.size(), timeout);
  if (rc < 0 && errno != EINTR)
    throw std::runtime_error(std::string("poll() failed: ") +
                             std::strerror(errno));

  bool activity = false;
  if (rc > 0 && (pfds[0].revents & POLLIN) != 0) {
    accept_new();
    activity = true;
  }
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    Session* s = sessions_.find(pfds[i].fd);
    if (s == nullptr) continue;  // closed earlier this step
    const short re = pfds[i].revents;
    if ((re & POLLIN) != 0) {
      activity = true;
      if (!read_session(*s)) continue;
    }
    if ((re & (POLLERR | POLLNVAL)) != 0 ||
        ((re & POLLHUP) != 0 && (re & POLLIN) == 0)) {
      close_session(pfds[i].fd, /*dropped=*/true);
      activity = true;
    }
  }

  if (engine_.queued() > 0) {
    engine_.pump();
    activity = true;
  }
  deliver_results();

  // Re-drain requests parked in userspace LineBuffers. read_session stops
  // processing lines once the engine queue fills, and poll() only re-fires
  // for NEW kernel bytes — bytes already recv()'d would otherwise strand a
  // pipelined client that sent its burst and is silently waiting.
  for (auto& [fd, s] : sessions_.all()) {
    if (!engine_.can_accept()) break;  // queued > 0 -> next step polls at 0
    if (s.closing || s.in.buffered() == 0) continue;
    if (process_buffered(s)) activity = true;
  }

  std::vector<int> done;
  for (auto& [fd, s] : sessions_.all()) {
    if (!s.out.empty() && !flush_out(s)) continue;
    if (s.closing && s.out.empty()) done.push_back(fd);
  }
  for (const int fd : done) close_session(fd, /*dropped=*/false);

  maybe_checkpoint();
  return activity;
}

int PlkServer::run(const std::atomic<bool>& stop) {
  try {
    while (!stop.load(std::memory_order_relaxed)) step(50);
  } catch (const std::exception&) {
    shutdown("server error");
    return 1;
  }
  shutdown("server shutting down");
  return 0;
}

void PlkServer::shutdown(const std::string& reason) {
  // Drain: every queued query fails with `reason`, the failures are
  // delivered like normal responses, and sockets get a bounded best-effort
  // flush so clients see their answers before the FIN.
  engine_.abort_all(reason);
  deliver_results();
  for (int attempt = 0; attempt < 50; ++attempt) {
    bool pending = false;
    for (auto& [fd, s] : sessions_.all())
      if (!s.out.empty()) {
        flush_out(s);
        pending = true;
      }
    if (!pending) break;
    pollfd pf{-1, 0, 0};
    ::poll(&pf, 0, 10);  // small sleep between flush attempts
  }
  std::vector<int> fds;
  for (auto& [fd, s] : sessions_.all()) fds.push_back(fd);
  for (const int fd : fds) close_session(fd, /*dropped=*/false);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (reserve_fd_ >= 0) {
    ::close(reserve_fd_);
    reserve_fd_ = -1;
  }
  if (!opts_.checkpoint_path.empty()) {
    engine_.save_checkpoint(opts_.checkpoint_path);
    ++stats_.checkpoints;
  }
}

void PlkServer::accept_new() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if ((errno == EMFILE || errno == ENFILE) && reserve_fd_ >= 0) {
        // fd exhaustion: the pending connection stays in the backlog and
        // keeps the listen fd level-triggered readable, so without this
        // the loop would spin at 100% CPU. Momentarily release the reserve
        // descriptor, accept the connection, and close it so the backlog
        // drains.
        ::close(reserve_fd_);
        reserve_fd_ = -1;
        const int doomed = ::accept(listen_fd_, nullptr, nullptr);
        if (doomed >= 0) {
          ::close(doomed);
          ++stats_.sessions_rejected;
        }
        reserve_fd_ = ::open("/dev/null", O_RDONLY);
        if (doomed >= 0) continue;
      }
      break;  // EAGAIN or transient error: next step retries
    }
    set_nonblocking(fd);
    if (sessions_.size() >= opts_.max_sessions) {
      // Admission control: reject at the door with a parseable reason.
      // The socket is fresh, so this small line lands in its send buffer.
      WireMessage m;
      m.set_bool("ok", false);
      m.set("error", "server at capacity");
      const std::string line = m.serialize() + "\n";
      ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      ++stats_.sessions_rejected;
      continue;
    }
    sessions_.open(fd);
    ++stats_.sessions_accepted;
  }
}

bool PlkServer::read_session(Session& s) {
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(s.fd, buf, sizeof buf, 0);
    if (n > 0) {
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      s.in.append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {
      s.closing = true;  // orderly EOF: flush what we owe, then close
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_session(s.fd, /*dropped=*/true);
    return false;
  }
  process_buffered(s);
  return true;
}

bool PlkServer::process_buffered(Session& s) {
  bool handled = false;
  while (engine_.can_accept()) {  // leave the rest buffered when full
    auto line = s.in.next_line();
    if (!line) break;
    handled = true;
    // Skip blank keepalive lines.
    std::string_view t = line->text;
    while (!t.empty() && (t.back() == '\r' || t.back() == ' '))
      t.remove_suffix(1);
    if (t.empty() && !line->oversized) continue;
    handle_line(s, line->text, line->oversized);
    // A quit ends the session at the protocol level: anything the client
    // pipelined after it would be acknowledged and then dropped when the
    // socket closes, so stop here and discard the remainder.
    if (s.closing) break;
  }
  return handled;
}

void PlkServer::handle_line(Session& s, const std::string& text,
                            bool oversized) {
  if (oversized) {
    ++stats_.malformed;
    WireMessage m;
    m.set_bool("ok", false);
    m.set("error", "line too long");
    respond(s, m);
    return;
  }
  std::string err;
  std::optional<WireMessage> req = WireMessage::parse(text, &err);
  if (!req) {
    ++stats_.malformed;
    WireMessage m;
    m.set_bool("ok", false);
    m.set("error", "malformed frame: " + err);
    respond(s, m);
    return;
  }
  ++stats_.requests;
  const std::string* op = req->get_string("op");
  if (op == nullptr) {
    WireMessage m;
    m.set_bool("ok", false);
    m.set("error", "missing op");
    respond(s, m);
    return;
  }

  if (*op == "hello") {
    WireMessage m;
    m.set_bool("ok", true);
    m.set("op", "hello");
    m.set("server", "plkserved");
    m.set_number("proto", 1);
    m.set_number("taxa", static_cast<double>(
                             engine_.reference_tree().tip_count()));
    m.set_number("sites", static_cast<double>(engine_.reference_sites()));
    m.set_number("edges", static_cast<double>(
                              engine_.reference_tree().edge_count()));
    m.set_number("lanes", engine_.lane_count());
    m.set("model", model_summary(engine_));
    respond(s, m);
    return;
  }

  if (*op == "place") {
    const std::string* id = req->get_string("id");
    const std::string* seq = req->get_string("seq");
    if (seq == nullptr) {
      WireMessage m;
      m.set_bool("ok", false);
      m.set("op", "place");
      if (id != nullptr) m.set("id", *id);
      m.set("error", "place: missing seq");
      respond(s, m);
      return;
    }
    if (!engine_.can_accept()) {
      // Backpressure normally prevents this; it can still trip when one
      // read delivers more requests than the queue has room for.
      WireMessage m;
      m.set_bool("ok", false);
      m.set("op", "place");
      if (id != nullptr) m.set("id", *id);
      m.set("error", "busy: placement queue full");
      respond(s, m);
      return;
    }
    const std::uint64_t ticket = engine_.submit(*seq);
    TicketInfo info;
    info.session_id = s.id;
    if (id != nullptr) {
      info.request_id = *id;
      info.has_id = true;
    }
    if (const std::optional<double> rank = req->get_number("rank"))
      info.rank = std::clamp(static_cast<int>(*rank), 0, 1024);
    info.start = std::chrono::steady_clock::now();
    tickets_.emplace(ticket, std::move(info));
    ++s.inflight;
    return;
  }

  if (*op == "stats") {
    respond(s, stats_message());
    return;
  }

  if (*op == "quit") {
    WireMessage m;
    m.set_bool("ok", true);
    m.set("op", "quit");
    respond(s, m);
    s.closing = true;
    return;
  }

  WireMessage m;
  m.set_bool("ok", false);
  m.set("error", "unknown op: " + *op);
  respond(s, m);
}

void PlkServer::respond(Session& s, const WireMessage& msg) {
  s.out += msg.serialize();
  s.out += '\n';
}

void PlkServer::deliver_results() {
  for (auto& [ticket, result] : engine_.drain_ready()) {
    const auto it = tickets_.find(ticket);
    if (it == tickets_.end()) continue;
    TicketInfo info = std::move(it->second);
    tickets_.erase(it);
    latency_.record(ms_since(info.start));
    Session* s = sessions_.find_by_id(info.session_id);
    if (s == nullptr) continue;  // session went away mid-flight
    if (s->inflight > 0) --s->inflight;
    WireMessage m;
    m.set_bool("ok", result.ok);
    m.set("op", "place");
    if (info.has_id) m.set("id", info.request_id);
    if (result.ok) {
      m.set_number("edge", static_cast<double>(result.edge));
      m.set_number("lnl", result.lnl);
      m.set_number("pendant", result.pendant_length);
      m.set_number("candidates", result.candidates);
      if (info.rank > 0) {
        // Flat single-level wire format: candidate i becomes edge<i>/
        // lnl<i>/pendant<i>, best first; "rank" echoes how many came back.
        const std::size_t k =
            std::min(result.ranked.size(), static_cast<std::size_t>(info.rank));
        m.set_number("rank", static_cast<double>(k));
        for (std::size_t i = 0; i < k; ++i) {
          const std::string suffix = std::to_string(i);
          m.set_number("edge" + suffix,
                       static_cast<double>(result.ranked[i].edge));
          m.set_number("lnl" + suffix, result.ranked[i].lnl);
          m.set_number("pendant" + suffix, result.ranked[i].pendant_length);
        }
      }
    } else {
      m.set("error", result.error);
    }
    respond(*s, m);
  }
}

bool PlkServer::flush_out(Session& s) {
  while (!s.out.empty()) {
    const ssize_t n = ::send(s.fd, s.out.data(), s.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_out += static_cast<std::uint64_t>(n);
      s.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    close_session(s.fd, /*dropped=*/true);
    return false;
  }
  return true;
}

void PlkServer::close_session(int fd, bool dropped) {
  Session* s = sessions_.find(fd);
  if (s == nullptr) return;
  ::close(fd);
  sessions_.erase(fd);
  if (dropped)
    ++stats_.sessions_dropped;
  else
    ++stats_.sessions_closed;
}

void PlkServer::maybe_checkpoint() {
  if (opts_.checkpoint_every == 0 || opts_.checkpoint_path.empty()) return;
  const std::uint64_t placed = engine_.stats().placed;
  if (placed - last_ckpt_placed_ < opts_.checkpoint_every) return;
  engine_.save_checkpoint(opts_.checkpoint_path);
  last_ckpt_placed_ = placed;
  ++stats_.checkpoints;
}

WireMessage PlkServer::stats_message() {
  const PlacementStats& ps = engine_.stats();
  WireMessage m;
  m.set_bool("ok", true);
  m.set("op", "stats");
  m.set_number("sessions", static_cast<double>(sessions_.size()));
  m.set_number("sessions_accepted",
               static_cast<double>(stats_.sessions_accepted));
  m.set_number("sessions_rejected",
               static_cast<double>(stats_.sessions_rejected));
  m.set_number("sessions_closed",
               static_cast<double>(stats_.sessions_closed));
  m.set_number("sessions_dropped",
               static_cast<double>(stats_.sessions_dropped));
  m.set_number("requests", static_cast<double>(stats_.requests));
  m.set_number("malformed", static_cast<double>(stats_.malformed));
  m.set_number("bytes_in", static_cast<double>(stats_.bytes_in));
  m.set_number("bytes_out", static_cast<double>(stats_.bytes_out));
  m.set_number("submitted", static_cast<double>(ps.submitted));
  m.set_number("placed", static_cast<double>(ps.placed));
  m.set_number("failed", static_cast<double>(ps.failed));
  m.set_number("queued", static_cast<double>(engine_.queued()));
  m.set_number("waves", static_cast<double>(ps.waves));
  m.set_number("wave_items", static_cast<double>(ps.wave_items));
  m.set_number("wave_lanes", static_cast<double>(ps.wave_lanes));
  m.set_number("wave_occupancy",
               ps.waves == 0 ? 0.0
                             : static_cast<double>(ps.wave_lanes) /
                                   (static_cast<double>(ps.waves) *
                                    engine_.lane_count()));
  m.set_number("latency_p50_ms", latency_.percentile(50));
  m.set_number("latency_p99_ms", latency_.percentile(99));
  m.set_number("checkpoints", static_cast<double>(stats_.checkpoints));
  m.set("model", model_summary(engine_));
  return m;
}

}  // namespace plk
