// Session bookkeeping for the placement server: one Session per connected
// client socket, a registry keyed by fd, and the rolling transport/latency
// statistics the STATS endpoint reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace plk {

/// One connected client. Owned by the SessionRegistry; the fd is owned (and
/// closed) by the server's event loop, not by this struct.
struct Session {
  int fd = -1;
  std::uint64_t id = 0;   ///< monotonic session id (never reused, unlike fds)
  LineBuffer in;          ///< inbound NDJSON splitter
  std::string out;        ///< outbound bytes not yet accepted by the socket
  bool closing = false;   ///< close once `out` drains (quit / fatal error)
  std::size_t inflight = 0;  ///< placements submitted, responses not yet sent
};

/// fd -> Session map with stable iteration order (the poll vector is built
/// from it every step, so determinism here keeps the loop debuggable).
class SessionRegistry {
 public:
  Session& open(int fd);
  Session* find(int fd);
  /// Find by session id (tickets reference sessions by id, not fd, so a
  /// ticket can never deliver into a recycled fd).
  Session* find_by_id(std::uint64_t id);
  void erase(int fd);
  std::size_t size() const { return sessions_.size(); }
  std::map<int, Session>& all() { return sessions_; }

 private:
  std::map<int, Session> sessions_;
  std::uint64_t next_id_ = 1;
};

/// Fixed-capacity latency ring: O(1) record, percentile by copy + select.
class RollingLatency {
 public:
  explicit RollingLatency(std::size_t capacity = 4096) : ring_(capacity) {}

  void record(double ms);
  /// Percentile over the retained window; 0 when empty. p in [0, 100].
  double percentile(double p) const;
  std::uint64_t count() const { return count_; }

 private:
  std::vector<double> ring_;
  std::size_t filled_ = 0;
  std::size_t head_ = 0;
  std::uint64_t count_ = 0;
};

/// Transport-level counters (the engine adds PlacementStats).
struct ServerStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_rejected = 0;  ///< admission control refusals
  std::uint64_t sessions_closed = 0;    ///< orderly closes (quit / EOF)
  std::uint64_t sessions_dropped = 0;   ///< socket errors mid-session
  std::uint64_t requests = 0;           ///< parsed protocol requests
  std::uint64_t malformed = 0;          ///< rejected lines
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t checkpoints = 0;        ///< periodic checkpoints written
};

}  // namespace plk
