#include "server/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace plk {

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n'))
    ++i;
}

bool parse_string(std::string_view s, std::size_t& i, std::string& out,
                  std::string& err) {
  if (i >= s.size() || s[i] != '"') {
    err = "expected string";
    return false;
  }
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i++];
    if (c == '"') return true;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i >= s.size()) break;
    const char e = s[i++];
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i + 4 > s.size()) {
          err = "truncated \\u escape";
          return false;
        }
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[i++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<unsigned>(h - 'A' + 10);
          else {
            err = "bad \\u escape";
            return false;
          }
        }
        // Minimal UTF-8 encoding of the BMP code point (the protocol's own
        // payloads are ASCII; this keeps foreign ids from being rejected).
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        err = "bad escape";
        return false;
    }
  }
  err = "unterminated string";
  return false;
}

}  // namespace

std::optional<WireMessage> WireMessage::parse(std::string_view line,
                                              std::string* error) {
  std::string err;
  const auto fail = [&](const std::string& what) -> std::optional<WireMessage> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return fail("expected '{'");
  ++i;
  WireMessage msg;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws(line, i);
      std::string key;
      if (!parse_string(line, i, key, err)) return fail(err);
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws(line, i);
      WireValue v;
      if (i >= line.size()) return fail("truncated value");
      const char c = line[i];
      if (c == '"') {
        v.kind = WireValue::Kind::kString;
        if (!parse_string(line, i, v.str, err)) return fail(err);
      } else if (c == 't' && line.substr(i, 4) == "true") {
        v.kind = WireValue::Kind::kBool;
        v.flag = true;
        i += 4;
      } else if (c == 'f' && line.substr(i, 5) == "false") {
        v.kind = WireValue::Kind::kBool;
        v.flag = false;
        i += 5;
      } else if (c == 'n' && line.substr(i, 4) == "null") {
        v.kind = WireValue::Kind::kNull;
        i += 4;
      } else if (c == '-' || (c >= '0' && c <= '9')) {
        const std::string num(line.substr(i));
        char* end = nullptr;
        v.kind = WireValue::Kind::kNumber;
        v.num = std::strtod(num.c_str(), &end);
        if (end == num.c_str()) return fail("bad number");
        i += static_cast<std::size_t>(end - num.c_str());
      } else {
        return fail("unsupported value (flat objects only)");
      }
      msg.fields_.emplace_back(std::move(key), std::move(v));
      skip_ws(line, i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
  }
  skip_ws(line, i);
  if (i != line.size()) return fail("trailing bytes after object");
  return msg;
}

WireValue* WireMessage::find(std::string_view key) {
  for (auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

const WireValue* WireMessage::find(std::string_view key) const {
  for (const auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

void WireMessage::set(std::string key, std::string value) {
  WireValue v;
  v.kind = WireValue::Kind::kString;
  v.str = std::move(value);
  if (WireValue* old = find(key)) {
    *old = std::move(v);
    return;
  }
  fields_.emplace_back(std::move(key), std::move(v));
}

void WireMessage::set_number(std::string key, double value) {
  WireValue v;
  v.kind = WireValue::Kind::kNumber;
  v.num = value;
  if (WireValue* old = find(key)) {
    *old = std::move(v);
    return;
  }
  fields_.emplace_back(std::move(key), std::move(v));
}

void WireMessage::set_bool(std::string key, bool value) {
  WireValue v;
  v.kind = WireValue::Kind::kBool;
  v.flag = value;
  if (WireValue* old = find(key)) {
    *old = std::move(v);
    return;
  }
  fields_.emplace_back(std::move(key), std::move(v));
}

const std::string* WireMessage::get_string(std::string_view key) const {
  const WireValue* v = find(key);
  return v != nullptr && v->kind == WireValue::Kind::kString ? &v->str
                                                             : nullptr;
}

std::optional<double> WireMessage::get_number(std::string_view key) const {
  const WireValue* v = find(key);
  if (v == nullptr || v->kind != WireValue::Kind::kNumber) return std::nullopt;
  return v->num;
}

std::optional<bool> WireMessage::get_bool(std::string_view key) const {
  const WireValue* v = find(key);
  if (v == nullptr || v->kind != WireValue::Kind::kBool) return std::nullopt;
  return v->flag;
}

bool WireMessage::has(std::string_view key) const {
  return find(key) != nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // 17 significant digits round-trip any double exactly; trim to the
  // shortest representation for integral values (edge ids, counters).
  // Range check first: double -> long long is UB at or beyond 2^63.
  if (std::abs(v) < 1e15 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string WireMessage::serialize() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":";
    switch (v.kind) {
      case WireValue::Kind::kString:
        out += '"';
        out += json_escape(v.str);
        out += '"';
        break;
      case WireValue::Kind::kNumber: out += json_number(v.num); break;
      case WireValue::Kind::kBool: out += v.flag ? "true" : "false"; break;
      case WireValue::Kind::kNull: out += "null"; break;
    }
  }
  out += '}';
  return out;
}

void LineBuffer::append(const char* data, std::size_t n) {
  buf_.append(data, n);
}

std::optional<LineBuffer::Line> LineBuffer::next_line() {
  if (discarding_) {
    // Swallow the continuation of an oversized line (already surfaced
    // truncated) up to and including its terminating '\n', so one
    // oversized request yields exactly one error response.
    const std::size_t end = buf_.find('\n');
    if (end == std::string::npos) {
      buf_.clear();
      return std::nullopt;
    }
    buf_.erase(0, end + 1);
    discarding_ = false;
  }
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) {
    if (buf_.size() > max_line_) {
      // Partial line already too long: surface it truncated so the caller
      // can reject it, then discard the rest of the logical line as it
      // streams in (see discarding_ above).
      Line line{std::move(buf_), true};
      buf_.clear();
      line.text.resize(max_line_);
      discarding_ = true;
      return line;
    }
    return std::nullopt;
  }
  Line line{buf_.substr(0, nl), nl > max_line_};
  buf_.erase(0, nl + 1);
  if (line.oversized) line.text.resize(max_line_);
  return line;
}

}  // namespace plk
