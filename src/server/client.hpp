// Client side of the placement protocol: a blocking TCP connection with
// NDJSON framing, used by the plkplace CLI, the tests, and the soak/bench
// drivers. Two usage styles:
//
//   * request(): classic synchronous request -> response.
//   * send_place() ... read_message(): pipelined — flood the server with
//     place requests and collect responses as they stream back, which is
//     how a client keeps the server's lanes full.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "server/protocol.hpp"

namespace plk {

class PlacementClient {
 public:
  PlacementClient() = default;
  ~PlacementClient();

  PlacementClient(const PlacementClient&) = delete;
  PlacementClient& operator=(const PlacementClient&) = delete;

  /// Connect to an IPv4 host ("127.0.0.1") and port. Returns false (with
  /// *error set) on failure.
  bool connect(const std::string& host, int port,
               std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Send one message and block for the next response line.
  std::optional<WireMessage> request(const WireMessage& msg,
                                     std::string* error = nullptr);

  /// Pipelined sends: write a place request without waiting.
  bool send_place(const std::string& id, const std::string& seq,
                  std::string* error = nullptr);
  /// Write raw bytes verbatim (no framing added) — protocol tests use this
  /// to exercise the server's malformed-frame handling.
  bool send_raw(const std::string& bytes, std::string* error = nullptr);
  /// Block for the next complete response line (any op).
  std::optional<WireMessage> read_message(std::string* error = nullptr);

  // Convenience wrappers over request().
  std::optional<WireMessage> hello(std::string* error = nullptr);
  std::optional<WireMessage> stats(std::string* error = nullptr);
  std::optional<WireMessage> place(const std::string& id,
                                   const std::string& seq,
                                   std::string* error = nullptr);
  void quit();

 private:
  bool send_line(const std::string& line, std::string* error);

  int fd_ = -1;
  LineBuffer in_;
};

}  // namespace plk
