#include "server/placement.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/analysis.hpp"
#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "model/model_spec.hpp"

namespace plk {

struct PlacementEngine::Lane {
  std::size_t slot_taxon = 0;  ///< combined-alignment row of the slot
  std::unique_ptr<EvalContext> parent;
  std::unique_ptr<CandidateScorer> scorer;
  bool busy = false;
  std::uint64_t ticket = 0;
  std::vector<EdgeId> cand_edges;              ///< reference edge ids
  std::vector<double> cand_lnl;                ///< one score per candidate
  std::vector<std::vector<double>> cand_lens;  ///< harvested local lengths
};

namespace {

/// The lane-tree surgery: the reference tree plus one slot tip grafted onto
/// `park`. Ids are arranged so every REFERENCE edge keeps its id (the
/// protocol's placement edges need no mapping): reference tips keep their
/// ids, the slot tip takes id R, reference inner nodes shift up by one, and
/// the park edge is split in place — its id keeps the half toward its `a`
/// endpoint, the new half gets id 2R-3 and the pendant edge id 2R-2.
Tree make_lane_tree(const Tree& ref, const std::string& slot_label,
                    EdgeId park, double pendant_start) {
  const NodeId r = ref.tip_count();
  const auto map_node = [r](NodeId v) { return v < r ? v : v + 1; };
  std::vector<Tree::Edge> edges(static_cast<std::size_t>(ref.edge_count()) +
                                2);
  for (EdgeId e = 0; e < ref.edge_count(); ++e)
    edges[static_cast<std::size_t>(e)] =
        Tree::Edge{map_node(ref.edge(e).a), map_node(ref.edge(e).b),
                   ref.length(e)};
  const NodeId slot_tip = r;
  const NodeId joint = 2 * r - 1;
  auto& pk = edges[static_cast<std::size_t>(park)];
  const NodeId park_b = pk.b;
  const double half = pk.length * 0.5;
  pk.b = joint;
  pk.length = half;
  edges[static_cast<std::size_t>(ref.edge_count())] =
      Tree::Edge{joint, park_b, half};
  edges[static_cast<std::size_t>(ref.edge_count()) + 1] =
      Tree::Edge{joint, slot_tip, pendant_start};

  std::vector<std::string> labels;
  labels.reserve(static_cast<std::size_t>(r) + 1);
  for (NodeId t = 0; t < r; ++t) labels.push_back(ref.label(t));
  labels.push_back(slot_label);
  return Tree::from_edges(std::move(labels), std::move(edges));
}

std::vector<PartitionModel> prototype_models(const CompressedAlignment& comp) {
  std::vector<PartitionModel> models;
  models.reserve(comp.partitions.size());
  for (const auto& part : comp.partitions) {
    // Same resolution as Analysis: the partition name is a full model spec,
    // so reference partition files may carry "+R4" or "+I" suffixes.
    ModelSpec spec = parse_model_spec(
        !part.model_name.empty()          ? part.model_name
        : part.type == DataType::kDna     ? "GTR"
                                          : "WAG");
    if (spec.rate_kind == ModelSpec::RateKind::kNone) {
      spec.rate_kind = ModelSpec::RateKind::kGamma;
      spec.categories = 4;
    }
    models.emplace_back(make_subst_model(spec, empirical_frequencies(part)),
                        make_rate_model(spec));
  }
  return models;
}

}  // namespace

PlacementEngine::PlacementEngine(const Alignment& reference,
                                 const PartitionScheme& scheme,
                                 Tree reference_tree,
                                 const PlacementOptions& opts,
                                 const EngineOptions& engine_opts)
    : opts_(opts), scheme_(scheme), ref_tree_(std::move(reference_tree)) {
  if (reference.taxon_count() < 4)
    throw std::invalid_argument("PlacementEngine: need >= 4 reference taxa");
  if (static_cast<std::size_t>(ref_tree_.tip_count()) !=
      reference.taxon_count())
    throw std::invalid_argument(
        "PlacementEngine: reference tree / alignment taxon count mismatch");
  opts_.lanes = std::max(1, opts_.lanes);
  opts_.max_candidates =
      std::clamp(opts_.max_candidates, 1, ref_tree_.edge_count());
  opts_.batch.max_batch = std::max(opts_.batch.max_batch,
                                   opts_.max_candidates);
  ref_taxa_ = reference.taxon_count();
  ref_sites_ = reference.site_count();
  scheme_.validate(ref_sites_);
  park_edge_ = 0;
  e1_ = ref_tree_.edge_count();
  pendant_ = ref_tree_.edge_count() + 1;

  // The core's alignment: the reference plus one all-gap row per lane. Gap
  // rows add no new column patterns, so the reference compression — and
  // with it every per-pattern buffer — is unchanged by the slots.
  combined_ = reference;
  for (int k = 0; k < opts_.lanes; ++k)
    combined_.add("__plk_slot" + std::to_string(k),
                  std::string(ref_sites_, '-'));

  comp_ = std::make_unique<CompressedAlignment>(
      CompressedAlignment::build(combined_, scheme_, true));
  core_ = std::make_unique<EngineCore>(*comp_, prototype_models(*comp_),
                                       engine_opts);
  ref_ctx_ = std::make_unique<EvalContext>(*core_, ref_tree_);
}

PlacementEngine::~PlacementEngine() = default;

bool PlacementEngine::warm_restart(const std::string& checkpoint_path) {
  if (service_started())
    throw std::logic_error("warm_restart: service already started");
  try {
    load_checkpoint_file(*ref_ctx_, checkpoint_path);
  } catch (const std::exception&) {
    return false;
  }
  // Adopt the restored topology/edge order so the lanes are built over
  // exactly the checkpointed reference.
  ref_tree_ = ref_ctx_->tree();
  return true;
}

double PlacementEngine::optimize_reference() {
  if (service_started())
    throw std::logic_error("optimize_reference: service already started");
  Engine view(*core_, *ref_ctx_);
  optimize_branch_lengths(view, opts_.strategy, opts_.startup_branch_opts);
  if (opts_.optimize_models) {
    optimize_model_parameters(view, opts_.strategy, opts_.model_opts);
    optimize_branch_lengths(view, opts_.strategy, opts_.startup_branch_opts);
  }
  return view.loglikelihood(park_edge_);
}

void PlacementEngine::start_service() {
  if (service_started())
    throw std::logic_error("start_service: already started");

  std::vector<PartitionModel> models;
  models.reserve(static_cast<std::size_t>(core_->partition_count()));
  for (int p = 0; p < core_->partition_count(); ++p)
    models.push_back(ref_ctx_->model(p));

  const BranchLengths& rbl = ref_ctx_->branch_lengths();
  const int np = core_->partition_count();
  for (int k = 0; k < opts_.lanes; ++k) {
    auto lane = std::make_unique<Lane>();
    lane->slot_taxon = ref_taxa_ + static_cast<std::size_t>(k);
    Tree lt = make_lane_tree(ref_tree_,
                             combined_.name(lane->slot_taxon), park_edge_,
                             opts_.pendant_start);
    lane->parent =
        std::make_unique<EvalContext>(*core_, std::move(lt), models);
    // Adopt the reference's per-partition lengths exactly; the park edge's
    // value is split across its two halves.
    BranchLengths& bl = lane->parent->branch_lengths();
    for (EdgeId e = 0; e < ref_tree_.edge_count(); ++e)
      for (int p = 0; p < np; ++p) {
        if (e == park_edge_) {
          const double half = rbl.get(e, p) * 0.5;
          bl.set(e, p, half);
          bl.set(e1_, p, half);
        } else {
          bl.set(e, p, rbl.get(e, p));
        }
      }
    for (int p = 0; p < np; ++p) bl.set(pendant_, p, opts_.pendant_start);

    lane->scorer = std::make_unique<CandidateScorer>(
        *core_, *lane->parent, opts_.strategy, opts_.local_opts, opts_.batch);
    // Permanent rooting at the pendant edge: every inner CLV now summarizes
    // a subtree of reference tips only, so per-query slot re-encoding never
    // invalidates the parent. This is the one full traversal a lane pays.
    lane->parent->prepare_root(pendant_);
    lanes_.push_back(std::move(lane));
  }
  // Pin lane 0's parent: all lanes share its model state (hence epochs) and
  // branch lengths, so one pin shields every lane's hot tip tables.
  core_->pin_service_context(lanes_[0]->parent.get());

  inserter_ = std::make_unique<ParsimonyInserter>(ref_tree_, *comp_);

  // Representative global site per (partition, pattern) for query encoding.
  rep_site_.assign(comp_->partitions.size(), {});
  for (std::size_t p = 0; p < comp_->partitions.size(); ++p) {
    const CompressedPartition& part = comp_->partitions[p];
    const std::vector<std::size_t> sites = scheme_[p].sites();
    rep_site_[p].assign(part.pattern_count, static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < part.site_to_pattern.size(); ++i) {
      const std::size_t j = part.site_to_pattern[i];
      if (rep_site_[p][j] == static_cast<std::size_t>(-1))
        rep_site_[p][j] = sites[i];
    }
  }
}

void PlacementEngine::save_checkpoint(const std::string& path) const {
  save_checkpoint_file(*ref_ctx_, path);
}

std::vector<std::vector<StateMask>> PlacementEngine::encode_query(
    std::string_view seq) const {
  if (seq.size() != ref_sites_)
    throw std::runtime_error(
        "query length " + std::to_string(seq.size()) +
        " != reference sites " + std::to_string(ref_sites_));
  std::vector<std::vector<StateMask>> masks(comp_->partitions.size());
  for (std::size_t p = 0; p < comp_->partitions.size(); ++p) {
    const CompressedPartition& part = comp_->partitions[p];
    const Alphabet& ab = part.alphabet();
    masks[p].resize(part.pattern_count);
    // Each pattern takes the query's character at the pattern's FIRST
    // member column — the deterministic rule both the streaming path and
    // place_sequential share (and the price of riding the reference
    // compression: a query is represented per reference pattern, not per
    // raw column).
    for (std::size_t j = 0; j < part.pattern_count; ++j)
      masks[p][j] = ab.encode(seq[rep_site_[p][j]]);
  }
  return masks;
}

std::uint64_t PlacementEngine::submit(std::string sequence) {
  if (!service_started())
    throw std::logic_error("submit: service not started");
  if (!can_accept()) throw std::runtime_error("placement queue full");
  const std::uint64_t ticket = next_ticket_++;
  queue_.push_back(PendingQuery{ticket, std::move(sequence)});
  ++stats_.submitted;
  return ticket;
}

bool PlacementEngine::assign_query(Lane& lane, PendingQuery&& q) {
  std::vector<std::vector<StateMask>> masks;
  try {
    masks = encode_query(q.seq);
  } catch (const std::exception& ex) {
    PlacementResult r;
    r.error = ex.what();
    ready_.emplace_back(q.ticket, std::move(r));
    ++stats_.placed;
    ++stats_.failed;
    return false;
  }
  lane.cand_edges = inserter_->shortlist(
      masks, static_cast<std::size_t>(opts_.max_candidates));
  core_->set_taxon_masks(lane.slot_taxon, masks);
  lane.busy = true;
  lane.ticket = q.ticket;
  lane.cand_lnl.assign(lane.cand_edges.size(), 0.0);
  lane.cand_lens.assign(lane.cand_edges.size(), {});
  return true;
}

void PlacementEngine::stage_lane(Lane& lane, std::vector<WaveItem>& sink) {
  const NodeId slot_tip = ref_tree_.tip_count();
  for (std::size_t i = 0; i < lane.cand_edges.size(); ++i) {
    const EdgeId e = lane.cand_edges[i];
    GraftCandidate g;
    if (e == park_edge_) {
      // The query already sits on the park edge: score the parent topology
      // in place (same 3-edge local optimization, no surgery).
      g.in_place = true;
      g.carried = park_edge_;
      g.target = e1_;
      g.move = SprMove{pendant_, slot_tip, kNoId};
    } else {
      g.move = SprMove{pendant_, slot_tip, e};
    }
    if (!lane.scorer->stage_graft(g, &lane.cand_lnl[i], sink,
                                  &lane.cand_lens[i]))
      throw std::logic_error("placement wave overflow (max_batch too small)");
  }
}

void PlacementEngine::harvest_lane(Lane& lane) {
  if (lane.cand_edges.empty()) {
    fail_lane(lane, "no candidate edges for query");
    return;
  }
  // Harvested layout: [carried, target, prune] x partitions; the pendant
  // (prune) lengths are the trailing block.
  auto pendant_of = [&](std::size_t i) {
    const std::vector<double>& lens = lane.cand_lens[i];
    if (lens.empty() || lens.size() % 3 != 0) return 0.0;
    const std::size_t np = lens.size() / 3;
    double sum = 0;
    for (std::size_t p = 0; p < np; ++p) sum += lens[2 * np + p];
    return sum / static_cast<double>(np);
  };
  PlacementResult r;
  r.ok = true;
  r.candidates = static_cast<int>(lane.cand_edges.size());
  r.ranked.resize(lane.cand_edges.size());
  for (std::size_t i = 0; i < lane.cand_edges.size(); ++i)
    r.ranked[i] = {lane.cand_edges[i], lane.cand_lnl[i], pendant_of(i)};
  // Best first; edge ids are distinct within a shortlist, so the lnL-then-
  // edge order is total and the sort deterministic. ranked[0] reproduces the
  // old single-best selection (max lnL, lowest edge id on ties) exactly.
  std::sort(r.ranked.begin(), r.ranked.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              return a.lnl > b.lnl || (a.lnl == b.lnl && a.edge < b.edge);
            });
  r.edge = r.ranked[0].edge;
  r.lnl = r.ranked[0].lnl;
  r.pendant_length = r.ranked[0].pendant_length;
  ready_.emplace_back(lane.ticket, std::move(r));
  ++stats_.placed;
  lane.busy = false;
}

void PlacementEngine::fail_lane(Lane& lane, const std::string& error) {
  PlacementResult r;
  r.error = error;
  ready_.emplace_back(lane.ticket, std::move(r));
  ++stats_.placed;
  ++stats_.failed;
  lane.busy = false;
}

bool PlacementEngine::pump() {
  if (!service_started()) throw std::logic_error("pump: service not started");
  const std::size_t ready_before = ready_.size();

  // Fill free lanes from the queue (a bad query banks an error and frees
  // the lane for the next one).
  for (auto& lane : lanes_) {
    if (lane->busy) continue;
    while (!queue_.empty()) {
      PendingQuery q = std::move(queue_.front());
      queue_.pop_front();
      if (assign_query(*lane, std::move(q))) break;
    }
  }

  // Stage every active lane's candidates and flush them as ONE merged wave
  // set: cross-lane batching is the entire point of the lane design.
  std::vector<WaveItem> sink;
  std::vector<Lane*> active;
  for (auto& lane : lanes_)
    if (lane->busy) active.push_back(lane.get());
  if (!active.empty()) {
    try {
      for (Lane* lane : active) stage_lane(*lane, sink);
      CandidateScorer::flush_wave(*core_, opts_.strategy, opts_.local_opts,
                                  sink);
    } catch (const std::exception& ex) {
      if (core_->has_pending()) core_->abort_pending();
      for (Lane* lane : active) {
        lane->scorer->abort_wave();
        fail_lane(*lane, ex.what());
      }
      return ready_.size() != ready_before;
    }
    for (Lane* lane : active) {
      lane->scorer->finish_wave();
      harvest_lane(*lane);
    }
    ++stats_.waves;
    stats_.wave_items += sink.size();
    stats_.wave_lanes += active.size();
  }
  return ready_.size() != ready_before;
}

std::vector<std::pair<std::uint64_t, PlacementResult>>
PlacementEngine::drain_ready() {
  std::vector<std::pair<std::uint64_t, PlacementResult>> out;
  out.swap(ready_);
  return out;
}

void PlacementEngine::abort_all(const std::string& reason) {
  if (core_ && core_->has_pending()) core_->abort_pending();
  for (auto& lane : lanes_) {
    if (!lane->busy) continue;
    lane->scorer->abort_wave();
    fail_lane(*lane, reason);
  }
  while (!queue_.empty()) {
    PlacementResult r;
    r.error = reason;
    ready_.emplace_back(queue_.front().ticket, std::move(r));
    ++stats_.placed;
    ++stats_.failed;
    queue_.pop_front();
  }
}

PlacementResult PlacementEngine::place_sequential(std::string_view sequence) {
  if (!service_started())
    throw std::logic_error("place_sequential: service not started");
  for (const auto& lane : lanes_)
    if (lane->busy)
      throw std::logic_error("place_sequential: engine not idle");

  Lane& lane = *lanes_[0];
  PlacementResult bad;
  std::vector<std::vector<StateMask>> masks;
  try {
    masks = encode_query(sequence);
  } catch (const std::exception& ex) {
    bad.error = ex.what();
    return bad;
  }
  lane.cand_edges = inserter_->shortlist(
      masks, static_cast<std::size_t>(opts_.max_candidates));
  core_->set_taxon_masks(lane.slot_taxon, masks);
  lane.cand_lnl.assign(lane.cand_edges.size(), 0.0);
  lane.cand_lens.assign(lane.cand_edges.size(), {});
  lane.busy = true;

  // One candidate per wave: the sequential single-query reference scoring.
  const NodeId slot_tip = ref_tree_.tip_count();
  for (std::size_t i = 0; i < lane.cand_edges.size(); ++i) {
    const EdgeId e = lane.cand_edges[i];
    GraftCandidate g;
    if (e == park_edge_) {
      g.in_place = true;
      g.carried = park_edge_;
      g.target = e1_;
      g.move = SprMove{pendant_, slot_tip, kNoId};
    } else {
      g.move = SprMove{pendant_, slot_tip, e};
    }
    std::vector<WaveItem> sink;
    lane.scorer->stage_graft(g, &lane.cand_lnl[i], sink, &lane.cand_lens[i]);
    CandidateScorer::flush_wave(*core_, opts_.strategy, opts_.local_opts,
                                sink);
    lane.scorer->finish_wave();
  }

  // Reuse the streaming harvest (identical selection rule), then take the
  // banked result back out — place_sequential is ticketless.
  lane.ticket = 0;
  harvest_lane(lane);
  PlacementResult r = std::move(ready_.back().second);
  ready_.pop_back();
  --stats_.placed;
  return r;
}

}  // namespace plk
