// The placement server's wire protocol: NDJSON over a byte stream.
//
// Every protocol message is ONE line — a single-level JSON object with
// string keys and scalar (string / number / bool) values — terminated by
// '\n'. Line framing keeps the parser trivial and the stream resynchronizable
// (a malformed line is rejected without poisoning the connection), and flat
// objects are all the placement protocol needs:
//
//   -> {"op":"hello","client":"plkplace"}
//   <- {"ok":true,"op":"hello","server":"plkserved","edges":17,...}
//   -> {"op":"place","id":"q0","seq":"ACGT..."}
//   <- {"ok":true,"op":"place","id":"q0","edge":7,"lnl":-1931.5,...}
//   -> {"op":"stats"}            -> {"op":"quit"}
//
// Numbers are serialized with 17 significant digits, so a double — the
// placement lnL whose bit-identity the tests pin down — round-trips exactly
// through the text protocol.
//
// No external JSON dependency: the subset grammar here (flat objects,
// doubles, strings with standard escapes, true/false/null) is parsed and
// emitted by ~200 lines below.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace plk {

/// One scalar field value of a wire message.
struct WireValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;
  double num = 0.0;
  bool flag = false;
};

/// A single-level JSON object: ordered (key, scalar) pairs. Field order is
/// preserved on serialization so responses are byte-stable.
class WireMessage {
 public:
  /// Parse one line. Returns std::nullopt on malformed input and, when
  /// `error` is non-null, a one-line description of what went wrong.
  static std::optional<WireMessage> parse(std::string_view line,
                                          std::string* error = nullptr);

  void set(std::string key, std::string value);
  void set(std::string key, const char* value) {
    set(std::move(key), std::string(value));
  }
  void set_number(std::string key, double value);
  void set_bool(std::string key, bool value);

  /// nullptr when the key is absent or not a string.
  const std::string* get_string(std::string_view key) const;
  std::optional<double> get_number(std::string_view key) const;
  std::optional<bool> get_bool(std::string_view key) const;
  bool has(std::string_view key) const;

  /// One line of JSON, without the trailing '\n'.
  std::string serialize() const;

  const std::vector<std::pair<std::string, WireValue>>& fields() const {
    return fields_;
  }

 private:
  WireValue* find(std::string_view key);
  const WireValue* find(std::string_view key) const;
  std::vector<std::pair<std::string, WireValue>> fields_;
};

/// Escape a string for embedding in a JSON document (quotes not included).
std::string json_escape(std::string_view s);

/// Format a double with enough digits to round-trip bit-exactly.
std::string json_number(double v);

/// Incremental NDJSON splitter over an append-only byte stream: feed raw
/// socket reads in, take complete lines out. A line longer than `max_line`
/// bytes is reported as oversized (next_line returns it truncated with
/// `oversized` set) so a hostile or confused peer cannot grow the buffer
/// without bound; the remainder of that logical line is then swallowed up
/// to its terminating '\n' so one oversized request produces exactly one
/// surfaced line.
class LineBuffer {
 public:
  explicit LineBuffer(std::size_t max_line = 8 * 1024 * 1024)
      : max_line_(max_line) {}

  void append(const char* data, std::size_t n);

  struct Line {
    std::string text;
    bool oversized = false;
  };
  /// Next complete line (without '\n'), or std::nullopt when the buffer
  /// holds only a partial line.
  std::optional<Line> next_line();

  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t max_line_;
  /// An oversized partial line was surfaced; swallow bytes until the next
  /// '\n' without emitting lines, then resume normal framing.
  bool discarding_ = false;
};

}  // namespace plk
