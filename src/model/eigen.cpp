#include "model/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace plk {

EigenSystem eigen_symmetric(const Matrix& a_in, double symmetry_tol) {
  const std::size_t n = a_in.size();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (std::abs(a_in(i, j) - a_in(j, i)) > symmetry_tol)
        throw std::invalid_argument("eigen_symmetric: matrix not symmetric");

  Matrix a = a_in;
  Matrix v = Matrix::identity(n);

  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm; convergence check.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (off < 1e-30) {
      EigenSystem out;
      out.values.resize(n);
      for (std::size_t i = 0; i < n; ++i) out.values[i] = a(i, i);
      out.vectors = std::move(v);
      return out;
    }

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable rotation: t = sign(theta) / (|theta| + sqrt(theta^2 + 1)).
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation J(p, q, theta) on both sides of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  throw std::runtime_error("eigen_symmetric: Jacobi did not converge");
}

}  // namespace plk
