#include "model/subst_model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace plk {

namespace {

std::size_t exch_count(int states) {
  return static_cast<std::size_t>(states) *
         static_cast<std::size_t>(states - 1) / 2;
}

/// Structured validation for the model-parameter vectors: every entry must
/// be a finite, strictly positive number. NaN, +/-inf, zero, and negatives
/// are all rejected with the offending index and value spelled out, so
/// hostile input never reaches decompose() (where it would surface as an
/// inscrutable "degenerate rate matrix" — or not surface at all: +inf passes
/// a plain `!(r > 0.0)` test).
void check_positive_finite(const std::vector<double>& v, const char* what) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double x = v[i];
    if (!std::isfinite(x) || !(x > 0.0))
      throw std::invalid_argument(
          "SubstModel: " + std::string(what) + "[" + std::to_string(i) +
          "] = " + std::to_string(x) + " is not a finite positive number");
  }
}

}  // namespace

SubstModel::SubstModel(int states, std::vector<double> exch,
                       std::vector<double> freqs)
    : states_(states), exch_(std::move(exch)), freqs_(std::move(freqs)) {
  if (states_ < 2) throw std::invalid_argument("model needs >= 2 states");
  if (exch_.size() != exch_count(states_))
    throw std::invalid_argument("wrong exchangeability count");
  if (freqs_.size() != static_cast<std::size_t>(states_))
    throw std::invalid_argument("wrong frequency count");
  check_positive_finite(exch_, "exchangeability");
  check_positive_finite(freqs_, "frequency");
  double fsum = 0.0;
  for (double f : freqs_) fsum += f;
  // Skip the division when already normalized: repeated renormalization of
  // an almost-1 sum would oscillate in the last ulp (breaking byte-stable
  // checkpoints) without improving anything.
  if (std::abs(fsum - 1.0) > 1e-12)
    for (double& f : freqs_) f /= fsum;
  decompose();
}

void SubstModel::set_exchangeability(int k, double value) {
  if (k < 0 || k >= free_rate_count())
    throw std::out_of_range("exchangeability index");
  // NaN passes straight through std::clamp, so reject non-finite first.
  if (!std::isfinite(value))
    throw std::invalid_argument(
        "SubstModel: exchangeability[" + std::to_string(k) + "] = " +
        std::to_string(value) + " is not a finite positive number");
  exch_[static_cast<std::size_t>(k)] =
      std::clamp(value, kRateMin, kRateMax);
  decompose();
}

void SubstModel::set_exchangeabilities(std::vector<double> exch) {
  if (exch.size() != exch_.size())
    throw std::invalid_argument("wrong exchangeability count");
  check_positive_finite(exch, "exchangeability");
  exch_ = std::move(exch);
  decompose();
}

void SubstModel::set_freqs(std::vector<double> freqs) {
  if (freqs.size() != static_cast<std::size_t>(states_))
    throw std::invalid_argument("wrong frequency count");
  check_positive_finite(freqs, "frequency");
  double fsum = 0.0;
  for (double f : freqs) fsum += f;
  if (std::abs(fsum - 1.0) > 1e-12)
    for (double& f : freqs) f /= fsum;
  freqs_ = std::move(freqs);
  decompose();
}

void SubstModel::decompose() {
  const std::size_t s = static_cast<std::size_t>(states_);

  // Unnormalized Q: q_ij = exch_ij * pi_j for i != j.
  Matrix q(s);
  std::size_t e = 0;
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t j = i + 1; j < s; ++j, ++e) {
      q(i, j) = exch_[e] * freqs_[j];
      q(j, i) = exch_[e] * freqs_[i];
    }
  double mean_rate = 0.0;  // -sum_i pi_i q_ii = expected subst / unit time
  for (std::size_t i = 0; i < s; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < s; ++j)
      if (j != i) row += q(i, j);
    q(i, i) = -row;
    mean_rate += freqs_[i] * row;
  }
  if (!(mean_rate > 0.0))
    throw std::invalid_argument("degenerate rate matrix");
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t j = 0; j < s; ++j) q(i, j) /= mean_rate;
  q_ = q;

  // Symmetrize: B_ij = q_ij * sqrt(pi_i / pi_j); reversibility makes B
  // symmetric exactly (up to round-off, which we symmetrize away).
  Matrix b(s);
  std::vector<double> sqrt_pi(s);
  for (std::size_t i = 0; i < s; ++i) sqrt_pi[i] = std::sqrt(freqs_[i]);
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t j = 0; j < s; ++j)
      b(i, j) = q_(i, j) * sqrt_pi[i] / sqrt_pi[j];
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t j = i + 1; j < s; ++j) {
      const double avg = 0.5 * (b(i, j) + b(j, i));
      b(i, j) = avg;
      b(j, i) = avg;
    }

  EigenSystem es = eigen_symmetric(b);
  eigenvalues_ = std::move(es.values);

  left_ = Matrix(s);
  right_ = Matrix(s);
  sym_ = Matrix(s);
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t k = 0; k < s; ++k) {
      left_(i, k) = es.vectors(i, k) / sqrt_pi[i];
      right_(k, i) = es.vectors(i, k) * sqrt_pi[i];
      sym_(k, i) = sqrt_pi[i] * es.vectors(i, k);
    }
}

void SubstModel::transition_matrix(double t, Matrix& out) const {
  const std::size_t s = static_cast<std::size_t>(states_);
  t = std::clamp(t, kBranchMin, kBranchMax);
  if (out.size() != s) out = Matrix(s);
  // Row i of P(t) is sum_k [left(i,k) exp(lambda_k t)] * right-row-k: with
  // the per-row weights hoisted, the j loop runs vectorized over unit-stride
  // rows of right_ while each entry still accumulates k in ascending order
  // (the same association as the old scalar i-j-k loop, up to FMA rounding).
  // Pmat builds sit on the parallel pre-stage critical path (one call per
  // category per PmatTask), which is why this is not a naive triple loop.
  constexpr std::size_t W = simd::kLanes;
  double expl[32];
  double w[32];
  for (std::size_t k = 0; k < s; ++k)
    expl[k] = std::exp(eigenvalues_[k] * t);
  for (std::size_t i = 0; i < s; ++i) {
    double* o = out.row(i);
    for (std::size_t k = 0; k < s; ++k) w[k] = left_(i, k) * expl[k];
    std::size_t j = 0;
    for (; j + W <= s; j += W) {
      simd::Vec acc = simd::zero();
      for (std::size_t k = 0; k < s; ++k)
        acc = simd::fma(simd::set1(w[k]), simd::load(right_.row(k) + j), acc);
      // clamp round-off negatives (and -0.0) to +0.0
      simd::store(o + j, simd::max(acc, simd::zero()));
    }
    for (; j < s; ++j) {
      double p = 0.0;
      for (std::size_t k = 0; k < s; ++k) p += w[k] * right_(k, j);
      o[j] = p > 0.0 ? p : 0.0;
    }
  }
}

// --- factories --------------------------------------------------------------

SubstModel jc69() {
  SubstModel m(4, std::vector<double>(6, 1.0), std::vector<double>(4, 0.25));
  m.set_name("JC");
  return m;
}

SubstModel k80(double kappa) {
  // Exchangeability order: AC, AG, AT, CG, CT, GT; transitions are AG, CT.
  SubstModel m(4, {1.0, kappa, 1.0, 1.0, kappa, 1.0},
               std::vector<double>(4, 0.25));
  m.set_name("K80");
  return m;
}

SubstModel hky85(double kappa, std::vector<double> freqs) {
  SubstModel m(4, {1.0, kappa, 1.0, 1.0, kappa, 1.0}, std::move(freqs));
  m.set_name("HKY");
  return m;
}

SubstModel gtr(std::vector<double> six_rates, std::vector<double> freqs) {
  if (six_rates.size() != 6)
    throw std::invalid_argument("GTR needs 6 exchangeabilities");
  SubstModel m(4, std::move(six_rates), std::move(freqs));
  m.set_name("GTR");
  return m;
}

SubstModel protein_model(std::string_view name) {
  std::string up(name);
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // Deterministic seed from the model name so "WAG" is always the same model.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (char c : up) seed = seed * 1099511628211ULL + static_cast<unsigned char>(c);
  if (up != "WAG" && up != "JTT" && up != "LG" && up != "DAYHOFF" &&
      up != "PROT" && up != "AA" && up != "PROTGAMMA")
    throw std::invalid_argument("unknown protein model '" + up + "'");
  if (up == "PROT" || up == "AA" || up == "PROTGAMMA") seed = 0x57a6u;  // WAG stand-in

  // Synthetic reversible 20-state model: log-normal-ish exchangeabilities,
  // Dirichlet-ish frequencies, deterministic in `seed` (see header comment).
  std::vector<double> exch(exch_count(20));
  std::uint64_t s = seed;
  for (auto& r : exch) {
    const double u = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
    r = std::exp(3.0 * (u - 0.5));  // spread over ~ e^-1.5 .. e^1.5
  }
  std::vector<double> freqs(20);
  double fsum = 0.0;
  for (auto& f : freqs) {
    const double u = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
    f = 0.01 + u;  // bounded away from 0
    fsum += f;
  }
  for (auto& f : freqs) f /= fsum;
  SubstModel m(20, std::move(exch), std::move(freqs));
  m.set_name(up == "PROT" || up == "AA" || up == "PROTGAMMA" ? "WAG" : up);
  return m;
}

SubstModel make_model(std::string_view name, const std::vector<double>& freqs) {
  std::string up(name);
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  auto dna_freqs = [&]() -> std::vector<double> {
    return freqs.empty() ? std::vector<double>(4, 0.25) : freqs;
  };
  if (up == "JC" || up == "JC69") {
    if (freqs.empty()) return jc69();
    SubstModel m(4, std::vector<double>(6, 1.0), freqs);
    m.set_name("JC");
    return m;
  }
  if (up == "K80" || up == "K2P") return k80();
  if (up == "HKY" || up == "HKY85") return hky85(2.0, dna_freqs());
  if (up == "GTR" || up == "DNA")
    return gtr(std::vector<double>(6, 1.0), dna_freqs());
  // Protein names.
  SubstModel m = protein_model(up);
  if (!freqs.empty()) m.set_freqs(freqs);
  return m;
}

}  // namespace plk
