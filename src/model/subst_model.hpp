// Time-reversible substitution models.
//
// A general time-reversible (GTR-class) model over S states is defined by
// S(S-1)/2 exchangeability parameters and S stationary frequencies. The rate
// matrix Q (q_ij = exch_ij * pi_j, rows summing to zero, normalized to one
// expected substitution per unit time) is diagonalized once per parameter
// change via the symmetric similarity transform
//     B = D^{1/2} Q D^{-1/2},  D = diag(pi),  B = V L V^T
// so that
//     P(t) = exp(Q t) = (D^{-1/2} V) e^{Lt} (V^T D^{1/2}).
// The likelihood kernel consumes the decomposition directly: transition
// matrices for newview, and the "symmetric coordinates" transform
//     x_k = sum_i sqrt(pi_i) V_ik L_i
// for the branch-length Newton-Raphson sumtable, where per-site likelihoods
// become sum_k x_k y_k e^{lambda_k t} and differentiate trivially in t.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/eigen.hpp"
#include "model/matrix.hpp"

namespace plk {

/// Minimum branch length the models accept (matching RAxML's zmin-equivalent).
inline constexpr double kBranchMin = 1e-7;
/// Maximum branch length.
inline constexpr double kBranchMax = 100.0;

/// A reversible substitution model with cached eigendecomposition.
class SubstModel {
 public:
  /// `exch`: upper-triangle exchangeabilities in row-major order
  /// ((0,1),(0,2),...,(S-2,S-1)), all > 0; `freqs`: stationary frequencies,
  /// all > 0, summing to 1 (renormalized internally).
  SubstModel(int states, std::vector<double> exch, std::vector<double> freqs);

  int states() const { return states_; }
  const std::vector<double>& freqs() const { return freqs_; }
  const std::vector<double>& exchangeabilities() const { return exch_; }

  /// Canonical model-family name ("GTR", "HKY", "WAG", ...; "CUSTOM" for
  /// models built directly from matrices). Set by the named factories so the
  /// ModelSpec layer can reconstruct a canonical spec string from a live
  /// model.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of free exchangeability parameters (the last one is the fixed
  /// reference, RAxML convention: G<->T == 1 for DNA).
  int free_rate_count() const { return static_cast<int>(exch_.size()) - 1; }

  /// Replace exchangeability k (0-based, k < free_rate_count()) and
  /// re-diagonalize. Value is clamped to [kRateMin, kRateMax].
  void set_exchangeability(int k, double value);
  /// Replace all exchangeabilities at once.
  void set_exchangeabilities(std::vector<double> exch);
  /// Replace stationary frequencies and re-diagonalize.
  void set_freqs(std::vector<double> freqs);

  /// Normalized rate matrix Q.
  const Matrix& rate_matrix() const { return q_; }

  /// Eigenvalues of Q (one is ~0).
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

  /// Fill `out` (S x S) with P(t) = exp(Qt). Negative round-off entries are
  /// clamped to 0. t is clamped to [kBranchMin, kBranchMax].
  void transition_matrix(double t, Matrix& out) const;

  /// Row k of this matrix, dotted with a conditional likelihood vector,
  /// yields symmetric coordinate k: A(k, i) = sqrt(pi_i) * V(i, k).
  const Matrix& sym_transform() const { return sym_; }

  /// Eigendecomposition factors of Q: P(t) = eigen_left * diag(exp(lambda t))
  /// * eigen_right. Exposed for benches/tests that need a reference P(t)
  /// build independent of transition_matrix()'s loop structure.
  const Matrix& eigen_left() const { return left_; }
  const Matrix& eigen_right() const { return right_; }

  /// Bounds for exchangeability optimization (RAxML's RATE_MIN/RATE_MAX).
  static constexpr double kRateMin = 1e-4;
  static constexpr double kRateMax = 1e6;

 private:
  void decompose();

  int states_;
  std::string name_ = "CUSTOM";
  std::vector<double> exch_;
  std::vector<double> freqs_;
  Matrix q_;                        // normalized rate matrix
  std::vector<double> eigenvalues_;
  Matrix left_;                     // D^{-1/2} V
  Matrix right_;                    // V^T D^{1/2}
  Matrix sym_;                      // A(k,i) = sqrt(pi_i) V(i,k)
};

// --- named model factories -------------------------------------------------

/// Jukes-Cantor 1969: equal rates, equal frequencies.
SubstModel jc69();
/// Kimura 1980: transition/transversion ratio kappa, equal frequencies.
SubstModel k80(double kappa = 2.0);
/// HKY 1985: kappa plus arbitrary frequencies.
SubstModel hky85(double kappa, std::vector<double> freqs);
/// Full GTR with 6 exchangeabilities (AC, AG, AT, CG, CT, GT) and freqs.
SubstModel gtr(std::vector<double> six_rates, std::vector<double> freqs);

/// Named 20-state protein model ("WAG", "JTT", "LG", "DAYHOFF").
///
/// OFFLINE SUBSTITUTION (documented in DESIGN.md): the published empirical
/// rate tables are not redistributable from memory, so these are synthetic
/// reversible 20-state models generated deterministically from the model
/// name. They exercise exactly the same code paths and per-column floating
/// point cost as the real tables (which is all the paper's protein
/// experiment, E7, depends on); likelihood *values* differ from RAxML's.
SubstModel protein_model(std::string_view name);

/// Build a model by name. DNA names: JC/JC69, K80/K2P, HKY/HKY85, GTR, DNA
/// (alias of GTR). Protein names as in protein_model(), plus PROT/AA
/// (alias of WAG). `freqs` overrides stationary frequencies when non-empty.
SubstModel make_model(std::string_view name,
                      const std::vector<double>& freqs = {});

}  // namespace plk
