// Symmetric eigendecomposition (cyclic Jacobi).
//
// Time-reversible rate matrices become symmetric after the similarity
// transform B = D^{1/2} Q D^{-1/2} (D = diag of the stationary frequencies);
// the Jacobi method is exact enough and dependency-free for matrices of size
// <= 20, which is all the PLK ever needs.
#pragma once

#include <vector>

#include "model/matrix.hpp"

namespace plk {

/// Result of a symmetric eigendecomposition A = V diag(values) V^T, with V
/// orthonormal columns (eigenvector k is V(:, k)).
struct EigenSystem {
  std::vector<double> values;
  Matrix vectors;  // columns are eigenvectors
};

/// Decompose a symmetric matrix. Throws std::invalid_argument if `a` is not
/// symmetric to within `symmetry_tol`, or std::runtime_error if Jacobi fails
/// to converge (which does not happen for well-formed inputs).
EigenSystem eigen_symmetric(const Matrix& a, double symmetry_tol = 1e-9);

}  // namespace plk
