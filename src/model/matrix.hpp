// Small dense square matrices for substitution-model math.
//
// Substitution matrices are at most 20x20 (amino acids); these are simple
// row-major heap matrices with the handful of operations the model layer
// needs. Not a general linear-algebra library by design.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/simd.hpp"

namespace plk {

/// Row-major square matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n, double fill = 0.0)
      : n_(n), data_(n * n, fill) {}

  std::size_t size() const { return n_; }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * n_ + j]; }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * n_ + j];
  }

  double* row(std::size_t i) { return data_.data() + i * n_; }
  const double* row(std::size_t i) const { return data_.data() + i * n_; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n) {
    Matrix m(n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Matrix product (this * rhs); sizes must match. The row-accumulation
  /// (i-k-j) order vectorizes over j with unit-stride rows while keeping the
  /// per-entry summation in ascending k, and structural zeros in `this`
  /// still skip their whole row pass.
  Matrix multiply(const Matrix& rhs) const {
    if (rhs.n_ != n_) throw std::invalid_argument("matrix size mismatch");
    constexpr std::size_t W = simd::kLanes;
    Matrix out(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      double* o = out.row(i);
      for (std::size_t k = 0; k < n_; ++k) {
        const double a = (*this)(i, k);
        if (a == 0.0) continue;
        const double* r = rhs.row(k);
        const simd::Vec av = simd::set1(a);
        std::size_t j = 0;
        for (; j + W <= n_; j += W)
          simd::store(o + j, simd::fma(av, simd::load(r + j),
                                       simd::load(o + j)));
        for (; j < n_; ++j) o[j] += a * r[j];
      }
    }
    return out;
  }

  /// Transposed copy.
  Matrix transposed() const {
    Matrix out(n_);
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t j = 0; j < n_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  /// Max |a_ij - b_ij|.
  double max_abs_diff(const Matrix& rhs) const {
    double d = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
      const double x = data_[i] - rhs.data_[i];
      d = d > (x < 0 ? -x : x) ? d : (x < 0 ? -x : x);
    }
    return d;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace plk
