#include "model/rates.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace plk {

namespace {

double clamp_rate(double r) {
  if (!(r > 0.0) || !std::isfinite(r))
    throw std::invalid_argument("free rate must be finite and > 0");
  return std::clamp(r, kFreeRateMin, kFreeRateMax);
}

}  // namespace

RateModel RateModel::gamma(double alpha, int cats, GammaMode mode) {
  if (cats < 1) throw std::invalid_argument("rate categories must be >= 1");
  RateModel m;
  m.kind_ = Kind::kGamma;
  m.mode_ = mode;
  m.alpha_ = std::clamp(alpha, kAlphaMin, kAlphaMax);
  m.rates_.resize(static_cast<std::size_t>(cats));
  m.weights_.assign(static_cast<std::size_t>(cats),
                    1.0 / static_cast<double>(cats));
  m.refresh_gamma();
  return m;
}

RateModel RateModel::free(std::vector<double> rates,
                          std::vector<double> weights) {
  if (rates.empty() || rates.size() != weights.size())
    throw std::invalid_argument(
        "free rate model needs matching non-empty rates and weights");
  RateModel m;
  m.kind_ = Kind::kFree;
  m.rates_ = std::move(rates);
  m.weights_ = std::move(weights);
  for (double& r : m.rates_) r = clamp_rate(r);
  double wsum = 0.0;
  for (double w : m.weights_) {
    if (!(w > 0.0) || !std::isfinite(w))
      throw std::invalid_argument("free weight must be finite and > 0");
    wsum += w;
  }
  for (double& w : m.weights_) w /= wsum;
  m.normalize_free();
  return m;
}

RateModel RateModel::free_from_gamma(int cats, double alpha) {
  return free(discrete_gamma_rates(alpha, cats),
              std::vector<double>(static_cast<std::size_t>(cats),
                                  1.0 / static_cast<double>(cats)));
}

RateModel RateModel::restore_free(std::vector<double> rates,
                                  std::vector<double> weights, bool invariant,
                                  double p_inv) {
  if (rates.empty() || rates.size() != weights.size())
    throw std::invalid_argument(
        "free rate model needs matching non-empty rates and weights");
  for (double r : rates)
    if (!(r > 0.0) || !std::isfinite(r))
      throw std::invalid_argument("free rate must be finite and > 0");
  for (double w : weights)
    if (!(w > 0.0) || !std::isfinite(w))
      throw std::invalid_argument("free weight must be finite and > 0");
  RateModel m;
  m.kind_ = Kind::kFree;
  m.rates_ = std::move(rates);
  m.weights_ = std::move(weights);
  m.invariant_ = invariant;
  m.p_inv_ = invariant ? p_inv : 0.0;
  m.refresh_eval_weights();
  return m;
}

void RateModel::set_alpha(double alpha) {
  alpha_ = std::clamp(alpha, kAlphaMin, kAlphaMax);
  if (kind_ == Kind::kGamma) refresh_gamma();
}

void RateModel::enable_invariant(double p0) {
  invariant_ = true;
  set_p_inv(p0);
}

void RateModel::set_p_inv(double p) {
  invariant_ = true;
  p_inv_ = std::clamp(p, kPinvMin, kPinvMax);
  if (kind_ == Kind::kGamma)
    refresh_gamma();
  else
    normalize_free();
}

void RateModel::set_free_rate(int c, double rate) {
  if (kind_ != Kind::kFree)
    throw std::logic_error("set_free_rate: not a free-rate model");
  rates_.at(static_cast<std::size_t>(c)) = clamp_rate(rate);
  normalize_free();
}

void RateModel::set_free_weight(int c, double weight) {
  if (kind_ != Kind::kFree)
    throw std::logic_error("set_free_weight: not a free-rate model");
  const std::size_t k = static_cast<std::size_t>(c);
  const double w =
      std::clamp(weight, kFreeWeightMin, 1.0 - kFreeWeightMin);
  // Scale the other weights to absorb the change so the simplex constraint
  // holds exactly by construction.
  const double others = 1.0 - weights_.at(k);
  const double scale = others > 0.0 ? (1.0 - w) / others : 0.0;
  for (std::size_t j = 0; j < weights_.size(); ++j)
    if (j != k) weights_[j] *= scale;
  weights_[k] = w;
  normalize_free();
}

void RateModel::set_free(std::vector<double> rates,
                         std::vector<double> weights) {
  if (kind_ != Kind::kFree)
    throw std::logic_error("set_free: not a free-rate model");
  *this = [&] {
    RateModel m = RateModel::free(std::move(rates), std::move(weights));
    m.invariant_ = invariant_;
    m.p_inv_ = p_inv_;
    m.normalize_free();
    return m;
  }();
}

void RateModel::refresh_gamma() {
  const int cats = categories();
  rates_ = discrete_gamma_rates(alpha_, cats, mode_);
  // The (1 - p) rescale keeps the all-site mean rate at 1. The p == 0
  // branch is not an optimization: skipping the divide keeps plain-Gamma
  // category rates bit-identical to the pre-RateModel engine.
  if (p_inv_ > 0.0)
    for (double& r : rates_) r /= (1.0 - p_inv_);
  refresh_eval_weights();
}

void RateModel::normalize_free() {
  double mean = 0.0;
  for (std::size_t c = 0; c < rates_.size(); ++c)
    mean += weights_[c] * rates_[c];
  if (!(mean > 0.0))
    throw std::invalid_argument("free rate model has zero mean rate");
  const double target = 1.0 / (1.0 - p_inv_);
  const double scale = target / mean;
  for (double& r : rates_) r *= scale;
  refresh_eval_weights();
}

void RateModel::refresh_eval_weights() {
  eval_weights_.resize(weights_.size());
  const double q = 1.0 - p_inv_;
  for (std::size_t c = 0; c < weights_.size(); ++c)
    eval_weights_[c] = q * weights_[c];
}

void RateModel::append_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(static_cast<int>(kind_)));
  out.push_back(static_cast<double>(static_cast<int>(mode_)));
  out.push_back(static_cast<double>(categories()));
  out.push_back(alpha_);
  out.push_back(invariant_ ? 1.0 : 0.0);
  out.push_back(p_inv_);
  out.insert(out.end(), rates_.begin(), rates_.end());
  out.insert(out.end(), weights_.begin(), weights_.end());
}

}  // namespace plk
