// Discrete Gamma rate heterogeneity (Yang 1994).
//
// Sites in real alignments evolve at different speeds. The Γ model draws a
// per-site rate multiplier from a Gamma(alpha, alpha) distribution (mean 1);
// the standard discrete approximation replaces the continuous density by K
// equiprobable categories, each represented by its mean (or median) rate.
// The alpha shape parameter is estimated by maximum likelihood per partition
// — one of the per-partition Brent optimizations whose parallelization the
// paper studies.
#pragma once

#include <vector>

namespace plk {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
double regularized_gamma_p(double a, double x);

/// CDF of Gamma(shape, rate) at x.
double gamma_cdf(double x, double shape, double rate);

/// Quantile (inverse CDF) of Gamma(shape, rate); p in (0, 1).
double gamma_quantile(double p, double shape, double rate);

/// How each category represents its probability mass.
enum class GammaMode {
  kMean,    ///< category rate = conditional mean (Yang's default)
  kMedian,  ///< category rate = conditional median, renormalized to mean 1
};

/// K equiprobable discrete Gamma category rates for shape `alpha`.
/// The returned rates always average exactly 1 (each category has
/// probability 1/K). alpha must be > 0; K >= 1. K == 1 returns {1}.
std::vector<double> discrete_gamma_rates(double alpha, int categories,
                                         GammaMode mode = GammaMode::kMean);

/// Bounds within which alpha is optimized (matching RAxML's limits).
inline constexpr double kAlphaMin = 0.02;
inline constexpr double kAlphaMax = 100.0;

}  // namespace plk
