// Rate-heterogeneity models: discrete Gamma, free rates (+R), and the
// proportion-of-invariant-sites (+I) term.
//
// A rate model assigns every alignment site a rate multiplier drawn from a
// small discrete mixture: K categories with rates r_c and weights w_c
// (sum w_c = 1), plus optionally an invariant class of probability p that
// evolves at rate 0. The per-site likelihood becomes
//     L_i = (1 - p) * sum_c w_c * L_i(r_c)  +  p * [i invariant] * pi_{x_i}
// Two shapes are supported:
//
//   kGamma  discrete Gamma (Yang 1994): K equiprobable categories whose
//           rates are a pure function of the shape alpha. This is the seed
//           engine's model; with p = 0 it is bit-identical to the historic
//           hard-coded equal-weight path.
//   kFree   free rates (+R k): K independent (rate, weight) pairs, both
//           optimized by maximum likelihood. Strictly more general than
//           Gamma at the cost of 2(K-1) extra free parameters.
//
// Normalization invariant (IQ-TREE convention): the category rates always
// satisfy sum_c w_c * r_c = 1 / (1 - p), so the expected rate over ALL sites
// — including the invariant class at rate 0 — is exactly 1 and branch
// lengths keep their "expected substitutions per site" meaning under any
// mixture shape.
#pragma once

#include <vector>

#include "model/gamma.hpp"

namespace plk {

/// Bounds for proportion-of-invariant-sites optimization.
inline constexpr double kPinvMin = 1e-6;
inline constexpr double kPinvMax = 0.99;
/// Starting value when +I is enabled without an explicit proportion.
inline constexpr double kPinvStart = 0.1;

/// Bounds for free-rate optimization (multiplier space) and the floor for
/// free-category weights.
inline constexpr double kFreeRateMin = 1e-4;
inline constexpr double kFreeRateMax = 1e4;
inline constexpr double kFreeWeightMin = 1e-3;

/// A discrete rate-heterogeneity mixture; see file comment.
class RateModel {
 public:
  enum class Kind { kGamma, kFree };

  /// Discrete Gamma with `cats` equiprobable categories (the seed model).
  static RateModel gamma(double alpha, int cats,
                         GammaMode mode = GammaMode::kMean);
  /// Free rates from explicit per-category rates and weights. Weights are
  /// renormalized to sum 1, rates rescaled to the normalization invariant.
  static RateModel free(std::vector<double> rates,
                        std::vector<double> weights);
  /// Free rates seeded from the discrete Gamma grid at shape `alpha` with
  /// uniform weights — the standard +R starting point.
  static RateModel free_from_gamma(int cats, double alpha = 1.0);
  /// Reconstruct a serialized free-rate state VERBATIM (checkpoint restore):
  /// rates and weights are taken as already normalized and are not rescaled
  /// — re-running normalize_free on its own output shifts values by a few
  /// ulps, which would break bit-identical resume. Inputs must come from
  /// append_state-equivalent serialization, not user input.
  static RateModel restore_free(std::vector<double> rates,
                                std::vector<double> weights, bool invariant,
                                double p_inv);

  Kind kind() const { return kind_; }
  int categories() const { return static_cast<int>(rates_.size()); }
  GammaMode gamma_mode() const { return mode_; }
  double alpha() const { return alpha_; }

  /// Proportion of invariant sites (0 when the +I term is off).
  double p_inv() const { return p_inv_; }
  /// Whether the +I term is part of the model (it may currently sit at a
  /// proportion of kPinvMin; the optimizer only moves p when this is set).
  bool invariant_sites() const { return invariant_; }

  /// Category rate multipliers (normalized; see file comment).
  const std::vector<double>& rates() const { return rates_; }
  /// Raw category weights, summing to exactly . . . well, 1 up to round-off;
  /// Gamma weights are the exact constant 1/K.
  const std::vector<double>& weights() const { return weights_; }
  /// Kernel-facing weights with the (1 - p_inv) factor folded in:
  /// L_i = sum_c eval_weights[c] * L_i(r_c) + inv_contrib_i.
  const std::vector<double>& eval_weights() const { return eval_weights_; }

  /// True when the kernels may take the historic equal-weight fast path
  /// (uniform 1/K weights, no invariant term) — this is what keeps plain
  /// GAMMA runs bit-identical to the pre-RateModel engine.
  bool uniform_categories() const {
    return kind_ == Kind::kGamma && !invariant_;
  }

  /// Set the Gamma shape (kGamma only; clamped to [kAlphaMin, kAlphaMax])
  /// and refresh the category rates.
  void set_alpha(double alpha);
  /// Turn the +I term on at proportion `p0`.
  void enable_invariant(double p0 = kPinvStart);
  /// Set the invariant proportion (clamped to [kPinvMin, kPinvMax]; implies
  /// enable_invariant). Rates are re-normalized.
  void set_p_inv(double p);
  /// Replace free-rate category c's rate (kFree only, clamped) and
  /// re-normalize all rates to the invariant.
  void set_free_rate(int c, double rate);
  /// Replace free-rate category c's weight (kFree only, clamped to
  /// [kFreeWeightMin, 1 - kFreeWeightMin]); the other weights are scaled to
  /// keep the sum at 1, and rates are re-normalized.
  void set_free_weight(int c, double weight);
  /// Replace all free rates and weights at once (kFree only).
  void set_free(std::vector<double> rates, std::vector<double> weights);

  /// Append every number the likelihood depends on through this rate model
  /// (kind, mode, alpha, p, rates, weights) — the engine's content-addressed
  /// model-epoch registry hashes this.
  void append_state(std::vector<double>& out) const;

  bool operator==(const RateModel& o) const = default;

 private:
  RateModel() = default;
  void refresh_gamma();
  void normalize_free();
  void refresh_eval_weights();

  Kind kind_ = Kind::kGamma;
  GammaMode mode_ = GammaMode::kMean;
  double alpha_ = 1.0;
  double p_inv_ = 0.0;
  bool invariant_ = false;
  std::vector<double> rates_;
  std::vector<double> weights_;
  std::vector<double> eval_weights_;
};

}  // namespace plk
