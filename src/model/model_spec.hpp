// Model specification strings.
//
// One string names the full per-partition model — substitution family,
// optional explicit parameters, rate heterogeneity, invariant sites, and
// frequency handling:
//
//     NAME[{p1,p2,...}][+G[k] | +R[k]][+I][+F{C|O|E}]
//
//     GTR+G4          GTR, 4-category discrete Gamma (the seed default)
//     HKY{2.5}+I      HKY with kappa fixed at 2.5 plus invariant sites
//     LG+R4+I         protein LG, 4 free-rate categories, +I
//     JC              plain Jukes-Cantor, single rate
//     GTR+G4+FE       GTR with equal frequencies instead of counts
//
// +G / +R default to 4 categories when k is omitted. +F selects the
// stationary-frequency source: C = empirical counts from the alignment,
// O = the model family's own frequencies, E = equal 1/S; omitted means the
// family default (counts for DNA, model frequencies for protein).
//
// Family parameters in {...}: kappa for K80/HKY (1 value), the six
// exchangeabilities AC,AG,AT,CG,CT,GT for GTR; JC and the protein families
// take none. Aliases: JC69=JC, K2P=K80, HKY85=HKY, DNA=GTR,
// PROT/AA/PROTGAMMA=WAG.
//
// parse_model_spec / to_string round-trip: to_string always prints the
// canonical form (aliases resolved, category count explicit, shortest
// round-trip number formatting), and parsing the canonical form yields an
// identical ModelSpec.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/rates.hpp"
#include "model/subst_model.hpp"

namespace plk {

class PartitionModel;

/// Parsed form of a model specification string; see file comment.
struct ModelSpec {
  enum class RateKind { kNone, kGamma, kFree };
  enum class FreqMode { kDefault, kCounts, kModel, kEqual };

  std::string name;            ///< canonical family name ("GTR", "WAG", ...)
  std::vector<double> params;  ///< family parameters (empty = defaults)
  RateKind rate_kind = RateKind::kNone;
  int categories = 0;          ///< rate categories (0 when rate_kind kNone)
  bool invariant = false;      ///< +I term present
  FreqMode freq_mode = FreqMode::kDefault;

  bool operator==(const ModelSpec&) const = default;
};

/// Parse a model specification. Throws std::invalid_argument with a message
/// naming the offending token on any malformed input (unknown family, bad
/// parameter count, non-finite numbers, duplicate or conflicting suffixes,
/// trailing garbage, ...).
ModelSpec parse_model_spec(std::string_view text);

/// Canonical string form; parse_model_spec(to_string(s)) == s.
std::string to_string(const ModelSpec& spec);

/// True for the 20-state protein family names and their aliases.
bool is_protein_model_name(std::string_view name);

/// Build the substitution model a spec describes. `counts_freqs` are the
/// empirical frequencies from the alignment, used when the spec's frequency
/// mode resolves to counts (explicitly via +FC or by the DNA default); an
/// empty vector falls back to the family's built-in frequencies.
SubstModel make_subst_model(const ModelSpec& spec,
                            const std::vector<double>& counts_freqs = {});

/// Build the rate model a spec describes (kNone -> single unit-rate
/// category). Gamma starts at alpha = 1, free rates at the Gamma(1) grid
/// with uniform weights, +I at kPinvStart.
RateModel make_rate_model(const ModelSpec& spec);

/// Reconstruct the canonical structural spec string for a live partition
/// model: family name plus rate suffixes (+G/+R/+I). Numeric parameter
/// values are intentionally omitted — this names the model shape, the
/// numbers live in checkpoints.
std::string describe_model(const PartitionModel& pm);

}  // namespace plk
