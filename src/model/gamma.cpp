#include "model/gamma.hpp"

#include <cmath>
#include <stdexcept>

namespace plk {

namespace {

/// Series expansion of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-15)
      return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  throw std::runtime_error("gamma_p_series: no convergence");
}

/// Continued fraction for Q(a, x) = 1 - P(a, x); for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15)
      return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  throw std::runtime_error("gamma_q_contfrac: no convergence");
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("regularized_gamma_p: a <= 0");
  if (x < 0.0) throw std::invalid_argument("regularized_gamma_p: x < 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_contfrac(a, x);
}

double gamma_cdf(double x, double shape, double rate) {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(shape, rate * x);
}

double gamma_quantile(double p, double shape, double rate) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("gamma_quantile: p must be in (0,1)");
  if (shape <= 0.0 || rate <= 0.0)
    throw std::invalid_argument("gamma_quantile: non-positive parameter");

  // Wilson–Hilferty starting point: Gamma quantile via the normal
  // approximation of the cube root of a chi-square variate.
  // Normal quantile via Acklam-style rational approximation is overkill;
  // a simple logistic-ish approximation then Newton cleanup suffices.
  auto normal_quantile = [](double q) {
    // Beasley–Springer–Moro style central + tail approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425, phigh = 1 - plow;
    double x;
    if (q < plow) {
      const double u = std::sqrt(-2.0 * std::log(q));
      x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
           c[5]) /
          ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
    } else if (q > phigh) {
      const double u = std::sqrt(-2.0 * std::log(1.0 - q));
      x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
            c[5]) /
          ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
    } else {
      const double u = q - 0.5;
      const double r = u * u;
      x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
           a[5]) *
          u /
          (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    }
    return x;
  };

  const double z = normal_quantile(p);
  const double g = 2.0 * shape;  // chi-square degrees of freedom analogue
  const double wh = 1.0 - 2.0 / (9.0 * g) + z * std::sqrt(2.0 / (9.0 * g));
  double x = 0.5 * g * wh * wh * wh / rate;
  if (!(x > 0.0)) x = shape / rate * 0.01;

  // Newton iterations on the CDF (with bisection fallback bounds).
  double lo = 0.0, hi = x;
  while (gamma_cdf(hi, shape, rate) < p) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double f = gamma_cdf(x, shape, rate) - p;
    if (f > 0)
      hi = x;
    else
      lo = x;
    // Gamma pdf at x.
    const double logpdf = shape * std::log(rate) +
                          (shape - 1.0) * std::log(x) - rate * x -
                          std::lgamma(shape);
    const double pdf = std::exp(logpdf);
    double next = (pdf > 1e-290) ? x - f / pdf : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - x) < 1e-14 * (1.0 + std::abs(x))) return next;
    x = next;
  }
  return x;
}

std::vector<double> discrete_gamma_rates(double alpha, int categories,
                                         GammaMode mode) {
  if (alpha <= 0.0)
    throw std::invalid_argument("discrete_gamma_rates: alpha <= 0");
  if (categories < 1)
    throw std::invalid_argument("discrete_gamma_rates: categories < 1");
  if (categories == 1) return {1.0};

  const int k = categories;
  std::vector<double> rates(static_cast<std::size_t>(k));
  if (mode == GammaMode::kMean) {
    // Cut points at quantiles i/k of Gamma(alpha, alpha); category mean
    // computed via the Gamma(alpha+1, alpha) CDF identity
    // E[X ; a < X < b] = F_{alpha+1}(b) - F_{alpha+1}(a)  (mean-1 variate).
    std::vector<double> cut(static_cast<std::size_t>(k + 1));
    cut[0] = 0.0;
    cut[static_cast<std::size_t>(k)] = 0.0;  // sentinel; treated as +inf below
    for (int i = 1; i < k; ++i)
      cut[static_cast<std::size_t>(i)] =
          gamma_quantile(static_cast<double>(i) / k, alpha, alpha);
    auto upper_mass = [&](int i) {  // F_{alpha+1}(cut[i]) with F(inf)=1
      if (i == 0) return 0.0;
      if (i == k) return 1.0;
      return gamma_cdf(cut[static_cast<std::size_t>(i)], alpha + 1.0, alpha);
    };
    for (int i = 0; i < k; ++i)
      rates[static_cast<std::size_t>(i)] =
          (upper_mass(i + 1) - upper_mass(i)) * k;
  } else {
    // Median of each category, then renormalize to mean exactly 1.
    double sum = 0.0;
    for (int i = 0; i < k; ++i) {
      const double p = (2.0 * i + 1.0) / (2.0 * k);
      rates[static_cast<std::size_t>(i)] = gamma_quantile(p, alpha, alpha);
      sum += rates[static_cast<std::size_t>(i)];
    }
    for (auto& r : rates) r *= k / sum;
  }
  // Guard against pathological tiny rates that would produce singular
  // transition matrices.
  for (auto& r : rates)
    if (r < 1e-8) r = 1e-8;
  return rates;
}

}  // namespace plk
