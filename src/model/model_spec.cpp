#include "model/model_spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "core/partition_model.hpp"

namespace plk {

namespace {

std::string upper(std::string_view s) {
  std::string up(s);
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return up;
}

/// Shortest decimal form that parses back to exactly the same double.
std::string format_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

bool is_dna_family(const std::string& name) {
  return name == "JC" || name == "K80" || name == "HKY" || name == "GTR";
}

/// Resolve a (possibly aliased) family name to canonical form, or "" when
/// the name is unknown.
std::string canonical_family(const std::string& up) {
  if (up == "JC" || up == "JC69") return "JC";
  if (up == "K80" || up == "K2P") return "K80";
  if (up == "HKY" || up == "HKY85") return "HKY";
  if (up == "GTR" || up == "DNA") return "GTR";
  if (up == "PROT" || up == "AA" || up == "PROTGAMMA") return "WAG";
  if (up == "WAG" || up == "JTT" || up == "LG" || up == "DAYHOFF") return up;
  return "";
}

}  // namespace

bool is_protein_model_name(std::string_view name) {
  const std::string canon = canonical_family(upper(name));
  return !canon.empty() && !is_dna_family(canon);
}

ModelSpec parse_model_spec(std::string_view text) {
  const auto fail = [&](const std::string& why) {
    return std::invalid_argument("model spec '" + std::string(text) +
                                 "': " + why);
  };
  std::size_t i = 0;
  std::size_t end = text.size();
  while (i < end && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  while (end > i && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  if (i == end) throw fail("empty");

  // Family name: a run of alphanumerics.
  const std::size_t name_start = i;
  while (i < end && std::isalnum(static_cast<unsigned char>(text[i]))) ++i;
  if (i == name_start) throw fail("missing model name");
  ModelSpec spec;
  spec.name =
      canonical_family(upper(text.substr(name_start, i - name_start)));
  if (spec.name.empty())
    throw fail("unknown model '" +
               std::string(text.substr(name_start, i - name_start)) + "'");

  // Optional {p1,p2,...} parameter block.
  if (i < end && text[i] == '{') {
    const std::size_t close = text.find('}', i);
    if (close == std::string_view::npos || close >= end)
      throw fail("unterminated '{'");
    std::string_view body = text.substr(i + 1, close - i - 1);
    if (body.empty()) throw fail("empty parameter block");
    while (!body.empty()) {
      const std::size_t comma = body.find(',');
      const std::string_view tok =
          comma == std::string_view::npos ? body : body.substr(0, comma);
      // strtod needs a NUL-terminated copy; require the token to be fully
      // consumed so "1.5x" and "" are rejected, and the result finite so
      // "inf"/"nan" never reach the model layer.
      const std::string t(tok);
      char* parsed_end = nullptr;
      const double v = std::strtod(t.c_str(), &parsed_end);
      if (t.empty() || parsed_end != t.c_str() + t.size() ||
          !std::isfinite(v))
        throw fail("bad parameter '" + t + "'");
      spec.params.push_back(v);
      body = comma == std::string_view::npos ? std::string_view{}
                                             : body.substr(comma + 1);
      if (comma != std::string_view::npos && body.empty())
        throw fail("trailing ',' in parameter block");
    }
    i = close + 1;
  }

  // +SUFFIX chain.
  while (i < end) {
    if (text[i] != '+')
      throw fail("unexpected '" + std::string(1, text[i]) + "'");
    if (++i >= end) throw fail("dangling '+'");
    const char c =
        static_cast<char>(std::toupper(static_cast<unsigned char>(text[i])));
    ++i;
    if (c == 'G' || c == 'R') {
      if (spec.rate_kind != ModelSpec::RateKind::kNone)
        throw fail("more than one rate-heterogeneity term");
      spec.rate_kind = c == 'G' ? ModelSpec::RateKind::kGamma
                                : ModelSpec::RateKind::kFree;
      int k = 4;
      if (i < end && std::isdigit(static_cast<unsigned char>(text[i]))) {
        const std::size_t digits = i;
        while (i < end && std::isdigit(static_cast<unsigned char>(text[i])))
          ++i;
        const auto res = std::from_chars(text.data() + digits,
                                         text.data() + i, k);
        if (res.ec != std::errc{}) throw fail("bad category count");
      }
      if (k < 1 || k > 64)
        throw fail("category count " + std::to_string(k) +
                   " out of range [1, 64]");
      spec.categories = k;
    } else if (c == 'I') {
      if (spec.invariant) throw fail("duplicate +I");
      spec.invariant = true;
    } else if (c == 'F') {
      if (spec.freq_mode != ModelSpec::FreqMode::kDefault)
        throw fail("duplicate +F term");
      if (i >= end) throw fail("+F needs a mode (C, O, or E)");
      const char m = static_cast<char>(
          std::toupper(static_cast<unsigned char>(text[i])));
      ++i;
      if (m == 'C')
        spec.freq_mode = ModelSpec::FreqMode::kCounts;
      else if (m == 'O')
        spec.freq_mode = ModelSpec::FreqMode::kModel;
      else if (m == 'E')
        spec.freq_mode = ModelSpec::FreqMode::kEqual;
      else
        throw fail("unknown frequency mode '" + std::string(1, m) + "'");
    } else {
      throw fail("unknown suffix '+" + std::string(1, c) + "'");
    }
  }

  // Per-family parameter arity.
  const std::size_t np = spec.params.size();
  if (spec.name == "K80" || spec.name == "HKY") {
    if (np > 1) throw fail(spec.name + " takes at most one parameter (kappa)");
  } else if (spec.name == "GTR") {
    if (np != 0 && np != 6)
      throw fail("GTR takes 0 or 6 exchangeability parameters, got " +
                 std::to_string(np));
  } else if (np != 0) {
    throw fail(spec.name + " takes no parameters");
  }
  return spec;
}

std::string to_string(const ModelSpec& spec) {
  std::string out = spec.name;
  if (!spec.params.empty()) {
    out += '{';
    for (std::size_t k = 0; k < spec.params.size(); ++k) {
      if (k) out += ',';
      out += format_double(spec.params[k]);
    }
    out += '}';
  }
  if (spec.rate_kind == ModelSpec::RateKind::kGamma)
    out += "+G" + std::to_string(spec.categories);
  else if (spec.rate_kind == ModelSpec::RateKind::kFree)
    out += "+R" + std::to_string(spec.categories);
  if (spec.invariant) out += "+I";
  switch (spec.freq_mode) {
    case ModelSpec::FreqMode::kDefault: break;
    case ModelSpec::FreqMode::kCounts: out += "+FC"; break;
    case ModelSpec::FreqMode::kModel: out += "+FO"; break;
    case ModelSpec::FreqMode::kEqual: out += "+FE"; break;
  }
  return out;
}

SubstModel make_subst_model(const ModelSpec& spec,
                            const std::vector<double>& counts_freqs) {
  const bool dna = is_dna_family(spec.name);
  const int states = dna ? 4 : 20;

  // Resolve the frequency source. Empty means "the family's own defaults"
  // (equal for DNA, the model table for protein) — the same fallback the
  // pre-ModelSpec engine used, which keeps legacy runs bit-identical.
  std::vector<double> freqs;
  switch (spec.freq_mode) {
    case ModelSpec::FreqMode::kDefault:
      if (dna) freqs = counts_freqs;  // protein default: model frequencies
      break;
    case ModelSpec::FreqMode::kCounts:
      freqs = counts_freqs;
      break;
    case ModelSpec::FreqMode::kModel:
      break;
    case ModelSpec::FreqMode::kEqual:
      freqs.assign(static_cast<std::size_t>(states),
                   1.0 / static_cast<double>(states));
      break;
  }

  if (spec.name == "JC") {
    SubstModel m(4, std::vector<double>(6, 1.0),
                 freqs.empty() ? std::vector<double>(4, 0.25) : freqs);
    m.set_name("JC");
    return m;
  }
  if (spec.name == "K80" || spec.name == "HKY") {
    const double kappa = spec.params.empty() ? 2.0 : spec.params[0];
    // K80 is HKY constrained to equal frequencies; an explicit +F mode
    // overrides that constraint.
    if (spec.name == "K80" &&
        spec.freq_mode == ModelSpec::FreqMode::kDefault)
      freqs.clear();
    SubstModel m(4, {1.0, kappa, 1.0, 1.0, kappa, 1.0},
                 freqs.empty() ? std::vector<double>(4, 0.25) : freqs);
    m.set_name(spec.name);
    return m;
  }
  if (spec.name == "GTR") {
    SubstModel m(4,
                 spec.params.empty() ? std::vector<double>(6, 1.0)
                                     : spec.params,
                 freqs.empty() ? std::vector<double>(4, 0.25) : freqs);
    m.set_name("GTR");
    return m;
  }
  SubstModel m = protein_model(spec.name);
  if (!freqs.empty()) m.set_freqs(std::move(freqs));
  return m;
}

RateModel make_rate_model(const ModelSpec& spec) {
  RateModel rm =
      spec.rate_kind == ModelSpec::RateKind::kFree
          ? RateModel::free_from_gamma(spec.categories)
          : RateModel::gamma(1.0, spec.rate_kind == ModelSpec::RateKind::kGamma
                                      ? spec.categories
                                      : 1);
  if (spec.invariant) rm.enable_invariant();
  return rm;
}

std::string describe_model(const PartitionModel& pm) {
  ModelSpec spec;
  spec.name = pm.model().name();
  const RateModel& rm = pm.rate_model();
  if (rm.kind() == RateModel::Kind::kFree) {
    spec.rate_kind = ModelSpec::RateKind::kFree;
    spec.categories = rm.categories();
  } else if (rm.categories() > 1) {
    spec.rate_kind = ModelSpec::RateKind::kGamma;
    spec.categories = rm.categories();
  }
  spec.invariant = rm.invariant_sites();
  return to_string(spec);
}

}  // namespace plk
