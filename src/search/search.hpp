// Maximum-likelihood tree search: hill climbing with lazy SPR.
//
// The driver mirrors the RAxML search loop the paper profiles: it alternates
// *tree search phases* (radius-bounded SPR candidates, each scored after a
// quick local optimization of the three branches around the insertion point
// — "lazy" SPR) with *model optimization phases* (full branch-length
// smoothing plus per-partition Brent on alpha / exchangeabilities). Both
// phases issue their per-partition iterations under the configured
// parallelization strategy, so a full search exercises exactly the command
// mix whose load balance the paper measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/branch_opt.hpp"
#include "core/engine.hpp"
#include "core/model_opt.hpp"
#include "core/strategy.hpp"
#include "search/candidate_batch.hpp"

namespace plk {

/// Tree-search configuration.
struct SearchOptions {
  Strategy strategy = Strategy::kNewPar;
  int spr_radius = 5;          ///< SPR target distance bound (edge hops)
  int max_rounds = 10;         ///< outer search/model-opt alternations
  double epsilon = 0.1;        ///< stop when a round improves lnL by less
  double min_move_gain = 1e-4; ///< accept an SPR only above this gain
  bool optimize_model = true;  ///< run model-opt phases between rounds
  /// Score each prune edge's candidate set in lockstep waves through the
  /// batched CandidateScorer (identical scores and accepted moves; far
  /// fewer synchronization events). Off = the historical one-candidate-at-
  /// a-time scorer, kept for A/B comparison (bench/bench_search.cpp).
  bool batched_candidates = true;
  CandidateBatchOptions candidate_batch{};
  /// Quick local optimization applied to the 3 branches at an insertion.
  BranchOptOptions local_branch_opts{/*max_nr_iterations=*/8,
                                     /*length_tolerance=*/1e-4,
                                     /*smoothing_passes=*/1};
  /// Full smoothing between rounds.
  BranchOptOptions full_branch_opts{};
  ModelOptOptions model_opts{};
  /// When non-empty: write a crash-consistent checkpoint (core/checkpoint)
  /// at every `checkpoint_every`-th round boundary — and always at the
  /// boundary where the search stops. Replicated searches write one file
  /// per context (`path.rK` for K > 0). At each checkpointed boundary the
  /// writer re-applies its own serialized state before continuing, so a
  /// later `resume` run continues the search BIT-IDENTICALLY to the
  /// uninterrupted one (same moves, same final lnL). A failed write is
  /// logged and the search carries on; the on-disk ring keeps the previous
  /// good generation. Only the batched driver checkpoints; the sequential
  /// A/B path (batched_candidates off) ignores these fields.
  std::string checkpoint_path;
  int checkpoint_every = 1;
  /// Restore each context from its checkpoint (with fallback to the
  /// previous generation on corruption) and continue the search from the
  /// recorded round instead of starting over.
  bool resume = false;
  /// Cooperative shutdown: when the pointee becomes true, the search stops
  /// at the next round boundary — after that round's smoothing, model
  /// optimization and (if configured) final checkpoint — and marks the
  /// result interrupted. The caller keeps ownership; nullptr disables.
  const std::atomic<bool>* stop_flag = nullptr;
};

/// Search outcome summary.
struct SearchResult {
  double final_lnl = 0.0;
  int rounds = 0;
  int accepted_moves = 0;
  std::uint64_t candidates_scored = 0;
  /// True when the search stopped early because SearchOptions::stop_flag
  /// was raised (the state is still consistent and checkpointed).
  bool interrupted = false;
  /// Batched-scorer accounting (all zero when batched_candidates is off).
  CandidateBatchStats batch;
};

/// Run the search on the engine's current tree; the engine's tree and
/// parameters are left at the best configuration found.
SearchResult search_ml(Engine& engine, const SearchOptions& opts = {});

/// Outcome of a multi-start search: one SearchResult per starting context,
/// and the index of the best final likelihood.
struct MultiStartResult {
  std::vector<SearchResult> results;
  int best = -1;
};

/// Multi-start ML search over several contexts of one shared core (each
/// context holds its own starting tree and model copies). The starting
/// trees are first scored in ONE batched parallel region through the
/// core's submit()/wait() API; the searches themselves then advance in
/// lockstep through search_ml_replicated (falling back to one full search
/// per context when batched candidate scoring is off), sharing the core's
/// tip data, tip-table LRUs, thread team, and schedule — no per-start
/// engine rebuild. Every context is left at its search's best
/// configuration.
MultiStartResult search_ml_multistart(EngineCore& core,
                                      std::span<EvalContext* const> ctxs,
                                      const SearchOptions& opts = {});

/// Run one full ML search per context — bootstrap replicates, independent
/// starts — with every search advancing in LOCKSTEP through the shared
/// core: all replicates' current candidate waves flush through one parallel
/// region per protocol step, and replicates that reach a round boundary
/// wait for the rest so the round's branch-length smoothing runs as one
/// batched pass (optimize_branch_lengths_batch). Per context the command
/// sequence and arithmetic are identical to running search_ml on it alone
/// (bit-identical under the cyclic schedule with the default kNewPar
/// strategy), so this changes throughput, never results. With
/// opts.batched_candidates off there is nothing to merge and the searches
/// simply run one after another.
std::vector<SearchResult> search_ml_replicated(
    EngineCore& core, std::span<EvalContext* const> ctxs,
    const SearchOptions& opts = {});

}  // namespace plk
