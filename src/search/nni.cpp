#include "search/nni.hpp"

#include <stdexcept>

namespace plk {

std::pair<NniMove, NniMove> nni_moves(const Tree& tree, EdgeId edge) {
  if (!tree.is_internal_edge(edge))
    throw std::invalid_argument("nni_moves: edge is not internal");
  const NodeId u = tree.edge(edge).a;
  const NodeId v = tree.edge(edge).b;
  EdgeId ue[2] = {kNoId, kNoId};
  EdgeId ve[2] = {kNoId, kNoId};
  int i = 0;
  for (EdgeId e : tree.edges_of(u))
    if (e != edge) ue[i++] = e;
  i = 0;
  for (EdgeId e : tree.edges_of(v))
    if (e != edge) ve[i++] = e;
  return {NniMove{edge, ue[0], ve[0]}, NniMove{edge, ue[0], ve[1]}};
}

void apply_nni(Tree& tree, const NniMove& move) {
  const NodeId u = tree.edge(move.edge).a;
  const NodeId v = tree.edge(move.edge).b;
  // Each swapped edge must currently be attached to the expected endpoint.
  const NodeId su = tree.edge(move.u_edge).a == u || tree.edge(move.u_edge).b == u
                        ? u
                        : v;
  const NodeId sv = su == u ? v : u;
  tree.reattach(move.u_edge, su, sv);
  tree.reattach(move.v_edge, sv, su);
}

void invalidate_after_nni(Engine& engine, const NniMove& move) {
  const Tree& tree = engine.tree();
  engine.invalidate_node(tree.edge(move.edge).a);
  engine.invalidate_node(tree.edge(move.edge).b);
  const EdgeId root = engine.root_edge();
  if (root == kNoId) {
    engine.invalidate_all();
    return;
  }
  if (move.edge != root)
    for (NodeId v : tree.path_between_edges(move.edge, root))
      engine.invalidate_node(v);
}

}  // namespace plk
