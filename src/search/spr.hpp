// Subtree Pruning and Regrafting (SPR) topology moves.
//
// An SPR move detaches the subtree hanging off one side of an edge and
// re-inserts it into another ("target") edge. Node and edge ids are
// preserved: the joint node and its two edges are re-used to split the
// target edge, so the engine's per-node CLV buffers remain valid containers
// (their *contents* are invalidated selectively, see invalidate_after_spr).
#pragma once

#include <vector>

#include "core/engine.hpp"
#include "tree/tree.hpp"

namespace plk {

/// Description of an SPR move: prune the subtree on the `pruned_side` end of
/// `prune_edge` and regraft it into `target_edge`.
struct SprMove {
  EdgeId prune_edge = kNoId;
  NodeId pruned_side = kNoId;
  EdgeId target_edge = kNoId;
};

/// Everything needed to restore the topology and the affected default
/// branch lengths after apply_spr.
struct SprUndo {
  NodeId joint = kNoId;        // the re-used joint node
  EdgeId fused = kNoId;        // edge that became x-y (was joint-x)
  EdgeId carried = kNoId;      // edge that became joint-a (was joint-y)
  EdgeId target = kNoId;       // edge that became joint-b (was a-b)
  NodeId x = kNoId, y = kNoId, a = kNoId, b = kNoId;
  double len_fused = 0, len_carried = 0, len_target = 0;
  /// Adjacency-list orders of the rewired nodes before the move. undo_spr
  /// restores them so an apply/undo round trip is EXACTLY side-effect-free:
  /// edges_of() order steers which edge a later apply_spr treats as fused
  /// vs carried (and every traversal's child order), so a scoring pass that
  /// merely rotated the lists would silently change the rest of the search.
  std::vector<std::pair<NodeId, std::vector<EdgeId>>> adjacency;
};

/// Check that a move is structurally legal: the joint is an inner node and
/// the target edge is outside the pruned subtree and not incident to the
/// joint.
bool spr_is_valid(const Tree& tree, const SprMove& move);

/// Apply the move; throws std::invalid_argument if it is not valid.
SprUndo apply_spr(Tree& tree, const SprMove& move);

/// Restore the topology and the three affected default branch lengths.
void undo_spr(Tree& tree, const SprUndo& undo);

/// Mirror apply_spr's default-length surgery onto a per-partition branch-
/// length store: fused += carried; carried = target / 2; target = target / 2.
/// (apply_spr itself only rewrites the tree's own mean lengths.)
void apply_spr_lengths(BranchLengths& bl, const SprUndo& undo);

/// Invalidate context CLVs made stale by an applied (or undone) SPR: the
/// rewired nodes plus every node on the paths from the two modified regions
/// to the context's current root edge. Call with the undo record returned by
/// apply_spr (after applying) or the same record again (after undoing).
void invalidate_after_spr(EvalContext& ctx, const SprUndo& undo);
/// Engine facade forwarder.
void invalidate_after_spr(Engine& engine, const SprUndo& undo);

/// All legal target edges for pruning `pruned_side` off `prune_edge`, within
/// `radius` edge-hops of the pruning point.
std::vector<EdgeId> spr_targets(const Tree& tree, EdgeId prune_edge,
                                NodeId pruned_side, int radius);

/// Conflict test for speculative cross-group candidate scoring: does the
/// committed move described by `undo` potentially change the candidate
/// GROUP pruning `pruned_side` off `prune_edge` within `radius`?
///
/// Returns false only when the group's enumeration is provably unaffected:
/// `pruned_side` is still an endpoint of `prune_edge` and every node the
/// commit rewired (joint, x, y, a, b) lies strictly more than `radius` hops
/// from the pruning point in the current (post-commit) tree. Then (a) no
/// path of <= radius hops from the pruning point touches a rewired node or
/// edge, so the radius ball — including the adjacency-list orders every
/// traversal follows — is identical before and after the commit, and (b)
/// spr_targets and the prune edge's endpoints resolve identically, so a
/// target list enumerated against the pre-commit tree can be reused as-is.
/// (Candidate SCORES still change with any commit — only the enumeration is
/// stable; see search.cpp's speculative window.) Conservative by design:
/// `true` only costs a re-enumeration.
bool spr_group_conflicts(const Tree& tree, EdgeId prune_edge,
                         NodeId pruned_side, int radius, const SprUndo& undo);

}  // namespace plk
