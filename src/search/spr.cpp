#include "search/spr.hpp"

#include <stdexcept>

#include "tree/traversal.hpp"

namespace plk {

namespace {

/// True if edge `e` lies inside the subtree hanging off `side` of `root_e`.
bool edge_in_subtree(const Tree& t, EdgeId e, EdgeId root_e, NodeId side) {
  if (e == root_e) return false;
  // DFS from `side` away from root_e.
  std::vector<NodeId> stack{side};
  std::vector<EdgeId> via{root_e};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    const EdgeId through = via.back();
    stack.pop_back();
    via.pop_back();
    for (EdgeId f : t.edges_of(v)) {
      if (f == through) continue;
      if (f == e) return true;
      stack.push_back(t.other_end(f, v));
      via.push_back(f);
    }
  }
  return false;
}

}  // namespace

bool spr_is_valid(const Tree& tree, const SprMove& move) {
  if (move.prune_edge < 0 || move.prune_edge >= tree.edge_count()) return false;
  if (move.target_edge < 0 || move.target_edge >= tree.edge_count())
    return false;
  const NodeId s = move.pruned_side;
  const auto& pe = tree.edge(move.prune_edge);
  if (s != pe.a && s != pe.b) return false;
  const NodeId j = tree.other_end(move.prune_edge, s);
  if (tree.is_tip(j)) return false;
  // Target must not be the prune edge, not incident to the joint, and not
  // inside the pruned subtree.
  if (move.target_edge == move.prune_edge) return false;
  const auto& te = tree.edge(move.target_edge);
  if (te.a == j || te.b == j) return false;
  if (edge_in_subtree(tree, move.target_edge, move.prune_edge, s))
    return false;
  return true;
}

SprUndo apply_spr(Tree& tree, const SprMove& move) {
  if (!spr_is_valid(tree, move))
    throw std::invalid_argument("apply_spr: invalid move");

  const NodeId s = move.pruned_side;
  const NodeId j = tree.other_end(move.prune_edge, s);

  SprUndo u;
  u.joint = j;
  u.target = move.target_edge;
  // The joint's two non-prune edges.
  for (EdgeId e : tree.edges_of(j)) {
    if (e == move.prune_edge) continue;
    if (u.fused == kNoId)
      u.fused = e;
    else
      u.carried = e;
  }
  u.x = tree.other_end(u.fused, j);
  u.y = tree.other_end(u.carried, j);
  u.a = tree.edge(move.target_edge).a;
  u.b = tree.edge(move.target_edge).b;
  u.len_fused = tree.length(u.fused);
  u.len_carried = tree.length(u.carried);
  u.len_target = tree.length(u.target);
  for (NodeId v : {u.joint, u.x, u.y, u.a, u.b}) {
    bool seen = false;
    for (const auto& [node, order] : u.adjacency) seen |= node == v;
    if (!seen) u.adjacency.emplace_back(v, tree.edges_of(v));
  }

  // 1. Fuse: `fused` becomes x-y with the summed length.
  tree.reattach(u.fused, j, u.y);
  tree.set_length(u.fused, u.len_fused + u.len_carried);
  // 2. Re-use `carried` as joint-a.
  tree.reattach(u.carried, u.y, u.a);
  // 3. Target becomes joint-b; split its length.
  tree.reattach(u.target, u.a, j);
  tree.set_length(u.carried, 0.5 * u.len_target);
  tree.set_length(u.target, 0.5 * u.len_target);
  return u;
}

void undo_spr(Tree& tree, const SprUndo& u) {
  tree.reattach(u.target, u.joint, u.a);     // target: a-b again
  tree.reattach(u.carried, u.a, u.y);        // carried: joint-y again
  tree.reattach(u.fused, u.y, u.joint);      // fused: joint-x again
  tree.set_length(u.fused, u.len_fused);
  tree.set_length(u.carried, u.len_carried);
  tree.set_length(u.target, u.len_target);
  // Reattach appends to adjacency lists; put the original order back so the
  // round trip leaves NO trace (see the SprUndo::adjacency comment).
  for (const auto& [node, order] : u.adjacency)
    tree.restore_adjacency_order(node, order);
}

void apply_spr_lengths(BranchLengths& bl, const SprUndo& u) {
  const int np = bl.linked() ? 1 : bl.partition_count();
  for (int p = 0; p < np; ++p) {
    const double lf = bl.get(u.fused, p);
    const double lc = bl.get(u.carried, p);
    const double lt = bl.get(u.target, p);
    bl.set(u.fused, p, lf + lc);
    bl.set(u.carried, p, 0.5 * lt);
    bl.set(u.target, p, 0.5 * lt);
  }
}

void invalidate_after_spr(EvalContext& ctx, const SprUndo& u) {
  const Tree& tree = ctx.tree();
  for (NodeId v : {u.joint, u.x, u.y, u.a, u.b}) ctx.invalidate_node(v);
  const EdgeId root = ctx.root_edge();
  if (root == kNoId) {
    ctx.invalidate_all();
    return;
  }
  // Nodes whose root-oriented CLV subsumes a modified region: everything on
  // the paths from the two touched edges to the root edge.
  for (EdgeId region : {u.fused, u.target, u.carried}) {
    if (region == root) continue;
    for (NodeId v : tree.path_between_edges(region, root))
      ctx.invalidate_node(v);
  }
}

void invalidate_after_spr(Engine& engine, const SprUndo& u) {
  invalidate_after_spr(engine.context(), u);
}

std::vector<EdgeId> spr_targets(const Tree& tree, EdgeId prune_edge,
                                NodeId pruned_side, int radius) {
  std::vector<EdgeId> out;
  const NodeId j = tree.other_end(prune_edge, pruned_side);
  if (tree.is_tip(j)) return out;
  for (EdgeId e :
       edges_within_radius(tree, prune_edge, radius, pruned_side)) {
    const SprMove m{prune_edge, pruned_side, e};
    if (spr_is_valid(tree, m)) out.push_back(e);
  }
  return out;
}

bool spr_group_conflicts(const Tree& tree, EdgeId prune_edge,
                         NodeId pruned_side, int radius, const SprUndo& undo) {
  // The committed move may have rewired the prune edge itself, replacing
  // `pruned_side`; the group must then be re-resolved from its side index.
  const auto& pe = tree.edge(prune_edge);
  if (pruned_side != pe.a && pruned_side != pe.b) return true;

  const NodeId rewired[] = {undo.joint, undo.x, undo.y, undo.a, undo.b};
  const auto is_rewired = [&](NodeId v) {
    for (NodeId r : rewired)
      if (v == r) return true;
    return false;
  };

  // Breadth-first hop distances from the pruning point (the joint node the
  // target enumeration grows its ball from). Any rewired node within
  // `radius` hops means the ball — or the adjacency order some traversal of
  // it reads — may have changed.
  const NodeId j = tree.other_end(prune_edge, pruned_side);
  if (is_rewired(j) || is_rewired(pruned_side)) return true;
  std::vector<int> dist(static_cast<std::size_t>(tree.node_count()), -1);
  std::vector<NodeId> frontier{j}, next;
  dist[static_cast<std::size_t>(j)] = 0;
  for (int d = 0; d < radius && !frontier.empty(); ++d) {
    next.clear();
    for (NodeId v : frontier) {
      for (EdgeId e : tree.edges_of(v)) {
        const NodeId w = tree.other_end(e, v);
        if (dist[static_cast<std::size_t>(w)] >= 0) continue;
        dist[static_cast<std::size_t>(w)] = d + 1;
        if (is_rewired(w)) return true;
        next.push_back(w);
      }
    }
    frontier.swap(next);
  }
  return false;
}

}  // namespace plk
