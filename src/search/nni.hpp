// Nearest Neighbor Interchange (NNI) topology moves.
//
// An internal edge (u, v) admits two alternative topologies, obtained by
// swapping one subtree attached at u with one attached at v. NNI is the
// minimal topology move; the search driver uses SPR (which subsumes NNI at
// radius 1) but NNI is exposed for tests, examples, and Bayesian-style
// proposal mechanisms.
#pragma once

#include "core/engine.hpp"
#include "tree/tree.hpp"

namespace plk {

/// An NNI move on internal edge `edge`: swap the subtree hanging off
/// `u_edge` (incident to edge.a) with the one off `v_edge` (incident to
/// edge.b).
struct NniMove {
  EdgeId edge = kNoId;
  EdgeId u_edge = kNoId;
  EdgeId v_edge = kNoId;
};

/// The two alternative NNI moves for an internal edge. Throws if `edge` is
/// not internal.
std::pair<NniMove, NniMove> nni_moves(const Tree& tree, EdgeId edge);

/// Apply the move (also its own inverse: applying the same move again
/// restores the original topology).
void apply_nni(Tree& tree, const NniMove& move);

/// Invalidate engine state after an NNI on `move.edge`.
void invalidate_after_nni(Engine& engine, const NniMove& move);

}  // namespace plk
