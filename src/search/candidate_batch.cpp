#include "search/candidate_batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace plk {

CandidateScorer::CandidateScorer(EngineCore& core, EvalContext& parent,
                                 Strategy strategy,
                                 const BranchOptOptions& local_opts,
                                 const CandidateBatchOptions& opts)
    : core_(core),
      parent_(parent),
      strategy_(strategy),
      local_opts_(local_opts),
      opts_(opts),
      pool_(core, opts.pool_soft_cap) {
  if (&parent.core() != &core)
    throw std::invalid_argument(
        "CandidateScorer: parent belongs to another core");
  if (opts_.max_batch < 1)
    throw std::invalid_argument("CandidateScorer: max_batch must be >= 1");
}

CandidateScorer::~CandidateScorer() = default;

std::vector<double> CandidateScorer::score(std::span<const SprMove> moves) {
  std::vector<double> out(moves.size(), 0.0);
  if (moves.empty()) return out;
  const EdgeId prune = moves[0].prune_edge;
  for (const SprMove& m : moves)
    if (m.prune_edge != prune)
      throw std::invalid_argument(
          "CandidateScorer::score: moves must share one prune edge");
  ++stats_.groups;

  for (std::size_t base = 0; base < moves.size();
       base += static_cast<std::size_t>(opts_.max_batch)) {
    const std::size_t K = std::min(moves.size() - base,
                                   static_cast<std::size_t>(opts_.max_batch));
    ++stats_.waves;

    // The parent's CLVs must all be valid toward the prune edge before the
    // overlays alias them (the sequential scorer performs the same
    // prepare_root per candidate; here it runs once per wave and is free
    // when the previous wave already oriented the parent). The parent is
    // not touched again until the wave's scores are out.
    parent_.prepare_root(prune);

    while (overlays_.size() < K)
      overlays_.push_back(std::make_unique<EvalContext>(parent_, pool_));

    // Materialize the wave: re-synchronize each overlay with the parent
    // (releasing any slots from the previous wave), apply its move
    // speculatively, and invalidate exactly what the sequential scorer
    // invalidates.
    std::vector<EvalContext*> ctxs(K);
    std::vector<EdgeId> carried(K), target(K), prune_edges(K);
    for (std::size_t i = 0; i < K; ++i) {
      EvalContext& ov = *overlays_[i];
      ov.rebind(parent_);
      const SprUndo undo = apply_spr(ov.tree(), moves[base + i]);
      apply_spr_lengths(ov.branch_lengths(), undo);
      invalidate_after_spr(ov, undo);
      ctxs[i] = &ov;
      carried[i] = undo.carried;
      target[i] = undo.target;
      prune_edges[i] = moves[base + i].prune_edge;
    }

    // Lockstep 3-edge local optimization (the "lazy" part of lazy SPR) —
    // same edge order as the sequential local_optimize: carried, target,
    // prune. Each step is a handful of parallel regions shared by the
    // whole wave instead of per candidate.
    optimize_edge_batch(core_, ctxs, carried, strategy_, local_opts_);
    optimize_edge_batch(core_, ctxs, target, strategy_, local_opts_);
    optimize_edge_batch(core_, ctxs, prune_edges, strategy_, local_opts_);

    // One batched evaluation yields every candidate's score.
    const std::vector<double> lnls = core_.evaluate_batch(ctxs, prune_edges);
    for (std::size_t i = 0; i < K; ++i) out[base + i] = lnls[i];
    stats_.candidates += K;
  }

  stats_.pool_slots_peak = std::max(stats_.pool_slots_peak, pool_.peak_in_use());
  pool_.trim();
  stats_.pool_slots_allocated = pool_.slots_allocated();
  return out;
}

}  // namespace plk
