#include "search/candidate_batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace plk {

CandidateScorer::CandidateScorer(EngineCore& core, EvalContext& parent,
                                 Strategy strategy,
                                 const BranchOptOptions& local_opts,
                                 const CandidateBatchOptions& opts)
    : core_(core),
      parent_(parent),
      strategy_(strategy),
      local_opts_(local_opts),
      opts_(opts),
      pool_(core, opts.pool_soft_cap) {
  if (&parent.core() != &core)
    throw std::invalid_argument(
        "CandidateScorer: parent belongs to another core");
  if (opts_.max_batch < 1)
    throw std::invalid_argument("CandidateScorer: max_batch must be >= 1");
  if (opts_.speculate_groups < 1)
    throw std::invalid_argument(
        "CandidateScorer: speculate_groups must be >= 1");
}

CandidateScorer::~CandidateScorer() = default;

bool CandidateScorer::stage(const SprMove& move, double* out,
                            std::vector<WaveItem>& sink,
                            std::vector<double>* opt_lengths) {
  GraftCandidate g;
  g.move = move;
  return stage_graft(g, out, sink, opt_lengths);
}

bool CandidateScorer::stage_graft(const GraftCandidate& g, double* out,
                                  std::vector<WaveItem>& sink,
                                  std::vector<double>* opt_lengths) {
  if (staged_ >= static_cast<std::size_t>(opts_.max_batch)) return false;

  if (staged_ == 0) {
    // The wave's overlays alias the parent's CLVs as-is; orienting the
    // parent toward the first candidate's prune edge up front (usually a
    // 0-op command) lets every same-group overlay inherit valid CLVs
    // instead of re-orienting privately. Overlays of OTHER groups in the
    // wave re-orient inside their own leased slots — extra newview work on
    // the shared batched commands, no extra synchronization. (A placement
    // lane keeps its parent permanently rooted at the pendant edge, so for
    // lanes this is a true 0-op after the first wave.)
    parent_.prepare_root(g.move.prune_edge);
    wave_prune_ = g.move.prune_edge;
    wave_cross_ = false;
  } else if (g.move.prune_edge != wave_prune_) {
    wave_cross_ = true;
  }

  while (overlays_.size() <= staged_)
    overlays_.push_back(std::make_unique<EvalContext>(parent_, pool_));

  // Materialize: re-synchronize the overlay with the parent (releasing any
  // slots from the previous wave), apply its move speculatively, and
  // invalidate exactly what the sequential scorer invalidates. The in-place
  // form skips the surgery: the parent's topology already IS the candidate,
  // so the overlay only carries the local re-optimization.
  EvalContext& ov = *overlays_[staged_];
  ov.rebind(parent_);
  EdgeId carried = g.carried, target = g.target;
  if (!g.in_place) {
    const SprUndo undo = apply_spr(ov.tree(), g.move);
    apply_spr_lengths(ov.branch_lengths(), undo);
    invalidate_after_spr(ov, undo);
    carried = undo.carried;
    target = undo.target;
  }
  sink.push_back(WaveItem{&ov, carried, target, g.move.prune_edge,
                          out, opt_lengths});
  ++staged_;
  return true;
}

void CandidateScorer::flush_wave(EngineCore& core, Strategy strategy,
                                 const BranchOptOptions& local_opts,
                                 std::span<const WaveItem> items) {
  if (items.empty()) return;
  std::vector<EvalContext*> ctxs(items.size());
  std::vector<EdgeId> carried(items.size()), target(items.size()),
      prune(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    ctxs[i] = items[i].ctx;
    carried[i] = items[i].carried;
    target[i] = items[i].target;
    prune[i] = items[i].prune;
  }

  // Lockstep 3-edge local optimization (the "lazy" part of lazy SPR) —
  // same edge order as the sequential local_optimize: carried, target,
  // prune. Each step is a handful of parallel regions shared by the whole
  // wave instead of per candidate.
  optimize_edge_batch(core, ctxs, carried, strategy, local_opts);
  optimize_edge_batch(core, ctxs, target, strategy, local_opts);
  optimize_edge_batch(core, ctxs, prune, strategy, local_opts);

  // Harvest the optimized local lengths for callers that may adopt the
  // winning overlay's state at commit time (see WaveItem::opt_lengths).
  for (const WaveItem& item : items) {
    if (item.opt_lengths == nullptr) continue;
    const BranchLengths& bl = item.ctx->branch_lengths();
    const int np = bl.linked() ? 1 : bl.partition_count();
    item.opt_lengths->clear();
    item.opt_lengths->reserve(static_cast<std::size_t>(3 * np));
    for (EdgeId e : {item.carried, item.target, item.prune})
      for (int p = 0; p < np; ++p) item.opt_lengths->push_back(bl.get(e, p));
  }

  // One batched evaluation yields every candidate's score.
  const std::vector<double> lnls = core.evaluate_batch(ctxs, prune);
  for (std::size_t i = 0; i < items.size(); ++i) *items[i].out = lnls[i];
}

void CandidateScorer::finish_wave() {
  if (staged_ == 0) return;
  ++stats_.waves;
  if (wave_cross_) ++stats_.cross_group_waves;
  stats_.candidates += staged_;
  staged_ = 0;
  wave_prune_ = kNoId;
  wave_cross_ = false;
  stats_.pool_slots_peak =
      std::max(stats_.pool_slots_peak, pool_.peak_in_use());
  pool_.trim();
  stats_.pool_slots_allocated = pool_.slots_allocated();
}

void CandidateScorer::abort_wave() {
  if (staged_ == 0) return;
  ++stats_.wave_faults;
  staged_ = 0;
  wave_prune_ = kNoId;
  wave_cross_ = false;
  stats_.pool_slots_peak =
      std::max(stats_.pool_slots_peak, pool_.peak_in_use());
  pool_.trim();
  stats_.pool_slots_allocated = pool_.slots_allocated();
}

void CandidateScorer::score_groups(std::span<const GroupRequest> groups) {
  stats_.groups += groups.size();
  std::vector<WaveItem> sink;
  const auto flush = [&] {
    flush_wave(core_, strategy_, local_opts_, sink);
    finish_wave();
    sink.clear();
  };
  for (const GroupRequest& g : groups) {
    if (g.out.size() != g.moves.size())
      throw std::invalid_argument("score_groups: out/moves size mismatch");
    for (std::size_t i = 0; i < g.moves.size(); ++i) {
      if (!stage(g.moves[i], &g.out[i], sink)) {
        flush();
        stage(g.moves[i], &g.out[i], sink);
      }
    }
  }
  if (!sink.empty()) flush();
}

std::vector<double> CandidateScorer::score(std::span<const SprMove> moves) {
  std::vector<double> out(moves.size(), 0.0);
  if (moves.empty()) return out;
  const EdgeId prune = moves[0].prune_edge;
  for (const SprMove& m : moves)
    if (m.prune_edge != prune)
      throw std::invalid_argument(
          "CandidateScorer::score: moves must share one prune edge");
  const GroupRequest g{moves, out};
  score_groups({&g, 1});
  return out;
}

}  // namespace plk
