// Batched lockstep SPR candidate scoring.
//
// The lazy-SPR hill climb is the engine's dominant workload, and its unit of
// work is the *candidate*: apply one radius-bounded SPR move speculatively,
// quickly optimize the three branches around the insertion point, evaluate,
// undo. Scored one at a time (search.cpp's sequential path), each candidate
// costs ~5+ synchronized parallel regions — prepare_root, a sumtable and a
// handful of Newton-Raphson rounds per optimized edge, the final evaluation
// — with only a few edges' worth of work per region, so threads spend most
// of their time at barriers.
//
// CandidateScorer turns the per-round candidate SET into the unit of work
// instead. Every candidate of a prune edge is materialized onto an *overlay*
// EvalContext (see core/engine_core.hpp): a lightweight scoring context that
// shares the parent's CLV buffers copy-on-score and leases pool slots only
// for the handful of nodes its move invalidates. All overlays then advance
// in lockstep through the core's batched submit()/wait() API:
//
//   1. one batched prepare_root               (per wave, usually 0 ops)
//   2. for each of the 3 local edges:         (optimize_edge_batch)
//        one batched root relocation
//        one batched sumtable build
//        one batched region per NR round (convergence drop-out per context)
//   3. one batched evaluation -> all scores
//
// so a wave of K candidates costs roughly the synchronization of ONE
// sequential candidate. Per candidate the command sequence and arithmetic
// are identical to the sequential scorer at the same thread count, so the
// scores — and therefore the search's accepted-move sequence — match bit
// for bit (tests/test_candidate_batch.cpp pins this down).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/branch_opt.hpp"
#include "core/engine_core.hpp"
#include "core/strategy.hpp"
#include "search/spr.hpp"

namespace plk {

/// Knobs for the batched candidate scorer.
struct CandidateBatchOptions {
  /// Candidates scored per lockstep wave (= live overlay contexts, which
  /// bounds CLV slot-pool memory: a wave leases at most
  /// max_batch x touched-nodes-per-candidate slots per partition).
  int max_batch = 32;
  /// Free CLV slots the pool retains per partition between waves (the pool
  /// trims itself back to this after each group of candidates).
  std::size_t pool_soft_cap = 64;
};

/// Counters describing how the batched scorer spent its candidates.
struct CandidateBatchStats {
  std::uint64_t candidates = 0;   ///< moves scored through the batched path
  std::uint64_t groups = 0;       ///< score() calls (one per prune edge/side)
  std::uint64_t waves = 0;        ///< lockstep waves executed
  std::size_t pool_slots_peak = 0;   ///< high-water leased CLV slots
  std::size_t pool_slots_allocated = 0;  ///< pool slots currently allocated
};

/// Scores SPR candidate sets for one parent context in lockstep waves. The
/// scorer owns the CLV slot pool and a reusable set of overlay contexts;
/// construct it once per search and call score() per candidate group. The
/// parent may change freely *between* score() calls (moves are committed,
/// branch lengths smoothed, models re-optimized); each wave re-synchronizes
/// the overlays via EvalContext::rebind(). Master-thread only.
class CandidateScorer {
 public:
  /// `core`/`parent` must outlive the scorer; `parent` must be a context of
  /// `core` (and not itself an overlay). `strategy` and `local_opts` mirror
  /// the sequential scorer's SearchOptions (strategy + local_branch_opts).
  CandidateScorer(EngineCore& core, EvalContext& parent, Strategy strategy,
                  const BranchOptOptions& local_opts,
                  const CandidateBatchOptions& opts = {});
  ~CandidateScorer();

  CandidateScorer(const CandidateScorer&) = delete;
  CandidateScorer& operator=(const CandidateScorer&) = delete;

  /// Score every move (all must share one prune edge — the per-round group
  /// the search enumerates); returns one candidate lnL per move, in order.
  /// The parent context is left exactly as found apart from its CLV
  /// orientation (rooted at the group's prune edge, as the sequential
  /// scorer also leaves it).
  std::vector<double> score(std::span<const SprMove> moves);

  const CandidateBatchStats& stats() const { return stats_; }

 private:
  EngineCore& core_;
  EvalContext& parent_;
  Strategy strategy_;
  BranchOptOptions local_opts_;
  CandidateBatchOptions opts_;
  ClvSlotPool pool_;  // declared before overlays_: destroyed after them
  std::vector<std::unique_ptr<EvalContext>> overlays_;
  CandidateBatchStats stats_;
};

}  // namespace plk
