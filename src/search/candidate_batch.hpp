// Batched lockstep SPR candidate scoring — within and across prune-edge
// candidate groups.
//
// The lazy-SPR hill climb is the engine's dominant workload, and its unit of
// work is the *candidate*: apply one radius-bounded SPR move speculatively,
// quickly optimize the three branches around the insertion point, evaluate,
// undo. Scored one at a time (search.cpp's sequential path), each candidate
// costs ~5+ synchronized parallel regions — prepare_root, a sumtable and a
// handful of Newton-Raphson rounds per optimized edge, the final evaluation
// — with only a few edges' worth of work per region, so threads spend most
// of their time at barriers.
//
// CandidateScorer turns candidate SETS into the unit of work instead. Every
// candidate is materialized onto an *overlay* EvalContext (see
// core/engine_core.hpp): a lightweight scoring context that shares the
// parent's CLV buffers copy-on-score and leases pool slots only for the
// handful of nodes its move invalidates. All overlays then advance in
// lockstep through the core's batched submit()/wait() API:
//
//   1. one batched prepare_root               (per wave, usually 0 ops)
//   2. for each of the 3 local edges:         (optimize_edge_batch)
//        one batched root relocation
//        one batched sumtable build
//        one batched region per NR round (convergence drop-out per context)
//   3. one batched evaluation -> all scores
//
// so a wave of K candidates costs roughly the synchronization of ONE
// sequential candidate. A wave is NOT limited to one prune edge's group:
// the speculative search (search.cpp) enumerates several groups against a
// frozen parent and merges their candidates into shared waves — an overlay
// whose prune edge differs from the parent's current orientation simply
// re-orients inside its own leased slots, riding the same batched commands.
// The wave protocol is also exposed piecewise (stage / flush_wave /
// finish_wave) so several parents' scorers — the replicate searches of
// search_ml_replicated — can flush their current waves through ONE shared
// parallel region. Per candidate the command sequence and arithmetic are
// identical to the sequential scorer at the same thread count, so the
// scores — and therefore the search's accepted-move sequence — match bit
// for bit (tests/test_candidate_batch.cpp pins this down).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/branch_opt.hpp"
#include "core/engine_core.hpp"
#include "core/strategy.hpp"
#include "search/spr.hpp"

namespace plk {

/// Knobs for the batched candidate scorer.
struct CandidateBatchOptions {
  /// Candidates scored per lockstep wave (= live overlay contexts, which
  /// bounds CLV slot-pool memory: a wave leases at most
  /// max_batch x touched-nodes-per-candidate slots per partition).
  int max_batch = 32;
  /// Free CLV slots the pool retains per partition between waves (the pool
  /// trims itself back to this after each wave of candidates).
  std::size_t pool_soft_cap = 64;
  /// Upper bound on the prune-edge groups the search speculatively
  /// enumerates and scores per window against a frozen parent (1 restores
  /// strict per-group scoring). The effective window adapts: it starts at 1,
  /// doubles after every window that commits no move (speculation paid off),
  /// and resets to 1 when a commit invalidates the window's tail — so
  /// commit-dense early rounds speculate little and the long commit-free
  /// tail merges up to this many groups per wave. Identical accepted-move
  /// sequence at any value (see docs/search.md).
  int speculate_groups = 8;
};

/// Counters describing how the batched scorer spent its candidates.
struct CandidateBatchStats {
  std::uint64_t candidates = 0;   ///< moves scored through the batched path
  std::uint64_t groups = 0;       ///< prune-edge groups scored
  std::uint64_t waves = 0;        ///< lockstep waves executed
  std::uint64_t cross_group_waves = 0;  ///< waves spanning >1 prune edge
  std::uint64_t rescored_candidates = 0;  ///< scored again after a commit
                                          ///< invalidated their window
  std::uint64_t conflict_groups = 0;  ///< groups re-enumerated after commits
  std::uint64_t wave_faults = 0;  ///< waves aborted by an engine fault
  std::size_t pool_slots_peak = 0;   ///< high-water leased CLV slots
  std::size_t pool_slots_allocated = 0;  ///< pool slots currently allocated
};

/// One materialized overlay candidate awaiting its lockstep flush: the
/// overlay context (move applied, stale CLVs invalidated), the three local
/// edges of its insertion point, and where its score goes. When
/// `opt_lengths` is set, flush_wave also harvests the locally optimized
/// per-partition lengths of [carried, target, prune] (concatenated, one
/// value per edge in linked mode) — accepting a candidate can then ADOPT
/// the overlay's optimized state instead of re-running the local
/// optimization on the parent (the score already IS the committed lnL).
struct WaveItem {
  EvalContext* ctx = nullptr;
  EdgeId carried = kNoId;
  EdgeId target = kNoId;
  EdgeId prune = kNoId;
  double* out = nullptr;
  std::vector<double>* opt_lengths = nullptr;
};

/// One graft candidate against a scorer's parent — the reusable unit behind
/// both SPR search candidates and streaming-placement candidates. Two forms:
///
///   * SPR (in_place == false): re-graft the subtree hanging off
///     `move.pruned_side` of `move.prune_edge` onto `move.target_edge`
///     (exactly what stage() does — stage() is now a wrapper over this).
///   * in-place (in_place == true): score the parent's CURRENT topology at
///     the attachment described by `carried`/`target` (the two halves of an
///     already-split edge) and `move.prune_edge` (the pendant edge), with no
///     topology surgery. A placement lane uses this for the "leave the query
///     at its park edge" candidate: same 3-edge local optimization, same
///     final evaluation, same wave — so its score is comparable bit-for-bit
///     with the SPR candidates it competes against.
struct GraftCandidate {
  SprMove move;
  bool in_place = false;
  EdgeId carried = kNoId;  ///< in-place only: one half of the split edge
  EdgeId target = kNoId;   ///< in-place only: the other half
};

/// Scores SPR candidates for one parent context in lockstep waves. The
/// scorer owns the CLV slot pool and a reusable set of overlay contexts;
/// construct it once per search. The parent may change freely *between*
/// waves (moves are committed, branch lengths smoothed, models
/// re-optimized); each wave re-synchronizes the overlays via
/// EvalContext::rebind(). Master-thread only.
class CandidateScorer {
 public:
  /// `core`/`parent` must outlive the scorer; `parent` must be a context of
  /// `core` (and not itself an overlay). `strategy` and `local_opts` mirror
  /// the sequential scorer's SearchOptions (strategy + local_branch_opts).
  CandidateScorer(EngineCore& core, EvalContext& parent, Strategy strategy,
                  const BranchOptOptions& local_opts,
                  const CandidateBatchOptions& opts = {});
  ~CandidateScorer();

  CandidateScorer(const CandidateScorer&) = delete;
  CandidateScorer& operator=(const CandidateScorer&) = delete;

  /// Score every move (all must share one prune edge — one candidate
  /// group); returns one candidate lnL per move, in order. The parent is
  /// left exactly as found apart from its CLV orientation.
  std::vector<double> score(std::span<const SprMove> moves);

  /// One group's scoring request for score_groups: a prune-edge group's
  /// moves and the destination for their lnLs (out.size() == moves.size()).
  struct GroupRequest {
    std::span<const SprMove> moves;
    std::span<double> out;
  };
  /// Score several groups' candidates against the (frozen) parent in merged
  /// cross-group waves: candidates fill each wave to max_batch regardless
  /// of group boundaries, so a window of small groups costs the
  /// synchronization of its candidate count / max_batch — not its group
  /// count. Scores are identical to per-group score() calls.
  void score_groups(std::span<const GroupRequest> groups);

  // --- the piecewise wave protocol (lockstep multi-search driver) ----------
  //
  // stage() materializes one candidate as an overlay into `sink`; a false
  // return means the wave is full — flush before staging more. flush_wave()
  // runs the lockstep protocol over staged items from ANY number of scorers
  // (one shared parallel region per step). finish_wave() closes this
  // scorer's participation in the flushed wave (stats, slot-pool trim) and
  // must be called before its next stage(). score()/score_groups() are
  // thin drivers over these three.

  bool stage(const SprMove& move, double* out, std::vector<WaveItem>& sink,
             std::vector<double>* opt_lengths = nullptr);
  /// The graft-scoring primitive stage() is a wrapper over: materialize one
  /// GraftCandidate (SPR or in-place) as an overlay into `sink`. Same wave
  /// discipline and return contract as stage().
  bool stage_graft(const GraftCandidate& g, double* out,
                   std::vector<WaveItem>& sink,
                   std::vector<double>* opt_lengths = nullptr);
  static void flush_wave(EngineCore& core, Strategy strategy,
                         const BranchOptOptions& local_opts,
                         std::span<const WaveItem> items);
  void finish_wave();
  /// Close a wave whose flush FAILED (EngineFault, allocation failure):
  /// un-stage everything without counting a wave or its candidates, so the
  /// staged moves can be staged again. flush_wave writes scores only after
  /// the whole protocol succeeded, so no *out of an aborted wave was
  /// touched; the overlays resynchronize at their next stage() as always.
  void abort_wave();
  /// Candidates currently staged (0 right after finish_wave()).
  std::size_t staged() const { return staged_; }

  const CandidateBatchStats& stats() const { return stats_; }
  /// Mutable access for the search driver's speculation counters
  /// (rescored_candidates, conflict_groups).
  CandidateBatchStats& stats() { return stats_; }

 private:
  EngineCore& core_;
  EvalContext& parent_;
  Strategy strategy_;
  BranchOptOptions local_opts_;
  CandidateBatchOptions opts_;
  ClvSlotPool pool_;  // declared before overlays_: destroyed after them
  std::vector<std::unique_ptr<EvalContext>> overlays_;
  std::size_t staged_ = 0;
  EdgeId wave_prune_ = kNoId;  // first staged prune edge of the open wave
  bool wave_cross_ = false;    // open wave spans >1 prune edge
  CandidateBatchStats stats_;
};

}  // namespace plk
