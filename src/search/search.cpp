#include "search/search.hpp"

#include <memory>
#include <vector>

#include "search/candidate_batch.hpp"
#include "search/spr.hpp"
#include "util/log.hpp"

namespace plk {

namespace {

/// Per-partition lengths of one edge (single value in linked mode).
std::vector<double> save_lengths(const BranchLengths& bl, EdgeId e) {
  if (bl.linked()) return {bl.get(e, 0)};
  std::vector<double> out(static_cast<std::size_t>(bl.partition_count()));
  for (int p = 0; p < bl.partition_count(); ++p)
    out[static_cast<std::size_t>(p)] = bl.get(e, p);
  return out;
}

void restore_lengths(BranchLengths& bl, EdgeId e,
                     const std::vector<double>& saved) {
  if (bl.linked()) {
    bl.set_all(e, saved[0]);
    return;
  }
  for (int p = 0; p < bl.partition_count(); ++p)
    bl.set(e, p, saved[static_cast<std::size_t>(p)]);
}

/// Quickly optimize the three branches around the insertion point
/// (the "lazy" part of lazy SPR) and return the resulting lnL.
double local_optimize(Engine& engine, const SprUndo& u, EdgeId prune_edge,
                      const SearchOptions& opts) {
  optimize_edge(engine, u.carried, opts.strategy, opts.local_branch_opts);
  optimize_edge(engine, u.target, opts.strategy, opts.local_branch_opts);
  optimize_edge(engine, prune_edge, opts.strategy, opts.local_branch_opts);
  return engine.loglikelihood(prune_edge);
}

/// Score one candidate move without keeping it; returns the candidate lnL.
double score_candidate(Engine& engine, const SprMove& move,
                       const SearchOptions& opts) {
  Tree& tree = engine.tree();
  BranchLengths& bl = engine.branch_lengths();

  engine.prepare_root(move.prune_edge);
  // Snapshot: apply_spr tells us which edges it will rewire only afterwards,
  // so pre-compute them the same way (joint's two non-prune edges + target).
  const NodeId joint = tree.other_end(move.prune_edge, move.pruned_side);
  std::vector<EdgeId> touched;
  for (EdgeId e : tree.edges_of(joint))
    if (e != move.prune_edge) touched.push_back(e);
  touched.push_back(move.target_edge);
  touched.push_back(move.prune_edge);
  std::vector<std::vector<double>> saved;
  saved.reserve(touched.size());
  for (EdgeId e : touched) saved.push_back(save_lengths(bl, e));

  SprUndo undo = apply_spr(tree, move);
  apply_spr_lengths(bl, undo);
  invalidate_after_spr(engine, undo);

  const double cand = local_optimize(engine, undo, move.prune_edge, opts);

  engine.prepare_root(move.prune_edge);
  undo_spr(tree, undo);
  invalidate_after_spr(engine, undo);
  for (std::size_t i = 0; i < touched.size(); ++i)
    restore_lengths(bl, touched[i], saved[i]);
  return cand;
}

/// Permanently apply a move (with local optimization); returns the new lnL.
double commit_move(Engine& engine, const SprMove& move,
                   const SearchOptions& opts) {
  engine.prepare_root(move.prune_edge);
  SprUndo undo = apply_spr(engine.tree(), move);
  apply_spr_lengths(engine.branch_lengths(), undo);
  invalidate_after_spr(engine, undo);
  return local_optimize(engine, undo, move.prune_edge, opts);
}

}  // namespace

SearchResult search_ml(Engine& engine, const SearchOptions& opts) {
  SearchResult res;

  // One scorer per search: its overlay contexts and CLV slot pool are
  // reused across every candidate group and round.
  std::unique_ptr<CandidateScorer> scorer;
  if (opts.batched_candidates)
    scorer = std::make_unique<CandidateScorer>(
        engine.core(), engine.context(), opts.strategy,
        opts.local_branch_opts, opts.candidate_batch);

  double lnl = optimize_branch_lengths(engine, opts.strategy,
                                       opts.full_branch_opts);
  if (opts.optimize_model)
    lnl = optimize_model_parameters(engine, opts.strategy, opts.model_opts);

  for (int round = 0; round < opts.max_rounds; ++round) {
    const double round_start = lnl;
    ++res.rounds;

    // Tree search phase: try pruning every subtree (each edge, both sides).
    const int n_edges = engine.tree().edge_count();
    for (EdgeId pe = 0; pe < n_edges; ++pe) {
      for (int side = 0; side < 2; ++side) {
        const NodeId s =
            side == 0 ? engine.tree().edge(pe).a : engine.tree().edge(pe).b;
        const NodeId joint = engine.tree().other_end(pe, s);
        if (engine.tree().is_tip(joint)) continue;

        const auto targets =
            spr_targets(engine.tree(), pe, s, opts.spr_radius);
        std::vector<SprMove> moves;
        moves.reserve(targets.size());
        for (EdgeId t : targets) moves.push_back(SprMove{pe, s, t});

        std::vector<double> cands;
        if (scorer != nullptr) {
          // Batched path: the whole candidate group in lockstep waves.
          cands = scorer->score(moves);
        } else {
          cands.reserve(moves.size());
          for (const SprMove& move : moves)
            cands.push_back(score_candidate(engine, move, opts));
        }
        res.candidates_scored += moves.size();

        SprMove best_move;
        double best_lnl = lnl;
        for (std::size_t i = 0; i < moves.size(); ++i) {
          if (cands[i] > best_lnl) {
            best_lnl = cands[i];
            best_move = moves[i];
          }
        }
        if (best_move.target_edge != kNoId &&
            best_lnl > lnl + opts.min_move_gain) {
          lnl = commit_move(engine, best_move, opts);
          ++res.accepted_moves;
        }
      }
    }

    // Model optimization phase.
    lnl = optimize_branch_lengths(engine, opts.strategy,
                                  opts.full_branch_opts);
    if (opts.optimize_model)
      lnl = optimize_model_parameters(engine, opts.strategy, opts.model_opts);

    log_info("search round " + std::to_string(round + 1) +
             ": lnL = " + std::to_string(lnl) + " (+" +
             std::to_string(lnl - round_start) + ", " +
             std::to_string(res.accepted_moves) + " moves)");
    if (lnl - round_start < opts.epsilon) break;
  }

  engine.sync_tree_lengths();
  res.final_lnl = lnl;
  if (scorer != nullptr) res.batch = scorer->stats();
  return res;
}

MultiStartResult search_ml_multistart(EngineCore& core,
                                      std::span<EvalContext* const> ctxs,
                                      const SearchOptions& opts) {
  MultiStartResult ms;
  if (ctxs.empty()) return ms;

  // Score every starting tree in one batched parallel region (and leave
  // each context's CLVs fully oriented for its search's first commands).
  std::vector<EdgeId> roots(ctxs.size(), 0);
  const auto start_lnls = core.evaluate_batch(ctxs, roots);
  for (std::size_t c = 0; c < ctxs.size(); ++c)
    log_info("start " + std::to_string(c) +
             ": lnL = " + std::to_string(start_lnls[c]));

  for (std::size_t c = 0; c < ctxs.size(); ++c) {
    Engine view(core, *ctxs[c]);
    ms.results.push_back(search_ml(view, opts));
    if (ms.best < 0 ||
        ms.results[static_cast<std::size_t>(c)].final_lnl >
            ms.results[static_cast<std::size_t>(ms.best)].final_lnl)
      ms.best = static_cast<int>(c);
  }
  return ms;
}

}  // namespace plk
