#include "search/search.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/fault_policy.hpp"
#include "search/candidate_batch.hpp"
#include "search/spr.hpp"
#include "util/log.hpp"

namespace plk {

namespace {

/// Per-partition lengths of one edge (single value in linked mode).
std::vector<double> save_lengths(const BranchLengths& bl, EdgeId e) {
  if (bl.linked()) return {bl.get(e, 0)};
  std::vector<double> out(static_cast<std::size_t>(bl.partition_count()));
  for (int p = 0; p < bl.partition_count(); ++p)
    out[static_cast<std::size_t>(p)] = bl.get(e, p);
  return out;
}

void restore_lengths(BranchLengths& bl, EdgeId e,
                     const std::vector<double>& saved) {
  if (bl.linked()) {
    bl.set_all(e, saved[0]);
    return;
  }
  for (int p = 0; p < bl.partition_count(); ++p)
    bl.set(e, p, saved[static_cast<std::size_t>(p)]);
}

/// Quickly optimize the three branches around the insertion point
/// (the "lazy" part of lazy SPR) and return the resulting lnL.
double local_optimize(Engine& engine, const SprUndo& u, EdgeId prune_edge,
                      const SearchOptions& opts) {
  optimize_edge(engine, u.carried, opts.strategy, opts.local_branch_opts);
  optimize_edge(engine, u.target, opts.strategy, opts.local_branch_opts);
  optimize_edge(engine, prune_edge, opts.strategy, opts.local_branch_opts);
  return engine.loglikelihood(prune_edge);
}

/// Score one candidate move without keeping it; returns the candidate lnL.
double score_candidate(Engine& engine, const SprMove& move,
                       const SearchOptions& opts) {
  Tree& tree = engine.tree();
  BranchLengths& bl = engine.branch_lengths();

  engine.prepare_root(move.prune_edge);
  // Snapshot: apply_spr tells us which edges it will rewire only afterwards,
  // so pre-compute them the same way (joint's two non-prune edges + target).
  const NodeId joint = tree.other_end(move.prune_edge, move.pruned_side);
  std::vector<EdgeId> touched;
  for (EdgeId e : tree.edges_of(joint))
    if (e != move.prune_edge) touched.push_back(e);
  touched.push_back(move.target_edge);
  touched.push_back(move.prune_edge);
  std::vector<std::vector<double>> saved;
  saved.reserve(touched.size());
  for (EdgeId e : touched) saved.push_back(save_lengths(bl, e));

  SprUndo undo = apply_spr(tree, move);
  apply_spr_lengths(bl, undo);
  invalidate_after_spr(engine, undo);

  const double cand = local_optimize(engine, undo, move.prune_edge, opts);

  engine.prepare_root(move.prune_edge);
  undo_spr(tree, undo);
  invalidate_after_spr(engine, undo);
  for (std::size_t i = 0; i < touched.size(); ++i)
    restore_lengths(bl, touched[i], saved[i]);
  return cand;
}

/// Permanently apply a move (with local optimization); returns the new lnL.
/// Used by the sequential scorer; the speculative machine commits by
/// adopting the winning overlay's already-optimized state instead.
double commit_move(Engine& engine, const SprMove& move,
                   const SearchOptions& opts) {
  engine.prepare_root(move.prune_edge);
  SprUndo undo = apply_spr(engine.tree(), move);
  apply_spr_lengths(engine.branch_lengths(), undo);
  invalidate_after_spr(engine, undo);
  return local_optimize(engine, undo, move.prune_edge, opts);
}

/// The historical one-candidate-at-a-time search (batched_candidates off):
/// kept verbatim as the A/B reference the batched paths are pinned against.
SearchResult search_ml_sequential(Engine& engine, const SearchOptions& opts) {
  SearchResult res;

  double lnl = optimize_branch_lengths(engine, opts.strategy,
                                       opts.full_branch_opts);
  if (opts.optimize_model)
    lnl = optimize_model_parameters(engine, opts.strategy, opts.model_opts);

  for (int round = 0; round < opts.max_rounds; ++round) {
    const double round_start = lnl;
    ++res.rounds;

    // Tree search phase: try pruning every subtree (each edge, both sides).
    const int n_edges = engine.tree().edge_count();
    for (EdgeId pe = 0; pe < n_edges; ++pe) {
      for (int side = 0; side < 2; ++side) {
        const NodeId s =
            side == 0 ? engine.tree().edge(pe).a : engine.tree().edge(pe).b;
        const NodeId joint = engine.tree().other_end(pe, s);
        if (engine.tree().is_tip(joint)) continue;

        const auto targets =
            spr_targets(engine.tree(), pe, s, opts.spr_radius);
        std::vector<SprMove> moves;
        moves.reserve(targets.size());
        for (EdgeId t : targets) moves.push_back(SprMove{pe, s, t});

        std::vector<double> cands;
        cands.reserve(moves.size());
        for (const SprMove& move : moves)
          cands.push_back(score_candidate(engine, move, opts));
        res.candidates_scored += moves.size();

        SprMove best_move;
        double best_lnl = lnl;
        for (std::size_t i = 0; i < moves.size(); ++i) {
          if (cands[i] > best_lnl) {
            best_lnl = cands[i];
            best_move = moves[i];
          }
        }
        if (best_move.target_edge != kNoId &&
            best_lnl > lnl + opts.min_move_gain) {
          lnl = commit_move(engine, best_move, opts);
          ++res.accepted_moves;
        }
      }
    }

    // Model optimization phase.
    lnl = optimize_branch_lengths(engine, opts.strategy,
                                  opts.full_branch_opts);
    if (opts.optimize_model)
      lnl = optimize_model_parameters(engine, opts.strategy, opts.model_opts);

    log_info("search round " + std::to_string(round + 1) +
             ": lnL = " + std::to_string(lnl) + " (+" +
             std::to_string(lnl - round_start) + ", " +
             std::to_string(res.accepted_moves) + " moves)");
    if (opts.stop_flag != nullptr &&
        opts.stop_flag->load(std::memory_order_relaxed)) {
      if (lnl - round_start >= opts.epsilon && round + 1 < opts.max_rounds)
        res.interrupted = true;
      break;
    }
    if (lnl - round_start < opts.epsilon) break;
  }

  engine.sync_tree_lengths();
  res.final_lnl = lnl;
  return res;
}

// ---------------------------------------------------------------------------
// Speculative cross-group search machine
// ---------------------------------------------------------------------------

/// One prune-edge candidate group inside a speculative window. `side` is
/// the endpoint INDEX into edge(pe) — the group iterates exactly like the
/// sequential loop's (pe, side) pair — and `s` the node it resolved to at
/// (re-)enumeration time.
struct SpecGroup {
  EdgeId pe = kNoId;
  int side = 0;
  NodeId s = kNoId;
  std::vector<SprMove> moves;
  std::vector<double> scores;
  /// Per candidate: the overlay's optimized [carried, target, prune]
  /// per-partition lengths, harvested at the flush so an accepted move can
  /// adopt them (see WaveItem::opt_lengths).
  std::vector<std::vector<double>> opt_lengths;
  /// Candidates whose scores are staged-or-valid. All staged scores become
  /// valid at the wave flush, and processing only runs between flushes, so
  /// a fully-covered group (scored_upto == moves.size()) is decidable.
  std::size_t scored_upto = 0;
};

/// The speculative lazy-SPR hill climb for ONE parent context, factored as
/// a master-side state machine: it enumerates a WINDOW of prune-edge groups
/// against the frozen parent, stages their candidates into cross-group
/// waves (scored by the driver through CandidateScorer::flush_wave — for a
/// single search on its own, for replicated searches merged with every
/// other machine's wave), and processes the scored groups strictly in the
/// sequential scorer's order:
///
///   * the best candidate of each group is committed iff it beats the
///     running lnL by min_move_gain — exactly the sequential policy;
///   * a commit stales EVERY un-processed score in the window (scores are
///     whole-tree likelihoods), so the tail is re-scored; groups whose
///     enumeration the commit may have changed (spr_group_conflicts) are
///     additionally re-enumerated. Survivor groups keep their move lists —
///     the conflict test guarantees re-enumeration would reproduce them.
///
/// The window size adapts — 1 after a window with a commit, doubling after
/// every commit-free window up to speculate_groups — so commit-dense early
/// rounds speculate little while the long commit-free tail merges many
/// groups per wave. None of this changes any score or decision: the
/// accepted-move sequence is identical to the sequential scorer's
/// (bit-identical under the cyclic schedule).
class SprSearchMachine {
 public:
  enum class Phase {
    kScore,     ///< unscored candidates pending: stage_wave + flush + consume
    kRoundEnd,  ///< round's groups processed: smooth/model-opt, end_round
    kDone,
  };

  SprSearchMachine(EngineCore& core, EvalContext& ctx,
                   const SearchOptions& opts)
      : view_(core, ctx),
        opts_(opts),
        scorer_(core, ctx, opts.strategy, opts.local_branch_opts,
                opts.candidate_batch) {}

  Phase phase() const { return phase_; }
  Engine& engine() { return view_; }

  /// Start searching from likelihood `lnl` (after the driver's initial
  /// smoothing / model optimization).
  void begin(double lnl) {
    lnl_ = lnl;
    if (opts_.max_rounds < 1) {
      phase_ = Phase::kDone;
      return;
    }
    start_round();
  }

  /// Start from a restored checkpoint: the context already holds the
  /// round-boundary state (the writer re-applied its own serialization
  /// before continuing, so this state IS the one the uninterrupted run
  /// searched from), and the counters pick up where it left off.
  void begin_resumed(const SearchProgress& sp) {
    res_.rounds = sp.rounds;
    res_.accepted_moves = sp.accepted_moves;
    res_.candidates_scored = sp.candidates_scored;
    lnl_ = sp.lnl;
    if (sp.done || res_.rounds >= opts_.max_rounds) {
      phase_ = Phase::kDone;
      return;
    }
    start_round();
  }

  /// kScore only: stage unscored candidates (window order) into `sink`
  /// until the scorer's wave is full or the window is covered. Snapshots
  /// the staging cursors first so a faulted flush can rewind them.
  void stage_wave(std::vector<WaveItem>& sink) {
    if (!have_snapshot_) {
      snapshot_.clear();
      for (const SpecGroup& g : window_) snapshot_.push_back(g.scored_upto);
      have_snapshot_ = true;
    }
    // Degradation ladder, most-degraded rung: after repeated faults this
    // machine stages ONE candidate per wave — effectively the sequential
    // scorer, the smallest possible fault blast radius.
    const std::size_t cap = fault_level_ >= 2
                                ? 1
                                : std::numeric_limits<std::size_t>::max();
    std::size_t staged_now = 0;
    for (std::size_t gi = proc_; gi < window_.size(); ++gi) {
      SpecGroup& g = window_[gi];
      while (g.scored_upto < g.moves.size()) {
        if (staged_now >= cap) return;
        if (!scorer_.stage(g.moves[g.scored_upto], &g.scores[g.scored_upto],
                           sink, &g.opt_lengths[g.scored_upto]))
          return;
        ++g.scored_upto;
        ++staged_now;
      }
    }
  }

  /// After the driver flushed the staged wave: account it and continue
  /// processing groups / refilling the window. Advances phase.
  void consume() {
    scorer_.finish_wave();
    have_snapshot_ = false;
    if (fault_level_ > 0 && ++clean_flushes_ >= kFaultDecayFlushes) {
      --fault_level_;
      clean_flushes_ = 0;
    }
    advance();
  }

  /// The wave this machine staged into FAILED (EngineFault / allocation
  /// failure): rewind the staging cursors to the pre-stage snapshot — no
  /// score of an aborted wave was written, and every overlay re-scores
  /// from the untouched frozen parent, so the retried scores (and with
  /// them the accepted-move sequence) are bit-identical to a fault-free
  /// run — and climb one rung down the degradation ladder.
  void on_wave_fault() {
    scorer_.abort_wave();
    if (have_snapshot_) {
      for (std::size_t gi = 0; gi < window_.size(); ++gi)
        window_[gi].scored_upto = snapshot_[gi];
      have_snapshot_ = false;
    }
    fault_level_ = std::min(fault_level_ + 1, 2);
    clean_flushes_ = 0;
  }

  /// kRoundEnd only: record this round's post-smoothing likelihood, log,
  /// and report whether the search would continue (improvement >= epsilon
  /// and rounds remain). The driver decides what happens next —
  /// checkpoint, stop, or start_next_round() — so the decision point and
  /// the persistence point coincide.
  bool close_round(double lnl) {
    lnl_ = lnl;
    log_info("search round " + std::to_string(res_.rounds) +
             ": lnL = " + std::to_string(lnl_) + " (+" +
             std::to_string(lnl_ - round_start_) + ", " +
             std::to_string(res_.accepted_moves) + " moves)");
    return lnl_ - round_start_ >= opts_.epsilon &&
           res_.rounds < opts_.max_rounds;
  }

  /// Continue with the next round (enumeration happens here, against the
  /// context's CURRENT tree — after any checkpoint re-apply).
  void start_next_round() { start_round(); }

  /// Stop at this round boundary (converged, out of rounds, or told to).
  void finish() { phase_ = Phase::kDone; }

  void mark_interrupted() { res_.interrupted = true; }

  /// Progress counters for a round-boundary checkpoint.
  SearchProgress progress() const {
    SearchProgress sp;
    sp.rounds = res_.rounds;
    sp.accepted_moves = res_.accepted_moves;
    sp.candidates_scored = res_.candidates_scored;
    sp.lnl = lnl_;
    sp.valid = true;
    return sp;
  }

  SearchResult take_result() {
    res_.final_lnl = lnl_;
    res_.batch = scorer_.stats();
    return res_;
  }

 private:
  void start_round() {
    round_start_ = lnl_;
    ++res_.rounds;
    cursor_pe_ = 0;
    cursor_side_ = 0;
    window_.clear();
    proc_ = 0;
    window_cap_ = 1;
    committed_in_window_ = false;
    advance();
  }

  /// (Re-)resolve a group against the CURRENT tree: its pruned-side node,
  /// the tip-joint skip, and its target list. Clears any previous scores.
  void enumerate(SpecGroup& g) {
    const Tree& tree = view_.tree();
    const auto& e = tree.edge(g.pe);
    g.s = g.side == 0 ? e.a : e.b;
    g.moves.clear();
    g.scores.clear();
    g.opt_lengths.clear();
    g.scored_upto = 0;
    const NodeId joint = tree.other_end(g.pe, g.s);
    if (tree.is_tip(joint)) return;  // no candidates off a tip joint
    for (EdgeId t : spr_targets(tree, g.pe, g.s, opts_.spr_radius))
      g.moves.push_back(SprMove{g.pe, g.s, t});
    g.scores.assign(g.moves.size(), 0.0);
    g.opt_lengths.assign(g.moves.size(), {});
  }

  /// Commit an accepted move by ADOPTING the winning overlay's optimized
  /// state: apply the surgery to the parent, install the three locally
  /// optimized lengths harvested at the flush, and take the candidate's
  /// score as the new likelihood — zero parallel regions, where the classic
  /// commit re-ran the whole local optimization (~8 regions) to recompute
  /// exactly these numbers. Deterministic kernels make the adopted values
  /// bit-identical to the recomputation (the sequential A/B tests pin it).
  void commit_by_adoption(const SprMove& move,
                          std::span<const double> opt_lengths,
                          double score) {
    Engine& eng = view_;
    const SprUndo undo = apply_spr(eng.tree(), move);
    apply_spr_lengths(eng.branch_lengths(), undo);
    BranchLengths& bl = eng.branch_lengths();
    const int np = bl.linked() ? 1 : bl.partition_count();
    const EdgeId local[3] = {undo.carried, undo.target, move.prune_edge};
    for (int e = 0; e < 3; ++e)
      for (int p = 0; p < np; ++p) {
        const double len = opt_lengths[static_cast<std::size_t>(e * np + p)];
        if (bl.linked())
          bl.set_all(local[e], len);
        else
          bl.set(local[e], p, len);
      }
    invalidate_after_spr(eng, undo);
    lnl_ = score;
    ++res_.accepted_moves;
    invalidate_tail(undo);
  }

  /// A commit changed the tree: every un-processed score in the window is a
  /// stale whole-tree likelihood — mark it all for re-scoring — and groups
  /// the surgery may have re-shaped re-enumerate as well.
  void invalidate_tail(const SprUndo& undo) {
    const Tree& tree = view_.tree();
    for (std::size_t gi = proc_; gi < window_.size(); ++gi) {
      SpecGroup& g = window_[gi];
      scorer_.stats().rescored_candidates += g.scored_upto;
      if (spr_group_conflicts(tree, g.pe, g.s, opts_.spr_radius, undo)) {
        ++scorer_.stats().conflict_groups;
        enumerate(g);
      } else {
        g.scored_upto = 0;
      }
    }
  }

  /// Process fully scored groups in order; on window exhaustion adapt the
  /// speculation width and refill from the cursor. Leaves phase_ at kScore
  /// (unscored candidates pending) or kRoundEnd (round's groups done).
  void advance() {
    const int n_edges = view_.tree().edge_count();
    for (;;) {
      while (proc_ < window_.size()) {
        SpecGroup& g = window_[proc_];
        if (g.scored_upto < g.moves.size()) {
          phase_ = Phase::kScore;
          return;
        }
        ++proc_;
        if (!g.moves.empty()) ++scorer_.stats().groups;
        res_.candidates_scored += g.moves.size();
        SprMove best_move;
        double best_lnl = lnl_;
        std::size_t best_i = 0;
        for (std::size_t i = 0; i < g.moves.size(); ++i) {
          if (g.scores[i] > best_lnl) {
            best_lnl = g.scores[i];
            best_move = g.moves[i];
            best_i = i;
          }
        }
        if (best_move.target_edge != kNoId &&
            best_lnl > lnl_ + opts_.min_move_gain) {
          commit_by_adoption(best_move, g.opt_lengths[best_i], best_lnl);
          committed_in_window_ = true;
        }
      }

      // Window exhausted: adapt the speculation width and refill. A faulted
      // machine (ladder level >= 1) stops speculating across groups until
      // it has seen enough clean flushes — window growth is what multiplies
      // the work a faulted wave throws away.
      const int cap_limit = fault_level_ >= 1
                                ? 1
                                : opts_.candidate_batch.speculate_groups;
      window_cap_ =
          committed_in_window_ ? 1 : std::min(window_cap_ * 2, cap_limit);
      committed_in_window_ = false;
      window_.clear();
      proc_ = 0;
      while (static_cast<int>(window_.size()) < window_cap_ &&
             cursor_pe_ < n_edges) {
        SpecGroup g;
        g.pe = cursor_pe_;
        g.side = cursor_side_;
        if (++cursor_side_ == 2) {
          cursor_side_ = 0;
          ++cursor_pe_;
        }
        enumerate(g);
        window_.push_back(std::move(g));
      }
      if (window_.empty()) {
        phase_ = Phase::kRoundEnd;
        return;
      }
      // Loop: empty groups (tip joints, no targets) process immediately.
    }
  }

  Engine view_;
  SearchOptions opts_;
  CandidateScorer scorer_;
  Phase phase_ = Phase::kDone;

  double lnl_ = 0.0;
  double round_start_ = 0.0;
  SearchResult res_;

  EdgeId cursor_pe_ = 0;
  int cursor_side_ = 0;
  std::vector<SpecGroup> window_;
  std::size_t proc_ = 0;
  int window_cap_ = 1;
  bool committed_in_window_ = false;

  /// Degradation ladder: 0 = full speculation, 1 = one group per window,
  /// 2 = additionally one candidate per wave. Climbs on every faulted
  /// flush, decays one rung per kFaultDecayFlushes clean flushes.
  static constexpr int kFaultDecayFlushes = 8;
  int fault_level_ = 0;
  int clean_flushes_ = 0;
  /// Per-group scored_upto at the last stage_wave (rewound on fault).
  std::vector<std::size_t> snapshot_;
  bool have_snapshot_ = false;
};

/// Batched branch-length smoothing for a set of parent contexts, preserving
/// per-context arithmetic: the lockstep batch equals the sequential pass
/// bit for bit under kNewPar (and in linked mode, where the strategies
/// collapse); oldPAR's one-partition-at-a-time schedule has no batched
/// equal, so it keeps its serial per-context pass.
std::vector<double> smooth_parents(EngineCore& core,
                                   std::span<EvalContext* const> ctxs,
                                   const SearchOptions& opts) {
  if (opts.strategy == Strategy::kOldPar && !core.linked_branch_lengths()) {
    std::vector<double> lnls(ctxs.size());
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
      Engine view(core, *ctxs[i]);
      lnls[i] =
          optimize_branch_lengths(view, opts.strategy, opts.full_branch_opts);
    }
    return lnls;
  }
  return optimize_branch_lengths_batch(core, ctxs, opts.full_branch_opts);
}

}  // namespace

SearchResult search_ml(Engine& engine, const SearchOptions& opts) {
  if (!opts.batched_candidates) return search_ml_sequential(engine, opts);
  // The speculative driver protocol exists once: a single search is the
  // one-context case of the lockstep driver (whose per-context smoothing
  // and wave protocol are bit-identical to a dedicated single loop).
  EvalContext* ctx = &engine.context();
  return search_ml_replicated(engine.core(), {&ctx, 1}, opts)[0];
}

std::vector<SearchResult> search_ml_replicated(
    EngineCore& core, std::span<EvalContext* const> ctxs,
    const SearchOptions& opts) {
  std::vector<SearchResult> out(ctxs.size());
  if (ctxs.empty()) return out;

  if (!opts.batched_candidates) {
    // Nothing to merge without the wave protocol: run the searches in turn.
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
      Engine view(core, *ctxs[i]);
      out[i] = search_ml(view, opts);
    }
    return out;
  }

  // One checkpoint file per context (the single-search case keeps the bare
  // path).
  const auto ckpt_path = [&](std::size_t i) -> std::string {
    if (opts.checkpoint_path.empty()) return {};
    return ctxs.size() == 1 ? opts.checkpoint_path
                            : opts.checkpoint_path + ".r" + std::to_string(i);
  };
  const auto stop_requested = [&] {
    return opts.stop_flag != nullptr &&
           opts.stop_flag->load(std::memory_order_relaxed);
  };

  std::vector<std::unique_ptr<SprSearchMachine>> machines;
  machines.reserve(ctxs.size());
  if (opts.resume && !opts.checkpoint_path.empty()) {
    // Resume: each context restores its round-boundary state (falling back
    // to the previous checkpoint generation on corruption) and its machine
    // continues from the recorded counters. The writer re-applied its own
    // serialization at every checkpointed boundary, so the restored state
    // equals the one the uninterrupted run continued from — the resumed
    // search replays it bit for bit.
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
      SearchProgress sp;
      load_checkpoint_file(*ctxs[i], ckpt_path(i), &sp);
      if (!sp.valid)
        throw std::runtime_error("search resume: checkpoint '" +
                                 ckpt_path(i) +
                                 "' carries no search progress");
      machines.push_back(
          std::make_unique<SprSearchMachine>(core, *ctxs[i], opts));
      machines[i]->begin_resumed(sp);
    }
  } else {
    // Initial smoothing as ONE batched pass over every replicate, then the
    // (serial, Brent-driven) model phases per context.
    std::vector<double> lnls = smooth_parents(core, ctxs, opts);
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
      machines.push_back(
          std::make_unique<SprSearchMachine>(core, *ctxs[i], opts));
      if (opts.optimize_model)
        lnls[i] = optimize_model_parameters(machines[i]->engine(),
                                            opts.strategy, opts.model_opts);
      machines[i]->begin(lnls[i]);
    }
  }

  std::vector<WaveItem> sink;
  std::vector<std::size_t> stagers, enders;

  // Wave-level fault recovery: a flush that throws an EngineFault (non-
  // finite reductions, attributed and already contained by the core) or
  // bad_alloc (CLV slot exhaustion) aborts the wave — no score of it was
  // written — and every staging machine rewinds and retries degraded.
  // Requests stranded in the core's queue by a mid-submit throw are
  // aborted, NOT drained: their output spans may point into unwound stack
  // frames.
  // A *persistent* fault (every retry fails, even fully degraded) must not
  // spin forever; past the cap the fault is clearly not transient and
  // propagates to the caller.
  constexpr int kMaxConsecutiveWaveFaults = 32;
  int consecutive_wave_faults = 0;
  const auto recover_wave = [&](const char* what) {
    core.abort_pending();
    if (++consecutive_wave_faults > kMaxConsecutiveWaveFaults) throw;
    // Under a sharded core the fault message carries the owning sub-core
    // (FaultRecord::shard): containment means only that shard's slice
    // produced the poison, and the retry below recomputes from clean state
    // on all shards identically.
    log_warn(std::string("search: candidate wave faulted (") + what +
             "); rewinding and retrying degraded");
    for (std::size_t i : stagers) machines[i]->on_wave_fault();
  };

  for (;;) {
    // Merge every active machine's current wave into one flush: each
    // machine stages up to its scorer's wave capacity, and the union runs
    // the lockstep protocol through shared parallel regions.
    sink.clear();
    stagers.clear();
    for (std::size_t i = 0; i < machines.size(); ++i) {
      if (machines[i]->phase() != SprSearchMachine::Phase::kScore) continue;
      stagers.push_back(i);
      machines[i]->stage_wave(sink);
    }
    if (!stagers.empty()) {
      try {
        CandidateScorer::flush_wave(core, opts.strategy,
                                    opts.local_branch_opts, sink);
        for (std::size_t i : stagers) machines[i]->consume();
        consecutive_wave_faults = 0;
      } catch (const EngineFault& f) {
        recover_wave(f.what());
      } catch (const std::bad_alloc&) {
        recover_wave("allocation failure");
      }
      continue;
    }

    // No machine holds candidates: the active ones all sit at a round
    // boundary — smooth them together, then let each close its round.
    enders.clear();
    for (std::size_t i = 0; i < machines.size(); ++i)
      if (machines[i]->phase() == SprSearchMachine::Phase::kRoundEnd)
        enders.push_back(i);
    if (enders.empty()) break;  // all done

    std::vector<EvalContext*> ender_ctxs(enders.size());
    for (std::size_t k = 0; k < enders.size(); ++k)
      ender_ctxs[k] = ctxs[enders[k]];
    // Round-end smoothing gets one degraded retry: the parents' CLVs were
    // invalidated by the fault, so the retry recomputes from clean state.
    // A second consecutive failure is a real (not transient) problem and
    // propagates.
    std::vector<double> round_lnls;
    try {
      round_lnls = smooth_parents(core, ender_ctxs, opts);
    } catch (const EngineFault& f) {
      core.abort_pending();
      log_warn(std::string("search: round-end smoothing faulted (") +
               f.what() + "); retrying once from invalidated state");
      for (EvalContext* c : ender_ctxs) c->invalidate_all();
      round_lnls = smooth_parents(core, ender_ctxs, opts);
    }
    for (std::size_t k = 0; k < enders.size(); ++k) {
      SprSearchMachine& m = *machines[enders[k]];
      double l = round_lnls[k];
      if (opts.optimize_model)
        l = optimize_model_parameters(m.engine(), opts.strategy,
                                      opts.model_opts);
      const bool cont = m.close_round(l);
      const bool stopping = stop_requested();
      const std::string path = ckpt_path(enders[k]);
      const bool due =
          !path.empty() && (cont || stopping) &&
          (stopping || m.progress().rounds %
                               std::max(1, opts.checkpoint_every) ==
                           0);
      if (due) {
        // Canonicalize-then-persist: re-apply our own serialization so the
        // state we continue from IS the state a resumed run will restore
        // (Tree::from_edges normalizes adjacency order and frequency
        // renormalization is only a fixed point after one round trip —
        // without the re-apply, writer and resumer would enumerate the
        // next round's candidates from ulp/ordering-different states).
        // Enumeration for the next round happens in start_next_round(),
        // strictly after this.
        EvalContext& c = *ctxs[enders[k]];
        SearchProgress sp = m.progress();
        // A converged boundary writes a terminal checkpoint: resuming it
        // reports the recorded result instead of searching past the
        // convergence the original run already established.
        sp.done = !cont;
        apply_checkpoint(c, serialize_checkpoint(c, &sp));
        try {
          save_checkpoint_file(c, path, &sp);
        } catch (const std::exception& e) {
          // A failed write never kills the run; the ring on disk still
          // holds the previous good generation.
          log_warn(std::string("search: checkpoint write failed (") +
                   e.what() + "); continuing without");
        }
      }
      if (stopping) {
        if (cont) m.mark_interrupted();
        m.finish();
      } else if (cont) {
        m.start_next_round();
      } else {
        m.finish();
      }
    }
  }

  for (std::size_t i = 0; i < machines.size(); ++i) {
    ctxs[i]->sync_tree_lengths();
    out[i] = machines[i]->take_result();
  }
  return out;
}

MultiStartResult search_ml_multistart(EngineCore& core,
                                      std::span<EvalContext* const> ctxs,
                                      const SearchOptions& opts) {
  MultiStartResult ms;
  if (ctxs.empty()) return ms;

  // Score every starting tree in one batched parallel region (and leave
  // each context's CLVs fully oriented for its search's first commands).
  std::vector<EdgeId> roots(ctxs.size(), 0);
  const auto start_lnls = core.evaluate_batch(ctxs, roots);
  for (std::size_t c = 0; c < ctxs.size(); ++c)
    log_info("start " + std::to_string(c) +
             ": lnL = " + std::to_string(start_lnls[c]));

  // The searches advance in lockstep (one wave flush, one smoothing pass
  // shared across all starts); per start the outcome is identical to
  // running it alone.
  ms.results = search_ml_replicated(core, ctxs, opts);
  for (std::size_t c = 0; c < ms.results.size(); ++c) {
    if (ms.best < 0 ||
        ms.results[c].final_lnl >
            ms.results[static_cast<std::size_t>(ms.best)].final_lnl)
      ms.best = static_cast<int>(c);
  }
  return ms;
}

}  // namespace plk
