#include "parsimony/fitch.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "tree/tree_gen.hpp"

namespace plk {

namespace {

/// A lightweight mutable tree for scoring: adjacency over arbitrary node
/// ids; leaves carry a taxon index into the alignment. Avoids Tree's strict
/// 2n-2 invariants so partially built stepwise trees can be scored.
struct ProtoTree {
  struct Edge {
    int a, b;
  };
  std::vector<Edge> edges;
  std::vector<std::vector<int>> adj;   // node -> edge ids
  std::vector<int> taxon_of;           // node -> taxon index or -1

  int add_node(int taxon) {
    adj.emplace_back();
    taxon_of.push_back(taxon);
    return static_cast<int>(adj.size()) - 1;
  }
  int add_edge(int a, int b) {
    const int e = static_cast<int>(edges.size());
    edges.push_back(Edge{a, b});
    adj[static_cast<std::size_t>(a)].push_back(e);
    adj[static_cast<std::size_t>(b)].push_back(e);
    return e;
  }
  int other(int e, int v) const {
    return edges[static_cast<std::size_t>(e)].a == v
               ? edges[static_cast<std::size_t>(e)].b
               : edges[static_cast<std::size_t>(e)].a;
  }
};

/// Fitch DFS for one partition: returns the node's state mask per pattern
/// into `out` and accumulates mutations into `cost`.
void fitch_dfs(const ProtoTree& t, int v, int via,
               const CompressedPartition& part,
               std::vector<StateMask>& out, double& cost,
               std::vector<std::vector<StateMask>>& scratch, int depth) {
  const int taxon = t.taxon_of[static_cast<std::size_t>(v)];
  if (taxon >= 0) {
    const auto& masks = part.tip_states[static_cast<std::size_t>(taxon)];
    out.assign(masks.begin(), masks.end());
    return;
  }
  bool first = true;
  for (int e : t.adj[static_cast<std::size_t>(v)]) {
    if (e == via) continue;
    auto& child = scratch[static_cast<std::size_t>(depth)];
    fitch_dfs(t, t.other(e, v), e, part, child, cost, scratch, depth + 1);
    if (first) {
      out = child;
      first = false;
      continue;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      const StateMask inter = out[i] & child[i];
      if (inter) {
        out[i] = inter;
      } else {
        out[i] |= child[i];
        cost += part.weights[i];
      }
    }
  }
}

double score_proto(const ProtoTree& t, int root,
                   const CompressedAlignment& aln) {
  double cost = 0;
  std::vector<StateMask> rootset;
  // One scratch row per recursion depth, pre-sized so references into it
  // stay valid across the recursion.
  std::vector<std::vector<StateMask>> scratch(t.adj.size() + 1);
  for (const auto& part : aln.partitions)
    fitch_dfs(t, root, -1, part, rootset, cost, scratch, 0);
  return cost;
}

}  // namespace

double parsimony_score(const Tree& tree, const CompressedAlignment& aln) {
  if (static_cast<std::size_t>(tree.tip_count()) != aln.taxon_count())
    throw std::invalid_argument("parsimony_score: taxon count mismatch");
  // Map tree tips to alignment taxa by label.
  std::unordered_map<std::string, int> taxon_by_name;
  for (std::size_t x = 0; x < aln.taxon_count(); ++x)
    taxon_by_name[aln.taxon_names[x]] = static_cast<int>(x);

  ProtoTree t;
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    int taxon = -1;
    if (tree.is_tip(v)) {
      auto it = taxon_by_name.find(tree.label(v));
      if (it == taxon_by_name.end())
        throw std::invalid_argument("parsimony_score: unknown tip '" +
                                    tree.label(v) + "'");
      taxon = it->second;
    }
    t.add_node(taxon);
  }
  for (EdgeId e = 0; e < tree.edge_count(); ++e)
    t.add_edge(tree.edge(e).a, tree.edge(e).b);
  // Root the DFS at any inner node (or tip 0's neighbour for n == 2).
  const int root = tree.tip_count() >= 3 ? tree.tip_count() : 0;
  return score_proto(t, root, aln);
}

Tree parsimony_stepwise_tree(const CompressedAlignment& aln, Rng& rng) {
  const int n = static_cast<int>(aln.taxon_count());
  if (n < 3)
    throw std::invalid_argument("parsimony_stepwise_tree: need >= 3 taxa");

  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);

  ProtoTree t;
  // Initial star over the first three taxa.
  const int a = t.add_node(order[0]);
  const int b = t.add_node(order[1]);
  const int c = t.add_node(order[2]);
  const int hub = t.add_node(-1);
  t.add_edge(hub, a);
  t.add_edge(hub, b);
  t.add_edge(hub, c);

  for (int k = 3; k < n; ++k) {
    const int taxon = order[static_cast<std::size_t>(k)];
    // Try inserting into every existing edge; keep the cheapest.
    double best = 1e300;
    int best_edge = -1;
    const int n_edges = static_cast<int>(t.edges.size());
    for (int e = 0; e < n_edges; ++e) {
      ProtoTree trial = t;
      const auto old = trial.edges[static_cast<std::size_t>(e)];
      const int mid = trial.add_node(-1);
      const int tip = trial.add_node(taxon);
      // Redirect edge e to (old.a, mid); add (mid, old.b) and (mid, tip).
      trial.edges[static_cast<std::size_t>(e)].b = mid;
      auto& badj = trial.adj[static_cast<std::size_t>(old.b)];
      badj.erase(std::find(badj.begin(), badj.end(), e));
      trial.adj[static_cast<std::size_t>(mid)].push_back(e);
      trial.add_edge(mid, old.b);
      trial.add_edge(mid, tip);
      const double s = score_proto(trial, mid, aln);
      if (s < best) {
        best = s;
        best_edge = e;
      }
    }
    // Apply the winning insertion to `t`.
    const auto old = t.edges[static_cast<std::size_t>(best_edge)];
    const int mid = t.add_node(-1);
    const int tip = t.add_node(taxon);
    t.edges[static_cast<std::size_t>(best_edge)].b = mid;
    auto& badj = t.adj[static_cast<std::size_t>(old.b)];
    badj.erase(std::find(badj.begin(), badj.end(), best_edge));
    t.adj[static_cast<std::size_t>(mid)].push_back(best_edge);
    t.add_edge(mid, old.b);
    t.add_edge(mid, tip);
  }

  // Convert to a plk::Tree: tips keep alignment order (tip id == taxon id).
  // Proto node -> tree node id.
  std::vector<NodeId> map(t.adj.size(), kNoId);
  NodeId next_inner = n;
  for (std::size_t v = 0; v < t.adj.size(); ++v)
    map[v] = t.taxon_of[v] >= 0 ? t.taxon_of[v] : next_inner++;
  std::vector<Tree::Edge> edges;
  edges.reserve(t.edges.size());
  for (const auto& e : t.edges)
    edges.push_back(Tree::Edge{map[static_cast<std::size_t>(e.a)],
                               map[static_cast<std::size_t>(e.b)], 0.1});
  std::vector<std::string> labels = aln.taxon_names;
  return Tree::from_edges(std::move(labels), std::move(edges));
}

namespace {

/// Directed Fitch set of the subtree hanging off node `v` away from edge
/// `via` (the component containing v when `via` is cut), memoized per
/// directed edge: slot 2*via + (v == edge.a ? 0 : 1).
const std::vector<StateMask>& directed_set(
    const Tree& tree, const CompressedPartition& part,
    const std::vector<int>& taxon_of, NodeId v, EdgeId via,
    std::vector<std::vector<StateMask>>& memo, std::vector<char>& done) {
  const std::size_t slot =
      2 * static_cast<std::size_t>(via) + (tree.edge(via).a == v ? 0 : 1);
  if (done[slot]) return memo[slot];
  std::vector<StateMask>& out = memo[slot];
  if (taxon_of[static_cast<std::size_t>(v)] >= 0) {
    const auto& masks =
        part.tip_states[static_cast<std::size_t>(taxon_of[v])];
    out.assign(masks.begin(), masks.end());
  } else {
    bool first = true;
    for (EdgeId e : tree.edges_of(v)) {
      if (e == via) continue;
      const std::vector<StateMask>& child = directed_set(
          tree, part, taxon_of, tree.other_end(e, v), e, memo, done);
      if (first) {
        out = child;
        first = false;
        continue;
      }
      for (std::size_t i = 0; i < out.size(); ++i) {
        const StateMask inter = out[i] & child[i];
        out[i] = inter ? inter : (out[i] | child[i]);
      }
    }
  }
  done[slot] = 1;
  return out;
}

}  // namespace

ParsimonyInserter::ParsimonyInserter(const Tree& tree,
                                     const CompressedAlignment& aln) {
  if (tree.tip_count() < 3)
    throw std::invalid_argument("ParsimonyInserter: need >= 3 taxa");
  std::unordered_map<std::string, int> taxon_by_name;
  for (std::size_t x = 0; x < aln.taxon_count(); ++x)
    taxon_by_name[aln.taxon_names[x]] = static_cast<int>(x);
  std::vector<int> taxon_of(static_cast<std::size_t>(tree.node_count()), -1);
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    if (!tree.is_tip(v)) continue;
    auto it = taxon_by_name.find(tree.label(v));
    if (it == taxon_by_name.end())
      throw std::invalid_argument("ParsimonyInserter: tree tip '" +
                                  tree.label(v) + "' missing from alignment");
    taxon_of[static_cast<std::size_t>(v)] = it->second;
  }

  const std::size_t n_edges = static_cast<std::size_t>(tree.edge_count());
  edge_sets_.resize(aln.partitions.size());
  weights_.resize(aln.partitions.size());
  for (std::size_t p = 0; p < aln.partitions.size(); ++p) {
    const CompressedPartition& part = aln.partitions[p];
    weights_[p] = part.weights;
    std::vector<std::vector<StateMask>> memo(2 * n_edges);
    std::vector<char> done(2 * n_edges, 0);
    auto& sets = edge_sets_[p];
    sets.resize(n_edges);
    for (EdgeId e = 0; e < tree.edge_count(); ++e) {
      const Tree::Edge& ed = tree.edge(e);
      const std::vector<StateMask>& a =
          directed_set(tree, part, taxon_of, ed.a, e, memo, done);
      const std::vector<StateMask>& b =
          directed_set(tree, part, taxon_of, ed.b, e, memo, done);
      auto& es = sets[static_cast<std::size_t>(e)];
      es.resize(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        const StateMask inter = a[i] & b[i];
        es[i] = inter ? inter : (a[i] | b[i]);
      }
    }
  }
}

std::vector<double> ParsimonyInserter::costs(
    std::span<const std::vector<StateMask>> query_masks) const {
  if (query_masks.size() != edge_sets_.size())
    throw std::invalid_argument("ParsimonyInserter: partition count mismatch");
  const std::size_t n_edges =
      edge_sets_.empty() ? 0 : edge_sets_[0].size();
  std::vector<double> out(n_edges, 0.0);
  for (std::size_t p = 0; p < edge_sets_.size(); ++p) {
    const auto& q = query_masks[p];
    if (q.size() != weights_[p].size())
      throw std::invalid_argument("ParsimonyInserter: pattern count mismatch");
    for (std::size_t e = 0; e < n_edges; ++e) {
      const auto& es = edge_sets_[p][e];
      double c = 0;
      for (std::size_t i = 0; i < es.size(); ++i)
        if ((q[i] & es[i]) == 0) c += weights_[p][i];
      out[e] += c;
    }
  }
  return out;
}

std::vector<EdgeId> ParsimonyInserter::shortlist(
    std::span<const std::vector<StateMask>> query_masks,
    std::size_t keep) const {
  const std::vector<double> c = costs(query_masks);
  std::vector<EdgeId> order(c.size());
  for (std::size_t e = 0; e < c.size(); ++e)
    order[e] = static_cast<EdgeId>(e);
  std::sort(order.begin(), order.end(), [&](EdgeId x, EdgeId y) {
    const double cx = c[static_cast<std::size_t>(x)];
    const double cy = c[static_cast<std::size_t>(y)];
    return cx != cy ? cx < cy : x < y;
  });
  if (keep < order.size()) order.resize(keep);
  return order;
}

}  // namespace plk
