#include "parsimony/fitch.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "tree/tree_gen.hpp"

namespace plk {

namespace {

/// A lightweight mutable tree for scoring: adjacency over arbitrary node
/// ids; leaves carry a taxon index into the alignment. Avoids Tree's strict
/// 2n-2 invariants so partially built stepwise trees can be scored.
struct ProtoTree {
  struct Edge {
    int a, b;
  };
  std::vector<Edge> edges;
  std::vector<std::vector<int>> adj;   // node -> edge ids
  std::vector<int> taxon_of;           // node -> taxon index or -1

  int add_node(int taxon) {
    adj.emplace_back();
    taxon_of.push_back(taxon);
    return static_cast<int>(adj.size()) - 1;
  }
  int add_edge(int a, int b) {
    const int e = static_cast<int>(edges.size());
    edges.push_back(Edge{a, b});
    adj[static_cast<std::size_t>(a)].push_back(e);
    adj[static_cast<std::size_t>(b)].push_back(e);
    return e;
  }
  int other(int e, int v) const {
    return edges[static_cast<std::size_t>(e)].a == v
               ? edges[static_cast<std::size_t>(e)].b
               : edges[static_cast<std::size_t>(e)].a;
  }
};

/// Fitch DFS for one partition: returns the node's state mask per pattern
/// into `out` and accumulates mutations into `cost`.
void fitch_dfs(const ProtoTree& t, int v, int via,
               const CompressedPartition& part,
               std::vector<StateMask>& out, double& cost,
               std::vector<std::vector<StateMask>>& scratch, int depth) {
  const int taxon = t.taxon_of[static_cast<std::size_t>(v)];
  if (taxon >= 0) {
    const auto& masks = part.tip_states[static_cast<std::size_t>(taxon)];
    out.assign(masks.begin(), masks.end());
    return;
  }
  bool first = true;
  for (int e : t.adj[static_cast<std::size_t>(v)]) {
    if (e == via) continue;
    auto& child = scratch[static_cast<std::size_t>(depth)];
    fitch_dfs(t, t.other(e, v), e, part, child, cost, scratch, depth + 1);
    if (first) {
      out = child;
      first = false;
      continue;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      const StateMask inter = out[i] & child[i];
      if (inter) {
        out[i] = inter;
      } else {
        out[i] |= child[i];
        cost += part.weights[i];
      }
    }
  }
}

double score_proto(const ProtoTree& t, int root,
                   const CompressedAlignment& aln) {
  double cost = 0;
  std::vector<StateMask> rootset;
  // One scratch row per recursion depth, pre-sized so references into it
  // stay valid across the recursion.
  std::vector<std::vector<StateMask>> scratch(t.adj.size() + 1);
  for (const auto& part : aln.partitions)
    fitch_dfs(t, root, -1, part, rootset, cost, scratch, 0);
  return cost;
}

}  // namespace

double parsimony_score(const Tree& tree, const CompressedAlignment& aln) {
  if (static_cast<std::size_t>(tree.tip_count()) != aln.taxon_count())
    throw std::invalid_argument("parsimony_score: taxon count mismatch");
  // Map tree tips to alignment taxa by label.
  std::unordered_map<std::string, int> taxon_by_name;
  for (std::size_t x = 0; x < aln.taxon_count(); ++x)
    taxon_by_name[aln.taxon_names[x]] = static_cast<int>(x);

  ProtoTree t;
  for (NodeId v = 0; v < tree.node_count(); ++v) {
    int taxon = -1;
    if (tree.is_tip(v)) {
      auto it = taxon_by_name.find(tree.label(v));
      if (it == taxon_by_name.end())
        throw std::invalid_argument("parsimony_score: unknown tip '" +
                                    tree.label(v) + "'");
      taxon = it->second;
    }
    t.add_node(taxon);
  }
  for (EdgeId e = 0; e < tree.edge_count(); ++e)
    t.add_edge(tree.edge(e).a, tree.edge(e).b);
  // Root the DFS at any inner node (or tip 0's neighbour for n == 2).
  const int root = tree.tip_count() >= 3 ? tree.tip_count() : 0;
  return score_proto(t, root, aln);
}

Tree parsimony_stepwise_tree(const CompressedAlignment& aln, Rng& rng) {
  const int n = static_cast<int>(aln.taxon_count());
  if (n < 3)
    throw std::invalid_argument("parsimony_stepwise_tree: need >= 3 taxa");

  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);

  ProtoTree t;
  // Initial star over the first three taxa.
  const int a = t.add_node(order[0]);
  const int b = t.add_node(order[1]);
  const int c = t.add_node(order[2]);
  const int hub = t.add_node(-1);
  t.add_edge(hub, a);
  t.add_edge(hub, b);
  t.add_edge(hub, c);

  for (int k = 3; k < n; ++k) {
    const int taxon = order[static_cast<std::size_t>(k)];
    // Try inserting into every existing edge; keep the cheapest.
    double best = 1e300;
    int best_edge = -1;
    const int n_edges = static_cast<int>(t.edges.size());
    for (int e = 0; e < n_edges; ++e) {
      ProtoTree trial = t;
      const auto old = trial.edges[static_cast<std::size_t>(e)];
      const int mid = trial.add_node(-1);
      const int tip = trial.add_node(taxon);
      // Redirect edge e to (old.a, mid); add (mid, old.b) and (mid, tip).
      trial.edges[static_cast<std::size_t>(e)].b = mid;
      auto& badj = trial.adj[static_cast<std::size_t>(old.b)];
      badj.erase(std::find(badj.begin(), badj.end(), e));
      trial.adj[static_cast<std::size_t>(mid)].push_back(e);
      trial.add_edge(mid, old.b);
      trial.add_edge(mid, tip);
      const double s = score_proto(trial, mid, aln);
      if (s < best) {
        best = s;
        best_edge = e;
      }
    }
    // Apply the winning insertion to `t`.
    const auto old = t.edges[static_cast<std::size_t>(best_edge)];
    const int mid = t.add_node(-1);
    const int tip = t.add_node(taxon);
    t.edges[static_cast<std::size_t>(best_edge)].b = mid;
    auto& badj = t.adj[static_cast<std::size_t>(old.b)];
    badj.erase(std::find(badj.begin(), badj.end(), best_edge));
    t.adj[static_cast<std::size_t>(mid)].push_back(best_edge);
    t.add_edge(mid, old.b);
    t.add_edge(mid, tip);
  }

  // Convert to a plk::Tree: tips keep alignment order (tip id == taxon id).
  // Proto node -> tree node id.
  std::vector<NodeId> map(t.adj.size(), kNoId);
  NodeId next_inner = n;
  for (std::size_t v = 0; v < t.adj.size(); ++v)
    map[v] = t.taxon_of[v] >= 0 ? t.taxon_of[v] : next_inner++;
  std::vector<Tree::Edge> edges;
  edges.reserve(t.edges.size());
  for (const auto& e : t.edges)
    edges.push_back(Tree::Edge{map[static_cast<std::size_t>(e.a)],
                               map[static_cast<std::size_t>(e.b)], 0.1});
  std::vector<std::string> labels = aln.taxon_names;
  return Tree::from_edges(std::move(labels), std::move(edges));
}

}  // namespace plk
