// Fitch parsimony: scoring and stepwise-addition starting trees.
//
// RAxML does not start its ML search from a random topology: it builds a
// randomized stepwise-addition maximum-parsimony tree first (much closer to
// the ML optimum, so far fewer SPR rounds are needed). The Fitch algorithm
// operates directly on the state masks of the compressed alignment: a node's
// state set is the intersection of its children's sets if non-empty,
// otherwise their union at a cost of one mutation; ambiguity codes and gaps
// need no special cases.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/patterns.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plk {

/// Weighted Fitch parsimony score of the alignment on the tree (summed over
/// all partitions; pattern weights respected). Tree tip labels must match
/// the alignment's taxon names.
double parsimony_score(const Tree& tree, const CompressedAlignment& aln);

/// Build a starting tree by randomized stepwise addition: taxa are inserted
/// in random order, each at the edge that minimizes the Fitch score.
/// Deterministic given the RNG state. O(n^2 * patterns) — run once per
/// analysis, like RAxML.
Tree parsimony_stepwise_tree(const CompressedAlignment& aln, Rng& rng);

/// Per-edge parsimony insertion costs on a FIXED reference tree — the
/// placement server's candidate prefilter.
///
/// Construction runs a two-pass directed Fitch sweep per partition and
/// stores, for every edge, the state set the edge "shows" an inserted tip:
/// the intersection of the two endpoint-directed Fitch sets when non-empty,
/// else their union (the set a Fitch pass meeting at a node in the middle of
/// the edge would combine the query against). costs() then charges a query
/// one weighted mutation for every pattern whose query mask does not
/// intersect the edge set — a deterministic O(edges x patterns) proxy for
/// the full stepwise-insertion score (cheap enough to run per query, and
/// monotone enough to rank candidate edges for the likelihood stage).
class ParsimonyInserter {
 public:
  /// Tip labels of `tree` must resolve in `aln` (the alignment may carry
  /// MORE taxa than the tree — e.g. a placement core's query slots).
  ParsimonyInserter(const Tree& tree, const CompressedAlignment& aln);

  /// One insertion cost per edge of the reference tree. `query_masks[p]`
  /// holds one state mask per pattern of partition p.
  std::vector<double> costs(
      std::span<const std::vector<StateMask>> query_masks) const;

  /// The `keep` cheapest edges (all edges when keep >= edge_count), ordered
  /// by (cost, edge id) — a deterministic shortlist for candidate scoring.
  std::vector<EdgeId> shortlist(
      std::span<const std::vector<StateMask>> query_masks,
      std::size_t keep) const;

  int edge_count() const { return static_cast<int>(edge_sets_.empty()
                                                       ? 0
                                                       : edge_sets_[0].size()); }

 private:
  // edge_sets_[partition][edge][pattern]: the combined edge state set.
  std::vector<std::vector<std::vector<StateMask>>> edge_sets_;
  std::vector<std::vector<double>> weights_;  // [partition][pattern]
};

}  // namespace plk
