// Fitch parsimony: scoring and stepwise-addition starting trees.
//
// RAxML does not start its ML search from a random topology: it builds a
// randomized stepwise-addition maximum-parsimony tree first (much closer to
// the ML optimum, so far fewer SPR rounds are needed). The Fitch algorithm
// operates directly on the state masks of the compressed alignment: a node's
// state set is the intersection of its children's sets if non-empty,
// otherwise their union at a cost of one mutation; ambiguity codes and gaps
// need no special cases.
#pragma once

#include <cstdint>

#include "bio/patterns.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plk {

/// Weighted Fitch parsimony score of the alignment on the tree (summed over
/// all partitions; pattern weights respected). Tree tip labels must match
/// the alignment's taxon names.
double parsimony_score(const Tree& tree, const CompressedAlignment& aln);

/// Build a starting tree by randomized stepwise addition: taxa are inserted
/// in random order, each at the edge that minimizes the Fitch score.
/// Deterministic given the RNG state. O(n^2 * patterns) — run once per
/// analysis, like RAxML.
Tree parsimony_stepwise_tree(const CompressedAlignment& aln, Rng& rng);

}  // namespace plk
