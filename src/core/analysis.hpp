// High-level analysis API: the library's front door.
//
// Wraps alignment compression, model assignment (with empirical base
// frequencies), engine construction, and the two analysis types the paper
// benchmarks: model-parameter optimization on a fixed tree, and a full ML
// tree search — each under either parallelization strategy, with joint or
// per-partition branch lengths.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "bio/alignment.hpp"
#include "bio/partition.hpp"
#include "bio/patterns.hpp"
#include "core/engine.hpp"
#include "core/strategy.hpp"
#include "search/search.hpp"

namespace plk {

/// Empirical stationary frequencies of one compressed partition (weighted
/// counts of determined characters, with a pseudo-count guard against
/// zeros). Used to parameterize GTR/HKY models, as RAxML does by default.
std::vector<double> empirical_frequencies(const CompressedPartition& part);

/// How the starting topology is chosen when none is supplied.
enum class StartTree {
  kRandom,     ///< uniform random topology
  kParsimony,  ///< randomized stepwise-addition parsimony (RAxML's default)
};

/// Configuration of an end-to-end analysis.
struct AnalysisOptions {
  int threads = 1;
  /// NUMA-aware sub-cores to shard the engine into (EngineOptions::shards:
  /// 0 = auto — the PLK_SHARDS environment override, else 1).
  int shards = 0;
  Strategy strategy = Strategy::kNewPar;
  /// Per-thread pattern work assignment (parallel/schedule.hpp).
  SchedulingStrategy schedule = SchedulingStrategy::kCyclic;
  StartTree start_tree = StartTree::kRandom;
  /// Per-partition branch lengths (the paper's hard case) vs a joint
  /// estimate across partitions.
  bool per_partition_branch_lengths = true;
  /// Model specification string (model/model_spec.hpp), e.g. "GTR+G4",
  /// "HKY{2.5}+I", "WAG+R4+I". Applied to every partition; empty falls back
  /// to the partition scheme's model name (or GTR/WAG by data type). A spec
  /// without a +G/+R suffix picks up `gamma_categories` below.
  std::string model;
  /// DEPRECATED: category count used only when neither `model` nor the
  /// partition scheme names a rate suffix. Kept so existing callers keep
  /// their exact pre-ModelSpec behavior.
  int gamma_categories = 4;
  /// Deduplicate alignment columns into weighted patterns. The paper's
  /// simulated data is generated with all-unique columns (m == m'); keep
  /// this on for real data.
  bool compress_patterns = true;
  /// Independent starting trees for run_search(). Starts beyond the first
  /// run as extra EvalContexts over the engine's shared core (scored in one
  /// batched parallel region, then searched in turn — no per-start engine
  /// rebuild); the best final tree is adopted into the engine.
  int search_starts = 1;
  std::uint64_t seed = 42;  ///< for the random starting tree
  SearchOptions search;
  ModelOptOptions model_opts;
  BranchOptOptions branch_opts;
};

/// Timing and result summary of one analysis run.
struct AnalysisResult {
  double lnl = 0.0;
  double seconds = 0.0;
  EngineStats engine_stats;
  TeamStats team_stats;
  SearchResult search;  ///< populated by run_search() only
  std::string newick;
};

/// An analysis session owning the engine.
class Analysis {
 public:
  /// Build from raw inputs; a random starting tree is generated unless
  /// `start_tree` is given (its tip labels must match the alignment).
  Analysis(const Alignment& aln, const PartitionScheme& scheme,
           const AnalysisOptions& opts,
           std::optional<Tree> start_tree = std::nullopt);
  ~Analysis();

  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  /// ML model-parameter + branch-length optimization on the fixed topology
  /// (the paper's "model optimization on a fixed input tree" experiment).
  AnalysisResult optimize_parameters();

  /// Full ML tree search (search phases alternating with model-optimization
  /// phases).
  AnalysisResult run_search();

  /// Current log-likelihood without changing anything.
  double loglikelihood();

 private:
  AnalysisOptions opts_;
  std::unique_ptr<CompressedAlignment> data_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace plk
