#include "core/analysis.hpp"

#include <stdexcept>

#include "model/model_spec.hpp"
#include "parsimony/fitch.hpp"
#include "tree/newick.hpp"
#include "tree/tree_gen.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace plk {

std::vector<double> empirical_frequencies(const CompressedPartition& part) {
  const int s = part.states();
  std::vector<double> counts(static_cast<std::size_t>(s), 1.0);  // pseudo-count
  for (const auto& taxon : part.tip_states) {
    for (std::size_t i = 0; i < part.pattern_count; ++i) {
      const StateMask m = taxon[i];
      if (!Alphabet::is_determined(m)) continue;
      counts[static_cast<std::size_t>(Alphabet::single_state(m))] +=
          part.weights[i];
    }
  }
  double total = 0.0;
  for (double c : counts) total += c;
  for (double& c : counts) c /= total;
  return counts;
}

Analysis::Analysis(const Alignment& aln, const PartitionScheme& scheme,
                   const AnalysisOptions& opts, std::optional<Tree> start_tree)
    : opts_(opts) {
  data_ = std::make_unique<CompressedAlignment>(
      CompressedAlignment::build(aln, scheme, opts.compress_patterns));

  std::vector<PartitionModel> models;
  models.reserve(data_->partitions.size());
  for (const auto& part : data_->partitions) {
    // Model resolution order: the analysis-wide spec string, the partition
    // scheme's model name (itself parsed as a spec, so partition files may
    // say "HKY{2.5}+I"), then the family default for the data type.
    const std::string spec_text =
        !opts.model.empty()           ? opts.model
        : !part.model_name.empty()    ? part.model_name
        : part.type == DataType::kDna ? "GTR"
                                      : "WAG";
    ModelSpec spec = parse_model_spec(spec_text);
    const bool want_protein = is_protein_model_name(spec.name);
    if (want_protein != (part.type == DataType::kProtein))
      throw std::invalid_argument(
          "model '" + spec_text + "' is a " +
          (want_protein ? std::string("protein") : std::string("DNA")) +
          " model but partition '" + part.name + "' holds " +
          (part.type == DataType::kDna ? "DNA" : "protein") + " data");
    // Deprecated fallback: a bare family name keeps the historic behavior
    // of AnalysisOptions::gamma_categories equal-weight Gamma categories.
    if (spec.rate_kind == ModelSpec::RateKind::kNone) {
      spec.rate_kind = ModelSpec::RateKind::kGamma;
      spec.categories = opts.gamma_categories;
    }
    SubstModel m = make_subst_model(spec, empirical_frequencies(part));
    models.emplace_back(std::move(m), make_rate_model(spec));
    log_info("partition '" + part.name +
             "': model " + describe_model(models.back()));
  }

  Tree tree = start_tree ? std::move(*start_tree) : [&] {
    Rng rng(opts.seed);
    if (opts.start_tree == StartTree::kParsimony) {
      Tree t = parsimony_stepwise_tree(*data_, rng);
      // Parsimony gives no branch lengths; seed with a sensible default.
      for (EdgeId e = 0; e < t.edge_count(); ++e) t.set_length(e, 0.1);
      return t;
    }
    std::vector<std::string> labels = data_->taxon_names;
    return random_tree(std::move(labels), rng);
  }();

  EngineOptions eo;
  eo.threads = opts.threads;
  eo.shards = opts.shards;
  eo.unlinked_branch_lengths = opts.per_partition_branch_lengths;
  eo.schedule = opts.schedule;
  engine_ = std::make_unique<Engine>(*data_, std::move(tree),
                                     std::move(models), eo);
}

Analysis::~Analysis() = default;

AnalysisResult Analysis::optimize_parameters() {
  Timer timer;
  engine_->reset_stats();

  double lnl = optimize_branch_lengths(*engine_, opts_.strategy,
                                       opts_.branch_opts);
  double prev;
  // Alternate model-parameter and branch-length optimization until the
  // total log-likelihood stops improving (RAxML's modOpt loop).
  int round = 0;
  do {
    prev = lnl;
    lnl = optimize_model_parameters(*engine_, opts_.strategy,
                                    opts_.model_opts);
    lnl = optimize_branch_lengths(*engine_, opts_.strategy,
                                  opts_.branch_opts);
  } while (lnl - prev > 0.1 && ++round < 10);

  AnalysisResult res;
  res.lnl = lnl;
  res.seconds = timer.seconds();
  res.engine_stats = engine_->stats();
  res.team_stats = engine_->team_stats();
  engine_->sync_tree_lengths();
  res.newick = write_newick(engine_->tree());
  return res;
}

AnalysisResult Analysis::run_search() {
  Timer timer;
  engine_->reset_stats();

  SearchOptions so = opts_.search;
  so.strategy = opts_.strategy;
  AnalysisResult res;
  if (opts_.search_starts <= 1) {
    res.search = search_ml(*engine_, so);
  } else {
    // Multi-start: extra random-start contexts over the engine's shared
    // core (no tip re-encoding, no thread spawn, batched initial scoring).
    std::vector<std::unique_ptr<EvalContext>> extra;
    std::vector<EvalContext*> ctxs{&engine_->context()};
    for (int s = 1; s < opts_.search_starts; ++s) {
      Rng rng(opts_.seed + static_cast<std::uint64_t>(s));
      extra.push_back(std::make_unique<EvalContext>(
          engine_->core(), random_tree(data_->taxon_names, rng)));
      ctxs.push_back(extra.back().get());
    }
    const MultiStartResult ms = search_ml_multistart(engine_->core(), ctxs, so);
    if (ms.best > 0) {
      engine_->context().copy_state_from(
          *ctxs[static_cast<std::size_t>(ms.best)]);
      // Refresh the primary context's evaluation state (per_partition_lnl)
      // for the adopted tree; when the primary start won it is fresh
      // already from its own search.
      engine_->loglikelihood(0);
    }
    res.search = ms.results[static_cast<std::size_t>(ms.best)];
  }
  res.lnl = res.search.final_lnl;
  res.seconds = timer.seconds();
  res.engine_stats = engine_->stats();
  res.team_stats = engine_->team_stats();
  res.newick = write_newick(engine_->tree());
  return res;
}

double Analysis::loglikelihood() { return engine_->loglikelihood(0); }

}  // namespace plk
