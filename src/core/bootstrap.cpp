#include "core/bootstrap.hpp"

#include <cmath>
#include <memory>
#include <set>
#include <sstream>

#include "core/branch_opt.hpp"
#include "core/engine.hpp"
#include "tree/rf_distance.hpp"

namespace plk {

std::vector<std::vector<double>> bootstrap_weights(
    const CompressedAlignment& aln, Rng& rng) {
  std::vector<std::vector<double>> out;
  out.reserve(aln.partitions.size());
  for (const auto& part : aln.partitions) {
    std::vector<double> fresh(part.pattern_count, 0.0);
    // Draw site_count columns with replacement, weighted by the original
    // multiplicities (each original column is equally likely).
    for (std::size_t s = 0; s < part.site_count; ++s)
      fresh[rng.discrete(part.weights)] += 1.0;
    out.push_back(std::move(fresh));
  }
  return out;
}

CompressedAlignment bootstrap_replicate(const CompressedAlignment& aln,
                                        Rng& rng) {
  CompressedAlignment rep = aln;
  auto weights = bootstrap_weights(aln, rng);
  for (std::size_t p = 0; p < rep.partitions.size(); ++p)
    rep.partitions[p].weights = std::move(weights[p]);
  return rep;
}

std::vector<Tree> bootstrap_trees(EngineCore& core, const Tree& reference,
                                  int replicates, Rng& rng,
                                  const SearchOptions& opts) {
  std::vector<std::unique_ptr<EvalContext>> owned;
  std::vector<EvalContext*> ctxs;
  owned.reserve(static_cast<std::size_t>(replicates));
  for (int r = 0; r < replicates; ++r) {
    auto ctx = std::make_unique<EvalContext>(core, reference);
    const auto weights = bootstrap_weights(core.alignment(), rng);
    for (int p = 0; p < core.partition_count(); ++p)
      ctx->set_pattern_weights(p, weights[static_cast<std::size_t>(p)]);
    ctxs.push_back(ctx.get());
    owned.push_back(std::move(ctx));
  }

  // Batched phase: smooth every replicate's branch lengths in lockstep
  // (each optimization step is one parallel region for all replicates).
  optimize_branch_lengths_batch(core, ctxs, opts.full_branch_opts);

  // Replicate SPR searches in lockstep through the shared core: every
  // replicate's current candidate wave flushes through one parallel region,
  // and round-boundary smoothing runs as one batched pass (per replicate
  // the outcome is identical to searching it alone). The search's own
  // initial smoothing converges immediately thanks to the pre-pass above.
  search_ml_replicated(core, ctxs, opts);
  std::vector<Tree> trees;
  trees.reserve(static_cast<std::size_t>(replicates));
  for (EvalContext* ctx : ctxs) trees.push_back(ctx->tree());
  return trees;
}

std::map<EdgeId, double> bipartition_support(
    const Tree& reference, const std::vector<Tree>& replicates) {
  // Count bipartitions across replicates.
  std::map<Bipartition, int> counts;
  for (const Tree& t : replicates)
    for (auto& bp : bipartitions(t)) ++counts[bp];

  // Match each internal reference edge's bipartition against the counts.
  // bipartitions() emits entries in increasing internal-edge order, so walk
  // both in lockstep.
  std::map<EdgeId, double> support;
  const auto ref_bips = bipartitions(reference);
  std::size_t idx = 0;
  const double denom =
      replicates.empty() ? 1.0 : static_cast<double>(replicates.size());
  for (EdgeId e = 0; e < reference.edge_count(); ++e) {
    if (!reference.is_internal_edge(e)) continue;
    const auto it = counts.find(ref_bips[idx++]);
    support[e] = (it == counts.end() ? 0 : it->second) / denom;
  }
  return support;
}

namespace {

void write_support_subtree(const Tree& t, NodeId v, EdgeId via,
                           const std::map<EdgeId, double>& support,
                           std::ostream& out, int precision) {
  if (t.is_tip(v)) {
    out << t.label(v);
  } else {
    out << '(';
    bool first = true;
    for (EdgeId e : t.edges_of(v)) {
      if (e == via) continue;
      if (!first) out << ',';
      first = false;
      write_support_subtree(t, t.other_end(e, v), e, support, out, precision);
    }
    out << ')';
    if (auto it = support.find(via); it != support.end())
      out << static_cast<int>(std::lround(100.0 * it->second));
  }
  out << ':';
  out.precision(precision);
  out << t.length(via);
}

}  // namespace

std::string write_newick_with_support(
    const Tree& tree, const std::map<EdgeId, double>& support,
    int precision) {
  std::ostringstream out;
  const EdgeId pend = tree.edges_of(0).front();
  const NodeId root = tree.other_end(pend, 0);
  out << '(' << tree.label(0) << ':';
  out.precision(precision);
  out << tree.length(pend);
  for (EdgeId e : tree.edges_of(root)) {
    if (e == pend) continue;
    out << ',';
    write_support_subtree(tree, tree.other_end(e, root), e, support, out,
                          precision);
  }
  out << ");";
  return out.str();
}

}  // namespace plk
