// Per-partition likelihood model parameters.
//
// A partitioned analysis estimates, for every partition (gene): the
// substitution model's exchangeabilities, the rate-heterogeneity parameters
// (Gamma shape, free rates/weights, invariant proportion), and — optionally
// — its own branch lengths. This bundle owns the first two; the engine
// signals parameter changes via epochs so only the affected partition's CLVs
// are recomputed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/gamma.hpp"
#include "model/rates.hpp"
#include "model/subst_model.hpp"

namespace plk {

/// One partition's substitution model plus rate heterogeneity.
class PartitionModel {
 public:
  /// Legacy constructor: discrete Gamma with `gamma_cats` categories.
  PartitionModel(SubstModel model, double alpha = 1.0, int gamma_cats = 4,
                 GammaMode mode = GammaMode::kMean)
      : model_(std::move(model)),
        rates_(RateModel::gamma(alpha, gamma_cats, mode)) {}

  /// General constructor: any rate-heterogeneity model.
  PartitionModel(SubstModel model, RateModel rates)
      : model_(std::move(model)), rates_(std::move(rates)) {}

  const SubstModel& model() const { return model_; }
  SubstModel& model() { return model_; }

  const RateModel& rate_model() const { return rates_; }
  void set_rate_model(RateModel rates) { rates_ = std::move(rates); }

  double alpha() const { return rates_.alpha(); }
  int gamma_categories() const { return rates_.categories(); }
  GammaMode gamma_mode() const { return rates_.gamma_mode(); }

  double p_inv() const { return rates_.p_inv(); }
  bool invariant_sites() const { return rates_.invariant_sites(); }

  /// Category rate multipliers (one per category; see RateModel for the
  /// normalization invariant).
  const std::vector<double>& category_rates() const { return rates_.rates(); }
  /// Kernel-facing per-category weights with (1 - p_inv) folded in.
  const std::vector<double>& category_weights() const {
    return rates_.eval_weights();
  }
  /// True when kernels may take the historic equal-weight fast path.
  bool uniform_categories() const { return rates_.uniform_categories(); }

  /// Set the Gamma shape and refresh category rates. Clamped to
  /// [kAlphaMin, kAlphaMax]. No-op on category rates for free-rate models.
  void set_alpha(double alpha) { rates_.set_alpha(alpha); }
  /// Set the invariant proportion (implies the +I term; clamped).
  void set_p_inv(double p) { rates_.set_p_inv(p); }
  /// Free-rate mutators; forward to RateModel (kFree only).
  void set_free_rate(int c, double rate) { rates_.set_free_rate(c, rate); }
  void set_free_weight(int c, double w) { rates_.set_free_weight(c, w); }

 private:
  SubstModel model_;
  RateModel rates_;
};

}  // namespace plk
