// Per-partition likelihood model parameters.
//
// A partitioned analysis estimates, for every partition (gene): the
// substitution model's exchangeabilities, the Gamma shape alpha, and —
// optionally — its own branch lengths. This bundle owns the first two; the
// engine signals parameter changes via epochs so only the affected
// partition's CLVs are recomputed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/gamma.hpp"
#include "model/subst_model.hpp"

namespace plk {

/// One partition's substitution model plus rate heterogeneity.
class PartitionModel {
 public:
  PartitionModel(SubstModel model, double alpha = 1.0, int gamma_cats = 4,
                 GammaMode mode = GammaMode::kMean)
      : model_(std::move(model)),
        gamma_cats_(gamma_cats),
        mode_(mode) {
    set_alpha(alpha);
  }

  const SubstModel& model() const { return model_; }
  SubstModel& model() { return model_; }

  double alpha() const { return alpha_; }
  int gamma_categories() const { return gamma_cats_; }
  GammaMode gamma_mode() const { return mode_; }

  /// Category rate multipliers (mean 1, one per category).
  const std::vector<double>& category_rates() const { return rates_; }

  /// Set the Gamma shape and refresh category rates. Clamped to
  /// [kAlphaMin, kAlphaMax].
  void set_alpha(double alpha) {
    alpha_ = alpha < kAlphaMin ? kAlphaMin
                               : (alpha > kAlphaMax ? kAlphaMax : alpha);
    rates_ = discrete_gamma_rates(alpha_, gamma_cats_, mode_);
  }

 private:
  SubstModel model_;
  double alpha_ = 1.0;
  int gamma_cats_;
  GammaMode mode_;
  std::vector<double> rates_;
};

}  // namespace plk
