// The Phylogenetic Likelihood Kernel hot loops — umbrella header.
//
// The kernels live in src/core/kernels/ (see the README there):
//
//   generic.hpp      - scalar reference templates (ChildView, newview_slice,
//                      evaluate_slice, sumtable_slice, nr_slice, ...)
//   common.hpp       - SIMD building blocks shared by the specializations
//   newview.hpp      - tip/tip, tip/inner, inner/inner SIMD newview
//   evaluate.hpp     - SIMD evaluate + per-site evaluate
//   derivatives.hpp  - SIMD sumtable + Newton-Raphson reduction
//   avx512.hpp       - dedicated 8-lane kernels (only under AVX-512 forcing)
//   tip_table.hpp    - precomputed tip lookup tables + P-matrix transposes
//   dispatch.hpp     - runtime backend selection (KernelTable)
//
// The generic templates are the semantic reference: every specialized path
// is golden-tested against them (exact scale counts, 1e-12 relative lnL).
#pragma once

#include "core/kernels/avx512.hpp"
#include "core/kernels/derivatives.hpp"
#include "core/kernels/evaluate.hpp"
#include "core/kernels/generic.hpp"
#include "core/kernels/newview.hpp"
#include "core/kernels/tip_table.hpp"
